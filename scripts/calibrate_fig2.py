"""Sweep device/network constants to match Fig 2(a) shapes."""
import dataclasses, itertools
import numpy as np
from repro import load_dataset, ClusterSpec, GNNModel, make_engine
from repro.training import prepare_graph
from repro.graph.datasets import spec_of
from repro.cluster.device import T4
from repro.cluster.network import ECS_NETWORK

# paper Fig2a targets: DepCache_time/DepComm_time
TARGETS = {'google': 1/1.23, 'livejournal': 1/1.03, 'pokec': 1.54, 'reddit': 7.76}

def measure(sparse_mult, bw_mult, m=8):
    device = dataclasses.replace(T4, sparse_flops_per_s=T4.sparse_flops_per_s/sparse_mult)
    network = dataclasses.replace(ECS_NETWORK, bytes_per_s=ECS_NETWORK.bytes_per_s*bw_mult)
    cluster = ClusterSpec(m, device=device, network=network, name='cal')
    out = {}
    for name in TARGETS:
        g = prepare_graph(load_dataset(name), 'gcn')
        spec = spec_of(name)
        times = {}
        for en in ['depcache','depcomm']:
            model = GNNModel.gcn(g.feature_dim, spec.hidden_dim, g.num_classes, seed=1)
            eng = make_engine(en, g, model, cluster)
            times[en] = eng.charge_epoch()
        out[name] = times['depcache']/times['depcomm']
    return out

for sm, bm in itertools.product([1,3,6,10,20],[1,2,4]):
    r = measure(sm, bm)
    score = sum(abs(np.log(r[k]/TARGETS[k])) for k in TARGETS)
    print(f"sparse/{sm:2d} bw x{bm}: " + " ".join(f"{k}={r[k]:5.2f}" for k in r) + f"  score={score:.2f}")
