"""Verify calibrated shapes: Fig 2(a) ratios + OOM matrix."""
import numpy as np
from repro import load_dataset, ClusterSpec, GNNModel, make_engine
from repro.engines import SharedMemoryEngine
from repro.training import prepare_graph
from repro.graph.datasets import spec_of, DATASETS
from repro.cluster.memory import OutOfMemoryError

cluster8 = ClusterSpec.ecs(8)
cluster16 = ClusterSpec.ecs(16)

print("== Fig 2(a): DepCache/DepComm ratio (8 nodes, GCN) ==")
for name, target in [('google', 1/1.23), ('livejournal', 1/1.03), ('pokec', 1.54), ('reddit', 7.76)]:
    g = prepare_graph(load_dataset(name), 'gcn')
    spec = spec_of(name)
    t = {}
    for en in ['depcache','depcomm']:
        model = GNNModel.gcn(g.feature_dim, spec.hidden_dim, g.num_classes, seed=1)
        try:
            t[en] = make_engine(en, g, model, cluster8).charge_epoch()
        except OutOfMemoryError as e:
            t[en] = None
    r = t['depcache']/t['depcomm'] if t['depcache'] and t['depcomm'] else float('nan')
    print(f"  {name:12s} ratio={r:5.2f} (paper {target:.2f})  cache={t['depcache']} comm={t['depcomm']}")

print("\n== OOM matrix (16 nodes unless noted) ==")
def status(engname, gname, arch, nodes=16):
    g = prepare_graph(load_dataset(gname), arch)
    spec = spec_of(gname)
    model = GNNModel.build(arch, g.feature_dim, spec.hidden_dim, g.num_classes, seed=1)
    cl = ClusterSpec.ecs(nodes)
    try:
        eng = make_engine(engname, g, model, cl)
        t = eng.charge_epoch()
        return f"{t*1000:7.1f}ms"
    except OutOfMemoryError as e:
        return f"OOM({e.label[:12]})"

names = ['google','pokec','livejournal','reddit','orkut','wiki','twitter']
for arch in ['gcn','gat']:
    for en, nodes in [('depcache',16), ('roc',4)]:
        row = " ".join(f"{n[:3]}={status(en,n,arch,nodes)}" for n in names)
        print(f"  {arch} {en:9s}: {row}")

print("\n== Table 5 single-GPU (T4) ==")
for gname in ['cora','citeseer','pubmed','google']:
    g0 = load_dataset(gname)
    spec = spec_of(gname)
    row = [gname]
    for variant in ['dgl','pyg','nts']:
        g = prepare_graph(g0, 'gcn')
        model = GNNModel.gcn(g.feature_dim, spec.hidden_dim, g.num_classes, seed=1)
        try:
            eng = SharedMemoryEngine(g, model, variant=variant, paper_num_vertices=spec.paper_num_vertices)
            t = eng.charge_epoch()
            row.append(f"{variant}={t*1000:.1f}ms")
        except OutOfMemoryError as e:
            row.append(f"{variant}=OOM")
    print("  " + " ".join(row))

print("\n== Table 4 CPU (DGL-CPU / PyG-CPU / NTS-CPU) ==")
for gname in ['pubmed','google','pokec','livejournal']:
    g0 = load_dataset(gname)
    spec = spec_of(gname)
    row = [gname]
    for variant in ['dgl','pyg','nts']:
        g = prepare_graph(g0, 'gcn')
        model = GNNModel.gcn(g.feature_dim, spec.hidden_dim, g.num_classes, seed=1)
        try:
            eng = SharedMemoryEngine(g, model, cluster=ClusterSpec.cpu(), variant=variant, paper_num_vertices=spec.paper_num_vertices)
            t = eng.charge_epoch()
            row.append(f"{variant}={t*1000:.1f}ms")
        except OutOfMemoryError:
            row.append(f"{variant}=OOM")
    print("  " + " ".join(row))
