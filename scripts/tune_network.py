"""Grid-search network constants against all Fig 2 + Fig 9 shapes."""
import dataclasses, sys
import numpy as np
import repro.cluster.network as net
import repro.cluster.spec as spec_mod
from repro import load_dataset, ClusterSpec, GNNModel, make_engine
from repro.training import prepare_graph
from repro.graph.datasets import spec_of
from repro.cluster.memory import OutOfMemoryError
from repro.comm.scheduler import CommOptions

def t(en, g, hid, nc, cluster, comm=CommOptions.none()):
    model = GNNModel.gcn(g.feature_dim, hid, nc, seed=1)
    try:
        return make_engine(en, g, model, cluster, comm=comm).charge_epoch()
    except OutOfMemoryError:
        return float('nan')

def evaluate(bw, lat):
    ecs = dataclasses.replace(net.ECS_NETWORK, bytes_per_s=bw, latency_s=lat)
    ibv = dataclasses.replace(net.IBV_NETWORK)
    cl8 = ClusterSpec(8, network=ecs, name='ECS')
    cl16 = ClusterSpec(16, network=ecs, name='ECS')
    out = {}
    # Fig2a
    for name in ['google','livejournal','pokec','reddit']:
        g = prepare_graph(load_dataset(name),'gcn'); sp = spec_of(name)
        out[f'2a_{name[:3]}'] = t('depcache',g,sp.hidden_dim,g.num_classes,cl8)/t('depcomm',g,sp.hidden_dim,g.num_classes,cl8)
    # Fig2b google hidden
    g = prepare_graph(load_dataset('google'),'gcn')
    r64 = t('depcache',g,64,g.num_classes,cl8)/t('depcomm',g,64,g.num_classes,cl8)
    r640 = t('depcache',g,640,g.num_classes,cl8)/t('depcomm',g,640,g.num_classes,cl8)
    out['2b_64'] = r64; out['2b_640'] = r640
    # Fig2c google IBV
    cl_ibv = ClusterSpec(8, device=spec_mod.V100, network=ibv, name='IBV')
    out['2c_ibv'] = t('depcache',g,256,g.num_classes,cl_ibv)/t('depcomm',g,256,g.num_classes,cl_ibv)
    # hybrid dominance on all graphs (16 nodes, raw)
    worst = 0
    for name in ['google','pokec','livejournal','reddit','orkut','wiki','twitter']:
        g2 = prepare_graph(load_dataset(name),'gcn'); sp = spec_of(name)
        c = t('depcache',g2,sp.hidden_dim,g2.num_classes,cl16)
        d = t('depcomm',g2,sp.hidden_dim,g2.num_classes,cl16)
        h = t('hybrid',g2,sp.hidden_dim,g2.num_classes,cl16)
        excess = h/min(c,d)
        worst = max(worst, excess)
    out['hyb_worst'] = worst
    return out

from repro.cluster.device import V100
import repro.cluster.spec as spec_mod
for bw in [0.75e9, 1.5e9, 3e9]:
    for lat in [2e-5, 5e-5, 1e-4, 2e-4]:
        o = evaluate(bw, lat)
        print(f"bw={bw/1e9:4.2f}G lat={lat*1e6:5.0f}us | " +
              f"goo={o['2a_goo']:.2f}(.81) liv={o['2a_liv']:.2f}(.97) pok={o['2a_pok']:.2f}(1.5) red={o['2a_red']:.2f}(7.8) | " +
              f"h64={o['2b_64']:.2f} h640={o['2b_640']:.2f} (want h64>h640... h64>1>h640 ideal) | ibv={o['2c_ibv']:.2f}(1.4) | hyb_excess={o['hyb_worst']:.2f}")
