#!/usr/bin/env python
"""Enforce that ``engines/base.py`` stays a thin façade.

The unified-execution refactor moved the executor, accountant, plan
builder, and program compiler out of ``engines/base.py``; what remains
is validation, plan orchestration, and one-line dispatch shims.  This
check fails CI if the façade grows back past the 400-line budget, which
is the cheap tripwire against re-accreting execution logic into the
engine base class instead of ``repro.execution``.

Usage: python scripts/check_base_facade.py  (exit 1 on violation)
"""

import sys
from pathlib import Path

LIMIT = 400
FACADE = Path(__file__).resolve().parent.parent / "src/repro/engines/base.py"


def main() -> int:
    lines = FACADE.read_text().count("\n")
    if lines >= LIMIT:
        print(
            f"FAIL: {FACADE.relative_to(FACADE.parents[3])} has {lines} "
            f"lines (budget: < {LIMIT}).\n"
            "engines/base.py is a façade over repro.execution -- move new "
            "logic into the execution package (executor, accountant, plan, "
            "program, passes) and keep only dispatch shims here."
        )
        return 1
    print(f"ok: engines/base.py is {lines} lines (< {LIMIT})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
