"""Compare DepCache, DepComm, and Hybrid on your own graph.

Scenario: you operate a social network and want to know which
dependency-management strategy suits your data before provisioning a
cluster.  This example generates a social-network-shaped graph, runs
each strategy on two simulated clusters (slow Ethernet vs fast
InfiniBand), and prints the per-epoch times plus the Hybrid engine's
caching decision -- the paper's Figure 2/9 workflow as a library call.

Run:  python examples/compare_strategies.py
"""

from repro import ClusterSpec, GNNModel, make_engine
from repro.cluster.memory import OutOfMemoryError
from repro.graph import generators
from repro.training import prepare_graph


def build_social_graph():
    """A mid-locality social network with learnable labels."""
    g = generators.locality_graph(
        2000, 36000, locality_width=0.02, global_fraction=0.35,
        hub_exponent=0.8, seed=42,
    )
    generators.attach_features(g, feature_dim=128, num_classes=12, seed=43)
    return g


def measure(engine_name, graph, cluster):
    model = GNNModel.gcn(graph.feature_dim, 128, graph.num_classes, seed=7)
    try:
        engine = make_engine(engine_name, graph, model, cluster)
        return engine.charge_epoch(), engine
    except OutOfMemoryError as err:
        print(f"  {engine_name}: out of memory ({err.label})")
        return None, None


def main():
    graph = prepare_graph(build_social_graph(), "gcn")
    print(f"Graph: {graph!r}, avg degree {graph.avg_degree:.1f}")

    for cluster in [ClusterSpec.ecs(8), ClusterSpec.ibv(8)]:
        print(f"\n== {cluster.name} cluster "
              f"({cluster.device.name} GPUs, {cluster.network.name}) ==")
        times = {}
        for name in ["depcache", "depcomm", "hybrid"]:
            t, engine = measure(name, graph, cluster)
            if t is None:
                continue
            times[name] = t
            extra = ""
            if name == "hybrid":
                ratio = engine.plan().cache_ratio()
                extra = f"  (cached {ratio * 100:.0f}% of dependencies)"
            print(f"  {name:9s} {t * 1e3:8.2f} ms/epoch{extra}")
        best = min(times, key=times.get)
        print(f"  -> best strategy here: {best}")
        if "hybrid" in times:
            for name in ["depcache", "depcomm"]:
                if name in times:
                    print(f"     hybrid is {times[name] / times['hybrid']:.2f}x "
                          f"vs {name}")


if __name__ == "__main__":
    main()
