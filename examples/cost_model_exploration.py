"""Inspect the hybrid cost model's per-dependency decisions.

Scenario: you want to understand *why* NeutronStar caches some
dependencies and communicates others.  This example probes the
environment constants (T_v, T_e, T_c), runs Algorithm 4 for one worker,
and prints the decision boundary: the in-degree distribution of cached
vs communicated dependencies and the marginal costs the greedy compared.

Run:  python examples/cost_model_exploration.py
"""

import numpy as np

from repro import ClusterSpec, GNNModel, load_dataset
from repro.costmodel import DependencyCostModel, partition_dependencies, probe_constants
from repro.partition import chunk_partition
from repro.training import prepare_graph


def main():
    graph = prepare_graph(load_dataset("wiki"), "gcn")
    cluster = ClusterSpec.ecs(8)
    model = GNNModel.gcn(graph.feature_dim, 128, graph.num_classes, seed=0)
    partitioning = chunk_partition(graph, 8)

    # Step 1: probe the environment (Algorithm 4, line 1).
    constants = probe_constants(cluster, model)
    print("Probed constants (per-epoch seconds):")
    for l in range(1, model.num_layers + 1):
        print(f"  layer {l}: T_v={constants.vertex_cost(l):.3e}/vertex  "
              f"T_e={constants.edge_cost(l):.3e}/edge  "
              f"T_c={constants.comm_cost(l):.3e}/dependency")

    # Step 2: run the greedy dependency partitioner for worker 0.
    worker = 0
    result = partition_dependencies(
        graph, partitioning, worker, model.dims(), constants,
        memory_limit_bytes=64 * 1024 * 1024,
    )
    print(f"\nWorker {worker}: cached {result.cache_ratio() * 100:.0f}% of "
          f"remote dependencies using {result.memory_bytes / 1e6:.1f} MB")

    # Step 3: examine the decision boundary at layer 2.
    in_deg = graph.in_degrees()
    cached, communicated = result.cached[1], result.communicated[1]
    print(f"\nLayer 2 decisions ({len(cached)} cached, "
          f"{len(communicated)} communicated):")
    if len(cached):
        print(f"  cached deps:        mean in-degree "
              f"{in_deg[cached].mean():6.1f} (max {in_deg[cached].max()})")
    if len(communicated):
        print(f"  communicated deps:  mean in-degree "
              f"{in_deg[communicated].mean():6.1f} "
              f"(max {in_deg[communicated].max()})")
    print("  -> low-degree dependencies are cheap to recompute (small "
          "subtrees), high-degree ones are cheaper to fetch.")

    # Step 4: marginal cost comparison for a few concrete vertices.
    owned = partitioning.part(worker)
    owned_mask = np.zeros(graph.num_vertices, dtype=bool)
    owned_mask[owned] = True
    cost_model = DependencyCostModel(
        graph, model.dims(), constants, owned_mask, mu=0.8
    )
    t_c = cost_model.t_c(2)
    samples = list(cached[:3]) + list(communicated[:3])
    print(f"\nPer-dependency marginal costs at layer 2 (t_c = {t_c:.3e}s):")
    for u in samples:
        m = cost_model.t_r(int(u), 2)
        verdict = "cache" if m.cost_s < t_c else "communicate"
        print(f"  vertex {int(u):5d}: t_r={m.cost_s:.3e}s "
              f"(subtree: {m.new_edge_count} edges) -> {verdict}")


if __name__ == "__main__":
    main()
