"""Pre-deployment analysis: inspect a graph before choosing a strategy.

Scenario: you received a new production graph and want to understand --
before burning cluster hours -- how it will behave under distributed
GNN training.  This example runs the structural analysis, gets a
rule-of-thumb strategy recommendation, validates it against the real
cost-model decision, and exports a Chrome trace of one training epoch
for visual inspection.

Run:  python examples/analyze_before_deploy.py
"""

from repro import ClusterSpec, GNNModel, load_dataset, make_engine
from repro.analysis import analyze_dependencies, analyze_graph, recommend_strategy
from repro.cluster import save_chrome_trace
from repro.partition import chunk_partition
from repro.training import prepare_graph


def main():
    for name in ["google", "pokec", "reddit"]:
        graph = prepare_graph(load_dataset(name), "gcn")
        print(f"\n== {name} ==")

        # 1. Structure: skew and locality.
        report = analyze_graph(graph)
        print(f"  |V|={report.num_vertices}  |E|={report.num_edges}  "
              f"deg={report.avg_degree:.1f}  gini={report.degree_gini:.2f}  "
              f"locality={report.chunk_locality:.2f}")

        # 2. Dependency structure under an 8-way chunk partitioning.
        partitioning = chunk_partition(graph, 8)
        deps = analyze_dependencies(graph, partitioning, num_layers=2)
        print(f"  replication factor (DepCache would copy): "
              f"{deps.replication_factor:.2f}x")
        print(f"  per-layer communication (DepComm would ship): "
              f"{deps.comm_bytes_per_layer / 1e6:.2f} MB")

        # 3. Rule-of-thumb vs the cost model's actual decision.
        hint = recommend_strategy(graph, partitioning)
        engine = make_engine(
            "hybrid", graph,
            GNNModel.gcn(graph.feature_dim, 64, graph.num_classes, seed=0),
            ClusterSpec.ecs(8),
        )
        ratio = engine.plan().cache_ratio()
        print(f"  rule-of-thumb: {hint};  Algorithm 4 cached "
              f"{ratio * 100:.0f}% of dependencies")

    # 4. Export one epoch of the last engine as a Chrome trace.
    engine = make_engine(
        "hybrid",
        prepare_graph(load_dataset("reddit"), "gcn"),
        GNNModel.gcn(602, 64, 8, seed=0),
        ClusterSpec.ecs(8),
        record_timeline=True,
    )
    engine.charge_epoch()
    path = save_chrome_trace(engine.timeline, "/tmp/reddit_epoch_trace")
    print(f"\nChrome trace of one Reddit epoch written to {path}")
    print("open chrome://tracing or https://ui.perfetto.dev to view it")


if __name__ == "__main__":
    main()
