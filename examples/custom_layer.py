"""Build a custom GNN layer with the paper's dataflow API (Figure 5).

The paper's programming model: users write only the parameterised
``EdgeForward`` and ``VertexForward`` functions; the graph operations
(``ScatterToEdge``, ``GatherByDst``) and the entire backward flow
(``VertexBackward -> ScatterBackToEdge -> EdgeBackward -> GatherBySrc
-> PostToDepNbr``) are supplied by the framework.  This example
re-implements Figure 5's weighted GCN layer from scratch against the
public ops API, plugs it into a model, and trains it distributed --
the custom layer works with DepCache, DepComm, and Hybrid unchanged.

Run:  python examples/custom_layer.py
"""

import numpy as np

from repro import ClusterSpec, DistributedTrainer, GNNModel, load_dataset, make_engine
from repro.core import ops
from repro.core.layers import GNNLayer
from repro.tensor import nn
from repro.tensor.tensor import Tensor
from repro.training import prepare_graph


class MyGCNConv(GNNLayer):
    """Figure 5's GCNconv, written against the public dataflow ops."""

    def __init__(self, in_f, out_f, rng=None):
        super().__init__(in_f, out_f)
        self.W = nn.Linear(in_f, out_f, rng=rng)

    # -- the two user-defined parameterised functions -------------------
    def edge_udf(self, src, dst, weights):
        """Compute and apply the edge weight (Figure 5's edge_udf)."""
        return src * Tensor(weights.reshape(-1, 1))

    def vertex_forward(self, h_dst, agg_msg):
        """udf vertex update function (Figure 5's VertexForward)."""
        return self.W(agg_msg).relu()

    # -- the forward flow, mirroring Figure 5 line by line --------------
    def forward(self, block, f_dst):
        # f_src = GetFromDepNbr(graph, f_dst)   <- done by the engine:
        #   f_dst already contains every dependent neighbor's row,
        #   fetched remotely (DepComm) or recomputed locally (DepCache).
        f_src, _ = ops.scatter_to_edge(block, f_dst)      # ScatterToEdge
        msg = ops.edge_forward(block, f_src, None, self.edge_udf)  # EdgeForward
        agg_msg = ops.gather_by_dst(block, msg, agg="sum")  # GatherByDst
        return ops.vertex_forward(                          # VertexForward
            block, f_dst, agg_msg, self.vertex_forward
        )

    # -- cost accounting so the simulator can time/size the layer -------
    def dense_flops(self, block):
        return float(self.W.flops(block.num_outputs))

    def sparse_flops(self, block):
        return 4.0 * block.num_edges * self.in_dim

    def edge_tensor_bytes(self, block):
        return block.num_edges * self.in_dim * 4


def main():
    graph = prepare_graph(load_dataset("reddit", scale=0.5), "gcn")
    rng = np.random.default_rng(0)
    model = GNNModel([
        MyGCNConv(graph.feature_dim, 64, rng=rng),
        MyGCNConv(64, graph.num_classes, rng=rng),
    ])
    # The final layer's relu is harmless for argmax prediction, but a
    # polished layer would expose an activation switch like the library
    # layers do.
    engine = make_engine("hybrid", graph, model, ClusterSpec.ecs(4))
    trainer = DistributedTrainer(engine, lr=0.02)
    history = trainer.train(epochs=20, eval_every=5)
    print("custom layer trained distributed:")
    for point in history.convergence:
        print(f"  epoch {point.epoch:>3}: loss {point.loss:.4f}, "
              f"accuracy {point.accuracy * 100:.1f}%")
    print("\nThe same layer ran under hybrid dependency management with")
    print("no distribution-aware code: backward was auto-generated and")
    print("cross-worker gradients routed by PostToDepNbr.")


if __name__ == "__main__":
    main()
