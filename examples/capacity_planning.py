"""Capacity planning: how many nodes does a training job need?

Scenario: you must pick a cluster size and network tier for a recurring
GNN training job under a deadline.  This example sweeps cluster sizes
and network tiers for a GAT workload, detects out-of-memory
configurations, and prints the cheapest configuration meeting the
deadline -- the kind of what-if exploration the simulator makes free.

Run:  python examples/capacity_planning.py
"""

import dataclasses

from repro import ClusterSpec, GNNModel, load_dataset, make_engine
from repro.cluster.device import T4, V100
from repro.cluster.memory import OutOfMemoryError
from repro.cluster.network import ECS_NETWORK, IBV_NETWORK
from repro.training import prepare_graph

EPOCHS = 200
DEADLINE_S = 1.5  # modeled cluster seconds for the whole job

# Toy price model: V100 nodes cost 3x a T4 node; InfiniBand adds 20%.
TIERS = [
    ("T4 + Ethernet", T4, ECS_NETWORK, 1.0),
    ("V100 + InfiniBand", V100, IBV_NETWORK, 3.6),
]


def main():
    graph = prepare_graph(load_dataset("orkut"), "gat")
    print(f"Workload: GAT on {graph!r}, {EPOCHS} epochs, "
          f"deadline {DEADLINE_S:.1f}s of cluster time\n")

    candidates = []
    print(f"{'configuration':<28} {'nodes':>5} {'epoch ms':>9} "
          f"{'job time':>9} {'rel. cost':>9}")
    for label, device, network, node_price in TIERS:
        for nodes in [2, 4, 8, 16]:
            cluster = ClusterSpec(nodes, device=device, network=network,
                                  name=label)
            model = GNNModel.gat(graph.feature_dim, 160,
                                 graph.num_classes, seed=0)
            try:
                engine = make_engine("hybrid", graph, model, cluster)
                epoch_s = engine.charge_epoch()
            except OutOfMemoryError:
                print(f"{label:<28} {nodes:>5} {'OOM':>9}")
                continue
            job_s = epoch_s * EPOCHS
            cost = nodes * node_price * job_s
            meets = job_s <= DEADLINE_S
            candidates.append((cost, label, nodes, job_s, meets))
            marker = " <- meets deadline" if meets else ""
            print(f"{label:<28} {nodes:>5} {epoch_s * 1e3:>9.2f} "
                  f"{job_s:>8.2f}s {cost:>9.2f}{marker}")

    feasible = [c for c in candidates if c[4]]
    if feasible:
        cost, label, nodes, job_s, _ = min(feasible)
        print(f"\nCheapest deadline-meeting configuration: "
              f"{nodes}x {label} ({job_s:.2f}s, relative cost {cost:.2f})")
    else:
        print("\nNo configuration meets the deadline; relax it or add tiers.")


if __name__ == "__main__":
    main()
