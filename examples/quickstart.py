"""Quickstart: train a 2-layer GCN on a simulated 8-node cluster.

Loads the scaled Reddit dataset, builds the Hybrid engine (NeutronStar's
automatic dependency management), trains for 30 epochs, and reports the
modeled cluster time alongside real accuracy.

Run:  python examples/quickstart.py
"""

from repro import ClusterSpec, DistributedTrainer, GNNModel, load_dataset, make_engine
from repro.training import prepare_graph


def main():
    # 1. Load a dataset from the catalog (Table 2, scaled) and prepare
    #    it for GCN (self loops + symmetric normalisation).
    graph = prepare_graph(load_dataset("reddit"), "gcn")
    print(f"Loaded {graph!r} with {graph.feature_dim}-dim features, "
          f"{graph.num_classes} classes")

    # 2. Describe the cluster: 8 Aliyun-style nodes (T4 + 6 Gbps).
    cluster = ClusterSpec.ecs(8)

    # 3. Build the model and the Hybrid engine.  The engine probes the
    #    environment, runs Algorithm 4, and decides per dependency
    #    whether to cache or communicate it.
    model = GNNModel.gcn(graph.feature_dim, hidden_dim=64,
                         num_classes=graph.num_classes, seed=0)
    engine = make_engine("hybrid", graph, model, cluster)
    plan = engine.plan()
    print(f"Hybrid decision: {plan.cache_ratio() * 100:.0f}% of remote "
          f"dependencies cached, preprocessing {plan.preprocessing_s * 1e3:.1f} ms")

    # 4. Train.  Losses and accuracies are real numerics; epoch times
    #    are modeled cluster seconds.
    trainer = DistributedTrainer(engine, lr=0.01)
    history = trainer.train(epochs=30, eval_every=5)

    print(f"\n{'epoch':>6} {'loss':>8} {'accuracy':>9} {'cluster time':>13}")
    for point in history.convergence:
        print(f"{point.epoch:>6} {point.loss:>8.4f} "
              f"{point.accuracy * 100:>8.1f}% {point.time_s:>12.3f}s")
    print(f"\nBest accuracy: {history.best_accuracy() * 100:.2f}%")
    print(f"Average modeled epoch time: {history.avg_epoch_time_s * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
