"""Synthetic generators: determinism, shapes, structural properties."""

import numpy as np
import pytest

from repro.graph import generators
from repro.partition.chunk import chunk_partition


class TestDeterminism:
    @pytest.mark.parametrize("make", [
        lambda s: generators.rmat(128, 512, seed=s),
        lambda s: generators.erdos_renyi(100, 300, seed=s),
        lambda s: generators.locality_graph(128, 512, seed=s),
        lambda s: generators.community(60, 4, 6.0, seed=s),
        lambda s: generators.citation(80, seed=s),
    ])
    def test_same_seed_same_graph(self, make):
        a, b = make(7), make(7)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)

    def test_different_seed_different_graph(self):
        a = generators.rmat(128, 512, seed=1)
        b = generators.rmat(128, 512, seed=2)
        assert not (
            np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)
        )


class TestCleanliness:
    @pytest.mark.parametrize("g", [
        generators.rmat(64, 256, seed=0),
        generators.erdos_renyi(64, 200, seed=0),
        generators.locality_graph(64, 256, seed=0),
        generators.community(64, 4, 5.0, seed=0),
    ])
    def test_no_self_loops_no_duplicates(self, g):
        assert (g.src != g.dst).all()
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        assert len(pairs) == g.num_edges


class TestShapes:
    def test_ring(self):
        g = generators.ring(5)
        assert g.num_edges == 5
        assert (g.in_degrees() == 1).all()

    def test_chain(self):
        g = generators.chain(5)
        assert g.num_edges == 4
        assert g.in_degrees()[0] == 0

    def test_star_inward(self):
        g = generators.star(4, inward=True)
        assert g.in_degrees()[0] == 4

    def test_star_outward(self):
        g = generators.star(4, inward=False)
        assert g.out_degrees()[0] == 4

    def test_complete(self):
        g = generators.complete(4)
        assert g.num_edges == 12
        assert (g.in_degrees() == 3).all()

    def test_citation_is_acyclic(self):
        g = generators.citation(50, seed=1)
        # Citation edges point new -> old, so src > dst always.
        assert (g.src > g.dst).all()

    def test_citation_preferential_attachment_skews(self):
        g = generators.citation(300, avg_degree=3.0, seed=1)
        deg = g.in_degrees()
        assert deg.max() >= 3 * max(deg.mean(), 1)


class TestLocalityModel:
    def test_locality_reduces_chunk_edge_cut(self):
        local = generators.locality_graph(
            400, 2000, locality_width=0.005, global_fraction=0.05, seed=0
        )
        scattered = generators.locality_graph(
            400, 2000, locality_width=0.2, global_fraction=0.8, seed=0
        )
        cut_local = chunk_partition(local, 4).edge_cut_fraction(local)
        cut_scattered = chunk_partition(scattered, 4).edge_cut_fraction(scattered)
        assert cut_local < cut_scattered / 2

    def test_hub_exponent_skews_out_degree(self):
        flat = generators.locality_graph(
            300, 3000, global_fraction=1.0, hub_exponent=0.0, seed=0
        )
        skewed = generators.locality_graph(
            300, 3000, global_fraction=1.0, hub_exponent=1.2, seed=0
        )
        assert skewed.out_degrees().max() > 2 * flat.out_degrees().max()

    def test_global_fraction_validation(self):
        with pytest.raises(ValueError):
            generators.locality_graph(10, 20, global_fraction=1.5)


class TestCommunity:
    def test_membership_attached(self):
        g = generators.community(40, 4, 5.0, seed=0)
        assert len(g.communities) == 40
        assert set(g.communities.tolist()) == {0, 1, 2, 3}

    def test_homophily(self):
        g = generators.community(120, 4, 10.0, intra_fraction=0.9, seed=0)
        same = (g.communities[g.src] == g.communities[g.dst]).mean()
        assert same > 0.6  # well above the 0.25 random baseline

    def test_dense_target_roughly_met(self):
        # Oversampling loop should get close to the dense target.
        g = generators.community(100, 4, 40.0, seed=0)
        assert g.avg_degree > 25

    def test_needs_communities(self):
        with pytest.raises(ValueError):
            generators.community(10, 0, 2.0)


class TestAttachFeatures:
    def test_community_labels_follow_membership(self):
        g = generators.community(40, 4, 5.0, seed=0)
        generators.attach_features(g, 8, 4, seed=1)
        assert np.array_equal(g.labels, g.communities % 4)

    def test_class_signal_learnable(self):
        g = generators.community(200, 4, 8.0, seed=0)
        generators.attach_features(g, 16, 4, seed=1, class_signal=3.0)
        # Class means should separate: same-class feature distance smaller.
        means = np.stack([g.features[g.labels == c].mean(axis=0) for c in range(4)])
        spread = np.linalg.norm(means[0] - means[1])
        assert spread > 1.0

    def test_masks_created(self):
        g = generators.community(40, 4, 5.0, seed=0)
        generators.attach_features(g, 8, 4, seed=1)
        assert g.train_mask is not None and g.train_mask.any()

    def test_random_labels_without_communities(self):
        g = generators.erdos_renyi(50, 100, seed=0)
        generators.attach_features(g, 8, 5, seed=1)
        assert g.labels.min() >= 0 and g.labels.max() < 5
