"""Graph storage: validation, degrees, normalisation, subgraphs."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.graph import Graph


class TestConstruction:
    def test_basic(self, tiny_graph):
        assert tiny_graph.num_vertices == 6
        assert tiny_graph.num_edges == 8
        assert tiny_graph.feature_dim == 8

    def test_rejects_out_of_range_src(self):
        with pytest.raises(ValueError, match="src"):
            Graph(2, np.array([0, 5]), np.array([1, 1]))

    def test_rejects_out_of_range_dst(self):
        with pytest.raises(ValueError, match="dst"):
            Graph(2, np.array([0, 1]), np.array([1, -1]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            Graph(3, np.array([0]), np.array([1, 2]))

    def test_default_edge_weights_are_ones(self, tiny_graph):
        assert np.allclose(tiny_graph.edge_weight, 1.0)

    def test_feature_dim_without_features(self):
        g = Graph(2, np.array([0]), np.array([1]))
        with pytest.raises(ValueError, match="no features"):
            g.feature_dim

    def test_stats(self, tiny_graph):
        s = tiny_graph.stats()
        assert s["num_vertices"] == 6
        assert s["num_edges"] == 8
        assert s["max_in_degree"] == 3


class TestDegrees:
    def test_in_degrees(self, tiny_graph):
        deg = tiny_graph.in_degrees()
        assert deg[1] == 3  # edges from 0, 3, 5
        assert deg[2] == 3  # edges from 1, 4, 0
        assert deg.sum() == tiny_graph.num_edges

    def test_out_degrees_sum(self, tiny_graph):
        assert tiny_graph.out_degrees().sum() == tiny_graph.num_edges


class TestCsrCsc:
    def test_csc_groups_by_destination(self, tiny_graph):
        csc = tiny_graph.csc
        assert sorted(csc.neighbors(1).tolist()) == [0, 3, 5]

    def test_csr_groups_by_source(self, tiny_graph):
        csr = tiny_graph.csr
        assert sorted(csr.neighbors(0).tolist()) == [1, 2]

    def test_csr_csc_same_edges(self, medium_graph):
        g = medium_graph
        csr_pairs = set(zip(g.csr.key.tolist(), g.csr.other.tolist()))
        csc_pairs = set(zip(g.csc.other.tolist(), g.csc.key.tolist()))
        assert csr_pairs == csc_pairs

    def test_lazy_and_cached(self, tiny_graph):
        assert tiny_graph.csr is tiny_graph.csr


class TestSelfLoopsAndNorm:
    def test_with_self_loops_adds_missing_only(self):
        g = Graph(3, np.array([0, 1]), np.array([0, 2]))  # 0 has a loop
        looped = g.with_self_loops()
        assert looped.num_edges == 2 + 2  # loops for 1 and 2 added
        loops = looped.src == looped.dst
        assert loops.sum() == 3

    def test_gcn_normalized_weights(self):
        g = generators.ring(4).gcn_normalized()
        # Every vertex has in-degree 2 (ring edge + self loop).
        assert np.allclose(g.edge_weight, 0.5)

    def test_gcn_normalized_is_a_copy(self, tiny_graph):
        norm = tiny_graph.gcn_normalized()
        assert norm is not tiny_graph
        assert tiny_graph.num_edges == 8  # original untouched

    def test_masks_carried_over(self, tiny_graph):
        norm = tiny_graph.gcn_normalized()
        assert norm.train_mask is tiny_graph.train_mask


class TestSplit:
    def test_split_partitions_vertices(self, tiny_graph):
        total = (
            tiny_graph.train_mask.sum()
            + tiny_graph.val_mask.sum()
            + tiny_graph.test_mask.sum()
        )
        assert total == tiny_graph.num_vertices
        assert not (tiny_graph.train_mask & tiny_graph.test_mask).any()

    def test_split_fraction_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.set_split(train_fraction=0.9, val_fraction=0.2)
        with pytest.raises(ValueError):
            tiny_graph.set_split(train_fraction=0.0)

    def test_split_deterministic_with_rng(self, tiny_graph):
        tiny_graph.set_split(rng=np.random.default_rng(5))
        first = tiny_graph.train_mask.copy()
        tiny_graph.set_split(rng=np.random.default_rng(5))
        assert np.array_equal(first, tiny_graph.train_mask)


class TestSubgraph:
    def test_induced_subgraph_keeps_internal_edges(self, tiny_graph):
        sub, old_ids = tiny_graph.induced_subgraph(np.array([0, 1, 3, 5]))
        assert sub.num_vertices == 4
        # Edges among {0,1,3,5}: (0,1), (3,1), (5,1), (1,5).
        assert sub.num_edges == 4
        assert np.array_equal(old_ids, [0, 1, 3, 5])

    def test_subgraph_features_follow(self, tiny_graph):
        sub, old_ids = tiny_graph.induced_subgraph(np.array([2, 4]))
        assert np.allclose(sub.features, tiny_graph.features[[2, 4]])

    def test_byte_accounting(self, tiny_graph):
        assert tiny_graph.feature_bytes() == 6 * 8 * 4
        assert tiny_graph.structure_bytes() > 0
