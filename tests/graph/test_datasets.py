"""Dataset catalog (Table 2, scaled)."""

import numpy as np
import pytest

from repro.graph.datasets import DATASETS, load_dataset, resolve_name, spec_of


class TestCatalog:
    def test_all_table2_rows_present(self):
        expected = {
            "google", "pokec", "livejournal", "reddit", "orkut",
            "wiki", "twitter", "cora", "citeseer", "pubmed",
        }
        assert expected <= set(DATASETS)
        # Non-Table-2 entries are synthetic graphs for the sampling
        # benchmarks (social-large) and the tensor-parallel crossover
        # sweep's degree-skew endpoints, not paper rows.
        assert set(DATASETS) - expected == {
            "social-large", "social-flat", "social-skewed"
        }

    def test_specs_have_paper_fields(self):
        for spec in DATASETS.values():
            assert spec.paper_vertices
            assert spec.paper_num_vertices > 0
            assert spec.hidden_dim > 0

    def test_aliases(self):
        assert resolve_name("Goo") == "google"
        assert resolve_name("wiki-link") == "wiki"
        assert resolve_name("REDDIT") == "reddit"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imaginary")

    def test_spec_of(self):
        assert spec_of("liv").name == "livejournal"


class TestLoading:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_loads_with_features_labels_masks(self, name):
        g = load_dataset(name, scale=0.1)
        spec = DATASETS[name]
        assert g.features is not None
        assert g.features.shape[1] == spec.feature_dim
        assert g.num_classes == spec.num_labels
        assert g.train_mask.any() and g.test_mask.any()

    def test_scale_reduces_size(self):
        full = load_dataset("google")
        half = load_dataset("google", scale=0.5)
        assert half.num_vertices < full.num_vertices

    def test_cache_returns_same_object(self):
        assert load_dataset("cora", scale=0.2) is load_dataset("cora", scale=0.2)

    def test_seed_changes_graph(self):
        a = load_dataset("pokec", scale=0.1, seed=0)
        b = load_dataset("pokec", scale=0.1, seed=1)
        assert not np.array_equal(a.src, b.src)

    def test_reddit_is_homophilous(self):
        # Random baseline for 8 classes would be 0.125; label noise and
        # intra-pair saturation at small scale cap it well below 0.9.
        g = load_dataset("reddit", scale=0.5)
        same = (g.labels[g.src] == g.labels[g.dst]).mean()
        assert same > 0.35

    def test_degrees_roughly_match_spec(self):
        for name in ["pokec", "orkut", "wiki"]:
            g = load_dataset(name)
            spec = DATASETS[name]
            assert g.avg_degree == pytest.approx(spec.avg_degree, rel=0.15)
