"""Property tests pinning the vectorized sparse hot path to references.

The CSR/CSC primitives (`Adjacency.select`, `neighbors_of_set`) and the
mask-frontier BFS (`khop_closure`, `limited_bfs_in`) were rewritten from
per-vertex Python loops / ``union1d`` chains into flat offset-arithmetic
gathers and boolean-mask frontiers.  These Hypothesis tests keep the
loop-based references alive *in the test module* and assert the
vectorized results are **element-identical** (same values, same order,
same dtype behavior) on random COO graphs -- the contract the fused
executor, samplers, and block builder all rely on.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.adjacency import Adjacency
from repro.graph.graph import Graph
from repro.graph.khop import khop_closure, limited_bfs_in


def _select_reference(adj, vertices):
    """The pre-vectorization select: one indptr slice per vertex."""
    keys, others, eids = [], [], []
    for v in vertices:
        lo, hi = int(adj.indptr[v]), int(adj.indptr[v + 1])
        keys.append(adj.key[lo:hi])
        others.append(adj.other[lo:hi])
        eids.append(adj.edge_ids[lo:hi])
    empty = np.empty(0, dtype=np.int64)
    return (
        np.concatenate(keys) if keys else empty,
        np.concatenate(others) if others else empty.copy(),
        np.concatenate(eids) if eids else empty.copy(),
    )


def _khop_reference(graph, seeds, hops):
    """The pre-vectorization closure: cumulative ``union1d`` chains."""
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    vertex_layers = [seeds]
    edge_layers = []
    current = seeds
    for _ in range(hops):
        _, sources, eids = graph.csc.select(current)
        edge_layers.append(np.sort(eids))
        current = np.union1d(current, sources)
        vertex_layers.append(current)
    return vertex_layers, edge_layers


def _random_graph(data, max_n=16, max_m=60):
    n = data.draw(st.integers(2, max_n))
    m = data.draw(st.integers(0, max_m))
    rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return n, src.astype(np.int64), dst.astype(np.int64), rng


def _vertex_set(data, rng, n):
    k = data.draw(st.integers(0, n))
    # Drawn WITH possible duplicates and in arbitrary order: select's
    # contract is per-input-vertex concatenation, not set semantics.
    return rng.integers(0, n, size=k).astype(np.int64)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_select_matches_loop_reference(data):
    n, src, dst, rng = _random_graph(data)
    adj = Adjacency(src, dst, n)
    vertices = _vertex_set(data, rng, n)
    got = adj.select(vertices)
    want = _select_reference(adj, vertices)
    for g, w in zip(got, want):
        assert g.dtype == w.dtype
        assert np.array_equal(g, w)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_neighbors_of_set_matches_unique_reference(data):
    n, src, dst, rng = _random_graph(data)
    adj = Adjacency(src, dst, n)
    vertices = _vertex_set(data, rng, n)
    got = adj.neighbors_of_set(vertices)
    want = np.unique(
        np.concatenate([adj.neighbors(int(v)) for v in vertices])
        if len(vertices)
        else np.empty(0, dtype=np.int64)
    )
    assert np.array_equal(got, want)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_khop_closure_matches_union1d_reference(data):
    n, src, dst, rng = _random_graph(data)
    graph = Graph(num_vertices=n, src=src, dst=dst)
    k = data.draw(st.integers(1, max(1, n // 2)))
    seeds = rng.choice(n, size=k, replace=False).astype(np.int64)
    hops = data.draw(st.integers(0, 4))
    got_v, got_e = khop_closure(graph, seeds, hops)
    want_v, want_e = _khop_reference(graph, seeds, hops)
    assert len(got_v) == len(want_v) and len(got_e) == len(want_e)
    for g, w in zip(got_v, want_v):
        assert np.array_equal(g, w)
    for g, w in zip(got_e, want_e):
        assert np.array_equal(np.sort(g), np.sort(w))


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_limited_bfs_frontiers_partition_reachable_set(data):
    n, src, dst, rng = _random_graph(data)
    graph = Graph(num_vertices=n, src=src, dst=dst)
    roots = rng.choice(n, size=data.draw(st.integers(1, n)),
                       replace=False).astype(np.int64)
    depth = data.draw(st.integers(0, 4))
    vertex_steps, edge_steps = limited_bfs_in(graph, roots, depth)
    assert len(edge_steps) == min(depth, len(edge_steps))
    # Frontiers are disjoint, sorted, and their union is the closure.
    seen = set()
    for step in vertex_steps:
        assert np.array_equal(step, np.sort(np.unique(step)))
        assert not seen.intersection(step.tolist())
        seen.update(step.tolist())
    closure, _ = khop_closure(graph, roots, depth)
    assert seen == set(closure[-1].tolist())
