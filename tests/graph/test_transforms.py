"""Graph transforms."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.transforms import (
    add_degree_features,
    largest_connected_component,
    remove_self_loops,
    reverse_edges,
    row_normalize_features,
    to_undirected,
)


class TestRowNormalize:
    def test_rows_sum_to_one(self, small_graph):
        out = row_normalize_features(small_graph)
        sums = np.abs(out.features).sum(axis=1)
        assert np.allclose(sums[sums > 0], 1.0, atol=1e-5)

    def test_zero_rows_stay_zero(self):
        g = generators.ring(4)
        g.features = np.zeros((4, 3), dtype=np.float32)
        out = row_normalize_features(g)
        assert np.allclose(out.features, 0.0)

    def test_original_untouched(self, small_graph):
        before = small_graph.features.copy()
        row_normalize_features(small_graph)
        assert np.array_equal(small_graph.features, before)

    def test_requires_features(self):
        with pytest.raises(ValueError, match="no features"):
            row_normalize_features(generators.ring(4))


class TestDegreeFeatures:
    def test_appends_two_columns(self, small_graph):
        out = add_degree_features(small_graph)
        assert out.features.shape[1] == small_graph.features.shape[1] + 2

    def test_log_scale(self):
        g = generators.star(100, inward=True)
        g.features = np.zeros((101, 1), dtype=np.float32)
        logged = add_degree_features(g, log_scale=True)
        raw = add_degree_features(g, log_scale=False)
        assert logged.features[0, 1] == pytest.approx(np.log1p(100.0))
        assert raw.features[0, 1] == 100.0

    def test_masks_carried(self, small_graph):
        out = add_degree_features(small_graph)
        assert out.train_mask is small_graph.train_mask


class TestUndirectedReverse:
    def test_to_undirected_symmetric(self):
        g = generators.chain(4)
        und = to_undirected(g)
        pairs = set(zip(und.src.tolist(), und.dst.tolist()))
        assert all((b, a) in pairs for a, b in pairs)
        assert und.num_edges == 6

    def test_to_undirected_no_duplicates(self):
        g = Graph(3, np.array([0, 1]), np.array([1, 0]))  # already mutual
        assert to_undirected(g).num_edges == 2

    def test_reverse_edges(self):
        g = generators.chain(3)
        rev = reverse_edges(g)
        assert rev.in_degrees()[0] == 1
        assert rev.in_degrees()[2] == 0

    def test_reverse_is_involution(self, medium_graph):
        twice = reverse_edges(reverse_edges(medium_graph))
        assert np.array_equal(twice.src, medium_graph.src)
        assert np.array_equal(twice.dst, medium_graph.dst)


class TestConnectedComponent:
    def test_picks_largest(self):
        # Two components: a 5-chain and a 2-chain (+ isolated vertex).
        src = np.array([0, 1, 2, 3, 5])
        dst = np.array([1, 2, 3, 4, 6])
        g = Graph(8, src, dst)
        sub, old_ids = largest_connected_component(g)
        assert sub.num_vertices == 5
        assert set(old_ids.tolist()) == {0, 1, 2, 3, 4}

    def test_fully_connected_is_identity_sized(self, medium_graph):
        sub, _ = largest_connected_component(medium_graph)
        assert sub.num_vertices >= medium_graph.num_vertices // 2

    def test_direction_ignored(self):
        # 0 -> 1 <- 2 is weakly connected.
        g = Graph(3, np.array([0, 2]), np.array([1, 1]))
        sub, _ = largest_connected_component(g)
        assert sub.num_vertices == 3


class TestRemoveSelfLoops:
    def test_inverse_of_with_self_loops(self, small_graph):
        looped = small_graph.with_self_loops()
        clean = remove_self_loops(looped)
        assert clean.num_edges == small_graph.num_edges
        assert (clean.src != clean.dst).all()

    def test_edge_features_follow(self):
        g = Graph(3, np.array([0, 1, 2]), np.array([1, 1, 0]),
                  edge_features=np.arange(6, dtype=np.float32).reshape(3, 2))
        clean = remove_self_loops(g)  # drops only the (1, 1) loop
        assert clean.num_edges == 2
        assert np.allclose(clean.edge_features, [[0, 1], [4, 5]])
