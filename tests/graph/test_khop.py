"""K-hop closures and dependency layers (Algorithm 2's BFS)."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.khop import (
    dependency_layers,
    khop_closure,
    limited_bfs_in,
    replication_factor,
)


class TestKhopClosure:
    def test_chain_exact(self):
        # 0 -> 1 -> 2 -> 3 -> 4; closure of {4} walks backwards.
        g = generators.chain(5)
        layers, edges = khop_closure(g, np.array([4]), 2)
        assert layers[0].tolist() == [4]
        assert layers[1].tolist() == [3, 4]
        assert layers[2].tolist() == [2, 3, 4]
        assert len(edges[0]) == 1  # in-edge of 4
        assert len(edges[1]) == 2  # in-edges of {3, 4}

    def test_star_closure(self):
        g = generators.star(4, inward=True)  # leaves -> hub 0
        layers, edges = khop_closure(g, np.array([0]), 1)
        assert sorted(layers[1].tolist()) == [0, 1, 2, 3, 4]
        assert len(edges[0]) == 4

    def test_zero_hops(self):
        g = generators.ring(4)
        layers, edges = khop_closure(g, np.array([2]), 0)
        assert len(layers) == 1 and len(edges) == 0

    def test_negative_hops_raises(self):
        with pytest.raises(ValueError):
            khop_closure(generators.ring(4), np.array([0]), -1)

    def test_closure_is_monotone(self, medium_graph):
        layers, _ = khop_closure(medium_graph, np.arange(10), 3)
        for smaller, larger in zip(layers, layers[1:]):
            assert np.isin(smaller, larger).all()

    def test_duplicated_seeds_deduplicated(self):
        g = generators.ring(6)
        layers, _ = khop_closure(g, np.array([1, 1, 1]), 1)
        assert layers[0].tolist() == [1]


class TestDependencyLayers:
    def test_same_set_every_layer(self, medium_graph):
        owned = np.arange(50)
        deps = dependency_layers(medium_graph, owned, 3)
        assert len(deps) == 3
        for d in deps[1:]:
            assert np.array_equal(d, deps[0])

    def test_deps_are_remote_in_neighbors(self):
        g = generators.chain(6)
        deps = dependency_layers(g, np.array([3, 4]), 2)
        assert deps[0].tolist() == [2]

    def test_no_deps_when_owning_everything(self, medium_graph):
        deps = dependency_layers(
            medium_graph, np.arange(medium_graph.num_vertices), 2
        )
        assert all(len(d) == 0 for d in deps)


class TestLimitedBfs:
    def test_chain_steps(self):
        g = generators.chain(6)
        vertex_steps, edge_steps = limited_bfs_in(g, [5], 3)
        assert vertex_steps[0].tolist() == [5]
        assert vertex_steps[1].tolist() == [4]
        assert vertex_steps[2].tolist() == [3]
        assert all(len(e) == 1 for e in edge_steps)

    def test_stops_at_source(self):
        g = generators.chain(3)  # 0 -> 1 -> 2
        vertex_steps, edge_steps = limited_bfs_in(g, [1], 5)
        # After reaching 0 there is nothing further; lists are padded.
        assert len(vertex_steps) == 6
        assert sum(len(v) for v in vertex_steps) == 2

    def test_frontiers_disjoint(self, medium_graph):
        vertex_steps, _ = limited_bfs_in(medium_graph, [0, 1], 3)
        seen = set()
        for step in vertex_steps:
            step_set = set(step.tolist())
            assert not (step_set & seen)
            seen |= step_set


class TestReplicationFactor:
    def test_single_part_is_one(self, medium_graph):
        parts = [np.arange(medium_graph.num_vertices)]
        assert replication_factor(medium_graph, parts, 2) == pytest.approx(1.0)

    def test_bounded_by_num_parts(self, medium_graph):
        parts = np.array_split(np.arange(medium_graph.num_vertices), 4)
        rf = replication_factor(medium_graph, parts, 2)
        assert 1.0 <= rf <= 4.0

    def test_dense_graph_saturates(self):
        g = generators.complete(20)
        parts = np.array_split(np.arange(20), 4)
        assert replication_factor(g, parts, 2) == pytest.approx(4.0)
