"""Graph persistence round trips."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.io import load_edge_list, load_graph, save_edge_list, save_graph


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = generators.erdos_renyi(20, 60, seed=1)
        path = save_edge_list(g, tmp_path / "edges.txt")
        loaded = load_edge_list(path, num_vertices=20)
        assert loaded.num_vertices == 20
        assert sorted(zip(loaded.src, loaded.dst)) == sorted(zip(g.src, g.dst))

    def test_weights_preserved(self, tmp_path):
        g = generators.ring(4).gcn_normalized()
        path = save_edge_list(g, tmp_path / "w.txt")
        loaded = load_edge_list(path, num_vertices=4)
        assert np.allclose(np.sort(loaded.edge_weight), np.sort(g.edge_weight),
                           atol=1e-5)

    def test_infers_vertex_count(self, tmp_path):
        (tmp_path / "e.txt").write_text("0 5\n2 3\n")
        g = load_edge_list(tmp_path / "e.txt")
        assert g.num_vertices == 6

    def test_comments_and_blanks_skipped(self, tmp_path):
        (tmp_path / "e.txt").write_text("# header\n\n0 1\n# mid\n1 2\n")
        assert load_edge_list(tmp_path / "e.txt").num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        (tmp_path / "e.txt").write_text("0\n")
        with pytest.raises(ValueError, match="src dst"):
            load_edge_list(tmp_path / "e.txt")

    def test_default_weight_is_one(self, tmp_path):
        (tmp_path / "e.txt").write_text("0 1\n")
        g = load_edge_list(tmp_path / "e.txt")
        assert g.edge_weight[0] == 1.0


class TestNpz:
    def test_full_roundtrip(self, tmp_path, small_graph):
        path = save_graph(small_graph, tmp_path / "g")
        loaded = load_graph(path)
        assert loaded.num_vertices == small_graph.num_vertices
        assert np.array_equal(loaded.src, small_graph.src)
        assert np.allclose(loaded.features, small_graph.features)
        assert np.array_equal(loaded.labels, small_graph.labels)
        assert loaded.num_classes == small_graph.num_classes
        assert np.array_equal(loaded.train_mask, small_graph.train_mask)
        assert loaded.name == small_graph.name

    def test_structure_only(self, tmp_path):
        g = generators.chain(5)
        loaded = load_graph(save_graph(g, tmp_path / "bare"))
        assert loaded.features is None
        assert loaded.labels is None
        assert loaded.num_edges == 4

    def test_suffix_added(self, tmp_path, small_graph):
        path = save_graph(small_graph, tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_loaded_graph_trains(self, tmp_path, small_graph, cluster2):
        from repro.core.model import GNNModel
        from repro.engines import DepCommEngine
        from repro.training.prep import prepare_graph

        loaded = load_graph(save_graph(small_graph, tmp_path / "g"))
        graph = prepare_graph(loaded, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=1)
        report = DepCommEngine(graph, model, cluster2).run_epoch()
        assert report.loss > 0
