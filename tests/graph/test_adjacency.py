"""Adjacency index structure: grouping, selection, properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.adjacency import Adjacency


class TestBasics:
    def test_degree_and_neighbors(self):
        key = np.array([0, 0, 2, 1])
        other = np.array([5, 6, 7, 8])
        adj = Adjacency(key, other, 3)
        assert adj.degree(0) == 2
        assert adj.degree(1) == 1
        assert sorted(adj.neighbors(0).tolist()) == [5, 6]
        assert adj.num_edges == 4

    def test_edges_of_returns_original_ids(self):
        key = np.array([1, 0, 1])
        other = np.array([9, 9, 9])
        adj = Adjacency(key, other, 2)
        assert sorted(adj.edges_of(1).tolist()) == [0, 2]

    def test_empty_vertex(self):
        adj = Adjacency(np.array([0]), np.array([1]), 4)
        assert adj.degree(3) == 0
        assert len(adj.neighbors(3)) == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Adjacency(np.array([0]), np.array([1, 2]), 3)

    def test_select_concatenates(self):
        key = np.array([0, 1, 0, 2])
        other = np.array([4, 5, 6, 7])
        adj = Adjacency(key, other, 3)
        keys, others, eids = adj.select(np.array([0, 2]))
        assert sorted(others.tolist()) == [4, 6, 7]
        assert len(eids) == 3

    def test_select_empty(self):
        adj = Adjacency(np.array([0]), np.array([1]), 2)
        keys, others, eids = adj.select(np.array([], dtype=np.int64))
        assert len(keys) == len(others) == len(eids) == 0

    def test_neighbors_of_set_unique(self):
        key = np.array([0, 1])
        other = np.array([5, 5])
        adj = Adjacency(key, other, 2)
        assert adj.neighbors_of_set(np.array([0, 1])).tolist() == [5]

    def test_degrees_vector(self):
        adj = Adjacency(np.array([0, 0, 1]), np.array([1, 2, 0]), 3)
        assert adj.degrees().tolist() == [2, 1, 0]


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_every_edge_appears_exactly_once(data):
    n = data.draw(st.integers(2, 12))
    m = data.draw(st.integers(0, 40))
    rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
    key = rng.integers(0, n, size=m)
    other = rng.integers(0, n, size=m)
    adj = Adjacency(key, other, n)
    # indptr consistency.
    assert adj.indptr[0] == 0 and adj.indptr[-1] == m
    assert (np.diff(adj.indptr) >= 0).all()
    # Every original edge id shows up exactly once.
    assert sorted(adj.edge_ids.tolist()) == list(range(m))
    # Grouped keys are sorted and edges preserved as pairs.
    assert (np.diff(adj.key) >= 0).all()
    original = sorted(zip(key.tolist(), other.tolist()))
    grouped = sorted(zip(adj.key.tolist(), adj.other.tolist()))
    assert original == grouped
