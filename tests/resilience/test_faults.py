"""Fault schedule queries, validation, and deterministic draws."""

import math

import pytest

from repro.cluster.device import T4
from repro.resilience import (
    FaultInjector,
    FaultSchedule,
    LinkDegradationFault,
    MessageLossFault,
    RetryPolicy,
    StragglerFault,
    WorkerCrashFault,
)


class TestFaultValidation:
    def test_bad_windows_rejected(self):
        with pytest.raises(ValueError, match="window"):
            StragglerFault(worker=0, start=2.0, end=1.0)
        with pytest.raises(ValueError, match=">= 0"):
            LinkDegradationFault(start=-1.0)

    def test_speedups_rejected(self):
        with pytest.raises(ValueError, match="slowdown"):
            StragglerFault(worker=0, gpu_factor=0.5)
        with pytest.raises(ValueError, match="slowdown"):
            LinkDegradationFault(bandwidth_factor=0.9)

    def test_loss_fraction_bounds(self):
        with pytest.raises(ValueError):
            MessageLossFault(drop_fraction=1.5)
        MessageLossFault(drop_fraction=0.0)
        MessageLossFault(drop_fraction=1.0)

    def test_unknown_fault_type_rejected(self):
        with pytest.raises(TypeError, match="unknown fault"):
            FaultSchedule(["not a fault"])
        with pytest.raises(TypeError, match="unknown fault"):
            FaultSchedule().add(object())


class TestScheduleQueries:
    def test_empty_schedule_is_falsy_and_neutral(self):
        s = FaultSchedule()
        assert not s
        assert len(s) == 0
        assert s.gpu_factor(0, 1.0) == 1.0
        assert s.cpu_factor(0, 1.0) == 1.0
        assert s.link_degradation(0, 1, 0.0) == (1.0, 0.0)
        assert s.loss_fraction(0, 1, 0.0) == 0.0
        assert s.pending_crash(math.inf) is None

    def test_straggler_window(self):
        s = FaultSchedule([
            StragglerFault(worker=1, start=1.0, end=2.0, gpu_factor=3.0)
        ])
        assert s.gpu_factor(1, 0.5) == 1.0
        assert s.gpu_factor(1, 1.0) == 3.0
        assert s.gpu_factor(1, 1.99) == 3.0
        assert s.gpu_factor(1, 2.0) == 1.0  # half-open window
        assert s.gpu_factor(0, 1.5) == 1.0  # other workers untouched

    def test_cpu_factor_defaults_to_gpu_factor(self):
        s = FaultSchedule([StragglerFault(worker=0, gpu_factor=2.0)])
        assert s.cpu_factor(0, 0.0) == 2.0
        s2 = FaultSchedule([
            StragglerFault(worker=0, gpu_factor=2.0, cpu_factor=8.0)
        ])
        assert s2.cpu_factor(0, 0.0) == 8.0
        assert s2.gpu_factor(0, 0.0) == 2.0

    def test_concurrent_stragglers_compose(self):
        s = FaultSchedule([
            StragglerFault(worker=0, gpu_factor=2.0),
            StragglerFault(worker=0, gpu_factor=3.0),
        ])
        assert s.gpu_factor(0, 0.0) == 6.0

    def test_link_degradation_wildcards(self):
        s = FaultSchedule([
            LinkDegradationFault(src=1, dst=None, bandwidth_factor=4.0,
                                 extra_latency_s=1e-3)
        ])
        assert s.link_degradation(1, 0, 0.0) == (4.0, 1e-3)
        assert s.link_degradation(1, 3, 0.0) == (4.0, 1e-3)
        assert s.link_degradation(0, 1, 0.0) == (1.0, 0.0)  # directional

    def test_cpu_straggler_slows_touching_links(self):
        s = FaultSchedule([
            StragglerFault(worker=2, gpu_factor=1.5, cpu_factor=5.0)
        ])
        assert s.link_degradation(2, 0, 0.0)[0] == 5.0  # outbound
        assert s.link_degradation(0, 2, 0.0)[0] == 5.0  # inbound
        assert s.link_degradation(0, 1, 0.0)[0] == 1.0

    def test_loss_fractions_compose(self):
        s = FaultSchedule([
            MessageLossFault(drop_fraction=0.5),
            MessageLossFault(drop_fraction=0.5, src=0),
        ])
        assert s.loss_fraction(0, 1, 0.0) == pytest.approx(0.75)
        assert s.loss_fraction(1, 0, 0.0) == pytest.approx(0.5)
        assert s.lossy()

    def test_pending_crash_and_recovery(self):
        early = WorkerCrashFault(worker=0, at_time=1.0)
        late = WorkerCrashFault(worker=1, at_time=2.0)
        s = FaultSchedule([late, early])
        assert s.pending_crash(0.5) is None
        assert s.pending_crash(1.5) is early
        assert s.pending_crash(5.0) is early  # earliest first
        s.mark_recovered(early)
        assert s.recovered(early)
        assert s.pending_crash(5.0) is late


class TestInjector:
    def test_draws_are_deterministic(self):
        a = FaultInjector(FaultSchedule(seed=42))
        b = FaultInjector(FaultSchedule(seed=42))
        vals = [a.draw(p, 0, 1, k) for p in range(3) for k in range(3)]
        assert vals == [b.draw(p, 0, 1, k) for p in range(3) for k in range(3)]
        c = FaultInjector(FaultSchedule(seed=43))
        assert vals != [c.draw(p, 0, 1, k) for p in range(3) for k in range(3)]

    def test_device_view_identity_when_healthy(self):
        inj = FaultInjector(FaultSchedule([
            StragglerFault(worker=0, start=1.0, end=2.0, gpu_factor=2.0)
        ]))
        # Outside the window / other workers: the *same* object.
        assert inj.device_view(T4, 0, 0.5) is T4
        assert inj.device_view(T4, 1, 1.5) is T4

    def test_device_view_scales_rates(self):
        inj = FaultInjector(FaultSchedule([
            StragglerFault(worker=0, gpu_factor=2.0, cpu_factor=4.0)
        ]))
        slow = inj.device_view(T4, 0, 0.0)
        assert slow.flops_per_s == T4.flops_per_s / 2.0
        assert slow.sparse_flops_per_s == T4.sparse_flops_per_s / 2.0
        assert slow.cpu_flops_per_s == T4.cpu_flops_per_s / 4.0
        # Same (device, factors) key -> cached object.
        assert inj.device_view(T4, 0, 0.5) is slow

    def test_phase_counter_monotone(self):
        inj = FaultInjector(FaultSchedule())
        assert [inj.next_phase() for _ in range(3)] == [1, 2, 3]


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        r = RetryPolicy(backoff_base_s=1e-4, backoff_factor=2.0)
        assert r.backoff_s(0) == 1e-4
        assert r.backoff_s(1) == 2e-4
        assert r.backoff_s(2) == 4e-4

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=5).max_attempts == 6
