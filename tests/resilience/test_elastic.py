"""Elastic degraded-mode training: shrink, rejoin, and reassignment."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.partition import absorb_partition, get_partitioner
from repro.resilience import (
    FaultSchedule,
    LinkDegradationFault,
    RecoveryPolicy,
    StragglerFault,
    WorkerCrashError,
    WorkerCrashFault,
    rejoin_engine,
    run_chaos,
    shrink_engine,
)
from repro.training import DistributedTrainer, ResilientTrainer

EPOCHS = 6


def build(graph, cluster, engine_name="depcomm", faults=None, seed=7):
    model = GNNModel.build(
        "gcn", graph.feature_dim, 12, graph.num_classes, seed=seed
    )
    if faults is not None:
        cluster = cluster.with_faults(faults)
    return make_engine(engine_name, graph, model, cluster)


def params_of(engine):
    return [p.data.copy() for p in engine.model.parameters()]


def permanent_crash(worker=1, at_time=0.0):
    return FaultSchedule([
        WorkerCrashFault(worker=worker, at_time=at_time, permanent=True)
    ])


class TestAbsorbPartition:
    def test_moves_exactly_the_dead_partition(self, small_graph):
        partitioning = get_partitioner("chunk")(small_graph, 4)
        plan, shrunk = absorb_partition(partitioning, 1)
        assert plan.dead_worker == 1
        assert plan.new_num_workers == 3
        np.testing.assert_array_equal(
            np.sort(plan.moved), np.sort(partitioning.part(1))
        )
        # Every vertex is still owned exactly once.
        total = sum(len(shrunk.part(w)) for w in range(3))
        assert total == small_graph.num_vertices

    def test_deterministic(self, small_graph):
        partitioning = get_partitioner("chunk")(small_graph, 4)
        plan_a, shrunk_a = absorb_partition(partitioning, 2)
        plan_b, shrunk_b = absorb_partition(partitioning, 2)
        np.testing.assert_array_equal(plan_a.moved, plan_b.moved)
        np.testing.assert_array_equal(plan_a.targets, plan_b.targets)
        np.testing.assert_array_equal(shrunk_a.assignment, shrunk_b.assignment)

    def test_balance_greedy_prefers_lighter_survivors(self, small_graph):
        partitioning = get_partitioner("chunk")(small_graph, 4)
        plan, shrunk = absorb_partition(partitioning, 0)
        sizes = [len(shrunk.part(w)) for w in range(3)]
        # The greedy deals to the least-loaded survivor, so the spread
        # can only shrink or stay put relative to dumping on one worker.
        assert max(sizes) - min(sizes) <= max(
            len(partitioning.part(w)) for w in range(4)
        )

    def test_survivor_renumbering_preserves_order(self, small_graph):
        partitioning = get_partitioner("chunk")(small_graph, 4)
        plan, _ = absorb_partition(partitioning, 1)
        assert plan.worker_map == {0: 0, 2: 1, 3: 2}
        assert plan.new_id(3) == 2
        assert plan.old_id(2) == 3

    def test_rejects_single_worker(self, small_graph):
        partitioning = get_partitioner("chunk")(small_graph, 1)
        with pytest.raises(ValueError):
            absorb_partition(partitioning, 0)


class TestScheduleRemap:
    def test_faults_follow_their_workers(self):
        schedule = FaultSchedule([
            StragglerFault(worker=3, gpu_factor=2.0),
            WorkerCrashFault(worker=2, at_time=1.0),
        ])
        remapped = schedule.remap_workers({0: 0, 2: 1, 3: 2})
        workers = sorted(f.worker for f in remapped.faults)
        assert workers == [1, 2]

    def test_faults_on_removed_workers_drop(self):
        schedule = FaultSchedule([
            StragglerFault(worker=1, gpu_factor=2.0),
            LinkDegradationFault(src=1, dst=0, bandwidth_factor=2.0),
            LinkDegradationFault(src=None, dst=3, bandwidth_factor=2.0),
        ])
        remapped = schedule.remap_workers({0: 0, 2: 1, 3: 2})
        # Straggler on 1 and the link touching 1 are gone; the wildcard
        # link survives with its concrete endpoint renumbered.
        assert len(remapped.faults) == 1
        link = remapped.faults[0]
        assert link.src is None and link.dst == 2

    def test_recovered_bookkeeping_carries_over(self):
        crash = WorkerCrashFault(worker=3, at_time=0.5)
        schedule = FaultSchedule([crash])
        schedule.mark_recovered(crash)
        remapped = schedule.remap_workers({0: 0, 1: 1, 3: 2})
        assert remapped.pending_crash(1.0) is None


class TestWithoutWorker:
    def test_shrinks_and_remaps_faults(self):
        schedule = FaultSchedule([StragglerFault(worker=3, gpu_factor=2.0)])
        cluster = ClusterSpec.ecs(4).with_faults(schedule)
        shrunk = cluster.without_worker(1)
        assert shrunk.num_workers == 3
        assert shrunk.faults.faults[0].worker == 2

    def test_rejects_bad_worker_and_single_node(self):
        with pytest.raises(ValueError):
            ClusterSpec.ecs(4).without_worker(7)
        with pytest.raises(ValueError):
            ClusterSpec.ecs(1).without_worker(0)


class TestShrinkEngine:
    @pytest.mark.parametrize("engine_name", ["depcache", "depcomm", "hybrid"])
    def test_shrink_reshapes_and_charges_migration(
        self, small_graph, cluster4, engine_name
    ):
        engine = build(
            small_graph, cluster4, engine_name, faults=permanent_crash()
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            engine.run_epoch()
        t_before = engine.timeline.makespan
        new_engine, record, report = shrink_engine(engine, excinfo.value)
        assert new_engine.cluster.num_workers == 3
        assert report.direction == "shrink"
        assert report.seconds > 0
        assert report.migrated_bytes > 0
        assert new_engine.timeline.makespan >= t_before
        # The shared model keeps training valid on the smaller cluster.
        assert new_engine.model is engine.model
        new_engine.run_epoch()

    def test_depcache_pays_closure_churn(self, small_graph, cluster4):
        migrated = {}
        for name in ("depcache", "depcomm"):
            engine = build(
                small_graph, cluster4, name, faults=permanent_crash()
            )
            with pytest.raises(WorkerCrashError) as excinfo:
                engine.run_epoch()
            _, _, report = shrink_engine(engine, excinfo.value)
            migrated[name] = report.migrated_bytes + report.closure_bytes
        assert migrated["depcache"] > migrated["depcomm"]

    def test_rejoin_restores_original_shape(self, small_graph, cluster4):
        engine = build(small_graph, cluster4, faults=permanent_crash())
        with pytest.raises(WorkerCrashError) as excinfo:
            engine.run_epoch()
        shrunk, record, _ = shrink_engine(engine, excinfo.value)
        shrunk.run_epoch()
        grown, report = rejoin_engine(shrunk, record, provision_s=0.02)
        assert grown.cluster.num_workers == 4
        assert report.direction == "rejoin"
        assert report.seconds >= 0.02
        # The rejoined cluster keeps training without re-crashing (the
        # original crash is marked recovered on the restored schedule).
        grown.run_epoch()


def reshaped_reference(graph, cluster4, dead_worker, checkpoint_epoch, epochs):
    """Healthy replay on the reshaped cluster from the same checkpoint.

    Trains ``checkpoint_epoch`` epochs on the full 4-worker cluster,
    then moves model + optimizer onto a healthy 3-worker cluster with
    the absorbed partitioning and finishes the run -- exactly the
    trajectory a shrink recovery must reproduce bit-for-bit.
    """
    engine4 = build(graph, cluster4)
    trainer4 = DistributedTrainer(engine4, lr=0.05)
    trainer4.train(checkpoint_epoch)
    _, shrunk_partitioning = absorb_partition(engine4.partitioning, dead_worker)
    engine3 = make_engine(
        engine4.name, graph, engine4.model,
        cluster4.healthy().without_worker(dead_worker),
        partitioning=shrunk_partitioning,
    )
    trainer3 = DistributedTrainer(engine3, lr=0.05)
    trainer3.optimizer.load_state_dict(trainer4.optimizer.state_dict())
    trainer3.train(epochs - checkpoint_epoch)
    return params_of(engine3)


class TestShrinkTrainer:
    def test_shrink_matches_healthy_reshaped_replay(
        self, small_graph, cluster4
    ):
        """The acceptance bar: shrink-and-continue is bit-identical to
        replaying the same epochs on a healthy reshaped cluster."""
        probe = build(small_graph, cluster4)
        crash_t = probe.charge_epoch() * 2.5  # mid-epoch-3: rolls back to 2

        engine = build(
            small_graph, cluster4,
            faults=permanent_crash(worker=1, at_time=crash_t),
        )
        trainer = ResilientTrainer(
            engine, lr=0.05,
            policy=RecoveryPolicy(checkpoint_every=2, strategy="shrink"),
        )
        history = trainer.train(EPOCHS)
        assert len(trainer.recoveries) == 1
        event = trainer.recoveries[0]
        assert event.strategy == "shrink"
        assert event.num_workers_after == 3
        assert event.rolled_back_to_epoch == 2
        assert trainer.num_workers == 3
        assert len(history.reports) == EPOCHS

        reference = reshaped_reference(
            small_graph, cluster4, dead_worker=1,
            checkpoint_epoch=2, epochs=EPOCHS,
        )
        for ref_p, shrunk_p in zip(reference, params_of(trainer.engine)):
            np.testing.assert_array_equal(ref_p, shrunk_p)

    def test_rejoin_grows_back_to_full_size(self, small_graph, cluster4):
        engine = build(small_graph, cluster4, faults=permanent_crash())
        trainer = ResilientTrainer(
            engine, lr=0.05,
            policy=RecoveryPolicy(
                checkpoint_every=2, strategy="shrink", rejoin_after_epochs=2
            ),
        )
        history = trainer.train(EPOCHS)
        strategies = [e.strategy for e in trainer.recoveries]
        assert strategies == ["shrink", "rejoin"]
        assert trainer.num_workers == 4
        assert len(history.reports) == EPOCHS
        # The grown-back run keeps making progress with finite numerics.
        assert np.isfinite(history.final_loss)

    def test_second_permanent_crash_shrinks_again(self, small_graph, cluster4):
        schedule = FaultSchedule([
            WorkerCrashFault(worker=1, at_time=0.0, permanent=True),
            WorkerCrashFault(worker=2, at_time=0.002, permanent=True),
        ])
        engine = build(small_graph, cluster4, faults=schedule)
        trainer = ResilientTrainer(
            engine, lr=0.05,
            policy=RecoveryPolicy(checkpoint_every=2, strategy="auto"),
        )
        trainer.train(EPOCHS)
        assert [e.strategy for e in trainer.recoveries] == ["shrink", "shrink"]
        assert trainer.num_workers == 2

    def test_auto_restarts_transient_crashes(self, small_graph, cluster4):
        engine = build(
            small_graph, cluster4,
            faults=FaultSchedule([WorkerCrashFault(worker=1, at_time=0.0)]),
        )
        trainer = ResilientTrainer(
            engine, lr=0.05,
            policy=RecoveryPolicy(checkpoint_every=2, strategy="auto"),
        )
        trainer.train(EPOCHS)
        assert [e.strategy for e in trainer.recoveries] == ["restart"]
        assert trainer.num_workers == 4

    def test_auto_shrinks_when_provisioning_blows_deadline(
        self, small_graph, cluster4
    ):
        engine = build(
            small_graph, cluster4,
            faults=FaultSchedule([WorkerCrashFault(worker=1, at_time=0.0)]),
        )
        trainer = ResilientTrainer(
            engine, lr=0.05,
            policy=RecoveryPolicy(
                checkpoint_every=2, strategy="auto",
                provision_s=0.5, provision_deadline_s=0.1,
            ),
        )
        trainer.train(EPOCHS)
        assert [e.strategy for e in trainer.recoveries] == ["shrink"]


class TestChaosShrink:
    def test_timing_mode_shrink(self, small_graph, cluster4):
        def model_factory():
            return GNNModel.build(
                "gcn", small_graph.feature_dim, 12,
                small_graph.num_classes, seed=7,
            )

        report = run_chaos(
            "depcomm", small_graph, model_factory, cluster4,
            permanent_crash(), epochs=4,
            policy=RecoveryPolicy(checkpoint_every=2),
            recovery="shrink",
        )
        assert report.strategy == "shrink"
        assert report.num_workers_final == 3
        assert [e.strategy for e in report.recoveries] == ["shrink"]
        assert report.recoveries[0].refetch_bytes > 0

    def test_timing_mode_rejoin(self, small_graph, cluster4):
        def model_factory():
            return GNNModel.build(
                "gcn", small_graph.feature_dim, 12,
                small_graph.num_classes, seed=7,
            )

        report = run_chaos(
            "depcomm", small_graph, model_factory, cluster4,
            permanent_crash(), epochs=5,
            policy=RecoveryPolicy(
                checkpoint_every=2, strategy="shrink", rejoin_after_epochs=2
            ),
        )
        assert [e.strategy for e in report.recoveries] == ["shrink", "rejoin"]
        assert report.num_workers_final == 4
