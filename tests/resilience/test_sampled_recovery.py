"""Crash recovery for sampling engines: sampler state rides checkpoints.

The keyed ``sampled`` engine draws every mini-batch as a pure function
of ``(seed, epoch, batch)``, so rollback is free; the ``distdgl``
facade draws from one sequential legacy stream, so the resilient
trainer must checkpoint and restore the generator state or the
replayed epochs sample different neighborhoods and the "bit-identical
recovery" guarantee silently breaks.  Both paths are pinned here
against an uninterrupted run.
"""

import numpy as np
import pytest

from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.resilience import (
    FaultSchedule,
    RecoveryPolicy,
    WorkerCrashFault,
    run_chaos,
)
from repro.training import DistributedTrainer, ResilientTrainer

EPOCHS = 6
SAMPLING_KWARGS = {"fanouts": (4, 4), "batch_size": 16}


def build(small_graph, cluster, engine_name, faults=None, seed=7):
    model = GNNModel.build(
        "gcn", small_graph.feature_dim, 12, small_graph.num_classes, seed=seed
    )
    if faults is not None:
        cluster = cluster.with_faults(faults)
    return make_engine(
        engine_name, small_graph, model, cluster, **SAMPLING_KWARGS
    )


def params_of(engine):
    return [p.data.copy() for p in engine.model.parameters()]


@pytest.mark.parametrize("engine_name", ["sampled", "distdgl"])
class TestSampledCrashRecovery:
    def test_crashed_run_matches_clean_trajectory(
        self, small_graph, cluster2, engine_name
    ):
        clean_engine = build(small_graph, cluster2, engine_name)
        clean = DistributedTrainer(clean_engine, lr=0.05)
        clean_history = clean.train(EPOCHS)
        clean_params = params_of(clean_engine)
        crash_t = clean_history.avg_epoch_time_s * 2.5

        engine = build(
            small_graph, cluster2, engine_name,
            faults=FaultSchedule([
                WorkerCrashFault(worker=1, at_time=crash_t)
            ]),
        )
        trainer = ResilientTrainer(
            engine, policy=RecoveryPolicy(checkpoint_every=2), lr=0.05
        )
        history = trainer.train(EPOCHS)

        assert len(trainer.recoveries) == 1
        for got, want in zip(params_of(engine), clean_params):
            np.testing.assert_array_equal(got, want)
        assert [r.loss for r in history.reports] == [
            r.loss for r in clean_history.reports
        ]

    def test_sampler_state_round_trips(
        self, small_graph, cluster2, engine_name
    ):
        engine = build(small_graph, cluster2, engine_name)
        trainer = DistributedTrainer(engine, lr=0.05)
        trainer.train(2)
        state = engine.sampler_state()
        assert state["epoch"] == 2

        probe = build(small_graph, cluster2, engine_name)
        DistributedTrainer(probe, lr=0.05).train(2)
        probe.load_sampler_state(state)
        # With the state restored, epoch 3 samples identically even on
        # the legacy sequential stream.
        a = DistributedTrainer(engine, lr=0.05).train(1)
        b = DistributedTrainer(probe, lr=0.05).train(1)
        assert [r.loss for r in a.reports] == [r.loss for r in b.reports]


class TestSampledChaos:
    """``repro chaos --engine sampled`` paths: planless engines must
    survive reprovisioning and elastic shrink."""

    def _chaos(self, small_graph, cluster2, mode, recovery):
        def model_factory():
            return GNNModel.build(
                "gcn", small_graph.feature_dim, 12,
                small_graph.num_classes, seed=7,
            )

        return run_chaos(
            "sampled", small_graph, model_factory, cluster2,
            FaultSchedule([WorkerCrashFault(worker=1, at_time=0.001)]),
            epochs=4, mode=mode, recovery=recovery, lr=0.05,
            **SAMPLING_KWARGS,
        )

    @pytest.mark.parametrize("recovery", ["restart", "shrink"])
    def test_timing_mode_recovers(self, small_graph, cluster2, recovery):
        report = self._chaos(small_graph, cluster2, "timing", recovery)
        assert len(report.recoveries) == 1
        assert report.degradation > 1.0
        if recovery == "shrink":
            # 2 -> 1 workers: the lone survivor already holds the
            # durable shard, so no inter-worker bytes move.
            assert report.num_workers_final == 1
        else:
            assert report.recoveries[0].refetch_bytes > 0

    def test_train_mode_restart_matches_clean_loss(
        self, small_graph, cluster2
    ):
        report = self._chaos(small_graph, cluster2, "train", "restart")
        assert len(report.recoveries) == 1
        # The crashed run replays to the same trained loss as a clean
        # trainer over the same engine (bit-identity is pinned above).
        clean_engine = build(small_graph, cluster2, "sampled")
        clean = DistributedTrainer(clean_engine, lr=0.05).train(4)
        assert report.final_loss == clean.reports[-1].loss

    def test_reprovision_without_plan_counts_all_state(
        self, small_graph, cluster2
    ):
        engine = build(small_graph, cluster2, "sampled")
        assert engine.plan() is None
        refetch = engine.reprovision_bytes(0)
        owned = len(engine.partitioning.part(0))
        expected = (
            owned * small_graph.feature_dim * 4
            + engine.model.parameter_bytes()
        )
        assert refetch == expected
