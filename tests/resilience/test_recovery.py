"""Crash detection, rollback-restart recovery, and zero-cost guarantees."""

import numpy as np
import pytest

from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.resilience import (
    FaultSchedule,
    RecoveryPolicy,
    WorkerCrashError,
    WorkerCrashFault,
)
from repro.training import DistributedTrainer, ResilientTrainer

EPOCHS = 6


def build(small_graph, cluster, engine_name="depcomm", faults=None, seed=7):
    model = GNNModel.build(
        "gcn", small_graph.feature_dim, 12, small_graph.num_classes, seed=seed
    )
    if faults is not None:
        cluster = cluster.with_faults(faults)
    return make_engine(engine_name, small_graph, model, cluster)


def params_of(engine):
    return [p.data.copy() for p in engine.model.parameters()]


class TestCrashDetection:
    def test_crash_surfaces_at_barrier(self, small_graph, cluster2):
        engine = build(
            small_graph, cluster2,
            faults=FaultSchedule([WorkerCrashFault(worker=1, at_time=0.0)]),
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            engine.run_epoch()
        assert excinfo.value.fault.worker == 1
        assert excinfo.value.detected_at_s >= 0.0

    def test_recover_charges_timeline(self, small_graph, cluster2):
        engine = build(
            small_graph, cluster2,
            faults=FaultSchedule([WorkerCrashFault(worker=1, at_time=0.0)]),
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            engine.run_epoch()
        t_before = engine.timeline.makespan
        recovery_s, refetch = engine.recover_from_crash(excinfo.value)
        assert recovery_s > 0
        assert refetch > 0
        assert engine.timeline.makespan == pytest.approx(
            t_before + recovery_s
        )
        # The crash is consumed: the next epoch runs through.
        engine.run_epoch()

    def test_depcache_refetches_more_than_depcomm(self, small_graph, cluster2):
        refetch = {}
        for name in ("depcache", "depcomm"):
            engine = build(small_graph, cluster2, engine_name=name)
            engine.plan()
            refetch[name] = engine.reprovision_bytes(0)
        assert refetch["depcache"] > refetch["depcomm"]


class TestResilientTrainer:
    def test_crashed_run_matches_clean_trajectory(self, small_graph, cluster2):
        """Rollback-restart replays to the exact clean-run parameters."""
        clean_engine = build(small_graph, cluster2)
        clean = DistributedTrainer(clean_engine, lr=0.05)
        clean_history = clean.train(EPOCHS)
        clean_params = params_of(clean_engine)
        crash_t = clean_history.avg_epoch_time_s * 2.5

        engine = build(
            small_graph, cluster2,
            faults=FaultSchedule([
                WorkerCrashFault(worker=1, at_time=crash_t)
            ]),
        )
        trainer = ResilientTrainer(
            engine, policy=RecoveryPolicy(checkpoint_every=2), lr=0.05
        )
        history = trainer.train(EPOCHS)

        assert len(trainer.recoveries) == 1
        event = trainer.recoveries[0]
        assert event.worker == 1
        assert event.rolled_back_to_epoch == 2
        assert event.recovery_s > 0
        # Bit-identical final parameters (optimizer state checkpointed) ...
        for got, want in zip(params_of(engine), clean_params):
            np.testing.assert_array_equal(got, want)
        # ... and the same loss trajectory, epoch for epoch.
        assert [r.loss for r in history.reports] == [
            r.loss for r in clean_history.reports
        ]
        assert [r.epoch for r in history.reports] == list(range(1, EPOCHS + 1))
        # Only the modeled clock shows the damage.
        assert engine.timeline.makespan > clean_engine.timeline.makespan

    def test_without_faults_identical_to_plain_trainer(
        self, small_graph, cluster2
    ):
        plain_engine = build(small_graph, cluster2)
        plain = DistributedTrainer(plain_engine, lr=0.05).train(EPOCHS)
        res_engine = build(small_graph, cluster2)
        resilient = ResilientTrainer(res_engine, lr=0.05).train(EPOCHS)
        assert [r.loss for r in resilient.reports] == [
            r.loss for r in plain.reports
        ]
        assert [r.epoch_time_s for r in resilient.reports] == [
            r.epoch_time_s for r in plain.reports
        ]
        for got, want in zip(params_of(res_engine), params_of(plain_engine)):
            np.testing.assert_array_equal(got, want)

    def test_max_recoveries_reraises(self, small_graph, cluster2):
        engine = build(
            small_graph, cluster2,
            faults=FaultSchedule([WorkerCrashFault(worker=0, at_time=0.0)]),
        )
        trainer = ResilientTrainer(
            engine, policy=RecoveryPolicy(max_recoveries=0)
        )
        with pytest.raises(WorkerCrashError):
            trainer.train(3)

    def test_disk_checkpoints_written(self, small_graph, cluster2, tmp_path):
        engine = build(small_graph, cluster2)
        trainer = ResilientTrainer(
            engine,
            policy=RecoveryPolicy(checkpoint_every=2),
            checkpoint_dir=tmp_path / "ckpts",
        )
        trainer.train(4)
        names = sorted(p.name for p in (tmp_path / "ckpts").iterdir())
        assert names == [
            "epoch_0000.npz", "epoch_0002.npz", "epoch_0004.npz"
        ]


class TestZeroCost:
    def test_empty_schedule_bit_identical_to_no_schedule(
        self, small_graph, cluster2
    ):
        """The resilience layer must cost nothing when disabled."""
        plain = build(small_graph, cluster2)
        gated = build(small_graph, cluster2, faults=FaultSchedule())
        assert gated.faults is None  # empty schedule -> clean code path
        for _ in range(3):
            a = plain.run_epoch()
            b = gated.run_epoch()
            assert a.epoch_time_s == b.epoch_time_s  # bit-identical
            assert a.loss == b.loss
        assert plain.timeline.makespan == gated.timeline.makespan

    def test_charge_epoch_identical_all_engines(self, small_graph, cluster4):
        for name in ("depcache", "depcomm", "hybrid"):
            plain = build(small_graph, cluster4, engine_name=name)
            gated = build(
                small_graph, cluster4, engine_name=name,
                faults=FaultSchedule(),
            )
            assert plain.charge_epoch() == gated.charge_epoch(), name
