"""Health monitoring, drift detection, and online re-planning."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.timeline import CPU, GPU, NET_RECV, Timeline
from repro.core.model import GNNModel
from repro.costmodel.partitioner import partition_dependencies
from repro.engines import make_engine
from repro.partition import get_partitioner
from repro.resilience import (
    ClusterHealthMonitor,
    FaultSchedule,
    StragglerFault,
    run_replan_sweep,
)
from repro.training import ResilientTrainer


def build(graph, cluster, engine_name="hybrid", faults=None, seed=7):
    model = GNNModel.build(
        "gcn", graph.feature_dim, 12, graph.num_classes, seed=seed
    )
    if faults is not None:
        cluster = cluster.with_faults(faults)
    return make_engine(engine_name, graph, model, cluster)


def feed(monitor, num_workers, compute_rows, comm_rows=None):
    """Feed synthetic cumulative per-epoch totals into the monitor."""
    timeline = Timeline(num_workers, record=True)
    compute_total = np.zeros(num_workers)
    comm_total = np.zeros(num_workers)
    for i, compute in enumerate(compute_rows):
        compute_total = compute_total + np.asarray(compute, dtype=float)
        if comm_rows is not None:
            comm_total = comm_total + np.asarray(comm_rows[i], dtype=float)
        timeline.totals[GPU][:] = compute_total
        timeline.totals[CPU][:] = 0.0
        timeline.totals[NET_RECV][:] = comm_total
        monitor.observe(timeline)


class TestMonitorEstimates:
    def test_uniform_cluster_stays_at_one(self):
        monitor = ClusterHealthMonitor(4)
        feed(monitor, 4, [[1.0, 1.0, 1.0, 1.0]] * 4)
        np.testing.assert_allclose(monitor.compute_factors, 1.0)
        assert not monitor.drifted()

    def test_straggler_stands_out_from_the_median(self):
        monitor = ClusterHealthMonitor(4, alpha=0.5)
        feed(monitor, 4, [[4.0, 1.0, 1.0, 1.0]] * 5)
        assert monitor.compute_factors[0] > 2.0
        assert np.all(monitor.compute_factors[1:] <= 1.001)
        assert monitor.drifted()

    def test_comm_and_compute_tracked_separately(self):
        monitor = ClusterHealthMonitor(2, alpha=1.0, drift_threshold=0.2)
        feed(monitor, 2, [[1.0, 1.0]] * 3, comm_rows=[[3.0, 1.0]] * 3)
        np.testing.assert_allclose(monitor.compute_factors, 1.0)
        assert monitor.comm_factors[0] > 1.2
        assert monitor.drifted()

    def test_first_observation_only_baselines(self):
        monitor = ClusterHealthMonitor(2)
        feed(monitor, 2, [[5.0, 1.0]])
        assert monitor.observations == 0
        np.testing.assert_allclose(monitor.compute_factors, 1.0)

    def test_min_observations_damps_drift(self):
        monitor = ClusterHealthMonitor(2, alpha=1.0, min_observations=3)
        feed(monitor, 2, [[9.0, 1.0]] * 3)  # 2 folded observations
        assert not monitor.drifted()
        feed(monitor, 2, [[9.0, 1.0]] * 2)
        assert monitor.drifted()

    def test_mark_replanned_reanchors(self):
        monitor = ClusterHealthMonitor(2, alpha=1.0)
        feed(monitor, 2, [[6.0, 1.0]] * 4)
        assert monitor.drifted()
        monitor.mark_replanned()
        assert not monitor.drifted()
        # A stable (if degraded) cluster does not re-trigger.
        feed(monitor, 2, [[6.0, 1.0]] * 4)
        assert not monitor.drifted()

    def test_rejects_wrong_timeline_size(self):
        monitor = ClusterHealthMonitor(4)
        with pytest.raises(ValueError):
            monitor.observe(Timeline(2, record=True))

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterHealthMonitor(0)
        with pytest.raises(ValueError):
            ClusterHealthMonitor(2, alpha=0.0)
        with pytest.raises(ValueError):
            ClusterHealthMonitor(2, drift_threshold=0.0)


class TestWorkerConstants:
    def test_scales_only_unhealthy_workers(self, small_graph, cluster2):
        engine = build(small_graph, cluster2)
        engine.plan()
        base = engine.constants
        monitor = ClusterHealthMonitor(2, alpha=1.0)
        feed(monitor, 2, [[3.0, 1.0]] * 3)
        overrides = monitor.worker_constants(base)
        assert 0 in overrides
        factor = float(monitor.compute_factors[0])
        assert overrides[0].t_v == pytest.approx(base.t_v * factor)
        assert overrides[0].t_e == pytest.approx(base.t_e * factor)
        # Comm stayed healthy, so t_c is untouched for worker 0 ...
        assert overrides[0].t_c == pytest.approx(
            base.t_c * float(monitor.comm_factors[0])
        )

    def test_healthy_workers_get_no_override(self):
        monitor = ClusterHealthMonitor(3)
        base = None
        # All factors at 1.0: nothing to override, regardless of base.
        assert monitor.worker_constants(base) == {}


class TestReplan:
    def test_replan_without_overrides_keeps_decisions(
        self, small_graph, cluster2
    ):
        engine = build(small_graph, cluster2)
        plan_before = engine.plan()
        cached_before = {
            w: [a.copy() for a in p.cached]
            for w, p in engine._dep_partitions.items()
        }
        engine.replan()
        plan_after = engine.plan()
        assert plan_after.cache_ratio() == plan_before.cache_ratio()
        for w, layers in cached_before.items():
            for a, b in zip(layers, engine._dep_partitions[w].cached):
                np.testing.assert_array_equal(a, b)

    def test_replan_charges_preprocessing(self, small_graph, cluster2):
        engine = build(small_graph, cluster2)
        engine.plan()
        t_before = engine.timeline.makespan
        engine.replan()
        assert engine.timeline.makespan > t_before

    def test_override_shifts_decisions(self, small_graph, cluster2):
        engine = build(small_graph, cluster2)
        engine.plan()
        base = engine.constants
        cached_before = sum(
            len(a) for p in engine._dep_partitions.values() for a in p.cached
        )
        # Worker 0's links crawl: caching must become more attractive.
        slow_link = replace(
            base,
            t_c=base.t_c * 50,
            t_c_layer=[t * 50 for t in base.t_c_layer],
        )
        engine.replan({0: slow_link})
        cached_after = sum(
            len(a) for p in engine._dep_partitions.values() for a in p.cached
        )
        assert cached_after > cached_before

    def test_warm_start_skips_measurement_sweep(self, small_graph, cluster2):
        engine = build(small_graph, cluster2)
        engine.plan()
        partitioning = get_partitioner("chunk")(small_graph, 2)
        cold = partition_dependencies(
            small_graph, partitioning, 0, engine.dims, engine.constants
        )
        warm = partition_dependencies(
            small_graph, partitioning, 0, engine.dims, engine.constants,
            warm_start=cold,
        )
        # Identical decisions, strictly fewer subtree measurements.
        for a, b in zip(cold.cached, warm.cached):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(cold.communicated, warm.communicated):
            np.testing.assert_array_equal(a, b)
        assert warm.measured_evaluations < cold.measured_evaluations


class TestTrainerIntegration:
    def test_monitored_run_replans_and_keeps_numerics(
        self, small_graph, cluster2
    ):
        """Re-planning changes the modeled schedule, not the math.

        Moving a dependency between the cached and communicated sets
        changes the fp32 reduction order, so the trajectories are equal
        to float tolerance rather than bit-identical (bit-identity is
        only promised with the monitor *disabled*).
        """
        baseline = build(small_graph, cluster2)
        base_trainer = ResilientTrainer(baseline, lr=0.05)
        base_trainer.train(6)
        base_params = [p.data.copy() for p in baseline.model.parameters()]

        faults = FaultSchedule([
            StragglerFault(worker=0, gpu_factor=8.0, cpu_factor=8.0)
        ])
        engine = build(small_graph, cluster2, faults=faults)
        trainer = ResilientTrainer(
            engine, lr=0.05,
            health_monitor=ClusterHealthMonitor(
                2, alpha=0.8, drift_threshold=0.2
            ),
        )
        trainer.train(6)
        assert trainer.replans >= 1
        for a, b in zip(base_params, engine.model.parameters()):
            np.testing.assert_allclose(a, b.data, rtol=1e-4, atol=1e-6)

    def test_monitor_resizes_after_shrink(self, small_graph, cluster4):
        from repro.resilience import RecoveryPolicy, WorkerCrashFault

        faults = FaultSchedule([
            WorkerCrashFault(worker=1, at_time=0.0, permanent=True)
        ])
        engine = build(
            small_graph, cluster4, engine_name="depcomm", faults=faults
        )
        trainer = ResilientTrainer(
            engine, lr=0.05,
            policy=RecoveryPolicy(checkpoint_every=2, strategy="shrink"),
            health_monitor=ClusterHealthMonitor(4),
        )
        trainer.train(5)
        assert trainer.num_workers == 3
        assert trainer.health_monitor.num_workers == 3


class TestReplanSweep:
    def test_returns_complete_result(self, small_graph, cluster2):
        def model_factory():
            return GNNModel.build(
                "gcn", small_graph.feature_dim, 12,
                small_graph.num_classes, seed=7,
            )

        def schedule_factory():
            return FaultSchedule([
                StragglerFault(worker=0, gpu_factor=8.0, cpu_factor=8.0)
            ])

        result = run_replan_sweep(
            "hybrid", small_graph, model_factory, cluster2,
            schedule_factory, epochs=6, alpha=0.8, drift_threshold=0.15,
        )
        for key in (
            "engine", "epochs", "static_makespan_s", "adaptive_makespan_s",
            "speedup", "replans", "static_cache_ratio",
            "adaptive_cache_ratio",
        ):
            assert key in result
        assert result["engine"] == "hybrid"
        assert result["static_makespan_s"] > 0
        assert result["adaptive_makespan_s"] > 0
        assert result["replans"] >= 1
