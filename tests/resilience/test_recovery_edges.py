"""Recovery edge cases: back-to-back crashes, exhaustion, cache churn."""

import math

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.resilience import (
    FaultSchedule,
    RecoveryPolicy,
    WorkerCrashError,
    WorkerCrashFault,
)
from repro.training import DistributedTrainer, ResilientTrainer

EPOCHS = 6


def build(graph, cluster, engine_name="depcomm", faults=None, seed=7, **kwargs):
    model = GNNModel.build(
        "gcn", graph.feature_dim, 12, graph.num_classes, seed=seed
    )
    if faults is not None:
        cluster = cluster.with_faults(faults)
    return make_engine(engine_name, graph, model, cluster, **kwargs)


def params_of(engine):
    return [p.data.copy() for p in engine.model.parameters()]


class TestBackToBackCrashes:
    def test_second_crash_during_recovery_window(self, small_graph, cluster2):
        """A crash inside the first crash's replay window also recovers,
        and the twice-replayed trajectory still matches the clean run."""
        clean_engine = build(small_graph, cluster2)
        clean = DistributedTrainer(clean_engine, lr=0.05)
        clean_history = clean.train(EPOCHS)
        clean_params = params_of(clean_engine)
        epoch_s = clean_history.avg_epoch_time_s

        # First crash mid-epoch-3; the second fires while the trainer is
        # still replaying the epochs the first one rolled back.
        schedule = FaultSchedule([
            WorkerCrashFault(worker=1, at_time=epoch_s * 2.5),
            WorkerCrashFault(worker=0, at_time=epoch_s * 3.1),
        ])
        engine = build(small_graph, cluster2, faults=schedule)
        trainer = ResilientTrainer(
            engine, lr=0.05, policy=RecoveryPolicy(checkpoint_every=2)
        )
        history = trainer.train(EPOCHS)
        assert len(trainer.recoveries) == 2
        assert [e.worker for e in trainer.recoveries] == [1, 0]
        assert len(history.reports) == EPOCHS
        for a, b in zip(clean_params, params_of(engine)):
            np.testing.assert_array_equal(a, b)

    def test_max_recoveries_exhaustion_reraises(self, small_graph, cluster2):
        schedule = FaultSchedule([
            WorkerCrashFault(worker=1, at_time=0.0),
            WorkerCrashFault(worker=0, at_time=0.001),
        ])
        engine = build(small_graph, cluster2, faults=schedule)
        trainer = ResilientTrainer(
            engine, lr=0.05,
            policy=RecoveryPolicy(checkpoint_every=2, max_recoveries=1),
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            trainer.train(EPOCHS)
        # The first crash recovered; the second re-raised cleanly with
        # its own fault attached.
        assert len(trainer.recoveries) == 1
        assert excinfo.value.fault.worker == 0

    def test_zero_max_recoveries_means_no_recovery(
        self, small_graph, cluster2
    ):
        schedule = FaultSchedule([WorkerCrashFault(worker=1, at_time=0.0)])
        engine = build(small_graph, cluster2, faults=schedule)
        trainer = ResilientTrainer(
            engine, lr=0.05,
            policy=RecoveryPolicy(checkpoint_every=2, max_recoveries=0),
        )
        with pytest.raises(WorkerCrashError):
            trainer.train(EPOCHS)
        assert trainer.recoveries == []


class TestCrashWithHistoricalCache:
    def cache_engine(self, graph, cluster, faults=None):
        return build(
            graph, cluster, faults=faults,
            cache_config=CacheConfig(tau=2),
        )

    def test_crash_between_refresh_epochs_recovers(
        self, small_graph, cluster2
    ):
        """A crash landing while cached entries are mid-staleness (one
        epoch past their refresh) rolls back and replays cleanly."""
        clean_engine = self.cache_engine(small_graph, cluster2)
        clean = DistributedTrainer(clean_engine, lr=0.05)
        clean_history = clean.train(EPOCHS)
        clean_params = params_of(clean_engine)
        # tau=2 refreshes on even epochs; crash mid-epoch-4 (odd offset)
        # so entries are one epoch stale when the rollback hits.
        crash_t = clean_history.avg_epoch_time_s * 3.5

        schedule = FaultSchedule([
            WorkerCrashFault(worker=1, at_time=crash_t)
        ])
        engine = self.cache_engine(small_graph, cluster2, faults=schedule)
        trainer = ResilientTrainer(
            engine, lr=0.05, policy=RecoveryPolicy(checkpoint_every=2)
        )
        history = trainer.train(EPOCHS)
        assert len(trainer.recoveries) == 1
        assert np.isfinite(history.final_loss)
        for a, b in zip(clean_params, params_of(engine)):
            np.testing.assert_array_equal(a, b)

    def test_shrink_with_cache_invalidates_and_continues(
        self, small_graph, cluster4
    ):
        schedule = FaultSchedule([
            WorkerCrashFault(worker=1, at_time=0.001, permanent=True)
        ])
        model = GNNModel.build(
            "gcn", small_graph.feature_dim, 12,
            small_graph.num_classes, seed=7,
        )
        engine = make_engine(
            "depcomm", small_graph, model, cluster4.with_faults(schedule),
            cache_config=CacheConfig(tau=2),
        )
        trainer = ResilientTrainer(
            engine, lr=0.05,
            policy=RecoveryPolicy(checkpoint_every=2, strategy="shrink"),
        )
        history = trainer.train(EPOCHS)
        assert [e.strategy for e in trainer.recoveries] == ["shrink"]
        assert trainer.num_workers == 3
        assert np.isfinite(history.final_loss)
        # The reshaped engine rebuilt its caches at the new size.
        assert trainer.engine.cluster.num_workers == 3


class TestYoungDaly:
    def schedule(self, times):
        return FaultSchedule([
            WorkerCrashFault(worker=0, at_time=t) for t in times
        ])

    def test_formula(self):
        # 2 crashes over a 8s horizon -> MTBF 4s; C = 0.02s (default
        # 0.1 * epoch); W_opt = sqrt(2 * 0.02 * 4) = 0.4s = 2 epochs.
        policy = RecoveryPolicy.auto(
            self.schedule([5.0, 8.0]), epoch_cost_s=0.2
        )
        w_opt = math.sqrt(2 * 0.02 * 4.0)
        assert policy.checkpoint_every == max(1, round(w_opt / 0.2))

    def test_more_crashes_checkpoint_more_often(self):
        sparse = RecoveryPolicy.auto(self.schedule([100.0]), epoch_cost_s=0.1)
        dense = RecoveryPolicy.auto(
            self.schedule([20.0, 40.0, 60.0, 80.0, 100.0]), epoch_cost_s=0.1
        )
        assert dense.checkpoint_every < sparse.checkpoint_every

    def test_no_crashes_checkpoints_rarely(self):
        policy = RecoveryPolicy.auto(FaultSchedule(), epoch_cost_s=0.1)
        assert policy.checkpoint_every == 50

    def test_explicit_override_wins(self):
        policy = RecoveryPolicy.auto(
            self.schedule([1.0]), epoch_cost_s=0.1, checkpoint_every=7
        )
        assert policy.checkpoint_every == 7

    def test_overrides_pass_through(self):
        policy = RecoveryPolicy.auto(
            self.schedule([1.0]), epoch_cost_s=0.1, strategy="auto",
            provision_deadline_s=0.2,
        )
        assert policy.strategy == "auto"
        assert policy.provision_deadline_s == 0.2

    def test_validates_epoch_cost(self):
        with pytest.raises(ValueError):
            RecoveryPolicy.auto(FaultSchedule(), epoch_cost_s=0.0)
