"""run_exchange under faults: degraded links, losses, retries."""

import numpy as np
import pytest

from repro.cluster.network import ECS_NETWORK
from repro.cluster.timeline import IDLE, Timeline
from repro.comm.scheduler import run_exchange
from repro.resilience import (
    FaultInjector,
    FaultSchedule,
    LinkDegradationFault,
    MessageLossFault,
    RetryPolicy,
    StragglerFault,
)


def volumes(m=2, bytes_each=1e6):
    v = np.zeros((m, m))
    v[~np.eye(m, dtype=bool)] = bytes_each
    return v


def run(faults=None, retry=None, m=2, **kwargs):
    tl = Timeline(m)
    stats = run_exchange(
        tl, ECS_NETWORK, volumes(m), faults=faults, retry=retry, **kwargs
    )
    return tl, stats


class TestEmptyScheduleEquivalence:
    def test_empty_injector_matches_no_injector_bitwise(self):
        """An injector over an *empty* schedule is the identity."""
        tl_none, s_none = run(faults=None)
        tl_empty, s_empty = run(
            faults=FaultInjector(FaultSchedule()), retry=RetryPolicy()
        )
        assert tl_none.makespan == tl_empty.makespan  # bit-identical
        np.testing.assert_array_equal(s_none.pack_s, s_empty.pack_s)
        np.testing.assert_array_equal(s_none.send_s, s_empty.send_s)
        np.testing.assert_array_equal(s_none.recv_s, s_empty.recv_s)
        np.testing.assert_array_equal(s_none.phase_s, s_empty.phase_s)
        assert s_empty.retries == 0


class TestDegradation:
    def test_link_degradation_slows_phase(self):
        _, clean = run()
        inj = FaultInjector(FaultSchedule([
            LinkDegradationFault(bandwidth_factor=4.0)
        ]))
        _, slow = run(faults=inj)
        assert slow.makespan > clean.makespan * 2

    def test_straggler_cpu_slows_packing_and_links(self):
        _, clean = run(bytes_per_message=64)
        inj = FaultInjector(FaultSchedule([
            StragglerFault(worker=0, gpu_factor=1.0, cpu_factor=8.0)
        ]))
        _, slow = run(faults=inj, bytes_per_message=64)
        assert slow.pack_s[0] > clean.pack_s[0] * 7
        assert slow.pack_s[1] == clean.pack_s[1]
        # Both directions touch worker 0, so both ends see slow links.
        assert slow.send_s[1] > clean.send_s[1]


class TestLossAndRetry:
    def test_losses_cause_retries_and_stalls(self):
        inj = FaultInjector(FaultSchedule([
            MessageLossFault(drop_fraction=0.9)
        ], seed=7))
        tl, stats = run(faults=inj, retry=RetryPolicy())
        _, clean = run()
        assert stats.retries > 0
        assert inj.total_retries == stats.retries
        assert inj.total_retry_s > 0
        assert float(stats.retry_wait_s.sum()) > 0
        assert stats.makespan > clean.makespan
        # The stall is visible on the timeline as idle time.
        assert float(tl.totals[IDLE].sum()) > 0

    def test_retries_bounded_by_policy(self):
        inj = FaultInjector(FaultSchedule([
            MessageLossFault(drop_fraction=1.0)  # every attempt dropped
        ]))
        retry = RetryPolicy(max_retries=3)
        _, stats = run(faults=inj, retry=retry)
        # 2 workers x 1 chunk each, all attempts dropped -> exactly
        # max_retries retransmissions per chunk (last one delivered).
        assert stats.retries == 2 * retry.max_retries

    def test_loss_draws_replay_deterministically(self):
        def once():
            inj = FaultInjector(FaultSchedule([
                MessageLossFault(drop_fraction=0.5)
            ], seed=11))
            tl, stats = run(faults=inj, retry=RetryPolicy(), m=4)
            return tl.makespan, stats.retries

        assert once() == once()

    def test_no_retry_policy_means_no_retries(self):
        inj = FaultInjector(FaultSchedule([
            MessageLossFault(drop_fraction=1.0)
        ]))
        _, stats = run(faults=inj, retry=None)
        assert stats.retries == 0


class TestBackoffJitter:
    def lossy(self, seed=11):
        return FaultInjector(FaultSchedule([
            MessageLossFault(drop_fraction=0.6)
        ], seed=seed))

    def test_zero_jitter_is_bit_identical_to_default(self):
        """jitter=0 draws nothing: traces match the pre-jitter policy."""
        tl_default, s_default = run(
            faults=self.lossy(), retry=RetryPolicy(), m=4
        )
        tl_zero, s_zero = run(
            faults=self.lossy(), retry=RetryPolicy(jitter=0.0), m=4
        )
        assert tl_default.makespan == tl_zero.makespan
        np.testing.assert_array_equal(
            s_default.retry_wait_s, s_zero.retry_wait_s
        )

    def test_jitter_shortens_backoff_deterministically(self):
        def once(jitter):
            tl, stats = run(
                faults=self.lossy(), retry=RetryPolicy(jitter=jitter), m=4
            )
            return tl.makespan, float(stats.retry_wait_s.sum()), stats.retries

        span_a, wait_a, retries_a = once(0.9)
        span_b, wait_b, retries_b = once(0.9)
        # Same seed, same jitter -> bit-identical replay.
        assert (span_a, wait_a, retries_a) == (span_b, wait_b, retries_b)
        # Jitter only ever subtracts from the full backoff, and it does
        # not disturb the drop-decision stream (same retry count).
        span_0, wait_0, retries_0 = once(0.0)
        assert retries_a == retries_0
        assert wait_a < wait_0
        assert span_a <= span_0

    def test_jittered_backoff_formula(self):
        retry = RetryPolicy(
            backoff_base_s=1e-3, backoff_factor=2.0, jitter=0.5
        )
        assert retry.jittered_backoff_s(2, 0.0) == retry.backoff_s(2)
        assert retry.jittered_backoff_s(2, 1.0) == pytest.approx(
            retry.backoff_s(2) * 0.5
        )

    def test_jitter_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
