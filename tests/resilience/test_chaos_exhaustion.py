"""Recovery-budget exhaustion: structured failure instead of a loop.

``max_recoveries`` bounds how many crashes one run may absorb; hitting
the budget must surface as :class:`RecoveryExhaustedError` -- a
:class:`WorkerCrashError` subclass carrying the recovery count -- from
both the timing-mode chaos harness and the numeric ResilientTrainer,
and as a non-zero exit with a structured ``failures`` payload from the
``repro chaos`` CLI.
"""

import json

import pytest

from repro.cli import main
from repro.core.model import GNNModel
from repro.resilience import (
    FaultSchedule,
    RecoveryExhaustedError,
    RecoveryPolicy,
    WorkerCrashError,
    WorkerCrashFault,
)
from repro.resilience.chaos import run_chaos
from repro.training import ResilientTrainer


def crash_every_epoch(n=10, worker=1, spacing_s=1e-4):
    return FaultSchedule([
        WorkerCrashFault(worker=worker, at_time=i * spacing_s,
                         detection_timeout_s=0.0)
        for i in range(n)
    ])


def model_factory(graph):
    def factory():
        return GNNModel.build(
            "gcn", graph.feature_dim, 12, graph.num_classes, seed=7
        )
    return factory


class TestChaosHarness:
    def test_exhaustion_raises_structured_error(self, small_graph, cluster2):
        with pytest.raises(RecoveryExhaustedError) as excinfo:
            run_chaos(
                "depcomm", small_graph, model_factory(small_graph),
                cluster2, crash_every_epoch(),
                epochs=4,
                policy=RecoveryPolicy(max_recoveries=2),
            )
        err = excinfo.value
        assert err.recoveries == 2
        assert err.fault.worker == 1
        assert "exhausted" in str(err)

    def test_exhaustion_is_a_crash_error(self, small_graph, cluster2):
        # Existing WorkerCrashError handlers keep working unchanged.
        with pytest.raises(WorkerCrashError):
            run_chaos(
                "depcomm", small_graph, model_factory(small_graph),
                cluster2, crash_every_epoch(),
                epochs=4,
                policy=RecoveryPolicy(max_recoveries=0),
            )

    def test_budget_not_hit_completes(self, small_graph, cluster2):
        report = run_chaos(
            "depcomm", small_graph, model_factory(small_graph),
            cluster2, crash_every_epoch(n=2),
            epochs=4,
            policy=RecoveryPolicy(max_recoveries=8),
        )
        assert report.epochs == 4
        assert len(report.recoveries) == 2


class TestResilientTrainer:
    def test_trainer_exhaustion_raises(self, small_graph, cluster2):
        from repro.engines import make_engine

        cluster = cluster2.with_faults(crash_every_epoch())
        engine = make_engine(
            "depcomm", small_graph, model_factory(small_graph)(), cluster
        )
        trainer = ResilientTrainer(
            engine, policy=RecoveryPolicy(max_recoveries=1)
        )
        with pytest.raises(RecoveryExhaustedError) as excinfo:
            trainer.train(4)
        assert excinfo.value.recoveries == 1


class TestChaosCLI:
    def test_cli_exits_nonzero_with_failures_payload(self, capsys, tmp_path):
        target = tmp_path / "chaos.json"
        argv = [
            "chaos", "--dataset", "cora", "--scale", "0.05",
            "--nodes", "4", "--engine", "hybrid", "--epochs", "4",
            "--json", str(target),
        ]
        for i in range(10):
            argv += ["--crash", f"1:{(i + 1) * 1e-4}:0"]
        rc = main(argv)
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        payload = json.loads(target.read_text())
        failure = payload["failures"]["hybrid"]
        assert failure["error"] == "recovery_exhausted"
        assert failure["recoveries"] == failure["max_recoveries"] == 8
        assert failure["worker"] == 1
