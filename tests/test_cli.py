"""Command-line interface."""

import pytest

from repro.cli import main


class TestDatasets:
    def test_lists_catalog(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ["google", "reddit", "twitter", "pubmed"]:
            assert name in out
        assert "paper |V|" in out


class TestProbe:
    def test_prints_constants(self, capsys):
        assert main(["probe", "--dataset", "cora", "--scale", "0.2",
                     "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "T_v" in out and "T_c" in out


class TestCompare:
    def test_compares_engines(self, capsys):
        assert main(["compare", "--dataset", "google", "--scale", "0.2",
                     "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        for engine in ["depcache", "depcomm", "hybrid"]:
            assert engine in out
        assert "best:" in out


class TestAnalyze:
    def test_report_and_recommendation(self, capsys):
        assert main(["analyze", "--dataset", "pokec", "--scale", "0.3",
                     "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "replication" in out
        assert "recommendation:" in out

    def test_partitioner_option(self, capsys):
        assert main(["analyze", "--dataset", "google", "--scale", "0.2",
                     "--nodes", "4", "--partitioner", "metis"]) == 0
        assert "metis" in capsys.readouterr().out


class TestTrain:
    def test_trains_and_reports(self, capsys):
        assert main([
            "train", "--dataset", "reddit", "--scale", "0.3",
            "--nodes", "2", "--epochs", "4", "--eval-every", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "best accuracy" in out
        assert "cluster time" in out

    def test_checkpoint_written(self, capsys, tmp_path):
        target = tmp_path / "ckpt"
        assert main([
            "train", "--dataset", "reddit", "--scale", "0.3",
            "--nodes", "2", "--epochs", "2", "--eval-every", "2",
            "--checkpoint", str(target),
        ]) == 0
        assert (tmp_path / "ckpt.npz").exists()

    def test_unknown_dataset_errors(self):
        with pytest.raises(KeyError):
            main(["train", "--dataset", "nope", "--epochs", "1"])

    def test_oom_reported_as_error(self, capsys):
        code = main([
            "train", "--dataset", "reddit", "--engine", "depcache",
            "--arch", "gat", "--nodes", "16", "--epochs", "1",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestTrainJson:
    def test_writes_summary(self, capsys, tmp_path):
        import json

        target = tmp_path / "train.json"
        assert main([
            "train", "--dataset", "reddit", "--scale", "0.3",
            "--nodes", "2", "--epochs", "4", "--eval-every", "2",
            "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["engine"] == "hybrid"
        assert payload["epochs"] == 4
        assert 0.0 <= payload["best_accuracy"] <= 1.0
        assert len(payload["convergence"]) >= 1
        assert "cache" not in payload  # no cache flags given

    def test_cache_stats_included_when_caching(self, capsys, tmp_path):
        import json

        target = tmp_path / "train.json"
        assert main([
            "train", "--dataset", "reddit", "--scale", "0.3",
            "--nodes", "2", "--epochs", "4", "--eval-every", "2",
            "--engine", "depcomm", "--tau", "2", "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert "cache" in payload
        assert payload["cache"]["hits"] >= 0


class TestChaosCli:
    BASE = [
        "chaos", "--dataset", "cora", "--scale", "0.1", "--nodes", "4",
        "--epochs", "4", "--engine", "depcomm", "--checkpoint-every", "2",
    ]

    def test_restart_recovery(self, capsys):
        assert main(self.BASE + ["--crash", "1:0.0005"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "workers" in out

    def test_shrink_recovery_reports_smaller_cluster(self, capsys, tmp_path):
        import json

        target = tmp_path / "chaos.json"
        assert main(self.BASE + [
            "--crash", "1:0.0005::perm", "--recovery", "shrink",
            "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["recovery"] == "shrink"
        report = payload["engines"]["depcomm"]
        assert report["num_workers_final"] == 3
        assert len(report["recoveries"]) >= 1
        assert report["recoveries"][0]["strategy"] == "shrink"

    def test_auto_recovery_restarts_transient(self, capsys, tmp_path):
        import json

        target = tmp_path / "chaos.json"
        assert main(self.BASE + [
            "--crash", "1:0.0005", "--recovery", "auto",
            "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        report = payload["engines"]["depcomm"]
        assert report["num_workers_final"] == 4
        assert report["recoveries"][0]["strategy"] == "restart"

    def test_needs_at_least_one_fault(self):
        with pytest.raises(SystemExit):
            main(self.BASE)

    def test_rejects_unknown_recovery(self):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--crash", "1:0.0005", "--recovery", "magic"])

    def test_sampled_engine_recovers(self, capsys, tmp_path):
        import json

        target = tmp_path / "chaos.json"
        assert main([
            "chaos", "--dataset", "cora", "--scale", "0.1", "--nodes", "4",
            "--epochs", "4", "--engine", "sampled", "--checkpoint-every", "2",
            "--batch-size", "32", "--crash", "1:0.0005",
            "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        report = payload["engines"]["sampled"]
        assert len(report["recoveries"]) >= 1
        assert report["num_workers_final"] == 4


class TestReplanSweepCli:
    def test_sweep_reports_and_writes_json(self, capsys, tmp_path):
        import json

        target = tmp_path / "replan.json"
        assert main([
            "replan-sweep", "--dataset", "cora", "--scale", "0.1",
            "--nodes", "4", "--epochs", "4",
            "--straggler", "0:8.0:8.0", "--json", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert "static ms" in out and "adaptive ms" in out
        payload = json.loads(target.read_text())
        assert payload["engine"] == "hybrid"
        assert payload["static_makespan_s"] > 0

    def test_rejects_crash_faults(self):
        with pytest.raises(SystemExit):
            main([
                "replan-sweep", "--dataset", "cora", "--scale", "0.1",
                "--nodes", "4", "--crash", "1:0.1",
            ])


class TestCompareJson:
    def test_writes_engine_table(self, capsys, tmp_path):
        import json

        target = tmp_path / "compare.json"
        assert main([
            "compare", "--dataset", "cora", "--scale", "0.2",
            "--nodes", "2", "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert set(payload["engines"]) == {"depcache", "depcomm", "hybrid"}
        assert payload["best"] in payload["engines"]
        assert payload["engines"]["hybrid"]["epoch_s"] > 0


class TestAnalyzeJson:
    def test_writes_report_and_recommendation(self, capsys, tmp_path):
        import json

        target = tmp_path / "analyze.json"
        assert main([
            "analyze", "--dataset", "cora", "--scale", "0.2",
            "--nodes", "2", "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["dataset"] == "cora"
        assert payload["replication_factor"] >= 1.0
        assert "recommendation" in payload


class TestServeCli:
    BASE = [
        "serve", "--dataset", "cora", "--scale", "0.1", "--nodes", "2",
        "--requests", "20", "--rate", "5000",
    ]

    def test_serves_and_reports_latency(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "p99 ms" in out
        assert "micro-batches" in out

    def test_json_trace_and_training(self, capsys, tmp_path):
        import json

        target = tmp_path / "serve.json"
        trace = tmp_path / "serve_trace"
        assert main(self.BASE + [
            "--train-epochs", "1", "--tau-s", "0.05",
            "--trace", str(trace), "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["tau_s"] == 0.05
        assert payload["summary"]["served"] == 20
        assert len(payload["ledger"]["records"]) == 20
        trace_events = json.loads(
            (tmp_path / "serve_trace.json").read_text()
        )["traceEvents"]
        assert any(e.get("cat") == "span" for e in trace_events)

    def test_degraded_serving_with_crash(self, capsys):
        assert main(self.BASE + ["--crash", "1:0.0"]) == 0
        out = capsys.readouterr().out
        assert "degraded" in out

    def test_shedding_under_max_pending(self, capsys, tmp_path):
        import json

        target = tmp_path / "serve.json"
        assert main(self.BASE + [
            "--rate", "500000", "--max-pending", "2", "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["summary"]["shed"] > 0

    def test_rejects_bad_burst_spec(self):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--burst", "nonsense"])


class TestServeBenchCli:
    def test_reports_speedup_and_sweep(self, capsys, tmp_path):
        import json

        target = tmp_path / "bench.json"
        assert main([
            "serve-bench", "--dataset", "cora", "--scale", "0.1",
            "--nodes", "2", "--requests", "60", "--rate", "100000",
            "--taus", "0,0.05", "--json", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "predictions identical: True" in out
        payload = json.loads(target.read_text())
        assert payload["predictions_identical"] is True
        assert len(payload["tau_sweep"]) == 2
        assert (
            payload["tau_sweep"][1]["comm_bytes"]
            <= payload["tau_sweep"][0]["comm_bytes"]
        )


class TestFleetCli:
    BASE = [
        "fleet", "--dataset", "cora", "--scale", "0.1", "--nodes", "2",
        "--replicas", "2", "--requests", "96", "--rate", "4000",
        "--health-every", "32",
    ]

    def test_serves_and_reports(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "p99 ms" in out
        assert "replicas" in out

    def test_crash_fails_over(self, capsys, tmp_path):
        import json

        target = tmp_path / "fleet.json"
        assert main(self.BASE + [
            "--crash-replica", "1:0.005", "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        summary = payload["summary"]
        assert summary["failovers"] > 0
        assert summary["shed"] == 0
        assert any(
            e["event"] == "replica-dead" for e in summary["health_events"]
        )

    def test_no_self_heal_leaves_sheds(self, capsys, tmp_path):
        import json

        target = tmp_path / "fleet.json"
        assert main(self.BASE + [
            "--crash-replica", "1:0.005", "--no-self-heal",
            "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["summary"]["failovers"] == 0
        assert payload["summary"]["shed"] > 0

    def test_rejects_bad_replica_fault_spec(self):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--crash-replica", "nonsense"])


class TestSampleSweepCli:
    def test_sweeps_grid_and_writes_json(self, capsys, tmp_path):
        import json

        target = tmp_path / "sweep.json"
        assert main([
            "sample-sweep", "--dataset", "reddit", "--scale", "0.5",
            "--nodes", "2", "--samplers", "uniform,labor",
            "--fanouts", "3,5;2,4", "--kappas", "0,0.5",
            "--batch-size", "32", "--epochs", "1", "--json", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "labor" in out
        payload = json.loads(target.read_text())
        # 2 samplers x 2 fanout groups x 2 kappas x 1 cache capacity.
        assert len(payload["rows"]) == 8
        for row in payload["rows"]:
            assert row["epoch_s"] > 0
            assert row["comm_bytes"] >= 0

    def test_rejects_empty_fanouts(self):
        with pytest.raises(SystemExit):
            main(["sample-sweep", "--dataset", "reddit", "--scale", "0.5",
                  "--fanouts", ";"])


class TestExplainPassFlagsCli:
    BASE = ["explain-plan", "--dataset", "cora", "--scale", "0.5",
            "--nodes", "2"]

    def test_renders_pass_annotations(self, capsys):
        assert main(self.BASE + [
            "--fuse-pass", "--pipeline-pass", "--ring-pass",
        ]) == 0
        out = capsys.readouterr().out
        assert "passes: fuse-scatter-gather, chunk-pipeline, ring-reorder" \
            in out
        assert "FusedScatterGather(" in out
        assert "reducer=weighted_sum" in out
        assert "pipeline-depth=4" in out
        assert "ring-order=1" in out
        assert "Scatter/Edge/Gather" not in out

    def test_json_carries_pass_annotations(self, capsys, tmp_path):
        import json

        target = tmp_path / "program.json"
        assert main(self.BASE + [
            "--fuse-pass", "--pipeline-pass", "--ring-pass",
            "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["passes"] == [
            "fuse-scatter-gather", "chunk-pipeline", "ring-reorder",
        ]
        layers = payload["layers"]
        assert all(l["fused_reducer"] == "weighted_sum" for l in layers)
        annotated = [l for l in layers if l["exchange_bytes"] > 0]
        assert annotated
        for l in annotated:
            assert l["pipeline_depth"] == 4
            assert l["ring_order"] == [1]
        kinds = [s["kind"] for s in layers[0]["workers"][0]["steps"]]
        assert "fused_scatter_gather" in kinds

    def test_default_run_has_no_annotations(self, capsys):
        assert main(list(self.BASE)) == 0
        out = capsys.readouterr().out
        assert "passes: (none)" in out
        assert "Scatter/Edge/Gather" in out
        assert "FusedScatterGather(" not in out
        assert "pipeline-depth" not in out


class TestExplainSampledCli:
    def test_renders_sampled_rounds(self, capsys):
        assert main([
            "explain-plan", "--dataset", "reddit", "--scale", "0.5",
            "--nodes", "2", "--engine", "sampled", "--sampler", "labor",
            "--fanouts", "3,5", "--batch-size", "16", "--batches", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "sampled program" in out
        assert "sampler=labor" in out
        assert "round 0" in out

    def test_sampled_flag_with_default_engine(self, capsys, tmp_path):
        import json

        target = tmp_path / "program.json"
        assert main([
            "explain-plan", "--dataset", "reddit", "--scale", "0.5",
            "--nodes", "2", "--sampled", "--batch-size", "16",
            "--fanouts", "3,5", "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["engine"] == "sampled"
        assert payload["rounds"]


class TestTrainSampledCli:
    def test_trains_with_sampled_engine(self, capsys):
        assert main([
            "train", "--dataset", "reddit", "--scale", "0.5", "--nodes", "2",
            "--engine", "sampled", "--sampler", "labor", "--fanouts", "3,5",
            "--kappa", "0.5", "--batch-size", "16", "--epochs", "2",
            "--eval-every", "2",
        ]) == 0
        assert "best accuracy" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["train", "--dataset", "cora", "--engine", "magic"])

    def test_rejects_unknown_serve_mode(self):
        with pytest.raises(SystemExit):
            main(["serve", "--dataset", "cora", "--serve-mode", "magic"])
