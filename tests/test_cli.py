"""Command-line interface."""

import pytest

from repro.cli import main


class TestDatasets:
    def test_lists_catalog(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ["google", "reddit", "twitter", "pubmed"]:
            assert name in out
        assert "paper |V|" in out


class TestProbe:
    def test_prints_constants(self, capsys):
        assert main(["probe", "--dataset", "cora", "--scale", "0.2",
                     "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "T_v" in out and "T_c" in out


class TestCompare:
    def test_compares_engines(self, capsys):
        assert main(["compare", "--dataset", "google", "--scale", "0.2",
                     "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        for engine in ["depcache", "depcomm", "hybrid"]:
            assert engine in out
        assert "best:" in out


class TestAnalyze:
    def test_report_and_recommendation(self, capsys):
        assert main(["analyze", "--dataset", "pokec", "--scale", "0.3",
                     "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "replication" in out
        assert "recommendation:" in out

    def test_partitioner_option(self, capsys):
        assert main(["analyze", "--dataset", "google", "--scale", "0.2",
                     "--nodes", "4", "--partitioner", "metis"]) == 0
        assert "metis" in capsys.readouterr().out


class TestTrain:
    def test_trains_and_reports(self, capsys):
        assert main([
            "train", "--dataset", "reddit", "--scale", "0.3",
            "--nodes", "2", "--epochs", "4", "--eval-every", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "best accuracy" in out
        assert "cluster time" in out

    def test_checkpoint_written(self, capsys, tmp_path):
        target = tmp_path / "ckpt"
        assert main([
            "train", "--dataset", "reddit", "--scale", "0.3",
            "--nodes", "2", "--epochs", "2", "--eval-every", "2",
            "--checkpoint", str(target),
        ]) == 0
        assert (tmp_path / "ckpt.npz").exists()

    def test_unknown_dataset_errors(self):
        with pytest.raises(KeyError):
            main(["train", "--dataset", "nope", "--epochs", "1"])

    def test_oom_reported_as_error(self, capsys):
        code = main([
            "train", "--dataset", "reddit", "--engine", "depcache",
            "--arch", "gat", "--nodes", "16", "--epochs", "1",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["train", "--dataset", "cora", "--engine", "magic"])
