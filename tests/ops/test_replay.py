"""Record -> load -> replay round-trips, including tamper detection."""

import copy
import json

import pytest

from repro.ops import (
    SCHEMA_VERSION,
    bundle_from_result,
    load_bundle,
    replay_bundle,
    save_bundle,
)

ALL_PROBLEMS = [
    "serve-hotspot-burn",
    "serve-replica-crash",
    "serve-slo-burn",
    "train-cache-thrash",
    "train-crash-permanent",
    "train-link-degraded",
    "train-straggler",
]


@pytest.mark.parametrize("name", ALL_PROBLEMS)
class TestRoundTrip:
    def test_replay_reproduces_the_run_bit_identically(
        self, mitigated_runs, tmp_path, name
    ):
        path = save_bundle(mitigated_runs[name], str(tmp_path / name))
        bundle = load_bundle(path)
        report = replay_bundle(bundle)
        assert report.identical, report.mismatches
        assert report.mismatches == []
        assert report.verdict is not None
        assert report.verdict.to_dict() == bundle["verdict"]
        assert report.grade.to_dict() == bundle["grade"]
        assert report.name == name
        assert report.seed == 0

    def test_bundle_is_json_stable(self, mitigated_runs, name):
        # Everything the recorder emits must survive a JSON cycle
        # unchanged (no numpy scalars, no float drift).
        bundle = bundle_from_result(mitigated_runs[name])
        assert json.loads(json.dumps(bundle)) == bundle


class TestTamperDetection:
    def test_tampered_verdict_diverges(self, mitigated_runs):
        bundle = bundle_from_result(mitigated_runs["train-straggler"])
        tampered = copy.deepcopy(bundle)
        tampered["verdict"]["worker"] = 0
        report = replay_bundle(tampered)
        assert not report.identical
        assert not report.verdict_match
        assert any("verdict" in m for m in report.mismatches)

    def test_tampered_grade_diverges(self, mitigated_runs):
        bundle = bundle_from_result(mitigated_runs["train-cache-thrash"])
        tampered = copy.deepcopy(bundle)
        tampered["grade"]["overall"] = 0.0
        report = replay_bundle(tampered)
        assert not report.identical
        assert not report.grade_match

    def test_tampered_ledger_diverges_from_stored_windows(
        self, mitigated_runs
    ):
        # For serving runs the raw request ledger is the source of
        # truth: editing one latency must contradict the stored windows.
        bundle = bundle_from_result(mitigated_runs["serve-slo-burn"])
        tampered = copy.deepcopy(bundle)
        row = next(
            r for r in tampered["ledger"]
            if not r["shed"] and r["finish_s"] is not None
        )
        row["finish_s"] = row["finish_s"] + 10.0
        report = replay_bundle(tampered)
        assert not report.observations_match
        assert any("ledger" in m for m in report.mismatches)


class TestBundleIO:
    def test_save_appends_json_suffix(self, mitigated_runs, tmp_path):
        path = save_bundle(
            mitigated_runs["train-straggler"], str(tmp_path / "run")
        )
        assert path.endswith("run.json")

    def test_unknown_schema_rejected(self, mitigated_runs, tmp_path):
        bundle = bundle_from_result(mitigated_runs["train-straggler"])
        bundle["schema"] = SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(bundle))
        with pytest.raises(ValueError, match="schema"):
            load_bundle(str(path))

    def test_bundle_ships_a_chrome_trace(self, mitigated_runs, tmp_path):
        path = save_bundle(
            mitigated_runs["train-link-degraded"], str(tmp_path / "b")
        )
        trace = load_bundle(path)["trace"]
        assert trace["traceEvents"]
        names = {e["name"] for e in trace["traceEvents"]}
        assert "thread_name" in names  # worker metadata present
        assert {"gpu", "net_send"} <= names  # activity slices present
