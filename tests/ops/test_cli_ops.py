"""CLI surface of the ops subsystem: list, run, grade, replay."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One CLI run of the cheapest problem with --record and --json."""
    out = tmp_path_factory.mktemp("ops-cli")
    bundle = out / "bundle.json"
    payload = out / "run.json"
    rc = main([
        "ops", "run", "train-cache-thrash",
        "--record", str(bundle), "--json", str(payload),
    ])
    return rc, bundle, payload


class TestList:
    def test_lists_all_problems(self, capsys, tmp_path):
        target = tmp_path / "problems.json"
        assert main(["ops", "list", "--json", str(target)]) == 0
        out = capsys.readouterr().out
        for name in ("train-straggler", "train-link-degraded",
                     "train-crash-permanent", "train-cache-thrash",
                     "serve-slo-burn"):
            assert name in out
        specs = json.loads(target.read_text())["problems"]
        assert len(specs) >= 5

    def test_unknown_problem_fails_loudly(self):
        with pytest.raises(KeyError, match="unknown ops problem"):
            main(["ops", "run", "no-such-problem"])


class TestRun:
    def test_run_records_a_bundle_and_grades(self, recorded):
        rc, bundle, payload = recorded
        assert rc == 0
        assert bundle.exists()
        report = json.loads(payload.read_text())
        entry = report["problems"]["train-cache-thrash"]
        assert entry["verdict"]["kind"] == "cache-thrash"
        assert entry["grade"]["overall"] > 0.5
        assert entry["aborted"] is False

    def test_bundle_is_schema_one(self, recorded):
        _, bundle, _ = recorded
        data = json.loads(bundle.read_text())
        assert data["schema"] == 1
        assert data["problem"]["name"] == "train-cache-thrash"
        assert data["observations"]
        assert data["trace"]["traceEvents"]


class TestReplayAndGrade:
    def test_replay_exits_zero_on_identity(self, recorded, capsys, tmp_path):
        _, bundle, _ = recorded
        target = tmp_path / "replay.json"
        assert main(["ops", "replay", str(bundle),
                     "--json", str(target)]) == 0
        assert "identical" in capsys.readouterr().out
        assert json.loads(target.read_text())["identical"] is True

    def test_replay_exits_nonzero_on_divergence(
        self, recorded, capsys, tmp_path
    ):
        _, bundle, _ = recorded
        data = json.loads(bundle.read_text())
        data["verdict"]["layer"] = 99
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(data))
        assert main(["ops", "replay", str(tampered)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out

    def test_grade_matches_the_recorded_grade(
        self, recorded, capsys, tmp_path
    ):
        _, bundle, _ = recorded
        target = tmp_path / "grade.json"
        assert main(["ops", "grade", str(bundle),
                     "--json", str(target)]) == 0
        recorded_grade = json.loads(bundle.read_text())["grade"]
        regraded = json.loads(target.read_text())["grade"]
        assert regraded == recorded_grade
