"""Problem registry and spec validation."""

import pytest

from repro.ops import KINDS, OpsProblem, get_problem, list_problems, register


class TestRegistry:
    def test_required_scenarios_registered(self):
        kinds = {p.kind for p in list_problems()}
        assert kinds == set(KINDS)  # all five degradation classes

    def test_at_least_five_problems(self):
        assert len(list_problems()) >= 5

    def test_listing_is_sorted_and_stable(self):
        names = [p.name for p in list_problems()]
        assert names == sorted(names)
        assert names == [p.name for p in list_problems()]

    def test_get_problem_roundtrip(self):
        for problem in list_problems():
            assert get_problem(problem.name) is problem

    def test_unknown_problem_lists_known_names(self):
        with pytest.raises(KeyError, match="train-straggler"):
            get_problem("no-such-problem")

    def test_duplicate_registration_rejected(self):
        existing = list_problems()[0]
        with pytest.raises(ValueError, match="already registered"):
            register(existing)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            OpsProblem(name="x", kind="gremlins", description="")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            OpsProblem(
                name="x", kind="straggler", description="",
                workload="batch",
            )

    def test_unknown_mitigation_rejected(self):
        with pytest.raises(ValueError, match="mitigation"):
            OpsProblem(
                name="x", kind="straggler", description="",
                mitigation="reboot",
            )

    def test_injection_must_follow_baseline(self):
        with pytest.raises(ValueError, match="warmup"):
            OpsProblem(
                name="x", kind="straggler", description="",
                inject_epoch=2, warmup_epochs=1, baseline_epochs=3,
            )

    def test_spec_dict_round_trips(self):
        problem = get_problem("train-straggler")
        assert OpsProblem(**problem.spec_dict()) == problem
