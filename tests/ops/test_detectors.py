"""Detection pipeline on synthetic observation streams.

Each scenario feeds hand-built observations -- no engine run -- so
these tests pin the decision rules themselves: which signal trips
which verdict, and that healthy streams stay quiet.
"""

import json

import pytest

from repro.ops import (
    CrashObservation,
    DetectionPipeline,
    EpochObservation,
    Verdict,
    WindowObservation,
    observation_from_dict,
)

N = 4


def make_epoch(
    epoch,
    *,
    gpu=(0.5,) * N,
    cpu=(0.2,) * N,
    send=(0.1,) * N,
    recv=(0.1,) * N,
    idle=(0.2,) * N,
    layer_bytes=(1000.0, 2000.0),
    refresh=(0.0, 0.0),
):
    t0 = float(epoch - 1)
    return EpochObservation(
        epoch=epoch, t_start=t0, t_end=t0 + 1.0, num_workers=N,
        gpu_s=gpu, cpu_s=cpu, net_send_s=send, net_recv_s=recv,
        idle_s=idle, layer_bytes=layer_bytes, layer_refresh_bytes=refresh,
        cache_hits=100, cache_misses=5,
    )


def make_window(window, *, p95=1.0, worker_mean=None, shed=0):
    return WindowObservation(
        window=window, t_start=float(window), t_end=float(window) + 1.0,
        num_workers=N, offered=40, served=40 - shed, shed=shed,
        p50_s=p95 * 0.5, p95_s=p95, mean_s=p95 * 0.6,
        worker_mean_s=worker_mean or {w: p95 * 0.6 for w in range(N)},
        worker_served={w: 10 for w in range(N)},
    )


class TestHealthyStreams:
    def test_no_false_positive_on_steady_epochs(self):
        pipeline = DetectionPipeline()
        for e in range(1, 12):
            assert pipeline.observe(make_epoch(e)) is None

    def test_no_false_positive_on_steady_windows(self):
        pipeline = DetectionPipeline(baseline_windows=3)
        for w in range(12):
            assert pipeline.observe(make_window(w)) is None

    def test_warmup_epochs_are_ignored(self):
        pipeline = DetectionPipeline(warmup_epochs=2)
        # A wildly imbalanced warmup epoch must not trip detection.
        wild = make_epoch(1, gpu=(0.5, 0.5, 8.0, 0.5))
        assert pipeline.observe(wild) is None
        assert pipeline.observe(make_epoch(2)) is None
        # ... but the same imbalance after warmup does.
        assert pipeline.observe(make_epoch(3, gpu=(0.5, 0.5, 8.0, 0.5))) \
            is not None

    def test_unknown_observation_rejected(self):
        with pytest.raises(TypeError):
            DetectionPipeline().observe(object())


class TestScenarioDetection:
    def test_straggler_blamed_on_slow_worker(self):
        pipeline = DetectionPipeline()
        for e in range(1, 4):
            assert pipeline.observe(make_epoch(e)) is None
        verdict = pipeline.observe(
            make_epoch(4, gpu=(0.5, 0.5, 4.0, 0.5),
                       idle=(3.0, 3.0, 0.0, 3.0))
        )
        assert verdict is not None
        assert verdict.kind == "straggler"
        assert verdict.worker == 2
        assert verdict.unit == 4
        assert verdict.evidence["compute_ratio"] >= 1.6

    def test_link_degradation_blamed_on_sender(self):
        pipeline = DetectionPipeline()
        verdict = pipeline.observe(
            make_epoch(4, send=(0.1, 1.5, 0.1, 0.1),
                       recv=(0.5, 0.5, 0.5, 0.5))
        )
        assert verdict is not None
        assert verdict.kind == "link"
        assert verdict.worker == 1
        # Flat receive spread => every link out of the sender degraded.
        assert verdict.link == (1, None)

    def test_link_destination_localized_when_one_receiver_stands_out(self):
        pipeline = DetectionPipeline()
        verdict = pipeline.observe(
            make_epoch(4, send=(0.1, 1.5, 0.1, 0.1),
                       recv=(0.1, 0.1, 0.1, 0.9))
        )
        assert verdict is not None
        assert verdict.kind == "link"
        assert verdict.link == (1, 3)

    def test_crash_observation_yields_crash_verdict(self):
        pipeline = DetectionPipeline()
        verdict = pipeline.observe(
            CrashObservation(epoch=4, detected_at_s=3.2, worker=1,
                             permanent=True)
        )
        assert verdict is not None
        assert verdict.kind == "crash"
        assert verdict.worker == 1
        assert verdict.detected_at_s == 3.2

    def test_cache_thrash_blamed_on_refresh_layer(self):
        pipeline = DetectionPipeline()
        verdict = pipeline.observe(
            make_epoch(6, layer_bytes=(1000.0, 2000.0),
                       refresh=(800.0, 1900.0))
        )
        assert verdict is not None
        assert verdict.kind == "cache-thrash"
        assert verdict.layer == 2  # layer moving the most refresh bytes
        assert verdict.evidence["refresh_fraction"] == pytest.approx(0.9)

    def test_slo_burn_blamed_on_hot_worker(self):
        pipeline = DetectionPipeline(baseline_windows=3)
        for w in range(3):
            assert pipeline.observe(make_window(w, p95=1.0)) is None
        verdict = pipeline.observe(
            make_window(3, p95=2.4,
                        worker_mean={0: 0.6, 1: 2.8, 2: 0.6, 3: 0.6})
        )
        assert verdict is not None
        assert verdict.kind == "slo-burn"
        assert verdict.worker == 1
        assert verdict.evidence["burn"] == pytest.approx(2.4)

    def test_slo_burn_without_hot_worker_leaves_blame_open(self):
        pipeline = DetectionPipeline(baseline_windows=2)
        for w in range(2):
            assert pipeline.observe(make_window(w, p95=1.0)) is None
        verdict = pipeline.observe(make_window(2, p95=3.0))
        assert verdict is not None
        assert verdict.kind == "slo-burn"
        assert verdict.worker is None


class TestSerialization:
    def test_params_rebuild_equivalent_pipeline(self):
        a = DetectionPipeline(baseline_windows=2, compute_threshold=2.0)
        b = DetectionPipeline(**a.params())
        assert a.params() == b.params()
        stream = [make_window(0), make_window(1), make_window(2, p95=9.0)]
        va = [a.observe(o) for o in stream][-1]
        vb = [b.observe(o) for o in stream][-1]
        assert va is not None and vb is not None
        assert va.to_dict() == vb.to_dict()

    def test_observation_dict_round_trip(self):
        for obs in (
            make_epoch(3),
            make_window(2),
            CrashObservation(epoch=5, detected_at_s=1.0, worker=2,
                             permanent=False),
        ):
            clone = observation_from_dict(
                json.loads(json.dumps(obs.to_dict()))
            )
            assert clone == obs
            assert clone.to_dict() == obs.to_dict()

    def test_verdict_dict_round_trip(self):
        verdict = Verdict(
            kind="link", detected_at_s=0.0123456789, unit=4,
            worker=1, link=(1, None),
            evidence={"send_ratio": 2.5, "recv_ratio": 1.0},
        )
        clone = Verdict.from_dict(json.loads(json.dumps(verdict.to_dict())))
        assert clone == verdict
        assert clone.to_dict() == verdict.to_dict()

    def test_float_round_trip_is_exact(self):
        # JSON floats serialise via repr, so irrational-looking values
        # must survive a dump/load cycle bit-for-bit.
        vals = (0.1 + 0.2, 1.0 / 3.0, 2.0 ** -40, 0.1)
        obs = make_epoch(1, gpu=vals)
        clone = observation_from_dict(json.loads(json.dumps(obs.to_dict())))
        assert clone.gpu_s == vals
