"""Fleet-specific ops problems: replica crash and hotspot burn.

The generic verdict/grade/replay matrix in ``test_harness.py`` and
``test_replay.py`` already covers both problems; these tests pin the
fleet-only artifacts -- per-replica ledger fields, the quarantine and
scale-out mitigations acting on the live fleet, and the grade gap a
mitigated run must open over an unmitigated one.
"""

import pytest

from repro.ops import get_problem, run_problem

FLEET_PROBLEMS = ["serve-hotspot-burn", "serve-replica-crash"]


@pytest.mark.parametrize("name", FLEET_PROBLEMS)
class TestFleetRuns:
    def test_blame_matches_ground_truth(self, mitigated_runs, name):
        res = mitigated_runs[name]
        assert res.verdict is not None
        assert res.verdict.kind == res.ground_truth.kind
        assert res.verdict.worker == res.ground_truth.worker
        assert res.verdict.detected_at_s >= res.ground_truth.start_s

    def test_ledger_records_carry_replica_attribution(
        self, mitigated_runs, name
    ):
        records = mitigated_runs[name].ledger_records
        assert records
        served = [r for r in records if not r["shed"]]
        assert served
        assert all(r["replica"] >= 0 for r in served)
        # More than one replica actually answered traffic.
        assert len({r["replica"] for r in served}) > 1

    def test_mitigation_beats_unmitigated(self, mitigated_runs, name):
        unmitigated = run_problem(get_problem(name), seed=0, mitigate=False)
        assert unmitigated.mitigation is None
        assert not unmitigated.grade.mitigation.applied
        mitigated = mitigated_runs[name]
        assert mitigated.grade.mitigation.recovered
        assert mitigated.grade.overall > unmitigated.grade.overall


class TestReplicaCrashMitigation:
    def test_quarantine_stops_the_bleeding(self, mitigated_runs):
        res = mitigated_runs["serve-replica-crash"]
        assert res.mitigation is not None
        assert res.mitigation.name == "failover"
        blamed = res.mitigation.detail["quarantined_replica"]
        assert blamed == res.problem.fault_replica
        # Post-mitigation traffic never lands on the quarantined
        # replica; its sheds all predate (or ride) the verdict window.
        width = res.problem.window_requests
        post = [
            r for r in res.ledger_records
            if r["req_id"] >= (res.verdict.unit + 1) * width
        ]
        assert post
        assert all(not r["shed"] for r in post)
        assert all(r["replica"] != blamed for r in post)


class TestHotspotMitigation:
    def test_scale_out_spins_up_a_charged_replica(self, mitigated_runs):
        res = mitigated_runs["serve-hotspot-burn"]
        assert res.mitigation is not None
        assert res.mitigation.name == "scale-out"
        detail = res.mitigation.detail
        assert detail["scaled"]
        assert detail["new_replica"] == res.problem.replicas
        assert detail["transition_s"] > 0
        assert detail["migrated_bytes"] > 0

    def test_new_replica_absorbs_traffic(self, mitigated_runs):
        res = mitigated_runs["serve-hotspot-burn"]
        new_replica = res.mitigation.detail["new_replica"]
        assert any(
            r["replica"] == new_replica and not r["shed"]
            for r in res.ledger_records
        )
