"""Shared ops fixtures: one mitigated run per registered problem.

The end-to-end runs are the expensive part of this suite (each charges
a full training or serving workload), so they run once per session and
every test shares the results.
"""

import pytest

from repro.ops import list_problems, run_problem


@pytest.fixture(scope="session")
def mitigated_runs():
    """{name: OpsRunResult} for every registered problem, seed 0."""
    return {
        p.name: run_problem(p, seed=0, mitigate=True)
        for p in list_problems()
    }
