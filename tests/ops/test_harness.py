"""End-to-end problem runs: verdicts, grades, determinism.

All mitigated runs come from the session-scoped ``mitigated_runs``
fixture (one engine run per problem); assertions use conservative
thresholds so detector-tuning tweaks don't break them.
"""

import pytest

from repro.cluster.trace import timeline_to_chrome_trace
from repro.ops import (
    WindowObservation,
    bundle_from_result,
    derive_sub_seed,
    get_problem,
    run_problem,
)

# What each built-in problem's verdict must pin, validated against the
# injected ground truth (fault_worker / wildcard link / cached layer).
EXPECTED_BLAME = {
    "train-straggler": {"kind": "straggler", "worker": 2},
    "train-link-degraded": {"kind": "link", "link": (1, None)},
    "train-crash-permanent": {"kind": "crash", "worker": 2},
    "train-cache-thrash": {"kind": "cache-thrash", "layer": 2},
    "serve-slo-burn": {"kind": "slo-burn", "worker": 1},
    "serve-replica-crash": {"kind": "replica-crash", "worker": 1},
    # The hot replica depends on where the router pins the Zipf head;
    # blame correctness is checked against the run's own ground truth.
    "serve-hotspot-burn": {"kind": "hotspot-burn"},
}

ALL_PROBLEMS = sorted(EXPECTED_BLAME)


@pytest.mark.parametrize("name", ALL_PROBLEMS)
class TestMitigatedRuns:
    def test_verdict_localizes_the_fault(self, mitigated_runs, name):
        res = mitigated_runs[name]
        expected = EXPECTED_BLAME[name]
        assert res.verdict is not None
        assert res.verdict.kind == expected["kind"]
        for attr in ("worker", "link", "layer"):
            if attr in expected:
                assert getattr(res.verdict, attr) == expected[attr]
        assert res.verdict.detected_at_s >= res.ground_truth.start_s

    def test_detection_grade(self, mitigated_runs, name):
        g = mitigated_runs[name].grade.detection
        assert g.detected
        assert g.kind_correct
        assert g.blame_score == 1.0
        assert g.score >= 0.9

    def test_mitigation_grade(self, mitigated_runs, name):
        res = mitigated_runs[name]
        assert not res.aborted
        assert res.mitigation is not None
        assert res.mitigation.name == res.problem.mitigation
        g = res.grade.mitigation
        assert g.applied
        assert g.recovered
        assert g.recovery_s < float("inf")
        assert g.score >= 0.3
        assert res.grade.overall >= 0.6

    def test_pipeline_saw_only_observables(self, mitigated_runs, name):
        # The pipeline params recorded for replay are exactly the spec's
        # warmup/baseline plus declared detector overrides -- nothing
        # derived from the injected schedule.
        res = mitigated_runs[name]
        expected = {
            "warmup_epochs": res.problem.warmup_epochs,
            "baseline_windows": res.problem.baseline_epochs,
        }
        expected.update(res.problem.detector_params)
        for key, value in expected.items():
            assert res.pipeline_params[key] == value


class TestRunArtifacts:
    def test_shrink_records_migration_span(self, mitigated_runs):
        for name in ("train-straggler", "train-crash-permanent"):
            trace = timeline_to_chrome_trace(mitigated_runs[name].timeline)
            spans = [
                e for e in trace["traceEvents"]
                if e.get("cat") == "span" and e["name"] == "migration"
            ]
            assert spans, f"{name}: no migration span in the trace"
            assert spans[0]["args"]["direction"] == "shrink"

    def test_serving_run_keeps_raw_ledger(self, mitigated_runs):
        res = mitigated_runs["serve-slo-burn"]
        assert res.ledger_records
        req_ids = [r["req_id"] for r in res.ledger_records]
        assert req_ids == sorted(req_ids)
        assert all(
            isinstance(o, WindowObservation) for o in res.observations
        )
        # The shed mitigation must actually shed load post-verdict.
        assert any(r["shed"] for r in res.ledger_records)

    def test_cache_thrash_truth_starts_at_injection(self, mitigated_runs):
        res = mitigated_runs["train-cache-thrash"]
        truth = res.ground_truth
        assert truth.kind == "cache-thrash"
        assert truth.layer == 2
        # Injection happens mid-run, not at t=0.
        assert truth.start_s > 0


class TestUnmitigated:
    def test_crash_without_mitigation_aborts(self, mitigated_runs):
        problem = get_problem("train-crash-permanent")
        res = run_problem(problem, seed=0, mitigate=False)
        assert res.aborted
        assert res.mitigation is None
        assert res.verdict is not None  # detection still works
        assert res.grade.mitigation.score == 0.0
        assert res.grade.mitigation.recovery_s == float("inf")
        # Mitigating must pay: same seed, strictly better overall grade.
        assert (
            mitigated_runs["train-crash-permanent"].grade.overall
            > res.grade.overall
        )


class TestDeterminism:
    def test_same_seed_reproduces_the_bundle_exactly(self, mitigated_runs):
        problem = get_problem("train-cache-thrash")
        rerun = run_problem(problem, seed=0, mitigate=True)
        assert (
            bundle_from_result(rerun)
            == bundle_from_result(mitigated_runs["train-cache-thrash"])
        )

    def test_sub_seeds_are_stable_and_stream_independent(self):
        assert derive_sub_seed(0, "graph") == derive_sub_seed(0, "graph")
        assert derive_sub_seed(0, "graph") != derive_sub_seed(0, "faults")
        assert derive_sub_seed(0, "graph") != derive_sub_seed(1, "graph")
        assert 0 <= derive_sub_seed(0, "workload") < 2 ** 31
