"""Analysis reports, Chrome trace export, LR schedulers, vertex cuts."""

import json

import numpy as np
import pytest

from repro.analysis import (
    analyze_dependencies,
    analyze_graph,
    gini,
    recommend_strategy,
)
from repro.cluster.timeline import Timeline
from repro.cluster.trace import save_chrome_trace, timeline_to_chrome_trace
from repro.graph import generators
from repro.partition.chunk import chunk_partition
from repro.partition.vertex_cut import (
    destination_vertex_cut,
    greedy_vertex_cut,
)
from repro.tensor.optim import SGD
from repro.tensor.schedulers import CosineAnnealingLR, StepLR, WarmupLR
from repro.tensor.tensor import Tensor


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.ones(10)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        values = np.zeros(100)
        values[0] = 100.0
        assert gini(values) > 0.9

    def test_empty(self):
        assert gini(np.array([])) == 0.0


class TestGraphReport:
    def test_local_graph_high_locality(self):
        g = generators.locality_graph(300, 1500, locality_width=0.005,
                                      global_fraction=0.02, seed=0)
        report = analyze_graph(g)
        assert report.chunk_locality > 0.8
        assert report.num_edges == g.num_edges

    def test_random_graph_low_locality(self):
        g = generators.erdos_renyi(300, 1500, seed=0)
        assert analyze_graph(g).chunk_locality < 0.3

    def test_hub_graph_high_gini(self):
        star = generators.star(100, inward=True)
        flat = generators.ring(100)
        assert analyze_graph(star).degree_gini > analyze_graph(flat).degree_gini

    def test_as_dict(self):
        report = analyze_graph(generators.ring(8))
        assert "avg_degree" in report.as_dict()


class TestDependencyReport:
    def test_fields_consistent(self, medium_graph):
        p = chunk_partition(medium_graph, 4)
        report = analyze_dependencies(medium_graph, p, num_layers=2, dim=8)
        assert report.num_workers == 4
        assert len(report.remote_deps_per_worker) == 4
        assert report.comm_bytes_per_layer == sum(
            report.remote_deps_per_worker) * 8 * 4
        assert 1.0 <= report.replication_factor <= 4.0

    def test_recommendations_follow_structure(self):
        local = generators.locality_graph(
            300, 900, locality_width=0.004, global_fraction=0.01, seed=0
        )
        dense = generators.complete(40)
        assert recommend_strategy(local, chunk_partition(local, 4)) == "depcache"
        assert recommend_strategy(dense, chunk_partition(dense, 4)) == "depcomm"


class TestChromeTrace:
    def test_events_and_metadata(self):
        tl = Timeline(2)
        tl.advance(0, "gpu", 1.0)
        tl.advance(1, "net_recv", 0.5, num_bytes=128)
        trace = timeline_to_chrome_trace(tl)
        kinds = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(kinds) == 2
        recv = next(e for e in kinds if e["name"] == "net_recv")
        assert recv["args"]["bytes"] == 128
        assert recv["dur"] == pytest.approx(0.5e6)
        names = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(names) == 2

    def test_save_roundtrip(self, tmp_path):
        tl = Timeline(1)
        tl.advance(0, "cpu", 0.1)
        path = save_chrome_trace(tl, tmp_path / "trace")
        assert path.suffix == ".json"
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"

    def test_engine_timeline_exports(self, small_graph, cluster2, tmp_path):
        from repro.core.model import GNNModel
        from repro.engines import DepCommEngine
        from repro.training.prep import prepare_graph

        graph = prepare_graph(small_graph, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=1)
        engine = DepCommEngine(graph, model, cluster2, record_timeline=True)
        engine.charge_epoch()
        path = save_chrome_trace(engine.timeline, tmp_path / "epoch")
        trace = json.loads(path.read_text())
        assert len(trace["traceEvents"]) > 4


class TestSchedulers:
    def make_opt(self, lr=1.0):
        return SGD([Tensor([0.0], requires_grad=True)], lr=lr)

    def test_step_lr_decays(self):
        sched = StepLR(self.make_opt(), step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_cosine_reaches_eta_min(self):
        sched = CosineAnnealingLR(self.make_opt(), t_max=10, eta_min=0.1)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        sched = CosineAnnealingLR(self.make_opt(), t_max=8)
        lrs = [sched.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_warmup_ramps_then_holds(self):
        sched = WarmupLR(self.make_opt(), warmup_epochs=4, start_factor=0.2)
        lrs = [sched.step() for _ in range(6)]
        assert lrs[0] < lrs[1] < lrs[2] < lrs[3] == 1.0 == lrs[5]

    def test_scheduler_mutates_optimizer(self):
        opt = self.make_opt()
        StepLR(opt, step_size=1, gamma=0.1).step()
        assert opt.lr == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(self.make_opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(self.make_opt(), t_max=0)
        with pytest.raises(ValueError):
            WarmupLR(self.make_opt(), warmup_epochs=0)


class TestVertexCut:
    def test_greedy_assigns_every_edge(self, medium_graph):
        cut = greedy_vertex_cut(medium_graph, 4, seed=1)
        assert len(cut.edge_assignment) == medium_graph.num_edges
        assert cut.edge_assignment.min() >= 0
        assert cut.edge_assignment.max() < 4

    def test_replication_bounds(self, medium_graph):
        cut = greedy_vertex_cut(medium_graph, 4, seed=1)
        rf = cut.replication_factor(medium_graph)
        assert 1.0 <= rf <= 4.0

    def test_greedy_beats_random_replication(self, medium_graph):
        greedy = greedy_vertex_cut(medium_graph, 4, seed=1)
        rng = np.random.default_rng(0)
        random_cut = greedy_vertex_cut(medium_graph, 4, seed=2)
        random_cut.edge_assignment = rng.integers(
            0, 4, medium_graph.num_edges
        )
        assert (
            greedy.replication_factor(medium_graph)
            <= random_cut.replication_factor(medium_graph) + 1e-9
        )

    def test_edge_balance(self, medium_graph):
        cut = greedy_vertex_cut(medium_graph, 4, seed=1)
        assert cut.edge_balance() < 1.5

    def test_destination_cut_matches_partitioning(self, medium_graph):
        p = chunk_partition(medium_graph, 4)
        cut = destination_vertex_cut(medium_graph, p.assignment)
        assert np.array_equal(
            cut.edge_assignment, p.assignment[medium_graph.dst]
        )
        # The engines' mirror count equals distinct remote sources.
        v = int(medium_graph.dst[0])
        assert p.owner(v) in cut.workers_of(medium_graph, v)

    def test_isolated_vertex_handled(self):
        from repro.graph.graph import Graph
        g = Graph(5, np.array([0]), np.array([1]))  # 2,3,4 isolated
        cut = greedy_vertex_cut(g, 2, seed=0)
        assert len(cut.masters) == 5
        assert cut.replication_factor(g) >= 1.0
