"""System-level property tests over random graphs (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.spec import ClusterSpec
from repro.core.mirror import MirrorExchange
from repro.core.model import GNNModel
from repro.engines import DepCommEngine
from repro.graph import generators
from repro.graph.khop import dependency_layers, khop_closure
from repro.partition import chunk_partition, hash_partition
from repro.training.prep import prepare_graph


def random_graph(seed: int, n_lo=12, n_hi=60):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(n_lo, n_hi))
    return generators.erdos_renyi(n, n * 3, seed=seed)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 500))
def test_khop_closure_edges_belong_to_closure(seed):
    g = random_graph(seed)
    seeds = np.arange(min(5, g.num_vertices))
    layers, edge_layers = khop_closure(g, seeds, 2)
    for t, eids in enumerate(edge_layers):
        # Every edge at step t targets a vertex in layer t's set.
        assert np.isin(g.dst[eids], layers[t]).all()
        # ...and its source is in the next (expanded) layer.
        assert np.isin(g.src[eids], layers[t + 1]).all()


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 500), st.integers(2, 5))
def test_dependency_layers_are_remote_in_neighbors(seed, m):
    g = random_graph(seed)
    if g.num_vertices < m:
        return
    p = chunk_partition(g, m)
    for w in range(m):
        deps = dependency_layers(g, p.part(w), 2)[0]
        assert (p.assignment[deps] != w).all()
        # Every dep really is an in-neighbor of an owned vertex.
        owned_mask = p.assignment == w
        in_nbrs = np.unique(g.src[owned_mask[g.dst]])
        assert np.isin(deps, in_nbrs).all()


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 300), st.integers(2, 4))
def test_mirror_exchange_conservation(seed, m):
    g = random_graph(seed)
    if g.num_vertices < m:
        return
    p = chunk_partition(g, m)
    comm = [
        dependency_layers(g, p.part(w), 1)[0] for w in range(m)
    ]
    exchange = MirrorExchange(p.assignment, comm, m)
    # Counts conserve the dependency multiset.
    assert exchange.counts.sum() == sum(len(c) for c in comm)
    # Per receiver, the recv lists partition its dependency set.
    for w in range(m):
        received = [ids for _, ids in exchange.recvs_to(w)]
        merged = (
            np.sort(np.concatenate(received)) if received
            else np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(merged, np.sort(comm[w]))
    # Send and recv views describe the same pairs.
    for w in range(m):
        for receiver, ids in exchange.sends_from(w):
            assert np.array_equal(exchange.recv_ids[(w, receiver)], ids)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 100))
def test_engine_runs_on_random_graphs(seed):
    g = random_graph(seed, n_lo=16, n_hi=40)
    generators.attach_features(g, 5, 3, seed=seed + 1)
    graph = prepare_graph(g, "gcn")
    model = GNNModel.gcn(5, 4, 3, seed=0)
    engine = DepCommEngine(graph, model, ClusterSpec.ecs(2))
    report = engine.run_epoch()
    assert report.epoch_time_s > 0
    assert np.isfinite(report.loss)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 200))
def test_partitioning_choice_does_not_change_numerics(seed):
    g = random_graph(seed, n_lo=20, n_hi=40)
    generators.attach_features(g, 5, 3, seed=seed + 1)
    graph = prepare_graph(g, "gcn")
    losses = []
    for partitioner in (chunk_partition, hash_partition):
        model = GNNModel.gcn(5, 4, 3, seed=0)
        engine = DepCommEngine(
            graph, model, ClusterSpec.ecs(2),
            partitioning=partitioner(graph, 2),
        )
        losses.append(engine.run_epoch().loss)
    assert losses[0] == pytest.approx(losses[1], rel=1e-5)
