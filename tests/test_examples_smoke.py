"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; these tests execute each
one in-process (module namespace, real main()) so API drift breaks CI
rather than users.  The slowest examples are capped via module
constants where they expose them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    # Examples guard their entry point with __main__, so run_path with
    # run_name="__main__" executes them fully.
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} printed nothing"
