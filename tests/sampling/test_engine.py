"""SampledTrainingEngine: IR compilation, determinism, caching."""

import numpy as np
import pytest

from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.sampling import (
    SampledTrainingEngine,
    describe_sampled_batches,
    render_sampled_batches,
)
from repro.tensor import optim
from repro.training.prep import prepare_graph


@pytest.fixture
def graph(small_graph):
    return prepare_graph(small_graph, "gcn")


def _engine(graph, cluster, **kwargs):
    kwargs.setdefault("fanouts", (3, 5))
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("seed", 0)
    model = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=1)
    return SampledTrainingEngine(graph, model, cluster, **kwargs)


class TestCompiledProgram:
    def test_gather_step_accounts_every_input(self, graph, cluster2):
        engine = _engine(graph, cluster2)
        desc = describe_sampled_batches(engine, num_batches=2)
        assert desc["rounds"], "no rounds compiled"
        for rnd in desc["rounds"]:
            for layer in rnd["layers"]:
                for worker in layer["workers"]:
                    gather = worker["steps"][0]
                    assert gather["kind"] == "get_from_dep_nbr"
                    assert (
                        gather["num_local"] + gather["num_fetch"]
                        + gather["num_cached"] + gather["num_recompute"]
                        == gather["num_inputs"]
                    )

    def test_only_bottom_layer_exchanges(self, graph, cluster2):
        engine = _engine(graph, cluster2)
        desc = describe_sampled_batches(engine, num_batches=1)
        layers = desc["rounds"][0]["layers"]
        assert layers[0]["exchange_bytes"] > 0
        for upper in layers[1:]:
            assert upper["exchange_bytes"] == 0

    def test_overlap_pass_applies_to_sampled_programs(self, graph, cluster2):
        engine = _engine(graph, cluster2, overlap_pass=True)
        desc = describe_sampled_batches(engine, num_batches=1)
        assert "overlap-exchange" in desc["rounds"][0]["passes"]

    def test_render_mentions_every_worker(self, graph, cluster2):
        engine = _engine(graph, cluster2)
        text = render_sampled_batches(engine, num_batches=1)
        assert "sampled program" in text
        assert "worker 0" in text and "worker 1" in text

    def test_dry_run_leaves_engine_untouched(self, graph, cluster2):
        a = _engine(graph, cluster2)
        b = _engine(graph, cluster2)
        describe_sampled_batches(a, num_batches=2)
        assert a.charge_epoch() == b.charge_epoch()


class TestDeterminism:
    def test_repeated_runs_bit_identical(self, graph, cluster2):
        reports = []
        for _ in range(2):
            engine = _engine(graph, cluster2)
            opt = optim.Adam(engine.model.parameters(), lr=0.01)
            reports.append([engine.run_epoch(opt) for _ in range(3)])
        a, b = reports
        assert [r.loss for r in a] == [r.loss for r in b]
        assert [r.epoch_time_s for r in a] == [r.epoch_time_s for r in b]

    def test_charge_epoch_matches_run_epoch_time(self, graph, cluster2):
        a = _engine(graph, cluster2)
        b = _engine(graph, cluster2)
        opt = optim.Adam(b.model.parameters(), lr=0.01)
        charged = a.charge_epoch()
        # run_epoch shuffles batches; charge_epoch keeps partition
        # order, so times agree only in distribution -- but both
        # engines must produce strictly positive, finite charges.
        ran = b.run_epoch(opt).epoch_time_s
        assert charged > 0 and np.isfinite(charged)
        assert ran > 0 and np.isfinite(ran)


class TestFeatureCache:
    def test_pinned_rows_monotone_in_capacity(self, graph, cluster2):
        pinned = []
        for mb in (0, 1 / 1024, 4 / 1024, 1):
            engine = _engine(
                graph, cluster2,
                feature_cache_bytes=int(mb * 1024 * 1024),
            )
            engine.charge_epoch()
            pinned.append(engine.last_epoch_stats["pinned_rows"])
        assert pinned[0] == 0
        assert all(a <= b for a, b in zip(pinned, pinned[1:])), pinned
        assert pinned[-1] > 0

    def test_cache_reduces_charged_time(self, graph, cluster2):
        cold = _engine(graph, cluster2)
        hot = _engine(graph, cluster2, feature_cache_bytes=1 << 20)
        assert hot.charge_epoch() <= cold.charge_epoch()


class TestEngineSurface:
    def test_registered_with_make_engine(self, graph, cluster2):
        engine = make_engine(
            "sampled", graph,
            GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=1),
            cluster2, fanouts=(3, 5), batch_size=8,
        )
        assert isinstance(engine, SampledTrainingEngine)
        assert engine.plan() is None

    def test_fanout_arity_checked(self, graph, cluster2):
        with pytest.raises(ValueError, match="fanout"):
            _engine(graph, cluster2, fanouts=(3,))

    def test_kappa_range_checked(self, graph, cluster2):
        with pytest.raises(ValueError, match="kappa"):
            _engine(graph, cluster2, kappa=1.5)

    def test_legacy_rng_excludes_kappa(self, graph, cluster2):
        with pytest.raises(ValueError, match="kappa"):
            _engine(graph, cluster2, kappa=0.5, legacy_rng=True)

    def test_training_reduces_loss_and_evaluates(self, graph, cluster2):
        engine = _engine(graph, cluster2)
        opt = optim.Adam(engine.model.parameters(), lr=0.02)
        first = engine.run_epoch(opt).loss
        for _ in range(6):
            last = engine.run_epoch(opt).loss
        assert last < first
        accuracy = engine.evaluate(graph.test_mask)
        assert 0.0 <= accuracy <= 1.0

    def test_last_epoch_stats_populated(self, graph, cluster2):
        engine = _engine(graph, cluster2)
        assert engine.last_epoch_stats is None
        engine.charge_epoch()
        stats = engine.last_epoch_stats
        assert stats["num_batches"] > 0
        assert stats["sampled_edges"] > 0
        assert stats["comm_bytes"] > 0
        assert stats["unique_remote"] > 0

    def test_plan_reset_between_epochs(self, graph, cluster2):
        engine = _engine(graph, cluster2)
        engine.charge_epoch()
        assert engine.plan_ is None and engine.program_ is None

    @pytest.mark.parametrize("sampler", ["labor", "ladies"])
    def test_alternative_samplers_train(self, graph, cluster2, sampler):
        engine = _engine(graph, cluster2, sampler=sampler)
        opt = optim.Adam(engine.model.parameters(), lr=0.01)
        report = engine.run_epoch(opt)
        assert report.loss > 0
        assert report.epoch_time_s > 0
