"""The sampler family: determinism, bounds, block chaining."""

import numpy as np
import pytest

from repro.sampling import SAMPLER_NAMES, make_sampler
from repro.sampling.samplers import LadiesSampler
from repro.training.prep import prepare_graph


@pytest.fixture
def graph(small_graph):
    return prepare_graph(small_graph, "gcn")


def _closures_equal(a, b):
    if a.num_sampled_edges != b.num_sampled_edges:
        return False
    if a.frontier_sizes != b.frontier_sizes:
        return False
    for ba, bb in zip(a.blocks, b.blocks):
        if not np.array_equal(ba.edge_src_global, bb.edge_src_global):
            return False
        if not np.array_equal(ba.input_vertices, bb.input_vertices):
            return False
        if not np.array_equal(ba.edge_weight, bb.edge_weight):
            return False
    return True


class TestDeterminism:
    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_same_key_same_closure(self, graph, name):
        seeds = np.arange(12)
        a = make_sampler(name, (3, 5), seed=7).sample_batch(
            graph, seeds, epoch=2, batch=1
        )
        b = make_sampler(name, (3, 5), seed=7).sample_batch(
            graph, seeds, epoch=2, batch=1
        )
        assert _closures_equal(a, b)

    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_epoch_changes_draw(self, graph, name):
        seeds = np.arange(12)
        sampler = make_sampler(name, (2, 3), seed=7)
        a = sampler.sample_batch(graph, seeds, epoch=0, batch=0)
        b = sampler.sample_batch(graph, seeds, epoch=1, batch=0)
        assert not _closures_equal(a, b)

    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_seed_changes_draw(self, graph, name):
        seeds = np.arange(12)
        a = make_sampler(name, (2, 3), seed=0).sample_batch(graph, seeds)
        b = make_sampler(name, (2, 3), seed=1).sample_batch(graph, seeds)
        assert not _closures_equal(a, b)


class TestBounds:
    @pytest.mark.parametrize("name", ["uniform", "labor"])
    def test_fanout_never_exceeded(self, graph, name):
        fanouts = (3, 5)
        closure = make_sampler(name, fanouts, seed=0).sample_batch(
            graph, np.arange(16)
        )
        # blocks[l-1] computes layer l; fanouts are listed top layer first.
        for block, fanout in zip(closure.blocks, reversed(fanouts)):
            counts = np.bincount(
                block.edge_dst_pos, minlength=block.num_outputs
            )
            assert counts.max() <= fanout

    def test_uniform_keeps_low_degree_vertices_whole(self, graph):
        fanout = 3
        closure = make_sampler("uniform", (fanout, 5), seed=0).sample_batch(
            graph, np.arange(16)
        )
        top = closure.blocks[-1]
        counts = np.bincount(top.edge_dst_pos, minlength=top.num_outputs)
        for v, c in zip(top.compute_vertices, counts):
            assert c == min(fanout, graph.csc.degree(int(v)))

    def test_ladies_budget_never_exceeded(self, graph):
        fanouts = (2, 3)
        seeds = np.arange(20)
        sampler = make_sampler("ladies", fanouts, seed=0)
        closure = sampler.sample_batch(graph, seeds)
        budget = fanouts[0] * len(seeds)
        assert len(np.unique(closure.blocks[-1].edge_src_global)) <= budget

    def test_ladies_reweights_kept_edges(self, graph):
        # Importance scales only ever grow edge weights (p <= 1/budget
        # per kept source), so the reweighted block dominates the raw
        # weights wherever sampling actually dropped candidates.
        sampler = LadiesSampler((2, 2), seed=0, budget_scale=0.25)
        closure = sampler.sample_batch(graph, np.arange(24))
        for block in closure.blocks:
            if block.num_edges:
                raw = graph.edge_weight[block.edge_ids]
                assert (block.edge_weight >= raw - 1e-12).all()

    def test_budget_scale_validated(self):
        with pytest.raises(ValueError, match="budget_scale"):
            LadiesSampler((2, 2), budget_scale=0.0)


class TestClosureShape:
    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_blocks_chain(self, graph, name):
        closure = make_sampler(name, (3, 5), seed=0).sample_batch(
            graph, np.arange(10)
        )
        assert np.array_equal(
            closure.blocks[0].compute_vertices,
            closure.blocks[1].input_vertices,
        )
        assert closure.frontier_sizes[0] == 10
        assert closure.num_layers == 2

    def test_frontier_sizes_match_blocks(self, graph):
        closure = make_sampler("uniform", (3, 5), seed=0).sample_batch(
            graph, np.arange(10)
        )
        assert closure.frontier_sizes[-1] == len(
            closure.blocks[0].input_vertices
        )


class TestValidation:
    def test_unknown_sampler(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            make_sampler("importance", (3, 5))

    def test_fanouts_must_be_positive(self):
        with pytest.raises(ValueError, match="fanouts must be positive"):
            make_sampler("uniform", (3, 0))
        with pytest.raises(ValueError, match="fanouts must be positive"):
            make_sampler("uniform", ())

    def test_legacy_rng_excludes_kappa(self, graph):
        sampler = make_sampler("uniform", (3, 5))
        with pytest.raises(ValueError, match="kappa"):
            sampler.sample_batch(
                graph, np.arange(4), kappa=0.5,
                legacy_rng=np.random.default_rng(0),
            )

    @pytest.mark.parametrize("name", ["labor", "ladies"])
    def test_only_uniform_has_legacy_mode(self, graph, name):
        sampler = make_sampler(name, (3, 5))
        with pytest.raises(ValueError, match="legacy"):
            sampler.sample_batch(
                graph, np.arange(4), legacy_rng=np.random.default_rng(0)
            )
