"""Batch dependency (kappa): zero-cost default, reuse, monotonicity."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.model import GNNModel
from repro.sampling import ReuseState, SampledTrainingEngine, make_sampler
from repro.training.prep import prepare_graph

KAPPA_GRID = (0.0, 0.3, 0.6, 1.0)


@pytest.fixture
def graph(small_graph):
    return prepare_graph(small_graph, "gcn")


def _engine(graph, cluster, *, sampler="uniform", kappa=0.0, seed=0,
            batch_size=8):
    model = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=1)
    return SampledTrainingEngine(
        graph, model, cluster, fanouts=(3, 5), batch_size=batch_size,
        sampler=sampler, kappa=kappa, seed=seed,
    )


class TestKappaZero:
    def test_state_is_inert_at_kappa_zero(self, graph):
        """kappa=0 must be bit-identical to fully independent batches:
        threading a ReuseState through changes nothing."""
        sampler = make_sampler("uniform", (3, 5), seed=0)
        state = ReuseState()
        seeds_a, seeds_b = np.arange(12), np.arange(6, 20)
        independent = [
            make_sampler("uniform", (3, 5), seed=0).sample_batch(
                graph, s, batch=i
            )
            for i, s in enumerate((seeds_a, seeds_b))
        ]
        threaded = [
            sampler.sample_batch(graph, s, batch=i, kappa=0.0, state=state)
            for i, s in enumerate((seeds_a, seeds_b))
        ]
        for a, b in zip(independent, threaded):
            assert a.frontier_sizes == b.frontier_sizes
            for ba, bb in zip(a.blocks, b.blocks):
                assert np.array_equal(ba.edge_src_global, bb.edge_src_global)
                assert np.array_equal(ba.edge_ids, bb.edge_ids)
            assert b.reused_vertices == 0

    def test_engine_kappa_zero_matches_engine_default(self, graph, cluster2):
        a = _engine(graph, cluster2, kappa=0.0)
        b = _engine(graph, cluster2)
        assert a.charge_epoch() == b.charge_epoch()
        assert a.last_epoch_stats["comm_bytes"] == \
            b.last_epoch_stats["comm_bytes"]
        assert a.last_epoch_stats["reused_rows"] == 0


class TestReuse:
    def test_kappa_one_reuses_lists(self, graph, cluster2):
        engine = _engine(graph, cluster2, kappa=1.0)
        engine.charge_epoch()
        stats = engine.last_epoch_stats
        assert stats["reused_rows"] > 0
        assert stats["saved_bytes"] > 0

    def test_reused_lists_are_replayed_verbatim(self, graph):
        """A vertex that reuses serves the previous batch's realized
        neighbor list, edge for edge."""
        sampler = make_sampler("uniform", (3, 5), seed=0)
        state = ReuseState()
        first = sampler.sample_batch(
            graph, np.arange(12), batch=0, kappa=1.0, state=state
        )
        second = sampler.sample_batch(
            graph, np.arange(12), batch=1, kappa=1.0, state=state
        )
        assert second.reused_vertices > 0
        bottom_first, bottom_second = first.blocks[0], second.blocks[0]
        for v in bottom_second.compute_vertices:
            pos_2 = np.flatnonzero(
                bottom_second.compute_vertices == v
            )[0]
            in_first = np.flatnonzero(bottom_first.compute_vertices == v)
            if not len(in_first):
                continue
            eids_1 = np.sort(
                bottom_first.edge_ids[bottom_first.edge_dst_pos == in_first[0]]
            )
            eids_2 = np.sort(
                bottom_second.edge_ids[bottom_second.edge_dst_pos == pos_2]
            )
            assert np.array_equal(eids_1, eids_2)


class TestMonotonicity:
    @pytest.mark.parametrize("sampler", ["uniform", "labor"])
    def test_comm_bytes_monotone_on_grid(self, graph, cluster2, sampler):
        volumes = []
        for kappa in KAPPA_GRID:
            engine = _engine(graph, cluster2, sampler=sampler, kappa=kappa)
            engine.charge_epoch()
            volumes.append(engine.last_epoch_stats["comm_bytes"])
        assert all(a >= b for a, b in zip(volumes, volumes[1:])), volumes
        assert volumes[-1] < volumes[0], volumes

    # The graph/cluster fixtures are read-only; engines never mutate them.
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=40),
        lo=st.sampled_from(KAPPA_GRID[:-1]),
        hi=st.sampled_from(KAPPA_GRID[1:]),
        sampler=st.sampled_from(["uniform", "labor"]),
    )
    def test_raising_kappa_never_adds_comm(
        self, graph, cluster2, seed, lo, hi, sampler
    ):
        if lo > hi:
            lo, hi = hi, lo
        a = _engine(graph, cluster2, sampler=sampler, kappa=lo, seed=seed)
        b = _engine(graph, cluster2, sampler=sampler, kappa=hi, seed=seed)
        a.charge_epoch()
        b.charge_epoch()
        assert (
            b.last_epoch_stats["comm_bytes"]
            <= a.last_epoch_stats["comm_bytes"]
        )
