"""Facade regression: the rewritten distdgl engine vs its golden run.

``tests/data/distdgl_golden.json`` was recorded against the
pre-subsystem ``engines/sampling.py`` (a standalone engine with its own
sampling loop and private charging formulas).  The rewrite keeps the
numerics bit-for-bit -- same sequential RNG draw order, same loss
accumulation order -- while the *charged time* now flows through the
compiled Program IR and probe-derived constants, so times are asserted
within a band rather than exactly.
"""

import json
from pathlib import Path

import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import SamplingEngine
from repro.graph import generators
from repro.tensor import optim
from repro.training.prep import prepare_graph

GOLDEN = Path(__file__).parent.parent / "data" / "distdgl_golden.json"
TIME_BAND = (0.5, 2.0)  # compiled-path charge vs legacy formula charge


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


def _build_engine(golden):
    config = golden["config"]
    g = generators.community(128, 4, avg_degree=8.0, seed=3)
    generators.attach_features(g, 16, 4, seed=4, class_signal=2.0)
    graph = prepare_graph(g, config["arch"])
    model = GNNModel.build(
        config["arch"], graph.feature_dim, config["hidden"],
        graph.num_classes, seed=config["model_seed"],
    )
    return SamplingEngine(
        graph, model, ClusterSpec.ecs(2),
        fanouts=tuple(config["fanouts"]),
        batch_size=config["batch_size"], seed=config["seed"],
    )


class TestGoldenParity:
    def test_loss_trajectory_bit_identical(self, golden):
        engine = _build_engine(golden)
        opt = optim.Adam(
            engine.model.parameters(), lr=golden["config"]["lr"]
        )
        losses = [
            engine.run_epoch(opt).loss
            for _ in range(golden["config"]["epochs"])
        ]
        assert losses == golden["losses"]

    def test_eval_accuracy_bit_identical(self, golden):
        engine = _build_engine(golden)
        opt = optim.Adam(
            engine.model.parameters(), lr=golden["config"]["lr"]
        )
        for _ in range(golden["config"]["epochs"]):
            engine.run_epoch(opt)
        accuracy = engine.evaluate(engine.graph.test_mask)
        assert accuracy == golden["eval_accuracy"]

    def test_charged_times_within_band(self, golden):
        engine = _build_engine(golden)
        opt = optim.Adam(
            engine.model.parameters(), lr=golden["config"]["lr"]
        )
        times = [
            engine.run_epoch(opt).epoch_time_s
            for _ in range(golden["config"]["epochs"])
        ]
        for ours, recorded in zip(times, golden["epoch_time_s"]):
            assert TIME_BAND[0] * recorded <= ours <= TIME_BAND[1] * recorded

    def test_charge_epoch_within_band(self, golden):
        engine = _build_engine(golden)
        for recorded in golden["charge_epoch_s"]:
            ours = engine.charge_epoch()
            assert TIME_BAND[0] * recorded <= ours <= TIME_BAND[1] * recorded
