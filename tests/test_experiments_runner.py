"""The programmatic experiment registry/runner."""

import json

import pytest

from repro.experiments import list_experiments, run_all, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = list_experiments()
        for must in ["fig2", "fig9", "fig10", "fig11", "fig12", "fig13",
                     "fig14", "fig15", "table3", "table4", "table5"]:
            assert must in ids

    def test_ablations_registered(self):
        assert any(x.startswith("ablation_") for x in list_experiments())

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")


class TestRunner:
    def test_run_single_experiment(self, capsys):
        result = run_experiment("fig11")
        capsys.readouterr()  # swallow the printed table
        (lj_times, _), (orkut_times, _) = result
        assert 0.0 in lj_times and 1.0 in lj_times

    def test_run_all_subset_writes_json(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        results = run_all(output_path=out, only=["table5"],
                          progress=lambda msg: None)
        capsys.readouterr()
        assert "table5" in results
        loaded = json.loads(out.read_text())
        assert loaded["table5"]["wall_seconds"] >= 0
        # NaN OOM entries serialise as the string "OOM".
        assert "OOM" in json.dumps(loaded)
