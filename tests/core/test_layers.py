"""GNN layers: numerics vs dense references, gradients, accounting."""

import numpy as np
import pytest

from repro.core.blocks import build_block
from repro.core.layers import GATConv, GCNConv, GINConv
from repro.graph import generators
from repro.tensor import functional as F
from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor


@pytest.fixture
def graph_and_block():
    g = generators.erdos_renyi(10, 30, seed=2).gcn_normalized()
    return g, build_block(g, np.arange(10), 1)


class TestGCNConv:
    def test_matches_dense_reference(self, graph_and_block):
        g, block = graph_and_block
        layer = GCNConv(4, 3, rng=np.random.default_rng(0))
        h = np.random.default_rng(1).standard_normal((10, 4)).astype(np.float32)
        out = layer.forward(block, Tensor(h))
        dense = np.zeros((10, 10), dtype=np.float32)
        dense[g.dst, g.src] = g.edge_weight
        expected = np.maximum(
            (dense @ h) @ layer.linear.weight.data + layer.linear.bias.data, 0.0
        )
        assert np.allclose(out.data, expected, atol=1e-5)

    def test_no_activation_on_logits_layer(self, graph_and_block):
        g, block = graph_and_block
        layer = GCNConv(4, 3, activation="none", rng=np.random.default_rng(0))
        h = np.random.default_rng(1).standard_normal((10, 4))
        out = layer.forward(block, Tensor(h))
        assert (out.data < 0).any()  # relu would have clipped

    def test_parameter_gradients(self, graph_and_block):
        g, block = graph_and_block
        layer = GCNConv(3, 2, rng=np.random.default_rng(0))
        h = Tensor(np.random.default_rng(1).standard_normal((10, 3)))
        assert gradcheck(
            lambda w, b: (layer.forward(block, h) ** 2).sum(),
            [layer.linear.weight, layer.linear.bias],
        )

    def test_input_gradients(self, graph_and_block):
        g, block = graph_and_block
        layer = GCNConv(3, 2, activation="none", rng=np.random.default_rng(0))
        h = Tensor(
            np.random.default_rng(1).standard_normal((10, 3)), requires_grad=True
        )
        assert gradcheck(lambda h: (layer.forward(block, h) ** 2).sum(), [h])

    def test_accounting_positive_and_monotone(self, graph_and_block):
        g, block = graph_and_block
        small = GCNConv(4, 3)
        large = GCNConv(40, 3)
        assert 0 < small.sparse_flops(block) < large.sparse_flops(block)
        assert 0 < small.edge_tensor_bytes(block) < large.edge_tensor_bytes(block)
        assert small.dense_flops(block) > 0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            GCNConv(0, 3)


class TestGINConv:
    def test_shapes(self, graph_and_block):
        g, block = graph_and_block
        layer = GINConv(4, 6, rng=np.random.default_rng(0))
        out = layer.forward(block, Tensor(np.ones((10, 4))))
        assert out.shape == (10, 6)

    def test_eps_changes_self_weight(self, graph_and_block):
        g, block = graph_and_block
        rng = np.random.default_rng(0)
        a = GINConv(4, 4, eps=0.0, rng=np.random.default_rng(0))
        b = GINConv(4, 4, eps=1.0, rng=np.random.default_rng(0))
        h = Tensor(rng.standard_normal((10, 4)))
        assert not np.allclose(a.forward(block, h).data, b.forward(block, h).data)

    def test_gradients(self, graph_and_block):
        g, block = graph_and_block
        layer = GINConv(3, 3, rng=np.random.default_rng(0))
        h = Tensor(
            np.random.default_rng(1).standard_normal((10, 3)), requires_grad=True
        )
        assert gradcheck(lambda h: (layer.forward(block, h)).sum(), [h])

    def test_two_linears_discovered(self):
        layer = GINConv(3, 5)
        names = set(dict(layer.named_parameters()))
        assert {"mlp1.weight", "mlp2.weight"} <= names


class TestGATConv:
    def test_attention_rows_convex(self, graph_and_block):
        """GAT output is a convex combination of projected sources."""
        g, block = graph_and_block
        layer = GATConv(4, 3, activation="none", rng=np.random.default_rng(0))
        h = np.random.default_rng(1).standard_normal((10, 4)).astype(np.float32)
        projected = h @ layer.linear.weight.data
        out = layer.forward(block, Tensor(h)).data
        # Every output row is within the min/max of the projected inputs.
        assert (out <= projected.max(axis=0) + 1e-4).all()
        assert (out >= projected.min(axis=0) - 1e-4).all()

    def test_attention_sums_to_one(self, graph_and_block):
        g, block = graph_and_block
        layer = GATConv(4, 3, rng=np.random.default_rng(0))
        h = Tensor(np.random.default_rng(1).standard_normal((10, 4)))
        projected = layer.linear(h)
        z_src = F.index_select(projected, block.edge_src_pos)
        dst_rows = block.compute_pos_in_inputs[block.edge_dst_pos]
        z_dst = F.index_select(projected, dst_rows)
        scores = F.leaky_relu(
            z_src @ layer.attn_src + z_dst @ layer.attn_dst, 0.2
        )
        alpha = F.segment_softmax(scores, block.edge_dst_pos, block.num_outputs)
        sums = F.segment_sum(alpha, block.edge_dst_pos, block.num_outputs).data
        covered = np.unique(block.edge_dst_pos)
        assert np.allclose(sums[covered], 1.0, atol=1e-5)

    def test_gradients(self, graph_and_block):
        g, block = graph_and_block
        layer = GATConv(3, 2, rng=np.random.default_rng(0))
        h = Tensor(
            np.random.default_rng(2).standard_normal((10, 3)), requires_grad=True
        )
        assert gradcheck(
            lambda h: (layer.forward(block, h) ** 2).sum(), [h],
            atol=3e-2, rtol=3e-2,
        )

    def test_edge_tensor_bytes_heavier_than_gcn(self, graph_and_block):
        g, block = graph_and_block
        gat = GATConv(16, 16)
        gcn = GCNConv(16, 16)
        assert gat.edge_tensor_bytes(block) > gcn.edge_tensor_bytes(block)

    def test_backward_multiplier_heavier(self):
        assert GATConv(4, 4).backward_flops_multiplier() > GCNConv(4, 4).backward_flops_multiplier()
