"""Master-mirror exchange bookkeeping."""

import numpy as np
import pytest

from repro.core.mirror import MirrorExchange


@pytest.fixture
def exchange():
    # 3 workers; assignment: 0,1 -> w0; 2,3 -> w1; 4,5 -> w2.
    assignment = np.array([0, 0, 1, 1, 2, 2])
    comm = [
        np.array([2, 4]),      # w0 pulls 2 (from w1) and 4 (from w2)
        np.array([0]),         # w1 pulls 0 (from w0)
        np.array([], dtype=np.int64),  # w2 pulls nothing
    ]
    return MirrorExchange(assignment, comm, 3)


class TestCounts:
    def test_counts_matrix(self, exchange):
        expected = np.array([
            [0, 1, 0],
            [1, 0, 0],
            [1, 0, 0],
        ])
        assert np.array_equal(exchange.counts, expected)

    def test_total(self, exchange):
        assert exchange.total_vertices == 3

    def test_volume_matrix_scales_with_dim(self, exchange):
        v = exchange.volume_matrix(dim=8)
        assert v[1, 0] == 8 * 4
        assert v.sum() == 3 * 8 * 4

    def test_reversed_counts_is_transpose(self, exchange):
        assert np.array_equal(exchange.reversed_counts(), exchange.counts.T)


class TestIdLists:
    def test_recv_ids(self, exchange):
        assert exchange.recv_ids[(1, 0)].tolist() == [2]
        assert exchange.recv_ids[(2, 0)].tolist() == [4]
        assert exchange.recv_ids[(0, 1)].tolist() == [0]

    def test_sends_from(self, exchange):
        sends = dict(exchange.sends_from(0))
        assert sends[1].tolist() == [0]

    def test_recvs_to(self, exchange):
        recvs = dict(exchange.recvs_to(0))
        assert recvs[1].tolist() == [2]
        assert recvs[2].tolist() == [4]

    def test_own_vertex_as_mirror_rejected(self):
        assignment = np.array([0, 1])
        with pytest.raises(ValueError, match="own vertices"):
            MirrorExchange(assignment, [np.array([0]), np.array([])], 2)

    def test_empty_exchange(self):
        assignment = np.array([0, 1])
        ex = MirrorExchange(assignment, [np.array([], dtype=np.int64)] * 2, 2)
        assert ex.total_vertices == 0
        assert ex.volume_matrix(16).sum() == 0
