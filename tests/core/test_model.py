"""GNNModel factories and dims."""

import numpy as np
import pytest

from repro.core.layers import GATConv, GCNConv, GINConv
from repro.core.model import GNNModel


class TestBuild:
    @pytest.mark.parametrize("arch,cls", [
        ("gcn", GCNConv), ("gin", GINConv), ("gat", GATConv),
    ])
    def test_factory_types(self, arch, cls):
        model = GNNModel.build(arch, 8, 16, 3)
        assert all(isinstance(layer, cls) for layer in model.layers)

    def test_dims_chain(self):
        model = GNNModel.gcn(8, 16, 3, num_layers=3)
        assert model.dims() == [8, 16, 16, 3]
        assert model.in_dim == 8 and model.out_dim == 3

    def test_final_layer_emits_logits(self):
        model = GNNModel.gcn(8, 16, 3)
        assert model.layers[-1].activation == "none"
        assert model.layers[0].activation == "relu"

    def test_one_based_layer_access(self):
        model = GNNModel.gcn(8, 16, 3)
        assert model.layer(1) is model.layers[0]
        assert model.layer(2) is model.layers[1]

    def test_seed_reproducible(self):
        a = GNNModel.gcn(8, 16, 3, seed=5)
        b = GNNModel.gcn(8, 16, 3, seed=5)
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_unknown_arch(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            GNNModel.build("transformer", 8, 16, 3)

    def test_bad_layer_count(self):
        with pytest.raises(ValueError):
            GNNModel.build("gcn", 8, 16, 3, num_layers=0)

    def test_mismatched_manual_stack(self):
        with pytest.raises(ValueError, match="chain"):
            GNNModel([GCNConv(4, 8), GCNConv(9, 2)])

    def test_empty_stack(self):
        with pytest.raises(ValueError):
            GNNModel([])

    def test_parameter_bytes(self):
        model = GNNModel.gcn(8, 16, 3)
        expected = sum(p.data.nbytes for p in model.parameters())
        assert model.parameter_bytes() == expected

    def test_state_dict_roundtrip(self):
        a = GNNModel.gat(8, 16, 3, seed=1)
        b = GNNModel.gat(8, 16, 3, seed=2)
        b.load_state_dict(a.state_dict())
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.array_equal(pa.data, pb.data)
