"""Layer blocks: construction, index spaces, sampled variant."""

import numpy as np
import pytest

from repro.core.blocks import build_block, build_block_from_edges
from repro.graph import generators


class TestBuildBlock:
    def test_inputs_superset_of_compute(self, tiny_graph):
        block = build_block(tiny_graph, np.array([1, 2]), 1)
        assert np.isin(block.compute_vertices, block.input_vertices).all()

    def test_edges_are_in_edges_of_compute(self, tiny_graph):
        block = build_block(tiny_graph, np.array([1]), 1)
        # Vertex 1's in-edges come from 0, 3, 5.
        assert block.num_edges == 3
        assert sorted(block.edge_src_global.tolist()) == [0, 3, 5]

    def test_positions_consistent(self, medium_graph):
        block = build_block(medium_graph, np.arange(40), 2)
        # src positions point at the right global ids.
        assert np.array_equal(
            block.input_vertices[block.edge_src_pos], block.edge_src_global
        )
        # dst positions index compute vertices whose in-edges these are.
        dst_globals = block.compute_vertices[block.edge_dst_pos]
        assert np.isin(dst_globals, np.arange(40)).all()

    def test_compute_pos_in_inputs(self, medium_graph):
        block = build_block(medium_graph, np.arange(10, 30), 1)
        recovered = block.input_vertices[block.compute_pos_in_inputs]
        assert np.array_equal(recovered, block.compute_vertices)

    def test_edge_weights_follow_edges(self, tiny_graph):
        tiny_graph.edge_weight = np.arange(8, dtype=np.float32)
        tiny_graph._csc = None  # invalidate cache
        block = build_block(tiny_graph, np.array([1]), 1)
        # Weights must match the selected edge ids.
        assert np.allclose(
            block.edge_weight, tiny_graph.edge_weight[block.edge_ids]
        )

    def test_vertex_without_in_edges(self):
        g = generators.chain(4)
        block = build_block(g, np.array([0]), 1)
        assert block.num_edges == 0
        assert block.num_outputs == 1

    def test_empty_compute_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            build_block(tiny_graph, np.array([], dtype=np.int64), 1)

    def test_extra_inputs_included(self, tiny_graph):
        block = build_block(tiny_graph, np.array([1]), 1, extra_inputs=np.array([4]))
        assert 4 in block.input_vertices

    def test_repr(self, tiny_graph):
        assert "LayerBlock" in repr(build_block(tiny_graph, np.array([1]), 1))


class TestBuildBlockFromEdges:
    def test_sampled_subset(self, tiny_graph):
        # Keep only one of vertex 1's three in-edges.
        block = build_block_from_edges(
            tiny_graph,
            compute_vertices=np.array([1]),
            src=np.array([3]),
            dst=np.array([1]),
            edge_ids=np.array([1]),
            layer_index=1,
        )
        assert block.num_edges == 1
        assert block.input_vertices.tolist() == [1, 3]

    def test_compute_without_edges(self, tiny_graph):
        block = build_block_from_edges(
            tiny_graph, np.array([0, 2]),
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64), 2,
        )
        assert block.num_edges == 0
        assert block.num_outputs == 2
