"""The dataflow ops: scatter/gather numerics against manual computation."""

import numpy as np
import pytest

from repro.core import ops
from repro.core.blocks import build_block
from repro.graph import generators
from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor


@pytest.fixture
def star_block():
    g = generators.star(3, inward=True)  # 1,2,3 -> 0
    return g, build_block(g, np.array([0]), 1)


class TestScatterToEdge:
    def test_f_src_rows(self, star_block):
        g, block = star_block
        h = Tensor(np.arange(8.0).reshape(4, 2))
        f_src, f_dst = ops.scatter_to_edge(block, h)
        # Sources are 1, 2, 3 (rows of the input space in edge order).
        src_ids = block.input_vertices[block.edge_src_pos]
        assert np.allclose(f_src.data, h.data[src_ids])

    def test_f_dst_rows_are_destination(self, star_block):
        g, block = star_block
        h = Tensor(np.arange(8.0).reshape(4, 2))
        _, f_dst = ops.scatter_to_edge(block, h)
        # All three edges point at vertex 0 (input row 0).
        assert np.allclose(f_dst.data, np.tile(h.data[0], (3, 1)))


class TestGatherByDst:
    def test_sum(self, star_block):
        g, block = star_block
        messages = Tensor(np.ones((3, 2)))
        out = ops.gather_by_dst(block, messages, agg="sum")
        assert np.allclose(out.data, [[3.0, 3.0]])

    def test_mean(self, star_block):
        g, block = star_block
        messages = Tensor(np.arange(6.0).reshape(3, 2))
        out = ops.gather_by_dst(block, messages, agg="mean")
        assert np.allclose(out.data, messages.data.mean(axis=0))

    def test_unknown_aggregator(self, star_block):
        g, block = star_block
        with pytest.raises(ValueError, match="aggregator"):
            ops.gather_by_dst(block, Tensor(np.ones((3, 2))), agg="max")


class TestEdgeAndVertexForward:
    def test_edge_forward_applies_fn(self, star_block):
        g, block = star_block
        f_src = Tensor(np.ones((3, 2)))
        out = ops.edge_forward(
            block, f_src, None, lambda s, d, w: s * Tensor(w.reshape(-1, 1))
        )
        assert np.allclose(out.data, block.edge_weight.reshape(-1, 1))

    def test_vertex_forward_receives_dst_rows(self, star_block):
        g, block = star_block
        h = Tensor(np.arange(8.0).reshape(4, 2))
        agg = Tensor(np.zeros((1, 2)))
        out = ops.vertex_forward(block, h, agg, lambda h_dst, a: h_dst + a)
        assert np.allclose(out.data, h.data[[0]])

    def test_full_pipeline_matches_dense(self):
        """ScatterToEdge -> EdgeForward -> GatherByDst == A @ H."""
        g = generators.erdos_renyi(12, 40, seed=3).gcn_normalized()
        block = build_block(g, np.arange(12), 1)
        rng = np.random.default_rng(0)
        h = Tensor(rng.standard_normal((12, 5)))
        f_src, _ = ops.scatter_to_edge(block, h)
        msg = ops.edge_forward(
            block, f_src, None, lambda s, d, w: s * Tensor(w.reshape(-1, 1))
        )
        agg = ops.gather_by_dst(block, msg)
        dense = np.zeros((12, 12))
        dense[g.dst, g.src] = g.edge_weight
        assert np.allclose(agg.data, dense @ h.data, atol=1e-5)

    def test_pipeline_differentiable(self):
        g = generators.erdos_renyi(8, 20, seed=4).gcn_normalized()
        block = build_block(g, np.arange(8), 1)
        h = Tensor(
            np.random.default_rng(1).standard_normal((8, 3)), requires_grad=True
        )

        def fn(h):
            f_src, _ = ops.scatter_to_edge(block, h)
            msg = ops.edge_forward(
                block, f_src, None, lambda s, d, w: s * Tensor(w.reshape(-1, 1))
            )
            return (ops.gather_by_dst(block, msg) ** 2).sum()

        assert gradcheck(fn, [h])
