"""SAGEConv and MultiHeadGATConv."""

import numpy as np
import pytest

from repro.core.blocks import build_block
from repro.core.layers import GATConv, MultiHeadGATConv, SAGEConv
from repro.core.model import GNNModel
from repro.graph import generators
from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor


@pytest.fixture
def block_setup():
    g = generators.erdos_renyi(10, 30, seed=2).with_self_loops()
    return g, build_block(g, np.arange(10), 1)


class TestSAGEConv:
    def test_shapes(self, block_setup):
        g, block = block_setup
        layer = SAGEConv(4, 6, rng=np.random.default_rng(0))
        out = layer.forward(block, Tensor(np.ones((10, 4))))
        assert out.shape == (10, 6)

    def test_matches_manual_mean_concat(self, block_setup):
        g, block = block_setup
        layer = SAGEConv(3, 2, activation="none", rng=np.random.default_rng(0))
        h = np.random.default_rng(1).standard_normal((10, 3)).astype(np.float32)
        out = layer.forward(block, Tensor(h)).data
        # Manual reference.
        mean = np.zeros((10, 3), dtype=np.float32)
        counts = np.zeros(10)
        for s, d in zip(g.src, g.dst):
            mean[d] += h[s]
            counts[d] += 1
        mean /= np.maximum(counts, 1)[:, None]
        ref = np.concatenate([h, mean], axis=1) @ layer.linear.weight.data
        ref = ref + layer.linear.bias.data
        assert np.allclose(out, ref, atol=1e-4)

    def test_gradients(self, block_setup):
        g, block = block_setup
        layer = SAGEConv(3, 2, rng=np.random.default_rng(0))
        h = Tensor(
            np.random.default_rng(1).standard_normal((10, 3)), requires_grad=True
        )
        assert gradcheck(lambda h: (layer.forward(block, h) ** 2).sum(), [h])

    def test_factory_and_engines(self, small_graph, cluster2):
        from repro.engines import DepCacheEngine, DepCommEngine
        from repro.training.prep import prepare_graph

        graph = prepare_graph(small_graph, "sage")
        losses = []
        for engine_cls in [DepCacheEngine, DepCommEngine]:
            model = GNNModel.sage(graph.feature_dim, 8, graph.num_classes, seed=5)
            losses.append(engine_cls(graph, model, cluster2).run_epoch().loss)
        assert losses[0] == pytest.approx(losses[1], rel=1e-5)

    def test_accounting_positive(self, block_setup):
        g, block = block_setup
        layer = SAGEConv(4, 6)
        assert layer.dense_flops(block) > 0
        assert layer.sparse_flops(block) > 0
        assert layer.edge_tensor_bytes(block) > 0


class TestMultiHeadGAT:
    def test_output_concatenates_heads(self, block_setup):
        g, block = block_setup
        layer = MultiHeadGATConv(4, 8, num_heads=4, rng=np.random.default_rng(0))
        out = layer.forward(block, Tensor(np.ones((10, 4))))
        assert out.shape == (10, 8)
        assert len(layer.heads) == 4

    def test_head_divisibility_checked(self):
        with pytest.raises(ValueError, match="divisible"):
            MultiHeadGATConv(4, 10, num_heads=4)

    def test_single_head_matches_gatconv(self, block_setup):
        g, block = block_setup
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        single = GATConv(4, 6, activation="none", rng=rng_a)
        multi = MultiHeadGATConv(4, 6, num_heads=1, activation="none", rng=rng_b)
        h = Tensor(np.random.default_rng(1).standard_normal((10, 4)))
        assert np.allclose(
            single.forward(block, h).data, multi.forward(block, h).data,
            atol=1e-6,
        )

    def test_parameters_discovered_per_head(self):
        layer = MultiHeadGATConv(4, 8, num_heads=2)
        names = dict(layer.named_parameters())
        assert any("heads.0" in n for n in names)
        assert any("heads.1" in n for n in names)

    def test_gradients(self, block_setup):
        g, block = block_setup
        layer = MultiHeadGATConv(3, 4, num_heads=2, rng=np.random.default_rng(0))
        h = Tensor(
            np.random.default_rng(2).standard_normal((10, 3)), requires_grad=True
        )
        assert gradcheck(
            lambda h: (layer.forward(block, h) ** 2).sum(), [h],
            atol=3e-2, rtol=3e-2,
        )

    def test_accounting_sums_heads(self, block_setup):
        g, block = block_setup
        multi = MultiHeadGATConv(4, 8, num_heads=4)
        single_equiv = GATConv(4, 2)
        assert multi.sparse_flops(block) == pytest.approx(
            4 * single_equiv.sparse_flops(block)
        )
