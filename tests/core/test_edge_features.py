"""Edge features: storage, block propagation, and EdgeGatedConv."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.blocks import build_block
from repro.core.layers import EdgeGatedConv
from repro.core.model import GNNModel
from repro.engines import DepCacheEngine, DepCommEngine
from repro.graph import generators
from repro.graph.graph import Graph
from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor


@pytest.fixture
def featured_graph():
    g = generators.erdos_renyi(20, 60, seed=3)
    rng = np.random.default_rng(0)
    g.edge_features = rng.standard_normal((g.num_edges, 4)).astype(np.float32)
    generators.attach_features(g, 6, 3, seed=1)
    return g


class TestGraphEdgeFeatures:
    def test_length_validated(self):
        with pytest.raises(ValueError, match="one row per edge"):
            Graph(3, np.array([0]), np.array([1]),
                  edge_features=np.zeros((2, 4)))

    def test_self_loops_pad_zeros(self, featured_graph):
        looped = featured_graph.with_self_loops()
        assert looped.edge_features.shape[0] == looped.num_edges
        # The appended loop rows are all-zero.
        added = looped.num_edges - featured_graph.num_edges
        assert np.allclose(looped.edge_features[-added:], 0.0)

    def test_subgraph_slices_edge_features(self, featured_graph):
        sub, _ = featured_graph.induced_subgraph(np.arange(10))
        assert sub.edge_features.shape == (sub.num_edges, 4)

    def test_block_carries_edge_features(self, featured_graph):
        block = build_block(featured_graph, np.arange(20), 1)
        assert block.edge_features is not None
        assert np.allclose(
            block.edge_features, featured_graph.edge_features[block.edge_ids]
        )

    def test_block_without_edge_features(self, tiny_graph):
        block = build_block(tiny_graph, np.array([1]), 1)
        assert block.edge_features is None


class TestEdgeGatedConv:
    def test_matches_manual(self, featured_graph):
        g = featured_graph.with_self_loops()
        block = build_block(g, np.arange(20), 1)
        layer = EdgeGatedConv(6, 5, edge_dim=4, activation="none",
                              rng=np.random.default_rng(1))
        h = np.random.default_rng(2).standard_normal((20, 6)).astype(np.float32)
        out = layer.forward(block, Tensor(h)).data
        # Manual reference.
        gate = 1.0 / (1.0 + np.exp(-(
            block.edge_features @ layer.edge_gate.weight.data
            + layer.edge_gate.bias.data
        )))
        msg = h[block.input_vertices[block.edge_src_pos]] * gate
        agg = np.zeros((20, 6), dtype=np.float32)
        np.add.at(agg, block.edge_dst_pos, msg)
        ref = agg @ layer.linear.weight.data + layer.linear.bias.data
        assert np.allclose(out, ref, atol=1e-4)

    def test_gradients_flow_to_gate(self, featured_graph):
        g = featured_graph.with_self_loops()
        block = build_block(g, np.arange(20), 1)
        layer = EdgeGatedConv(6, 3, edge_dim=4, rng=np.random.default_rng(1))
        h = Tensor(np.random.default_rng(2).standard_normal((20, 6)))
        assert gradcheck(
            lambda w: (layer.forward(block, h) ** 2).sum(),
            [layer.edge_gate.weight],
        )

    def test_falls_back_without_edge_features(self, tiny_graph):
        g = tiny_graph.gcn_normalized()
        block = build_block(g, np.arange(6), 1)
        layer = EdgeGatedConv(8, 4, edge_dim=3, rng=np.random.default_rng(1))
        out = layer.forward(block, Tensor(g.features))
        assert out.shape == (6, 4)

    def test_dim_mismatch_raises(self, featured_graph):
        block = build_block(featured_graph, np.arange(20), 1)
        layer = EdgeGatedConv(6, 4, edge_dim=9)
        with pytest.raises(ValueError, match="edge features"):
            layer.forward(block, Tensor(np.ones((block.num_inputs, 6))))

    def test_edge_dim_validated(self):
        with pytest.raises(ValueError):
            EdgeGatedConv(4, 4, edge_dim=0)

    def test_accounting_includes_gate(self, featured_graph):
        block = build_block(featured_graph, np.arange(20), 1)
        with_gate = EdgeGatedConv(6, 4, edge_dim=4)
        assert with_gate.dense_flops(block) > 2 * 20 * 6 * 4  # > vertex GEMM

    def test_distributed_equivalence(self, featured_graph):
        g = featured_graph.with_self_loops()
        losses = []
        for engine_cls in [DepCacheEngine, DepCommEngine]:
            rng = np.random.default_rng(7)
            model = GNNModel([
                EdgeGatedConv(6, 8, edge_dim=4, rng=rng),
                EdgeGatedConv(8, 3, edge_dim=4, activation="none", rng=rng),
            ])
            engine = engine_cls(g, model, ClusterSpec.ecs(2))
            losses.append(engine.run_epoch().loss)
        assert losses[0] == pytest.approx(losses[1], rel=1e-5)
