"""The paper's Figure 1 worked example, verified end to end.

Figure 1 shows a 6-vertex graph split across two workers and walks
through how DepCache, DepComm, and Hybrid handle vertex 2's
dependencies in a 2-layer GCN.  These tests build that exact graph,
pin the planned compute/communication sets against hand-derived
values, and confirm all three strategies agree numerically -- the
smallest complete instance of the paper's core argument.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import DepCacheEngine, DepCommEngine, HybridEngine
from repro.graph.graph import Graph
from repro.partition.base import Partitioning


@pytest.fixture
def figure1():
    """Figure 1(a)'s graph: in-edges of vertex 2 are 1 and 4; vertex 1
    depends on 0, 3, 5 -- the chain that makes node 2's layer-2 value
    need node 1's layer-1 value."""
    src = np.array([0, 3, 5, 1, 4, 0])
    dst = np.array([1, 1, 1, 2, 2, 2])
    g = Graph(6, src, dst, name="figure1")
    rng = np.random.default_rng(0)
    g.features = rng.standard_normal((6, 4)).astype(np.float32)
    g.labels = np.array([0, 1, 0, 1, 0, 1], dtype=np.int64)
    g.num_classes = 2
    g.train_mask = np.ones(6, dtype=bool)
    g.val_mask = np.zeros(6, dtype=bool)
    g.test_mask = np.zeros(6, dtype=bool)
    # Worker 0 owns {0, 1, 3}; worker 1 owns {2, 4, 5} (as in Fig. 1 b).
    assignment = np.array([0, 0, 1, 0, 1, 1])
    return g.gcn_normalized(), Partitioning(assignment, 2, method="manual")


def build(engine_cls, graph, partitioning, **kwargs):
    model = GNNModel.gcn(4, 3, 2, seed=9)
    return engine_cls(
        graph, model, ClusterSpec.ecs(2), partitioning=partitioning, **kwargs
    )


class TestDepCachePlan:
    def test_worker1_caches_node1_subtree(self, figure1):
        """Figure 1(b): worker 1 must cache vertex 1 and its in-neighbors
        0, 3, 5 to compute vertex 2 without communication."""
        graph, partitioning = figure1
        engine = build(DepCacheEngine, graph, partitioning)
        plan = engine.plan()
        # Layer-1 compute set on worker 1: own {2,4,5} plus cached 1, 0.
        layer1 = set(plan.compute_sets[0][1].tolist())
        assert {1, 2, 4, 5} <= layer1
        assert 1 in layer1  # the cached dependency
        # No communication at any layer.
        assert plan.total_comm_vertices() == 0

    def test_worker1_layer1_inputs_include_subtree_leaves(self, figure1):
        graph, partitioning = figure1
        plan = build(DepCacheEngine, graph, partitioning).plan()
        inputs = set(plan.blocks[0][1].input_vertices.tolist())
        # Computing h^1(1) locally needs features of 0, 3, 5.
        assert {0, 3, 5} <= inputs


class TestDepCommPlan:
    def test_worker1_receives_node1(self, figure1):
        """Figure 1(c): worker 1 pulls h^1(1) (and features) from
        worker 0 instead of recomputing."""
        graph, partitioning = figure1
        plan = build(DepCommEngine, graph, partitioning).plan()
        # Layer 2 input: vertex 1's layer-1 value comes over the wire.
        assert 1 in plan.comm_ids[1][1].tolist()
        # Compute sets stay exactly the owned vertices.
        assert plan.compute_sets[0][1].tolist() == [2, 4, 5]

    def test_exchange_routes_master_to_mirror(self, figure1):
        graph, partitioning = figure1
        plan = build(DepCommEngine, graph, partitioning).plan()
        exchange = plan.exchanges[1]  # layer 2
        # Worker 0 (master of vertex 1) sends to worker 1 (mirror).
        assert 1 in exchange.recv_ids[(0, 1)].tolist()


class TestNumericalAgreement:
    def test_all_strategies_identical(self, figure1):
        graph, partitioning = figure1
        losses = {}
        grads = {}
        for engine_cls in [DepCacheEngine, DepCommEngine, HybridEngine]:
            engine = build(engine_cls, graph, partitioning)
            report = engine.run_epoch()
            losses[engine_cls.name] = report.loss
            grads[engine_cls.name] = [
                p.grad.copy() for p in engine.model.parameters()
            ]
        assert losses["depcache"] == pytest.approx(losses["depcomm"], rel=1e-6)
        assert losses["hybrid"] == pytest.approx(losses["depcomm"], rel=1e-6)
        for a, b in zip(grads["depcache"], grads["depcomm"]):
            assert np.allclose(a, b, atol=1e-5)

    def test_matches_hand_computed_forward(self, figure1):
        """Vertex 2's layer-1 value equals the dense-matrix reference."""
        graph, partitioning = figure1
        engine = build(DepCommEngine, graph, partitioning)
        plan = engine.plan()
        h_values, _, _ = engine._forward(plan, training=False)
        dense = np.zeros((6, 6), dtype=np.float32)
        dense[graph.dst, graph.src] = graph.edge_weight
        layer = engine.model.layer(1)
        expected = np.maximum(
            (dense @ graph.features) @ layer.linear.weight.data
            + layer.linear.bias.data,
            0.0,
        )
        pos = engine._pos_in_compute[0][1][2]  # vertex 2 on worker 1
        assert np.allclose(h_values[1][1][pos], expected[2], atol=1e-5)


class TestHybridChoice:
    def test_forced_extremes_match_pure_engines(self, figure1):
        graph, partitioning = figure1
        cache_time = build(DepCacheEngine, graph, partitioning).charge_epoch()
        all_cached = build(
            HybridEngine, graph, partitioning,
            force_cache_fraction=1.0, memory_limit_bytes=1 << 30,
        ).charge_epoch()
        assert all_cached == pytest.approx(cache_time, rel=1e-6)
        comm_time = build(DepCommEngine, graph, partitioning).charge_epoch()
        all_comm = build(
            HybridEngine, graph, partitioning, force_cache_fraction=0.0
        ).charge_epoch()
        assert all_comm == pytest.approx(comm_time, rel=1e-6)
