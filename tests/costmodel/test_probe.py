"""Probing T_v, T_e, T_c (Algorithm 4 line 1)."""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.costmodel.probe import probe_constants


@pytest.fixture
def model():
    return GNNModel.gcn(32, 16, 4)


class TestProbe:
    def test_constants_positive(self, model):
        res = probe_constants(ClusterSpec.ecs(4), model)
        assert res.t_v > 0 and res.t_e > 0 and res.t_c > 0

    def test_per_layer_arrays(self, model):
        res = probe_constants(ClusterSpec.ecs(4), model)
        assert len(res.t_v_layer) == model.num_layers
        assert len(res.t_c_layer) == model.num_layers
        assert res.vertex_cost(1) == res.t_v_layer[0]
        assert res.edge_cost(2) == res.t_e_layer[1]
        assert res.comm_cost(1) == res.t_c_layer[0]

    def test_ibv_comm_cheaper_than_ecs(self, model):
        ecs = probe_constants(ClusterSpec.ecs(4), model)
        ibv = probe_constants(ClusterSpec.ibv(4), model)
        assert ibv.t_c < ecs.t_c

    def test_v100_compute_cheaper_than_t4(self, model):
        ecs = probe_constants(ClusterSpec.ecs(4), model)
        ibv = probe_constants(ClusterSpec.ibv(4), model)
        assert ibv.t_e < ecs.t_e

    def test_wider_layer_costs_more_per_vertex(self):
        narrow = GNNModel.gcn(32, 8, 4)
        wide = GNNModel.gcn(32, 128, 4)
        cl = ClusterSpec.ecs(4)
        assert (
            probe_constants(cl, wide).vertex_cost(1)
            > probe_constants(cl, narrow).vertex_cost(1)
        )

    def test_comm_cost_scales_with_input_dim(self, model):
        res = probe_constants(ClusterSpec.ecs(4), model)
        # Layer 1 inputs are 32-dim, layer 2 inputs 16-dim.
        assert res.comm_cost(1) > res.comm_cost(2)

    def test_deterministic(self, model):
        cl = ClusterSpec.ecs(4)
        assert probe_constants(cl, model) == probe_constants(cl, model)
