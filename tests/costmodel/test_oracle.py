"""Greedy (Algorithm 4) vs the exhaustive oracle on tiny instances."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.costmodel.oracle import greedy_cost, oracle_partition
from repro.costmodel.partitioner import partition_dependencies
from repro.costmodel.probe import probe_constants
from repro.graph import generators
from repro.partition.chunk import chunk_partition


def tiny_setting(seed, n=24, deg=2.0):
    g = generators.locality_graph(
        n, int(n * deg), locality_width=0.1, global_fraction=0.3, seed=seed
    )
    model = GNNModel.gcn(8, 4, 2)
    partitioning = chunk_partition(g, 3)
    constants = probe_constants(ClusterSpec.ecs(3), model)
    return g, model, partitioning, constants


class TestOracle:
    def test_oracle_never_worse_than_greedy(self):
        for seed in range(5):
            g, model, partitioning, constants = tiny_setting(seed)
            try:
                oracle = oracle_partition(
                    g, partitioning, 0, model.dims(), constants
                )
            except ValueError:
                continue  # too many deps for this seed
            greedy = partition_dependencies(
                g, partitioning, 0, model.dims(), constants
            )
            g_cost = greedy_cost(
                g, partitioning, 0, model.dims(), constants, greedy.cached
            )
            assert oracle.total_cost_s <= g_cost + 1e-12, seed

    def test_greedy_within_factor_of_oracle(self):
        """Algorithm 4 stays close to optimal on small instances."""
        gaps = []
        for seed in range(8):
            g, model, partitioning, constants = tiny_setting(seed)
            try:
                oracle = oracle_partition(
                    g, partitioning, 1, model.dims(), constants
                )
            except ValueError:
                continue
            greedy = partition_dependencies(
                g, partitioning, 1, model.dims(), constants
            )
            g_cost = greedy_cost(
                g, partitioning, 1, model.dims(), constants, greedy.cached
            )
            if oracle.total_cost_s > 0:
                gaps.append(g_cost / oracle.total_cost_s)
        assert gaps, "no feasible oracle instances"
        assert max(gaps) < 1.5

    def test_oracle_partitions_cover_deps(self):
        g, model, partitioning, constants = tiny_setting(2)
        from repro.graph.khop import dependency_layers
        oracle = oracle_partition(g, partitioning, 0, model.dims(), constants)
        deps = dependency_layers(g, partitioning.part(0), 2)
        for l in range(2):
            merged = np.union1d(oracle.cached[l], oracle.communicated[l])
            assert np.array_equal(merged, deps[l])

    def test_memory_limit_respected(self):
        g, model, partitioning, constants = tiny_setting(3)
        unlimited = oracle_partition(
            g, partitioning, 0, model.dims(), constants
        )
        starved = oracle_partition(
            g, partitioning, 0, model.dims(), constants,
            memory_limit_bytes=64,
        )
        starved_cached = sum(len(c) for c in starved.cached)
        unlimited_cached = sum(len(c) for c in unlimited.cached)
        assert starved_cached <= unlimited_cached
        assert starved.total_cost_s >= unlimited.total_cost_s

    def test_too_many_deps_rejected(self):
        g = generators.complete(20)
        model = GNNModel.gcn(8, 4, 2)
        partitioning = chunk_partition(g, 2)
        constants = probe_constants(ClusterSpec.ecs(2), model)
        with pytest.raises(ValueError, match="oracle infeasible"):
            oracle_partition(g, partitioning, 0, model.dims(), constants)

    def test_subsets_counted(self):
        g, model, partitioning, constants = tiny_setting(0)
        oracle = oracle_partition(g, partitioning, 0, model.dims(), constants)
        assert oracle.subsets_evaluated >= 1
