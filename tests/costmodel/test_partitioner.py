"""Algorithm 4: greedy dependency partitioning."""

import dataclasses

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.costmodel.partitioner import partition_dependencies
from repro.costmodel.probe import ProbeResult, probe_constants
from repro.graph import generators
from repro.partition.chunk import chunk_partition


@pytest.fixture
def setting():
    g = generators.locality_graph(80, 500, locality_width=0.05,
                                  global_fraction=0.4, seed=1)
    model = GNNModel.gcn(8, 4, 2)
    partitioning = chunk_partition(g, 4)
    constants = probe_constants(ClusterSpec.ecs(4), model)
    return g, model, partitioning, constants


def fake_constants(base: ProbeResult, comm_scale: float) -> ProbeResult:
    return dataclasses.replace(
        base,
        t_c=base.t_c * comm_scale,
        t_c_layer=[t * comm_scale for t in base.t_c_layer],
    )


class TestDecisions:
    def test_expensive_comm_caches_everything(self, setting):
        g, model, partitioning, constants = setting
        result = partition_dependencies(
            g, partitioning, 0, model.dims(),
            fake_constants(constants, 1e6),
        )
        assert all(len(c) == 0 for c in result.communicated)
        assert result.cache_ratio() == 1.0

    def test_free_comm_still_caches_features(self, setting):
        # Layer-1 deps cost zero per epoch to cache, so even with cheap
        # communication they are cached; layer-2 deps all communicate.
        g, model, partitioning, constants = setting
        result = partition_dependencies(
            g, partitioning, 0, model.dims(),
            fake_constants(constants, 1e-9),
        )
        assert len(result.communicated[0]) == 0  # features cached
        assert len(result.cached[1]) == 0  # layer 2 all communicated

    def test_partitions_are_disjoint_and_complete(self, setting):
        g, model, partitioning, constants = setting
        from repro.graph.khop import dependency_layers
        result = partition_dependencies(
            g, partitioning, 1, model.dims(), constants
        )
        deps = dependency_layers(g, partitioning.part(1), 2)
        for l in range(2):
            merged = np.union1d(result.cached[l], result.communicated[l])
            assert np.array_equal(merged, deps[l])
            assert len(np.intersect1d(result.cached[l], result.communicated[l])) == 0

    def test_memory_limit_stops_caching(self, setting):
        g, model, partitioning, constants = setting
        expensive = fake_constants(constants, 1e6)
        unlimited = partition_dependencies(
            g, partitioning, 0, model.dims(), expensive
        )
        limited = partition_dependencies(
            g, partitioning, 0, model.dims(), expensive,
            memory_limit_bytes=unlimited.memory_bytes // 4,
        )
        assert limited.memory_bytes <= unlimited.memory_bytes // 4
        assert limited.cache_ratio() < 1.0

    def test_force_fraction_quota_is_global(self, setting):
        """The quota covers the pooled dependency list, filled from
        layer 1 up (cheapest-first ordering, Figure 11 semantics)."""
        g, model, partitioning, constants = setting
        from repro.graph.khop import dependency_layers
        deps = dependency_layers(g, partitioning.part(0), 2)
        total = sum(len(d) for d in deps)
        result = partition_dependencies(
            g, partitioning, 0, model.dims(), constants,
            force_cache_fraction=0.5,
        )
        cached_total = sum(len(c) for c in result.cached)
        assert cached_total == int(round(0.5 * total))
        # Layer 1 (free to cache) fills before layer 2.
        assert len(result.cached[0]) >= len(result.cached[1])

    def test_force_zero_and_one(self, setting):
        g, model, partitioning, constants = setting
        none = partition_dependencies(
            g, partitioning, 0, model.dims(), constants, force_cache_fraction=0.0
        )
        assert none.cache_ratio() == 0.0
        everything = partition_dependencies(
            g, partitioning, 0, model.dims(), constants, force_cache_fraction=1.0
        )
        assert everything.cache_ratio() == 1.0

    def test_greedy_prefers_cheap_subtrees(self, setting):
        """Cached deps should have smaller marginal subtrees than comm'd."""
        g, model, partitioning, constants = setting
        result = partition_dependencies(
            g, partitioning, 0, model.dims(), constants
        )
        cached2 = result.cached[1]
        comm2 = result.communicated[1]
        if len(cached2) and len(comm2):
            deg = g.in_degrees()
            assert deg[cached2].mean() <= deg[comm2].mean() + 1

    def test_preprocessing_time_positive(self, setting):
        g, model, partitioning, constants = setting
        result = partition_dependencies(
            g, partitioning, 0, model.dims(), constants
        )
        assert result.modeled_seconds > 0
        assert result.measured_evaluations > 0

    def test_deterministic(self, setting):
        g, model, partitioning, constants = setting
        a = partition_dependencies(g, partitioning, 2, model.dims(), constants)
        b = partition_dependencies(g, partitioning, 2, model.dims(), constants)
        for l in range(2):
            assert np.array_equal(a.cached[l], b.cached[l])
