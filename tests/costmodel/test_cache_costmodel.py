"""Properties of the amortized CACHED term in the cost model / greedy.

Satellite properties for the staleness-bounded third mode:

- the greedy never chooses CACHED at ``tau = 1`` (no amortization, so
  it can never be *strictly* cheaper than DepComm);
- ``tau -> inf`` with an unbounded budget moves every communicated
  dependency into the CACHED set, whose steady-state comm volume is
  DepCache-like (zero);
- ``t_cached`` is monotonically non-increasing in ``tau`` and bounded
  by ``t_c``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.budget import CacheConfig
from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.costmodel.costs import DependencyCostModel
from repro.costmodel.partitioner import partition_dependencies
from repro.costmodel.probe import probe_constants
from repro.engines import DepCommEngine
from repro.graph import generators
from repro.partition.chunk import chunk_partition

MODEL = GNNModel.gcn(8, 4, 2)
CONSTANTS = probe_constants(ClusterSpec.ecs(4), MODEL)


def random_setting(seed: int):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(24, 90))
    g = generators.erdos_renyi(n, n * 3, seed=seed)
    m = int(rng.integers(2, 5))
    partitioning = chunk_partition(g, m)
    worker = int(rng.integers(0, m))
    return g, partitioning, worker


def cost_model(g, partitioning, worker):
    owned_mask = partitioning.assignment == worker
    return DependencyCostModel(g, MODEL.dims(), CONSTANTS, owned_mask)


class TestAmortizedCost:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 500),
        st.floats(0.0, 64.0, allow_nan=False),
        st.floats(0.0, 64.0, allow_nan=False),
    )
    def test_monotone_nonincreasing_in_tau(self, seed, tau_a, tau_b):
        g, partitioning, worker = random_setting(seed)
        model = cost_model(g, partitioning, worker)
        lo, hi = sorted((tau_a, tau_b))
        for layer in (1, 2):
            assert model.t_cached(layer, hi) <= model.t_cached(layer, lo)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500), st.floats(0.0, 64.0, allow_nan=False))
    def test_bounded_by_t_c(self, seed, tau):
        g, partitioning, worker = random_setting(seed)
        model = cost_model(g, partitioning, worker)
        for layer in (1, 2):
            assert 0.0 <= model.t_cached(layer, tau) <= model.t_c(layer)

    def test_edge_cases(self):
        g, partitioning, worker = random_setting(0)
        model = cost_model(g, partitioning, worker)
        assert model.t_cached(1, 0.0) == model.t_c(1)
        assert model.t_cached(1, 1.0) == model.t_c(1)
        assert model.t_cached(1, 4.0) == pytest.approx(model.t_c(1) / 4.0)
        assert model.t_cached(1, float("inf")) == 0.0
        with pytest.raises(ValueError):
            model.t_cached(1, -0.5)


class TestGreedyNeverCachesAtTauOne:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 500), st.sampled_from(["degree", "expectation"]))
    def test_tau_one_yields_empty_stale_sets(self, seed, policy):
        g, partitioning, worker = random_setting(seed)
        result = partition_dependencies(
            g, partitioning, worker, MODEL.dims(), CONSTANTS,
            cache=CacheConfig(tau=1.0, policy=policy),
        )
        assert all(len(h) == 0 for h in result.stale_cached)
        assert result.cache_bytes == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 500), st.floats(0.0, 1.0, allow_nan=False))
    def test_tau_at_most_one_yields_empty_stale_sets(self, seed, tau):
        g, partitioning, worker = random_setting(seed)
        result = partition_dependencies(
            g, partitioning, worker, MODEL.dims(), CONSTANTS,
            cache=CacheConfig(tau=tau),
        )
        assert all(len(h) == 0 for h in result.stale_cached)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 500), st.floats(1.5, 64.0, allow_nan=False))
    def test_partition_is_disjoint_and_complete_with_cache(self, seed, tau):
        from repro.graph.khop import dependency_layers

        g, partitioning, worker = random_setting(seed)
        result = partition_dependencies(
            g, partitioning, worker, MODEL.dims(), CONSTANTS,
            cache=CacheConfig(tau=tau),
        )
        deps = dependency_layers(
            g, partitioning.part(worker), len(MODEL.dims()) - 1
        )
        for l, layer_deps in enumerate(deps):
            r, c = result.cached[l], result.communicated[l]
            h = result.stale_cached[l]
            union = np.union1d(np.union1d(r, c), h)
            assert (np.sort(layer_deps) == union).all()
            assert len(np.intersect1d(r, c)) == 0
            assert len(np.intersect1d(r, h)) == 0
            assert len(np.intersect1d(c, h)) == 0


class TestTauInfReducesToDepCacheVolume:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 200))
    def test_unbounded_budget_tau_inf_communicates_nothing(self, seed):
        g, partitioning, worker = random_setting(seed)
        result = partition_dependencies(
            g, partitioning, worker, MODEL.dims(), CONSTANTS,
            cache=CacheConfig(tau=float("inf")),
        )
        # Every dependency is replicated or CACHED; nothing is fetched
        # per-epoch (the steady-state comm volume is DepCache-like).
        assert all(len(c) == 0 for c in result.communicated)

    def test_engine_steady_state_comm_is_zero(self):
        g = generators.community(100, 4, avg_degree=6.0, seed=31)
        generators.attach_features(g, 12, 4, seed=32)
        g.set_split(rng=np.random.default_rng(33))
        g = g.gcn_normalized()
        engine = DepCommEngine(
            g, GNNModel.gcn(12, 8, 4, seed=1), ClusterSpec.ecs(4),
            cache_config=CacheConfig(tau=float("inf")),
        )
        first = engine.run_epoch()
        later = [engine.run_epoch() for _ in range(3)]
        assert first.comm_bytes > 0  # the one-time fetch
        assert all(r.comm_bytes == 0 for r in later)
        assert all(r.comm_saved_bytes == first.comm_bytes for r in later)
