"""Four-way greedy properties: when does tensor parallelism get picked.

Three contracts from the issue:

- TP selection is *monotone in degree skew* at fixed hidden dim --
  concentrating more of the communicated rows on the heaviest sender
  only ever turns the vote on, never off (the straggler penalty grows);
- TP selection is *monotone against the hidden dim* at fixed skew --
  at fixed per-worker prices, widening the rows only inflates the
  sender-straggler bytes, and end-to-end a wider hidden never unselects
  a layer the narrower model selected;
- with ``t_tp = inf`` (``cost_scale=inf`` on the TP inputs) the
  four-way greedy is *bit-identical* to the three-way partitioner.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.costmodel.partitioner import (
    DependencyPartition,
    partition_dependencies,
    vote_tp_layers,
)
from repro.costmodel.probe import probe_constants
from repro.engines import make_engine
from repro.graph import generators
from repro.partition.chunk import chunk_partition
from repro.training.prep import prepare_graph

NUM_IDS = 64


@pytest.fixture(scope="module")
def constants():
    model = GNNModel.build("gcn", 8, 8, 4, num_layers=2, seed=0)
    return probe_constants(ClusterSpec.ecs(4), model)


def _partitions(num_workers, comm_sets, tp_cost, three_way_cost):
    empty = np.empty(0, dtype=np.int64)
    parts = {}
    for w in range(num_workers):
        comm = np.asarray(sorted(comm_sets[w]), dtype=np.int64)
        parts[w] = DependencyPartition(
            worker=w,
            cached=[empty],
            communicated=[comm],
            tp_cost_s=[tp_cost],
            three_way_cost_s=[three_way_cost],
        )
    return parts


@st.composite
def vote_cases(draw):
    num_workers = draw(st.integers(min_value=2, max_value=6))
    comm_sets = [
        draw(st.sets(st.integers(0, NUM_IDS - 1), min_size=1, max_size=24))
        for _ in range(num_workers)
    ]
    assignment = np.asarray(
        draw(
            st.lists(
                st.integers(0, num_workers - 1),
                min_size=NUM_IDS, max_size=NUM_IDS,
            )
        ),
        dtype=np.int64,
    )
    tp_cost = draw(st.floats(1e-6, 1e-2))
    three_way_cost = draw(st.floats(1e-6, 1e-2))
    return num_workers, comm_sets, assignment, tp_cost, three_way_cost


class TestVoteFunction:
    @settings(max_examples=60, deadline=None)
    @given(case=vote_cases(), hidden=st.sampled_from([8, 32, 128]))
    def test_skew_monotone(self, case, hidden):
        """Reassigning a communicated row to the heaviest sender never
        turns the TP vote off: the straggler excess only grows."""
        num_workers, comm_sets, assignment, tp_cost, tw_cost = case
        parts = _partitions(num_workers, comm_sets, tp_cost, tw_cost)
        all_comm = np.concatenate(
            [p.communicated[0] for p in parts.values()]
        )
        send_rows = np.bincount(assignment[all_comm], minlength=num_workers)
        heaviest = int(send_rows.argmax())
        movable = all_comm[assignment[all_comm] != heaviest]
        if len(movable) == 0:
            return  # already fully concentrated
        skewed = assignment.copy()
        skewed[movable[0]] = heaviest
        dims = [hidden, 4]
        flat_vote = vote_tp_layers(
            parts, assignment, dims, self._constants, num_workers
        )
        skewed_vote = vote_tp_layers(
            parts, skewed, dims, self._constants, num_workers
        )
        assert skewed_vote[0] >= flat_vote[0]

    @settings(max_examples=60, deadline=None)
    @given(case=vote_cases(), hiddens=st.tuples(
        st.integers(1, 256), st.integers(1, 256)))
    def test_hidden_monotone(self, case, hiddens):
        """At fixed per-worker prices a wider hidden dim never turns
        the TP vote off: the straggler bytes scale with the row width."""
        num_workers, comm_sets, assignment, tp_cost, tw_cost = case
        parts = _partitions(num_workers, comm_sets, tp_cost, tw_cost)
        narrow, wide = sorted(hiddens)
        narrow_vote = vote_tp_layers(
            parts, assignment, [narrow, 4], self._constants, num_workers
        )
        wide_vote = vote_tp_layers(
            parts, assignment, [wide, 4], self._constants, num_workers
        )
        assert wide_vote[0] >= narrow_vote[0]

    @pytest.fixture(autouse=True)
    def _store_constants(self, constants):
        self._constants = constants

    def test_empty_partitions(self, constants):
        assert vote_tp_layers({}, np.zeros(4, dtype=np.int64),
                              [8], constants, 2) == []

    def test_no_comm_rows_never_flips(self, constants):
        parts = _partitions(2, [set(), set()], 1e-6, 1.0)
        # Cheap TP, expensive three-way -- but nothing is communicated,
        # so there is no exchange to replace.
        assignment = np.zeros(NUM_IDS, dtype=np.int64)
        assert vote_tp_layers(parts, assignment, [8], constants, 2) == [
            False
        ]

    def test_inf_tp_never_flips(self, constants):
        parts = _partitions(2, [{1}, {2}], math.inf, 1.0)
        assignment = np.zeros(NUM_IDS, dtype=np.int64)
        assert vote_tp_layers(parts, assignment, [8], constants, 2) == [
            False
        ]


class TestInfDisablesTP:
    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(32, 72),
        hidden=st.sampled_from([4, 16, 64]),
        workers=st.integers(2, 4),
        seed=st.integers(0, 1000),
    )
    def test_inf_cost_scale_is_bit_identical_to_three_way(
        self, constants, n, hidden, workers, seed
    ):
        from repro.costmodel.costs import TensorParallelCostInputs

        g = generators.community(n, 3, avg_degree=6.0, seed=seed)
        generators.attach_features(g, 8, 3, seed=seed + 1)
        graph = prepare_graph(g, "gcn")
        partitioning = chunk_partition(graph, workers)
        dims = [graph.feature_dim, hidden, graph.num_classes]
        owned = partitioning.part(0)
        tp_inputs = TensorParallelCostInputs(
            num_workers=workers,
            num_vertices=graph.num_vertices,
            num_owned=len(owned),
            total_edges=graph.num_edges,
            owned_in_edges=int(
                (partitioning.assignment[graph.dst] == 0).sum()
            ),
            cost_scale=math.inf,
        )
        three_way = partition_dependencies(
            graph, partitioning, 0, dims, constants,
            memory_limit_bytes=1 << 20,
        )
        four_way = partition_dependencies(
            graph, partitioning, 0, dims, constants,
            memory_limit_bytes=1 << 20, tp=tp_inputs,
        )
        assert four_way.tp_layers == [False] * (len(dims) - 1)
        assert all(math.isinf(c) for c in four_way.tp_cost_s)
        for l in range(len(dims) - 1):
            assert np.array_equal(three_way.cached[l], four_way.cached[l])
            assert np.array_equal(
                three_way.communicated[l], four_way.communicated[l]
            )
            assert np.array_equal(
                three_way.stale_cached[l], four_way.stale_cached[l]
            )


class TestEndToEndMonotone:
    """Seeded engine-level chains on the scaled-social family: the
    four-way plan's flip set only grows with skew (at fixed hidden) and
    with hidden width (at fixed skew)."""

    CLUSTER = ClusterSpec.ecs(16)

    @staticmethod
    def _flips(exponent: float, hidden: int):
        g = generators.scaled_social(
            1024, avg_degree=16.0, num_communities=8,
            hub_exponent=exponent, seed=0,
        )
        generators.attach_features(g, 64, 16, seed=1, class_signal=0.6)
        graph = prepare_graph(g, "gcn")
        model = GNNModel.build("gcn", 64, hidden, 16, num_layers=2, seed=0)
        engine = make_engine(
            "hybrid4", graph, model, TestEndToEndMonotone.CLUSTER
        )
        return engine.plan().tp_layers

    def test_selection_monotone_in_skew(self):
        chain = [self._flips(exponent, 256)
                 for exponent in (0.1, 0.85, 1.2)]
        for flatter, steeper in zip(chain, chain[1:]):
            assert all(s or not f for f, s in zip(flatter, steeper)), chain
        assert any(chain[-1]), chain  # the skewed end does flip

    def test_selection_monotone_in_hidden(self):
        chain = [self._flips(1.2, hidden) for hidden in (16, 64, 256)]
        for narrower, wider in zip(chain, chain[1:]):
            assert all(w or not n for n, w in zip(narrower, wider)), chain
        assert any(chain[-1]), chain  # the wide end does flip
