"""Eq. 1 (t_r) and Eq. 2 (t_c): subtree walks and exclusions."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.costmodel.costs import DependencyCostModel
from repro.costmodel.probe import probe_constants
from repro.graph import generators


@pytest.fixture
def setup():
    g = generators.chain(6)  # 0 -> 1 -> ... -> 5
    model = GNNModel.gcn(8, 4, 2)
    constants = probe_constants(ClusterSpec.ecs(2), model)
    owned = np.zeros(6, dtype=bool)
    owned[[4, 5]] = True
    cm = DependencyCostModel(g, model.dims(), constants, owned, mu=1.0)
    return g, model, constants, cm


class TestTr:
    def test_layer1_dep_costs_no_compute(self, setup):
        g, model, constants, cm = setup
        m = cm.t_r(3, layer=1)
        assert m.cost_s == 0.0  # features are cached, not recomputed
        assert m.memory_bytes > 0  # but they do take space

    def test_layer2_dep_chain(self, setup):
        g, model, constants, cm = setup
        # Caching dep 3 at layer 2 => recompute h^1(3) from 2's feature:
        # 1 vertex op + 1 edge op at layer 1.
        m = cm.t_r(3, layer=2)
        expected = constants.vertex_cost(1) + constants.edge_cost(1)
        assert m.cost_s == pytest.approx(expected)
        assert m.new_edge_count == 1

    def test_owned_vertices_excluded(self, setup):
        g, model, constants, cm = setup
        # Dep 5's subtree is entirely owned: no redundant work.
        m = cm.t_r(5, layer=2)
        assert m.cost_s == 0.0

    def test_commit_prevents_double_counting(self, setup):
        g, model, constants, cm = setup
        first = cm.t_r(3, layer=2)
        cm.commit(3, 2, first)
        again = cm.t_r(3, layer=2)
        assert again.cost_s == 0.0

    def test_overlapping_subtrees_share(self, setup):
        g, model, constants, cm = setup
        # Vertices 3 and 2 chain: caching 3 first makes 2's feature cached.
        m3 = cm.t_r(3, layer=2)
        cm.commit(3, 2, m3)
        m2 = cm.t_r(2, layer=2)
        # 2's subtree: recompute h^1(2) needing feature of 1 (new).
        assert m2.cost_s == pytest.approx(
            constants.vertex_cost(1) + constants.edge_cost(1)
        )

    def test_mu_scales_cost(self, setup):
        g, model, constants, cm = setup
        half = DependencyCostModel(
            g, model.dims(), constants, cm.owned_mask, mu=0.5
        )
        assert half.t_r(3, 2).cost_s == pytest.approx(0.5 * cm.t_r(3, 2).cost_s)

    def test_mu_validation(self, setup):
        g, model, constants, cm = setup
        with pytest.raises(ValueError):
            DependencyCostModel(g, model.dims(), constants, cm.owned_mask, mu=0.0)

    def test_star_dep_counts_all_in_edges(self):
        g = generators.star(4, inward=True)  # 1..4 -> 0
        model = GNNModel.gcn(8, 4, 2)
        constants = probe_constants(ClusterSpec.ecs(2), model)
        owned = np.zeros(5, dtype=bool)  # nothing owned
        cm = DependencyCostModel(g, model.dims(), constants, owned, mu=1.0)
        m = cm.t_r(0, layer=2)
        assert m.new_edge_count == 4
        assert m.cost_s == pytest.approx(
            constants.vertex_cost(1) + 4 * constants.edge_cost(1)
        )


class TestTc:
    def test_matches_probe(self, setup):
        g, model, constants, cm = setup
        assert cm.t_c(1) == constants.comm_cost(1)
        assert cm.t_c(2) == constants.comm_cost(2)
