"""Evaluation masks, hybrid budgets, and misc engine coverage."""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import DepCommEngine, HybridEngine, SamplingEngine
from repro.training.prep import prepare_graph


@pytest.fixture
def graph(small_graph):
    return prepare_graph(small_graph, "gcn")


class TestEvaluationMasks:
    def test_default_is_test_mask(self, graph, cluster2):
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=1)
        engine = DepCommEngine(graph, model, cluster2)
        assert engine.evaluate() == engine.evaluate(mask=graph.test_mask)

    def test_val_mask_differs_from_test(self, graph, cluster2):
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=1)
        engine = DepCommEngine(graph, model, cluster2)
        val = engine.evaluate(mask=graph.val_mask)
        assert 0.0 <= val <= 1.0

    def test_train_mask_accuracy_after_training(self, graph, cluster2):
        from repro.training.trainer import DistributedTrainer

        model = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=1)
        engine = DepCommEngine(graph, model, cluster2)
        DistributedTrainer(engine, lr=0.05).train(epochs=15)
        # Train accuracy should be at least test accuracy.
        assert engine.evaluate(mask=graph.train_mask) >= (
            engine.evaluate(mask=graph.test_mask) - 0.1
        )

    def test_missing_mask_raises(self, graph, cluster2):
        bare = prepare_graph(graph, "gcn")
        bare.test_mask = None
        model = GNNModel.gcn(bare.feature_dim, 8, bare.num_classes, seed=1)
        engine = DepCommEngine(bare, model, cluster2)
        with pytest.raises(ValueError, match="test mask"):
            engine.evaluate()

    def test_sampling_engine_mask(self, graph, cluster2):
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=1)
        engine = SamplingEngine(
            graph, model, cluster2, fanouts=(3, 3), batch_size=16
        )
        acc = engine.evaluate(mask=graph.val_mask)
        assert 0.0 <= acc <= 1.0


class TestHybridBudget:
    def test_smaller_budget_caches_less(self, graph, cluster2):
        def ratio(budget):
            model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes,
                                 seed=1)
            engine = HybridEngine(
                graph, model, cluster2, memory_limit_bytes=budget
            )
            return engine.plan().cache_ratio()

        assert ratio(128) <= ratio(1 << 26)

    def test_mu_passed_through(self, graph, cluster2):
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=1)
        engine = HybridEngine(graph, model, cluster2, mu=0.3)
        assert engine.mu == 0.3
        engine.plan()  # must not raise

    def test_invalid_mu_rejected_at_plan(self, graph, cluster2):
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=1)
        engine = HybridEngine(graph, model, cluster2, mu=0.0)
        with pytest.raises(ValueError):
            engine.plan()


class TestSingleWorkerDegeneracy:
    def test_all_engines_collapse_to_local(self, graph):
        """On one worker every strategy is the same plan."""
        from repro.engines import DepCacheEngine

        single = ClusterSpec.single_gpu()
        plans = []
        for engine_cls in [DepCacheEngine, DepCommEngine, HybridEngine]:
            model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes,
                                 seed=1)
            plan = engine_cls(graph, model, single).plan()
            plans.append(plan)
            assert plan.total_comm_vertices() == 0
        sizes = {p.blocks[0][0].num_edges for p in plans}
        assert len(sizes) == 1
