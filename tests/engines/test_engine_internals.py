"""White-box tests of the base engine's internal machinery."""

import numpy as np
import pytest

from repro.core.model import GNNModel
from repro.engines import DepCommEngine, HybridEngine
from repro.engines.base import BaseEngine
from repro.training.prep import prepare_graph


@pytest.fixture
def engine(medium_graph, cluster4):
    graph = prepare_graph(medium_graph, "gcn")
    model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=2)
    return DepCommEngine(graph, model, cluster4)


class TestGatherInputs:
    def test_layer1_inputs_are_features(self, engine):
        plan = engine.plan()
        block = plan.blocks[0][0]
        rows = engine._gather_inputs(plan, [None] * 3, 1, 0, block)
        assert np.allclose(rows, engine.graph.features[block.input_vertices])

    def test_layer2_remote_rows_from_owner(self, engine):
        plan = engine.plan()
        # Fabricate distinct per-worker layer-1 outputs: worker w's rows
        # are all equal to w + 1.
        h_values = [None, [], None]
        for w in range(4):
            ids = plan.compute_sets[0][w]
            h_values[1].append(
                np.full((len(ids), 8), float(w + 1), dtype=np.float32)
            )
        block = plan.blocks[1][0]
        rows = engine._gather_inputs(plan, h_values, 2, 0, block)
        owners = engine.assignment[block.input_vertices]
        assert np.allclose(rows[:, 0], owners + 1.0)


class TestVolumeMatrices:
    def test_backward_is_transpose_of_forward(self, engine):
        plan = engine.plan()
        forward = engine._forward_volumes(plan, 2)
        backward = engine._backward_volumes(plan, 2)
        assert np.array_equal(backward, forward.T)

    def test_layer1_backward_empty(self, engine):
        plan = engine.plan()
        assert engine._backward_volumes(plan, 1).sum() == 0

    def test_forward_volumes_match_exchange_counts(self, engine):
        plan = engine.plan()
        volumes = engine._forward_volumes(plan, 1)
        counts = plan.exchanges[0].counts
        assert np.array_equal(volumes, counts * engine.dims[0] * 4)

    def test_diagonal_is_zero(self, engine):
        plan = engine.plan()
        volumes = engine._forward_volumes(plan, 1)
        assert np.allclose(np.diag(volumes), 0.0)


class TestLayerComputeSplit:
    def test_shapes_and_positivity(self, engine):
        plan = engine.plan()
        chunk, local, dense = engine._layer_compute_split(plan, 1)
        m = engine.cluster.num_workers
        assert chunk.shape == (m, m)
        assert (chunk >= 0).all() and (local >= 0).all() and (dense > 0).all()

    def test_chunk_compute_only_where_comm(self, engine):
        plan = engine.plan()
        chunk, _, _ = engine._layer_compute_split(plan, 1)
        counts = plan.exchanges[0].counts
        # No compute charged for pairs with no received vertices.
        assert (chunk[counts == 0] == 0).all()


class TestAdversarialSubclass:
    def test_overlapping_decisions_resolved(self, medium_graph, cluster4):
        """A subclass listing a dependency in BOTH R and C still plans:
        the communicated set wins (intersection with the decision list),
        and numerics stay correct."""
        graph = prepare_graph(medium_graph, "gcn")

        class SloppyEngine(BaseEngine):
            name = "sloppy"

            def decide_dependencies(self, worker):
                from repro.graph.khop import dependency_layers
                deps = dependency_layers(
                    self.graph, self.partitioning.part(worker), self.num_layers
                )
                # Everything in both sets.
                return [d.copy() for d in deps], [d.copy() for d in deps], 0.0

        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=2)
        sloppy = SloppyEngine(graph, model, cluster4)
        loss_sloppy = sloppy.run_epoch().loss

        model2 = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=2)
        reference = DepCommEngine(graph, model2, cluster4)
        assert loss_sloppy == pytest.approx(reference.run_epoch().loss, rel=1e-5)

    def test_base_decide_is_abstract(self, medium_graph, cluster4):
        graph = prepare_graph(medium_graph, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes)
        engine = BaseEngine(graph, model, cluster4)
        with pytest.raises(NotImplementedError):
            engine.plan()


class TestEpochReportFields:
    def test_phases_sum_to_epoch(self, engine):
        report = engine.run_epoch()
        total = (
            report.forward_time_s
            + report.backward_time_s
            + report.allreduce_time_s
        )
        assert total == pytest.approx(report.epoch_time_s, rel=1e-6)

    def test_epoch_counter_increments(self, engine):
        first = engine.run_epoch()
        second = engine.run_epoch()
        assert second.epoch == first.epoch + 1

    def test_hybrid_reports_preprocessing_once(self, medium_graph, cluster4):
        graph = prepare_graph(medium_graph, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=2)
        engine = HybridEngine(graph, model, cluster4)
        prep1 = engine.plan().preprocessing_s
        engine.run_epoch()
        assert engine.plan().preprocessing_s == prep1  # plan cached
