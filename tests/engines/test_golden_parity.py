"""Golden-trace parity: the execution-layer refactor must be bit-identical.

Two seeded scenarios are pinned against goldens checked into
``tests/data/``:

- a 2-worker hybrid **training** run (with a staleness-bounded cache so
  the CACHED gather path is exercised): per-epoch losses, the epoch
  reports' comm accounting, and the full chrome-trace export;
- a seeded **serving** benchmark on the same graph: every
  ``LatencyLedger`` entry, all predictions, and the serving trace.

The goldens were generated *before* the unified execution layer
existed (``python tests/engines/test_golden_parity.py --write`` on the
pre-refactor tree), so any drift in losses, ledgers, or traces means
the refactor changed observable behaviour, which the tentpole forbids
with the overlap pass off.
"""

import json
import sys
from pathlib import Path

import numpy as np

DATA_DIR = Path(__file__).resolve().parent.parent / "data"
TRAIN_GOLDEN = DATA_DIR / "golden_hybrid_2worker.json"
SERVE_GOLDEN = DATA_DIR / "golden_serving_2worker.json"


def _graph():
    from repro.graph import generators
    from repro.training.prep import prepare_graph

    g = generators.community(64, 4, avg_degree=8.0, seed=3)
    generators.attach_features(g, 16, 4, seed=4, class_signal=2.0)
    return prepare_graph(g, "gcn")


def build_training_payload(tensor_parallel: bool = False):
    """Seeded 2-worker hybrid run -> losses + reports + chrome trace.

    ``tensor_parallel=True`` enables the four-way greedy; on this tiny
    2-worker graph the slice all-to-all is never cheapest, so the
    decisions -- and therefore the whole payload -- must stay
    bit-identical to the three-way golden.
    """
    from repro.cache import CacheConfig
    from repro.cluster.spec import ClusterSpec
    from repro.cluster.trace import timeline_to_chrome_trace
    from repro.core.model import GNNModel
    from repro.engines import HybridEngine
    from repro.tensor import optim

    graph = _graph()
    model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=2)
    engine = HybridEngine(
        graph, model, ClusterSpec.ecs(2),
        record_timeline=True,
        cache_config=CacheConfig(tau=2.0),
        tensor_parallel=tensor_parallel,
    )
    optimizer = optim.Adam(model.parameters(), lr=0.01)
    losses, reports = [], []
    for _ in range(4):
        report = engine.run_epoch(optimizer=optimizer)
        losses.append(report.loss)
        reports.append({
            "epoch": report.epoch,
            "epoch_time_s": report.epoch_time_s,
            "comm_bytes": report.comm_bytes,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "refresh_bytes": report.refresh_bytes,
            "comm_saved_bytes": report.comm_saved_bytes,
            "cache_refreshed": report.cache_refreshed,
        })
    return {
        "losses": losses,
        "reports": reports,
        "accuracy": engine.evaluate(),
        "trace": timeline_to_chrome_trace(engine.timeline),
    }


def build_serving_payload():
    """Seeded serving benchmark -> ledger entries + predictions + trace."""
    from repro.cluster.spec import ClusterSpec
    from repro.cluster.trace import timeline_to_chrome_trace
    from repro.core.model import GNNModel
    from repro.partition.chunk import chunk_partition
    from repro.serving import (
        InferenceServer, ServingConfig, WorkloadConfig, generate_workload,
    )

    graph = _graph()
    model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=2)
    cluster = ClusterSpec.ecs(2)
    partitioning = chunk_partition(graph, 2)
    config = ServingConfig(
        batch_window_s=0.002, max_batch=16, tau_s=0.05, mode="auto",
    )
    server = InferenceServer(
        graph, model, cluster, partitioning, config=config,
        record_timeline=True,
    )
    workload = generate_workload(
        WorkloadConfig(num_requests=80, rate_rps=4000.0, zipf_exponent=1.0,
                      seed=11),
        graph.num_vertices,
    )
    result = server.serve(workload)
    return {
        "ledger": result.ledger.to_dict(),
        "predictions": {str(k): int(v) for k, v in result.predictions.items()},
        "num_batches": result.num_batches,
        "makespan_s": result.makespan_s,
        "trace": timeline_to_chrome_trace(result.timeline),
    }


def _roundtrip(payload):
    """JSON round-trip so tuples/np scalars compare like the golden."""
    return json.loads(json.dumps(payload, default=_jsonify))


def _jsonify(obj):
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj)}")


def _assert_matches(payload, golden_path):
    golden = json.loads(golden_path.read_text())
    fresh = _roundtrip(payload)
    assert fresh.keys() == golden.keys()
    for key in golden:
        assert fresh[key] == golden[key], (
            f"{golden_path.name}: field {key!r} drifted from the golden"
        )


class TestGoldenParity:
    def test_training_run_matches_golden(self):
        _assert_matches(build_training_payload(), TRAIN_GOLDEN)

    def test_serving_run_matches_golden(self):
        _assert_matches(build_serving_payload(), SERVE_GOLDEN)

    def test_four_way_greedy_matches_three_way_golden(self):
        """Enabling the TP option must not perturb three-way decisions
        where the slice all-to-all is never cheapest: the four-way run
        reproduces the pre-TP golden bit for bit."""
        _assert_matches(build_training_payload(tensor_parallel=True),
                        TRAIN_GOLDEN)


def main(argv):
    if "--write" not in argv:
        print("usage: python tests/engines/test_golden_parity.py --write")
        return 1
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    TRAIN_GOLDEN.write_text(
        json.dumps(_roundtrip(build_training_payload()), indent=1)
    )
    SERVE_GOLDEN.write_text(
        json.dumps(_roundtrip(build_serving_payload()), indent=1)
    )
    print(f"wrote {TRAIN_GOLDEN}\nwrote {SERVE_GOLDEN}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
