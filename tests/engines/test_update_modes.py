"""All-reduce vs parameter-server synchronisation."""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import DepCommEngine
from repro.training.prep import prepare_graph


def build(graph, m, update_mode, hidden=32, layers=2):
    model = GNNModel.gcn(graph.feature_dim, hidden, graph.num_classes,
                         num_layers=layers, seed=1)
    return DepCommEngine(
        graph, model, ClusterSpec.ecs(m), update_mode=update_mode
    )


class TestUpdateModes:
    def test_invalid_mode_rejected(self, small_graph):
        graph = prepare_graph(small_graph, "gcn")
        with pytest.raises(ValueError, match="update_mode"):
            build(graph, 2, "gossip")

    def test_ps_slower_for_large_models(self, small_graph):
        # With megabyte-scale parameters the server NIC serialising m
        # transfers loses to the ring's 2(m-1)/m bandwidth share.
        graph = prepare_graph(small_graph, "gcn")
        ar = build(graph, 8, "allreduce", hidden=1024,
                   layers=3).run_epoch().allreduce_time_s
        ps = build(graph, 8, "parameter-server", hidden=1024,
                   layers=3).run_epoch().allreduce_time_s
        assert ps > ar

    def test_ps_faster_for_tiny_models(self, small_graph):
        # Tiny parameter sets are latency-bound: one round trip to the
        # server beats 2(m-1) ring steps.
        graph = prepare_graph(small_graph, "gcn")
        ar = build(graph, 8, "allreduce").run_epoch().allreduce_time_s
        ps = build(graph, 8, "parameter-server").run_epoch().allreduce_time_s
        assert ps < ar

    def test_modes_numerically_identical(self, small_graph):
        graph = prepare_graph(small_graph, "gcn")
        loss_ar = build(graph, 4, "allreduce").run_epoch().loss
        loss_ps = build(graph, 4, "parameter-server").run_epoch().loss
        assert loss_ar == pytest.approx(loss_ps, rel=1e-6)

    def test_ps_gap_grows_with_cluster(self, small_graph):
        graph = prepare_graph(small_graph, "gcn")

        def gap(m):
            ar = build(graph, m, "allreduce", hidden=1024,
                       layers=3).run_epoch().allreduce_time_s
            ps = build(graph, m, "parameter-server", hidden=1024,
                       layers=3).run_epoch().allreduce_time_s
            return ps / ar

        assert gap(8) > gap(2)
