"""Randomized equivalence sweep: engines agree on arbitrary graphs.

A light-weight property test (seeded configurations rather than
hypothesis, since each case runs a real distributed epoch): random
graph shape x architecture x worker count, asserting loss equality and
gradient closeness between DepComm and Hybrid/DepCache.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import DepCacheEngine, DepCommEngine, HybridEngine
from repro.graph import generators
from repro.training.prep import prepare_graph

CASES = [
    # (generator, arch, workers, seed)
    ("erdos", "gcn", 2, 0),
    ("erdos", "gat", 3, 1),
    ("locality", "gcn", 4, 2),
    ("locality", "gin", 2, 3),
    ("community", "gcn", 3, 4),
    ("community", "gat", 4, 5),
    ("star", "gcn", 2, 6),
    ("chain", "gin", 3, 7),
]


def make_graph(kind: str, seed: int):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(24, 80))
    if kind == "erdos":
        g = generators.erdos_renyi(n, n * 4, seed=seed)
    elif kind == "locality":
        g = generators.locality_graph(n, n * 5, seed=seed)
    elif kind == "community":
        g = generators.community(n, 3, 5.0, seed=seed)
    elif kind == "star":
        g = generators.star(n - 1, inward=True)
    else:
        g = generators.chain(n)
    generators.attach_features(g, 6, 3, seed=seed + 1)
    return g


@pytest.mark.parametrize("kind,arch,workers,seed", CASES)
def test_random_config_equivalence(kind, arch, workers, seed):
    graph = prepare_graph(make_graph(kind, seed), arch)
    cluster = ClusterSpec.ecs(workers)
    reference = None
    for engine_cls in [DepCommEngine, DepCacheEngine, HybridEngine]:
        model = GNNModel.build(arch, graph.feature_dim, 5, graph.num_classes,
                               seed=99)
        engine = engine_cls(graph, model, cluster)
        report = engine.run_epoch()
        grads = [p.grad.copy() for p in model.parameters()]
        if reference is None:
            reference = (report.loss, grads)
        else:
            assert report.loss == pytest.approx(reference[0], rel=1e-4), (
                kind, arch, engine_cls.name
            )
            for ga, gb in zip(reference[1], grads):
                assert np.allclose(ga, gb, atol=1e-4), (
                    kind, arch, engine_cls.name
                )
