"""Golden-parity and cost properties of the optimizer pass pipeline.

Each of the three new passes (:class:`FuseScatterGatherPass`,
:class:`ChunkPipelinePass`, :class:`RingReorderPass`) is annotation-only
IR surgery: with a pass enabled the trained losses and predictions must
stay **bit-identical** to the pass-off run of the same seeded scenario,
while the charged wall-clock never increases.  The fuse pass addition-
ally rewires the worker step tuples, so its structural effect on the IR
is pinned too.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import HybridEngine
from repro.execution import make_pass
from repro.graph import generators
from repro.sampling.engine import SampledTrainingEngine
from repro.tensor import optim
from repro.training.prep import prepare_graph

PASSES = ["fuse-scatter-gather", "chunk-pipeline", "ring-reorder"]
ARCHS = ["gcn", "gin", "sage"]


def _engine(arch, passes, cls=HybridEngine, num_workers=2, **kwargs):
    g = generators.community(64, 4, avg_degree=8.0, seed=3)
    generators.attach_features(g, 16, 4, seed=4, class_signal=2.0)
    graph = prepare_graph(g, arch)
    factory = getattr(GNNModel, arch)
    model = factory(graph.feature_dim, 8, graph.num_classes, seed=2)
    return cls(
        graph, model, ClusterSpec.ecs(num_workers),
        program_passes=passes, **kwargs,
    )


def _train(engine, epochs=3):
    opt = optim.Adam(engine.model.parameters(), lr=0.01)
    losses = [engine.run_epoch(opt).loss for _ in range(epochs)]
    params = [p.data.copy() for p in engine.model.parameters()]
    return losses, params


class TestPassParity:
    @pytest.mark.parametrize("arch", ARCHS)
    @pytest.mark.parametrize("name", PASSES)
    def test_losses_and_params_bit_identical(self, arch, name):
        losses_off, params_off = _train(_engine(arch, None))
        losses_on, params_on = _train(_engine(arch, (name,)))
        assert losses_on == losses_off
        for a, b in zip(params_on, params_off):
            assert np.array_equal(a, b)

    def test_all_passes_together_bit_identical(self):
        losses_off, params_off = _train(_engine("gcn", None))
        losses_on, params_on = _train(_engine("gcn", tuple(PASSES)))
        assert losses_on == losses_off
        for a, b in zip(params_on, params_off):
            assert np.array_equal(a, b)

    def test_sampled_engine_bit_identical(self):
        losses_off, _ = _train(
            _engine("sage", None, cls=SampledTrainingEngine, seed=5)
        )
        losses_on, _ = _train(
            _engine("sage", tuple(PASSES), cls=SampledTrainingEngine, seed=5)
        )
        assert losses_on == losses_off


class TestPassCost:
    @pytest.mark.parametrize("name", PASSES)
    def test_epoch_wall_clock_monotone(self, name):
        t_off = _engine("gcn", None, num_workers=4).charge_epoch()
        t_on = _engine("gcn", (name,), num_workers=4).charge_epoch()
        assert t_on <= t_off + 1e-12

    def test_fuse_discounts_sparse_time(self):
        t_off = _engine("gcn", None, num_workers=4).charge_epoch()
        t_on = _engine(
            "gcn", ("fuse-scatter-gather",), num_workers=4
        ).charge_epoch()
        assert t_on < t_off

    def test_ring_saves_when_engine_r_is_off(self):
        from repro.comm.scheduler import CommOptions

        raw = CommOptions(ring=False, lock_free=True, overlap=True)
        t_off = _engine("gcn", None, num_workers=4, comm=raw).charge_epoch()
        t_on = _engine(
            "gcn", ("ring-reorder",), num_workers=4, comm=raw
        ).charge_epoch()
        assert t_on < t_off


class TestPassStructure:
    def test_fused_steps_in_ir(self):
        engine = _engine("gcn", ("fuse-scatter-gather",))
        engine.plan()
        program = engine.program_
        assert "fuse-scatter-gather" in program.passes
        for lp in program.layers:
            assert lp.fused_reducer == "weighted_sum"
            for wp in lp.workers:
                kinds = [s.kind for s in wp.steps]
                assert kinds == [
                    "get_from_dep_nbr", "fused_scatter_gather",
                    "vertex_forward",
                ]
                assert "edge_forward" not in kinds

    def test_attention_layers_not_fused(self):
        engine = _engine("gat", ("fuse-scatter-gather",))
        engine.plan()
        for lp in engine.program_.layers:
            assert lp.fused_reducer is None
            assert len(lp.workers[0].steps) == 5

    def test_pipeline_and_ring_annotations(self):
        engine = _engine(
            "gcn", ("chunk-pipeline", "ring-reorder"), num_workers=4
        )
        engine.plan()
        program = engine.program_
        assert "chunk-pipeline" in program.passes
        assert "ring-reorder" in program.passes
        annotated = [
            lp.exchange for lp in program.layers
            if lp.exchange.total_bytes() > 0
        ]
        assert annotated
        for ex in annotated:
            assert ex.pipeline_depth == 4
            assert ex.ring_order == (1, 2, 3)
        # Phases without traffic stay at their bit-identical defaults.
        for lp in program.layers:
            if lp.exchange.total_bytes() == 0:
                assert lp.exchange.pipeline_depth == 1
                assert lp.exchange.ring_order is None

    def test_unknown_pass_name_rejected(self):
        with pytest.raises(ValueError, match="unknown program pass"):
            make_pass("loop-unroll")
        with pytest.raises(ValueError, match="unknown program pass"):
            _engine("gcn", ("loop-unroll",)).plan()
