"""DistDGL-like sampling engine."""

import numpy as np
import pytest

from repro.core.model import GNNModel
from repro.engines import DepCommEngine, SamplingEngine
from repro.tensor import optim
from repro.training.prep import prepare_graph


@pytest.fixture
def engine(small_graph, cluster2):
    graph = prepare_graph(small_graph, "gcn")
    model = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=1)
    return SamplingEngine(
        graph, model, cluster2, fanouts=(3, 5), batch_size=16, seed=0
    )


class TestSampling:
    def test_fanout_bound_respected(self, engine):
        seeds = np.arange(10)
        blocks, edges, remote = engine._sample_blocks(seeds, worker=0)
        csc = engine.graph.csc
        top = blocks[-1]
        # Each seed keeps at most fanout[0]=3 in-edges.
        counts = np.bincount(top.edge_dst_pos, minlength=top.num_outputs)
        assert counts.max() <= 3
        for v, c in zip(top.compute_vertices, counts):
            assert c == min(3, csc.degree(int(v)))

    def test_blocks_chain(self, engine):
        blocks, _, _ = engine._sample_blocks(np.arange(8), worker=0)
        assert np.array_equal(
            blocks[0].compute_vertices, blocks[1].input_vertices
        )

    def test_fanout_arity_checked(self, small_graph, cluster2):
        graph = prepare_graph(small_graph, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes)
        with pytest.raises(ValueError, match="fanout"):
            SamplingEngine(graph, model, cluster2, fanouts=(10,))

    def test_remote_rows_counted(self, engine):
        _, _, remote = engine._sample_blocks(
            engine.partitioning.part(0)[:8], worker=0
        )
        assert remote >= 0

    def test_epoch_runs_and_reports(self, engine):
        opt = optim.Adam(engine.model.parameters(), lr=0.01)
        report = engine.run_epoch(optimizer=opt)
        assert report.epoch_time_s > 0
        assert report.loss > 0

    def test_training_reduces_loss(self, engine):
        opt = optim.Adam(engine.model.parameters(), lr=0.02)
        first = engine.run_epoch(optimizer=opt).loss
        for _ in range(8):
            last = engine.run_epoch(optimizer=opt).loss
        assert last < first

    def test_evaluate_in_range(self, engine):
        acc = engine.evaluate()
        assert 0.0 <= acc <= 1.0

    def test_charge_epoch_cheaper_than_run(self, engine):
        t = engine.charge_epoch()
        assert t > 0

    def test_sampling_nondeterministic_across_epochs(self, engine):
        a = engine._sample_blocks(np.arange(8), worker=0)[0][0].edge_ids
        b = engine._sample_blocks(np.arange(8), worker=0)[0][0].edge_ids
        # rng advances; high-degree community graph should differ.
        assert not np.array_equal(a, b)


class TestSamplingVsFullBatch:
    def test_sampled_gradient_is_biased(self, small_graph, cluster2):
        """Mini-batch sampled training != full-batch (that's the point)."""
        graph = prepare_graph(small_graph, "gcn")
        model_a = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=1)
        model_b = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=1)
        full = DepCommEngine(graph, model_a, cluster2)
        sampled = SamplingEngine(
            graph, model_b, cluster2, fanouts=(2, 2), batch_size=1000, seed=0
        )
        opt_a = optim.SGD(model_a.parameters(), lr=0.1)
        opt_b = optim.SGD(model_b.parameters(), lr=0.1)
        full.run_epoch(optimizer=opt_a)
        sampled.run_epoch(optimizer=opt_b)
        diffs = [
            np.abs(pa.data - pb.data).max()
            for pa, pb in zip(model_a.parameters(), model_b.parameters())
        ]
        assert max(diffs) > 1e-6
