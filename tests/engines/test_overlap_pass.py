"""Properties of the Section-5.4 comm/compute overlap pass.

The :class:`~repro.execution.passes.OverlapExchangePass` may only fold
VertexForward (dense) time into an exchange's communication window; it
must never invent or destroy charged work.  Three properties pin this:

- **monotone**: with the pass on, no worker's charged wall-clock (and
  hence the epoch time) ever exceeds the pass-off run of the same
  seeded configuration;
- **conservative**: per-worker GPU totals are identical on/off -- the
  folded share is recorded inside the window, not dropped;
- **no-op at one chunk**: a worker receiving from fewer than two peers
  has nothing to pipeline behind, so the pass marks nothing and the
  charged timeline is bit-identical to the pass-off run.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import GPU
from repro.core.model import GNNModel
from repro.engines import DepCommEngine, HybridEngine
from repro.execution import OverlapExchangePass, compile_program
from repro.graph import generators
from repro.training.prep import prepare_graph


def _engine(cls, num_workers, seed, overlap_pass, **kwargs):
    g = generators.community(96, 4, avg_degree=10.0, seed=seed)
    generators.attach_features(g, 16, 4, seed=seed + 1, class_signal=2.0)
    graph = prepare_graph(g, "gcn")
    model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=2)
    return graph, cls(
        graph, model, ClusterSpec.ecs(num_workers),
        record_timeline=True, overlap_pass=overlap_pass, **kwargs,
    )


def _paired_epoch(cls, num_workers, seed, **kwargs):
    """charge_epoch on identical engines, pass off vs on."""
    _, off = _engine(cls, num_workers, seed, overlap_pass=False, **kwargs)
    _, on = _engine(cls, num_workers, seed, overlap_pass=True, **kwargs)
    return off, off.charge_epoch(), on, on.charge_epoch()


ENGINES = [DepCommEngine, HybridEngine]


class TestOverlapNeverSlower:
    @pytest.mark.parametrize("cls", ENGINES)
    @pytest.mark.parametrize("seed", [3, 7, 13])
    def test_epoch_wall_clock_monotone(self, cls, seed):
        off, t_off, on, t_on = _paired_epoch(cls, 4, seed)
        assert t_on <= t_off + 1e-12
        # Per-worker clocks, not just the makespan: folding one
        # worker's dense time must not push any other worker later.
        assert np.all(on.timeline.clocks <= off.timeline.clocks + 1e-12)

    @pytest.mark.parametrize("cls", ENGINES)
    def test_gpu_totals_preserved(self, cls):
        off, _, on, _ = _paired_epoch(cls, 4, seed=3)
        np.testing.assert_allclose(
            on.timeline.totals[GPU], off.timeline.totals[GPU],
            rtol=0, atol=1e-12,
        )

    def test_folds_marked_and_spans_recorded(self):
        # On a 4-worker DepComm engine every worker receives from 3
        # peers, so the pass must mark folds and (when the window has
        # slack) leave inspectable ``overlap`` spans behind.  With the
        # P optimization off the window is pure communication, so the
        # slack is guaranteed positive.
        from repro.comm.scheduler import CommOptions

        _, on = _engine(
            DepCommEngine, 4, seed=3, overlap_pass=True,
            comm=CommOptions(ring=True, lock_free=True, overlap=False),
        )
        on.plan()
        assert "overlap-exchange" in on.program_.passes
        folds = [
            lp.exchange.fold_dense[w]
            for lp in on.program_.layers
            for w in range(4)
            if lp.exchange.recv_chunks(w) >= 2
        ]
        assert folds and all(folds)
        on.charge_epoch()
        saved = [s for s in on.timeline.spans if s.name == "overlap"]
        assert saved, "expected at least one folded exchange in the trace"
        for span in saved:
            assert span.args["saved_s"] > 0
            assert 1 <= span.args["layer"] <= on.num_layers


class TestSingleChunkNoOp:
    """With 2 workers each exchange has at most one source chunk."""

    @pytest.mark.parametrize("cls", ENGINES)
    def test_pass_marks_nothing(self, cls):
        _, on = _engine(cls, 2, seed=3, overlap_pass=True)
        on.plan()
        assert "overlap-exchange" in on.program_.passes
        for lp in on.program_.layers:
            for w in range(2):
                assert lp.exchange.recv_chunks(w) <= 1
                assert not lp.exchange.fold_dense[w]

    @pytest.mark.parametrize("cls", ENGINES)
    def test_charged_timeline_bit_identical(self, cls):
        off, t_off, on, t_on = _paired_epoch(cls, 2, seed=3)
        assert t_on == t_off
        assert np.array_equal(on.timeline.clocks, off.timeline.clocks)
        for kind in off.timeline.totals:
            assert np.array_equal(
                on.timeline.totals[kind], off.timeline.totals[kind]
            )

    def test_pass_is_idempotent(self):
        # Running the pass twice on the same program marks the same set
        # of folds -- it only ever flips False -> True where eligible.
        _, on = _engine(DepCommEngine, 4, seed=3, overlap_pass=True)
        plan = on.plan()
        program = compile_program(on, plan)
        OverlapExchangePass().run(program, on)
        first = [lp.exchange.fold_dense.copy() for lp in program.layers]
        OverlapExchangePass().run(program, on)
        for before, lp in zip(first, program.layers):
            assert np.array_equal(before, lp.exchange.fold_dense)
