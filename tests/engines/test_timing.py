"""The timing model: optimizations, scaling, and shape assertions.

These tests pin the paper's qualitative performance claims at test
granularity; the benchmarks regenerate the full tables.
"""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.core.model import GNNModel
from repro.engines import DepCacheEngine, DepCommEngine, HybridEngine, RocLikeEngine
from repro.graph.datasets import load_dataset, spec_of
from repro.training.prep import prepare_graph


def charge(engine_cls, name, m=8, comm=CommOptions.none(), scale=1.0, **kwargs):
    graph = prepare_graph(load_dataset(name, scale=scale), "gcn")
    spec = spec_of(name)
    model = GNNModel.gcn(
        graph.feature_dim, spec.hidden_dim, graph.num_classes, seed=1
    )
    engine = engine_cls(graph, model, ClusterSpec.ecs(m), comm=comm, **kwargs)
    return engine.charge_epoch()


class TestChargeEpoch:
    def test_positive_and_deterministic(self, medium_graph, cluster4):
        graph = prepare_graph(medium_graph, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=1)
        engine = DepCommEngine(graph, model, cluster4)
        t1 = engine.charge_epoch()
        t2 = engine.charge_epoch()
        assert t1 > 0
        assert t2 == pytest.approx(t1, rel=1e-9)

    def test_matches_run_epoch_time(self, small_graph, cluster4):
        graph = prepare_graph(small_graph, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=1)
        engine = DepCommEngine(graph, model, cluster4)
        fast = engine.charge_epoch()
        real = engine.run_epoch().epoch_time_s
        assert real == pytest.approx(fast, rel=1e-6)


class TestOptimizations:
    def test_each_optimization_helps(self):
        raw = charge(HybridEngine, "orkut", m=8, comm=CommOptions.none())
        ring = charge(HybridEngine, "orkut", m=8, comm=CommOptions(ring=True))
        ring_lf = charge(
            HybridEngine, "orkut", m=8, comm=CommOptions(ring=True, lock_free=True)
        )
        full = charge(HybridEngine, "orkut", m=8, comm=CommOptions.all())
        assert raw > ring > ring_lf > full

    def test_full_optimization_band(self):
        # Paper: all three together buy 1.46X-1.77X over raw Hybrid.
        raw = charge(HybridEngine, "wiki", m=16, comm=CommOptions.none())
        full = charge(HybridEngine, "wiki", m=16, comm=CommOptions.all())
        assert 1.1 < raw / full < 2.2


class TestFig2Shapes:
    def test_depcache_wins_on_google(self):
        cache = charge(DepCacheEngine, "google")
        comm = charge(DepCommEngine, "google")
        assert cache < comm

    def test_depcomm_wins_on_pokec(self):
        cache = charge(DepCacheEngine, "pokec")
        comm = charge(DepCommEngine, "pokec")
        assert comm < cache

    def test_depcomm_wins_big_on_reddit(self):
        cache = charge(DepCacheEngine, "reddit")
        comm = charge(DepCommEngine, "reddit")
        assert cache / comm > 2.5

    def test_ibv_flips_google(self):
        graph = prepare_graph(load_dataset("google"), "gcn")
        spec = spec_of("google")
        times = {}
        for engine_cls in [DepCacheEngine, DepCommEngine]:
            model = GNNModel.gcn(
                graph.feature_dim, spec.hidden_dim, graph.num_classes, seed=1
            )
            engine = engine_cls(
                graph, model, ClusterSpec.ibv(8), comm=CommOptions.none()
            )
            times[engine_cls.name] = engine.charge_epoch()
        assert times["depcomm"] < times["depcache"]

    def test_wider_hidden_favours_depcache(self):
        graph = prepare_graph(load_dataset("google"), "gcn")

        def ratio(hidden):
            times = {}
            for engine_cls in [DepCacheEngine, DepCommEngine]:
                model = GNNModel.gcn(
                    graph.feature_dim, hidden, graph.num_classes, seed=1
                )
                engine = engine_cls(
                    graph, model, ClusterSpec.ecs(8), comm=CommOptions.none()
                )
                times[engine_cls.name] = engine.charge_epoch()
            return times["depcache"] / times["depcomm"]

        assert ratio(640) < ratio(64)


class TestHybridDominance:
    @pytest.mark.parametrize("name", ["google", "pokec", "reddit", "wiki"])
    def test_hybrid_close_to_or_better_than_best(self, name):
        cache = charge(DepCacheEngine, name, m=8)
        comm = charge(DepCommEngine, name, m=8)
        hybrid = charge(HybridEngine, name, m=8)
        assert hybrid <= min(cache, comm) * 1.1

    def test_hybrid_beats_both_on_mixed_graph(self):
        cache = charge(DepCacheEngine, "wiki", m=16)
        comm = charge(DepCommEngine, "wiki", m=16)
        hybrid = charge(HybridEngine, "wiki", m=16)
        assert hybrid < cache and hybrid < comm


class TestScaling:
    def test_hybrid_scales_down_with_workers(self):
        times = [
            charge(HybridEngine, "pokec", m=m, comm=CommOptions.all())
            for m in [2, 4, 8, 16]
        ]
        assert times[0] > times[1] > times[2] > times[3]

    def test_depcache_scales_poorly(self):
        # Redundant computation does not shrink with more nodes.
        cache4 = charge(DepCacheEngine, "orkut", m=4)
        cache16 = charge(DepCacheEngine, "orkut", m=16)
        hybrid4 = charge(HybridEngine, "orkut", m=4, comm=CommOptions.all())
        hybrid16 = charge(HybridEngine, "orkut", m=16, comm=CommOptions.all())
        assert (cache4 / cache16) < (hybrid4 / hybrid16)

    def test_roc_broadcast_volume_heavier(self):
        graph = prepare_graph(load_dataset("wiki"), "gcn")
        spec = spec_of("wiki")
        model = GNNModel.gcn(
            graph.feature_dim, spec.hidden_dim, graph.num_classes, seed=1
        )
        roc = RocLikeEngine(graph, model, ClusterSpec.ecs(8))
        model2 = GNNModel.gcn(
            graph.feature_dim, spec.hidden_dim, graph.num_classes, seed=1
        )
        comm = DepCommEngine(
            graph, model2, ClusterSpec.ecs(8), comm=CommOptions.none()
        )
        roc_plan, comm_plan = roc.plan(), comm.plan()
        assert (
            roc._forward_volumes(roc_plan, 1).sum()
            > comm._forward_volumes(comm_plan, 1).sum()
        )


class TestAllReduce:
    def test_single_worker_skips_allreduce(self, small_graph):
        from repro.engines import SharedMemoryEngine

        graph = prepare_graph(small_graph, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=1)
        engine = SharedMemoryEngine(graph, model, variant="nts")
        report = engine.run_epoch()
        assert report.allreduce_time_s == 0.0

    def test_allreduce_scales_with_parameters(self, small_graph, cluster4):
        graph = prepare_graph(small_graph, "gcn")
        small = GNNModel.gcn(graph.feature_dim, 4, graph.num_classes, seed=1)
        big = GNNModel.gcn(graph.feature_dim, 64, graph.num_classes, seed=1)
        t_small = DepCommEngine(graph, small, cluster4).run_epoch().allreduce_time_s
        t_big = DepCommEngine(
            graph, big, ClusterSpec.ecs(4)
        ).run_epoch().allreduce_time_s
        assert t_big > t_small
