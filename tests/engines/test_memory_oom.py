"""Memory model: the paper's OOM outcomes at laptop scale."""

import pytest

from repro.cluster.memory import OutOfMemoryError
from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import (
    DepCacheEngine,
    DepCommEngine,
    HybridEngine,
    RocLikeEngine,
    SharedMemoryEngine,
)
from repro.graph.datasets import load_dataset, spec_of
from repro.training.prep import prepare_graph


def build(engine_cls, name, arch="gcn", m=16, **kwargs):
    graph = prepare_graph(load_dataset(name), arch)
    spec = spec_of(name)
    model = GNNModel.build(
        arch, graph.feature_dim, spec.hidden_dim, graph.num_classes, seed=1
    )
    if engine_cls is SharedMemoryEngine:
        kwargs.setdefault("paper_num_vertices", spec.paper_num_vertices)
        return engine_cls(graph, model, **kwargs)
    return engine_cls(graph, model, ClusterSpec.ecs(m), **kwargs)


class TestDistributedOom:
    def test_depcache_gcn_runs_everywhere(self):
        for name in ["google", "pokec", "livejournal", "reddit", "orkut",
                     "wiki", "twitter"]:
            build(DepCacheEngine, name).plan()  # must not raise

    def test_depcache_gat_oom_on_dense_graphs(self):
        for name in ["reddit", "orkut"]:
            with pytest.raises(OutOfMemoryError):
                build(DepCacheEngine, name, arch="gat").plan()

    def test_depcache_gat_runs_on_local_graphs(self):
        for name in ["google", "livejournal"]:
            build(DepCacheEngine, name, arch="gat").plan()

    def test_depcomm_never_ooms(self):
        for name in ["reddit", "orkut", "twitter"]:
            for arch in ["gcn", "gat"]:
                build(DepCommEngine, name, arch=arch).plan()

    def test_hybrid_never_ooms_with_budget(self):
        for name in ["reddit", "orkut", "twitter"]:
            build(HybridEngine, name).plan()

    def test_hybrid_all_cache_gat_orkut_ooms(self):
        """Figure 11: caching all dependencies OOMs GAT on Orkut."""
        with pytest.raises(OutOfMemoryError):
            build(
                HybridEngine, "orkut", arch="gat", m=8,
                force_cache_fraction=1.0,
                memory_limit_bytes=1 << 40,
            ).plan()

    def test_roc_ooms_on_reddit(self):
        with pytest.raises(OutOfMemoryError):
            build(RocLikeEngine, "reddit", m=4).plan()

    def test_roc_runs_on_google(self):
        build(RocLikeEngine, "google", m=4).plan()

    def test_oom_error_carries_label(self):
        with pytest.raises(OutOfMemoryError) as err:
            build(DepCacheEngine, "reddit", arch="gat").plan()
        assert "edge_tape" in err.value.label


class TestSingleMachineOom:
    def test_dgl_pyg_oom_on_google(self):
        for variant in ["dgl", "pyg"]:
            with pytest.raises(OutOfMemoryError):
                build(SharedMemoryEngine, "google", variant=variant).plan()

    def test_nts_runs_google_single_gpu(self):
        build(SharedMemoryEngine, "google", variant="nts").plan()

    @pytest.mark.parametrize("name", ["cora", "citeseer", "pubmed"])
    @pytest.mark.parametrize("variant", ["dgl", "pyg", "nts"])
    def test_small_graphs_fit_everywhere(self, name, variant):
        build(SharedMemoryEngine, name, variant=variant).plan()

    def test_pyg_dense_adjacency_accounted(self):
        engine = build(SharedMemoryEngine, "cora", variant="pyg")
        plan = engine.plan()
        assert "dense_adjacency" in plan.device_memory[0].breakdown()

    def test_dgl_has_no_dense_adjacency(self):
        engine = build(SharedMemoryEngine, "cora", variant="dgl")
        plan = engine.plan()
        assert "dense_adjacency" not in plan.device_memory[0].breakdown()

    def test_pyg_cpu_oom_on_large_graphs(self):
        for name in ["google", "pokec", "livejournal"]:
            with pytest.raises(OutOfMemoryError):
                build(
                    SharedMemoryEngine, name, variant="pyg",
                    cluster=ClusterSpec.cpu(),
                ).plan()

    def test_dgl_cpu_runs_large_graphs(self):
        for name in ["google", "pokec", "livejournal"]:
            build(
                SharedMemoryEngine, name, variant="dgl",
                cluster=ClusterSpec.cpu(),
            ).plan()

    def test_variant_validation(self, small_graph):
        graph = prepare_graph(small_graph, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes)
        with pytest.raises(ValueError, match="variant"):
            SharedMemoryEngine(graph, model, variant="jax")

    def test_multi_worker_rejected(self, small_graph):
        graph = prepare_graph(small_graph, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes)
        with pytest.raises(ValueError, match="single worker"):
            SharedMemoryEngine(graph, model, cluster=ClusterSpec.ecs(2))


class TestMemoryAccounting:
    def test_chunked_device_usage_capped(self):
        engine = build(DepCommEngine, "reddit")
        plan = engine.plan()
        budget = ClusterSpec.ecs(16).device.memory_bytes
        for tracker in plan.device_memory:
            assert tracker.used_bytes <= budget

    def test_depcache_host_usage_grows_with_closure(self):
        cache = build(DepCacheEngine, "orkut").plan()
        comm = build(DepCommEngine, "orkut").plan()
        assert (
            cache.host_memory[0].used_bytes > comm.host_memory[0].used_bytes
        )

    def test_breakdown_labels_per_layer(self):
        plan = build(DepCommEngine, "google").plan()
        labels = set(plan.host_memory[0].breakdown())
        assert {"features", "activations_l1", "edge_tape_l1"} <= labels
