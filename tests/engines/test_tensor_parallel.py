"""Tensor-parallel engine: numerics, plan shape, and four-way parity.

The TP engine's contract is structural: slicing the feature dimension
and aggregating the *full* edge set on slices recombines to exactly the
single-worker forward, so the multi-worker run must be bit-identical to
a one-worker reference on every catalog graph.  The loss is compared
with a float tolerance only because the per-worker loss partials sum in
a different order than the single-worker reduction.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.graph import generators
from repro.graph.datasets import DATASETS, load_dataset
from repro.training.prep import prepare_graph

# Scale factors keeping every catalog graph test-sized.
_SCALES = {"social-large": 0.05}


def _build_pair(name: str, num_workers: int, arch: str = "gcn", hidden: int = 16):
    graph = prepare_graph(
        load_dataset(name, scale=_SCALES.get(name, 0.5)), arch
    )
    model_tp = GNNModel.build(
        arch, graph.feature_dim, hidden, graph.num_classes,
        num_layers=2, seed=0,
    )
    model_ref = GNNModel.build(
        arch, graph.feature_dim, hidden, graph.num_classes,
        num_layers=2, seed=0,
    )
    tp = make_engine("tp", graph, model_tp, ClusterSpec.ecs(num_workers))
    ref = make_engine("depcomm", graph, model_ref, ClusterSpec.ecs(1))
    return tp, ref


class TestSingleWorkerParity:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_forward_bit_identical_and_loss_matches(self, name):
        tp, ref = _build_pair(name, num_workers=4)
        h_tp, _, _ = tp._forward(tp.plan(), training=False)
        h_ref, _, _ = ref._forward(ref.plan(), training=False)
        # TP layers compute on the shared full-graph block, so worker
        # 0's final rows are the full output in vertex order -- same
        # layout as the one-worker reference.
        assert np.array_equal(h_tp[tp.num_layers][0], h_ref[ref.num_layers][0])
        loss_tp = tp.run_epoch().loss
        loss_ref = ref.run_epoch().loss
        assert loss_tp == pytest.approx(loss_ref, rel=1e-5, abs=1e-6)

    def test_loss_trajectory_tracks_reference(self):
        from repro.tensor import optim

        tp, ref = _build_pair("reddit", num_workers=4)
        opt_tp = optim.SGD(tp.model.parameters(), lr=0.05)
        opt_ref = optim.SGD(ref.model.parameters(), lr=0.05)
        for _ in range(3):
            loss_tp = tp.run_epoch(optimizer=opt_tp).loss
            loss_ref = ref.run_epoch(optimizer=opt_ref).loss
            assert loss_tp == pytest.approx(loss_ref, rel=1e-5, abs=1e-6)

    def test_worker_count_does_not_change_forward(self):
        tp2, _ = _build_pair("pubmed", num_workers=2)
        tp8, _ = _build_pair("pubmed", num_workers=8)
        h2, _, _ = tp2._forward(tp2.plan(), training=False)
        h8, _, _ = tp8._forward(tp8.plan(), training=False)
        assert np.array_equal(h2[2][0], h8[2][0])


def _community_setup(num_workers=4, hidden=8):
    g = generators.community(96, 4, avg_degree=8.0, seed=5)
    generators.attach_features(g, 12, 4, seed=6)
    graph = prepare_graph(g, "gcn")
    model = GNNModel.build(
        "gcn", graph.feature_dim, hidden, graph.num_classes,
        num_layers=2, seed=1,
    )
    return graph, model, ClusterSpec.ecs(num_workers)


class TestPlanShape:
    def test_pure_tp_plan_flags_every_layer(self):
        graph, model, cluster = _community_setup()
        plan = make_engine("tp", graph, model, cluster).plan()
        assert plan.tp_layers == [True, True]
        # All workers share one full-graph block per layer.
        for l in (1, 2):
            blocks = plan.blocks[l - 1]
            assert all(b is blocks[0] for b in blocks)
            assert len(blocks[0].compute_vertices) == graph.num_vertices

    def test_tp_layers_have_slice_and_unslice_exchanges(self):
        graph, model, cluster = _community_setup()
        engine = make_engine("tp", graph, model, cluster)
        engine.plan()
        for lp in engine.program_.layers:
            assert lp.is_tp
            assert lp.post_exchange is not None
            # The unslice volumes are the slice volumes transposed.
            assert np.array_equal(
                lp.exchange.volumes.T, lp.post_exchange.volumes
            )

    def test_explain_plan_renders_tensor_parallel_layers(self):
        from repro.execution import render_program

        graph, model, cluster = _community_setup()
        engine = make_engine("tp", graph, model, cluster)
        engine.plan()
        text = render_program(engine)
        assert "tensor-parallel" in text
        assert "SliceAllToAll" in text


class TestFourWayParity:
    def test_hybrid4_matches_hybrid_when_no_layer_flips(self):
        """On a small flat graph the all-to-all's latency floor never
        wins, so the four-way engine must reproduce the three-way
        hybrid's decisions and charge bit for bit."""
        graph, model, cluster = _community_setup()
        h3 = make_engine("hybrid", graph, model, cluster)
        h4 = make_engine("hybrid4", graph, model, cluster)
        plan3, plan4 = h3.plan(), h4.plan()
        assert plan4.tp_layers == [False, False]
        for l in range(h3.num_layers):
            for w in range(cluster.num_workers):
                assert np.array_equal(
                    plan3.cached_deps[l][w], plan4.cached_deps[l][w]
                )
                assert np.array_equal(
                    plan3.comm_ids[l][w], plan4.comm_ids[l][w]
                )
        assert h3.charge_epoch() == h4.charge_epoch()

    def test_hybrid4_numerics_match_hybrid(self):
        graph, model, cluster = _community_setup()
        model2 = GNNModel.build(
            "gcn", graph.feature_dim, 8, graph.num_classes,
            num_layers=2, seed=1,
        )
        h3 = make_engine("hybrid", graph, model, cluster)
        h4 = make_engine("hybrid4", graph, model2, cluster)
        assert h3.run_epoch().loss == h4.run_epoch().loss
