"""Engine plans: compute sets, comm sets, and their invariants."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import DepCacheEngine, DepCommEngine, HybridEngine
from repro.graph.khop import dependency_layers, khop_closure
from repro.training.prep import prepare_graph


@pytest.fixture
def prepared(medium_graph):
    return prepare_graph(medium_graph, "gcn")


def build(engine_cls, graph, m=4, **kwargs):
    model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=3)
    return engine_cls(graph, model, ClusterSpec.ecs(m), **kwargs)


class TestDepCachePlan:
    def test_no_communication(self, prepared):
        engine = build(DepCacheEngine, prepared)
        plan = engine.plan()
        assert plan.total_comm_vertices() == 0
        assert all(
            len(c) == 0 for per_l in plan.comm_ids for c in per_l
        )
        assert plan.cache_ratio() == 1.0

    def test_compute_sets_are_khop_closure(self, prepared):
        engine = build(DepCacheEngine, prepared)
        plan = engine.plan()
        for w in range(4):
            owned = engine.partitioning.part(w)
            layers, _ = khop_closure(prepared, owned, 1)
            # Layer-1 compute set = 1-hop in-closure of owned vertices.
            assert np.array_equal(plan.compute_sets[0][w], layers[1])
            assert np.array_equal(plan.compute_sets[1][w], owned)

    def test_epoch_has_zero_comm_bytes(self, prepared):
        engine = build(DepCacheEngine, prepared)
        report = engine.run_epoch()
        assert report.comm_bytes == 0


class TestDepCommPlan:
    def test_compute_only_owned(self, prepared):
        engine = build(DepCommEngine, prepared)
        plan = engine.plan()
        for l in range(2):
            for w in range(4):
                assert np.array_equal(
                    plan.compute_sets[l][w], engine.partitioning.part(w)
                )

    def test_comm_ids_are_remote_deps(self, prepared):
        engine = build(DepCommEngine, prepared)
        plan = engine.plan()
        for w in range(4):
            deps = dependency_layers(prepared, engine.partitioning.part(w), 2)
            for l in range(2):
                assert np.array_equal(plan.comm_ids[l][w], deps[l])

    def test_comm_bytes_positive(self, prepared):
        engine = build(DepCommEngine, prepared)
        assert engine.run_epoch().comm_bytes > 0


class TestHybridPlan:
    def test_ratio_between_extremes(self, prepared):
        engine = build(HybridEngine, prepared)
        plan = engine.plan()
        assert 0.0 <= plan.cache_ratio() <= 1.0

    def test_forced_fraction_controls_ratio(self, prepared):
        low = build(HybridEngine, prepared, force_cache_fraction=0.1).plan()
        high = build(HybridEngine, prepared, force_cache_fraction=0.9).plan()
        assert low.cache_ratio() < high.cache_ratio()

    def test_cached_dep_in_compute_set(self, prepared):
        engine = build(HybridEngine, prepared, force_cache_fraction=0.5)
        plan = engine.plan()
        for w in range(4):
            cached_l2 = plan.cached_deps[1][w]
            assert np.isin(cached_l2, plan.compute_sets[0][w]).all()

    def test_comm_plus_cached_covers_remote_inputs(self, prepared):
        engine = build(HybridEngine, prepared)
        plan = engine.plan()
        for w in range(4):
            block = plan.blocks[1][w]
            remote = block.input_vertices[
                engine.assignment[block.input_vertices] != w
            ]
            available = np.union1d(
                plan.comm_ids[1][w], plan.compute_sets[0][w]
            )
            assert np.isin(remote, available).all()

    def test_preprocessing_time_recorded(self, prepared):
        engine = build(HybridEngine, prepared)
        assert engine.plan().preprocessing_s > 0

    def test_invalid_force_fraction(self, prepared):
        with pytest.raises(ValueError):
            build(HybridEngine, prepared, force_cache_fraction=1.5)


class TestPlanGeneralInvariants:
    @pytest.mark.parametrize("engine_cls", [DepCacheEngine, DepCommEngine, HybridEngine])
    def test_owned_always_computed(self, prepared, engine_cls):
        engine = build(engine_cls, prepared)
        plan = engine.plan()
        for l in range(2):
            for w in range(4):
                owned = engine.partitioning.part(w)
                assert np.isin(owned, plan.compute_sets[l][w]).all()

    @pytest.mark.parametrize("engine_cls", [DepCacheEngine, DepCommEngine, HybridEngine])
    def test_plan_idempotent(self, prepared, engine_cls):
        engine = build(engine_cls, prepared)
        assert engine.plan() is engine.plan()

    def test_rejects_feature_dim_mismatch(self, prepared):
        model = GNNModel.gcn(prepared.feature_dim + 1, 8, prepared.num_classes)
        with pytest.raises(ValueError, match="in_dim"):
            DepCommEngine(prepared, model, ClusterSpec.ecs(2))

    def test_rejects_partitioning_mismatch(self, prepared):
        from repro.partition.chunk import chunk_partition
        model = GNNModel.gcn(prepared.feature_dim, 8, prepared.num_classes)
        with pytest.raises(ValueError, match="partitioning"):
            DepCommEngine(
                prepared, model, ClusterSpec.ecs(2),
                partitioning=chunk_partition(prepared, 3),
            )

    def test_rejects_graph_without_features(self, prepared):
        from repro.graph.graph import Graph
        bare = Graph(4, np.array([0]), np.array([1]))
        model = GNNModel.gcn(8, 8, 2)
        with pytest.raises(ValueError, match="features"):
            DepCommEngine(bare, model, ClusterSpec.ecs(2))
