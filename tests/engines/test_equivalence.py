"""The reproduction's core correctness claim: all dependency-management
strategies compute identical full-batch results.

DepCache recomputes dependencies redundantly, DepComm fetches them, and
Hybrid mixes both -- but each vertex's representation and every
parameter gradient must come out (bit-near-)identical, and all must
match a single-worker reference.  This is what lets the paper's Hybrid
"keep the high accuracy and fast convergence speed" of full-batch
training (Section 3, Convergence Speed).
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import (
    DepCacheEngine,
    DepCommEngine,
    HybridEngine,
    RocLikeEngine,
    SharedMemoryEngine,
)
from repro.training.prep import prepare_graph

ENGINES = [DepCacheEngine, DepCommEngine, HybridEngine, RocLikeEngine]


def run_once(engine_cls, graph, arch, cluster, seed=11, **kwargs):
    model = GNNModel.build(arch, graph.feature_dim, 12, graph.num_classes, seed=seed)
    engine = engine_cls(graph, model, cluster, **kwargs)
    report = engine.run_epoch()
    grads = [p.grad.copy() for p in model.parameters()]
    return report.loss, grads, engine


@pytest.mark.parametrize("arch", ["gcn", "gin", "gat"])
def test_all_engines_same_loss_and_gradients(small_graph, cluster4, arch):
    graph = prepare_graph(small_graph, arch)
    reference_loss, reference_grads, _ = run_once(
        DepCommEngine, graph, arch, cluster4
    )
    for engine_cls in [DepCacheEngine, HybridEngine, RocLikeEngine]:
        loss, grads, _ = run_once(engine_cls, graph, arch, cluster4)
        assert loss == pytest.approx(reference_loss, rel=1e-5), engine_cls.name
        for ga, gb in zip(reference_grads, grads):
            assert np.allclose(ga, gb, atol=1e-4), engine_cls.name


def test_distributed_matches_single_worker(small_graph):
    graph = prepare_graph(small_graph, "gcn")
    single_loss, single_grads, _ = run_once(
        SharedMemoryEngine, graph, "gcn", None, variant="nts"
    )
    for m in [2, 4]:
        loss, grads, _ = run_once(DepCommEngine, graph, "gcn", ClusterSpec.ecs(m))
        assert loss == pytest.approx(single_loss, rel=1e-5)
        for ga, gb in zip(single_grads, grads):
            assert np.allclose(ga, gb, atol=1e-4)


def test_hybrid_matches_across_forced_ratios(small_graph, cluster4):
    graph = prepare_graph(small_graph, "gcn")
    losses = []
    for fraction in [0.0, 0.3, 0.7, 1.0]:
        loss, _, _ = run_once(
            HybridEngine, graph, "gcn", cluster4, force_cache_fraction=fraction
        )
        losses.append(loss)
    assert max(losses) - min(losses) < 1e-5


def test_evaluation_identical_across_engines(small_graph, cluster4):
    graph = prepare_graph(small_graph, "gcn")
    accs = []
    for engine_cls in ENGINES:
        model = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=11)
        engine = engine_cls(graph, model, cluster4)
        accs.append(engine.evaluate())
    assert len(set(accs)) == 1


def test_forward_values_match_owner_copies(small_graph, cluster4):
    """Redundant DepCache copies equal the owner's values exactly."""
    graph = prepare_graph(small_graph, "gcn")
    model = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=11)
    engine = DepCacheEngine(graph, model, cluster4)
    plan = engine.plan()
    h_values, _, _ = engine._forward(plan, training=False)
    L = engine.num_layers
    for w in range(4):
        ids = plan.compute_sets[L - 2][w]  # layer-1 values incl. cached
        for v in ids[:10]:
            owner = engine.assignment[v]
            if owner == w:
                continue
            mine = h_values[1][w][engine._pos_in_compute[0][w][v]]
            theirs = h_values[1][owner][engine._pos_in_compute[0][owner][v]]
            assert np.allclose(mine, theirs, atol=1e-6)


def test_training_improves_accuracy_all_engines(small_graph, cluster4):
    from repro.training.trainer import DistributedTrainer

    graph = prepare_graph(small_graph, "gcn")
    for engine_cls in [DepCacheEngine, DepCommEngine, HybridEngine]:
        model = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=11)
        engine = engine_cls(graph, model, cluster4)
        before = engine.evaluate()
        trainer = DistributedTrainer(engine, lr=0.05)
        history = trainer.train(epochs=15)
        after = engine.evaluate()
        assert history.reports[-1].loss < history.reports[0].loss
        assert after > max(before, 0.5)
