"""Deeper-than-2-layer models: multi-level closures and subtrees.

The paper evaluates 2-layer models, but Algorithms 2-4 are written for
arbitrary L; these tests exercise the depth-general code paths (k-hop
closures with k > 1, multi-level t_r subtrees, per-layer exchanges).
"""

import numpy as np
import pytest

from repro.core.model import GNNModel
from repro.engines import DepCacheEngine, DepCommEngine, HybridEngine
from repro.graph.khop import khop_closure
from repro.training.prep import prepare_graph


@pytest.fixture
def graph3(medium_graph):
    return prepare_graph(medium_graph, "gcn")


def run(engine_cls, graph, layers, cluster, seed=4):
    model = GNNModel.gcn(graph.feature_dim, 6, graph.num_classes,
                         num_layers=layers, seed=seed)
    engine = engine_cls(graph, model, cluster)
    report = engine.run_epoch()
    grads = [p.grad.copy() for p in model.parameters()]
    return report, grads, engine


@pytest.mark.parametrize("layers", [3, 4])
def test_equivalence_at_depth(graph3, cluster4, layers):
    ref_report, ref_grads, _ = run(DepCommEngine, graph3, layers, cluster4)
    for engine_cls in [DepCacheEngine, HybridEngine]:
        report, grads, _ = run(engine_cls, graph3, layers, cluster4)
        assert report.loss == pytest.approx(ref_report.loss, rel=1e-4)
        for ga, gb in zip(ref_grads, grads):
            assert np.allclose(ga, gb, atol=1e-3)


def test_depcache_closure_grows_with_depth(graph3, cluster4):
    _, _, shallow = run(DepCacheEngine, graph3, 2, cluster4)
    _, _, deep = run(DepCacheEngine, graph3, 3, cluster4)
    shallow_inputs = shallow.plan().blocks[0][0].num_inputs
    deep_inputs = deep.plan().blocks[0][0].num_inputs
    assert deep_inputs >= shallow_inputs


def test_depcache_compute_sets_match_closure(graph3, cluster4):
    _, _, engine = run(DepCacheEngine, graph3, 3, cluster4)
    plan = engine.plan()
    owned = engine.partitioning.part(1)
    layers, _ = khop_closure(graph3, owned, 2)
    assert np.array_equal(plan.compute_sets[2][1], owned)
    assert np.array_equal(plan.compute_sets[1][1], layers[1])
    assert np.array_equal(plan.compute_sets[0][1], layers[2])


def test_hybrid_deep_subtree_costs_increase_with_level(graph3, cluster4):
    """A dependency cached at a higher layer has a deeper subtree, so
    its t_r can only grow with the layer index."""
    from repro.costmodel.costs import DependencyCostModel
    from repro.costmodel.probe import probe_constants

    model = GNNModel.gcn(graph3.feature_dim, 6, graph3.num_classes,
                         num_layers=3, seed=0)
    constants = probe_constants(cluster4, model)
    owned_mask = np.zeros(graph3.num_vertices, dtype=bool)
    owned_mask[:50] = True
    remote = np.where(~owned_mask)[0]
    # Pick a remote vertex with in-edges.
    deg = graph3.in_degrees()
    u = int(remote[np.argmax(deg[remote])])
    costs = []
    for layer in [1, 2, 3]:
        cm = DependencyCostModel(
            graph3, model.dims(), constants, owned_mask, mu=1.0
        )
        costs.append(cm.t_r(u, layer).cost_s)
    assert costs[0] == 0.0  # feature caching is free per epoch
    assert costs[2] >= costs[1] >= costs[0]


def test_deep_training_converges(graph3, cluster4):
    from repro.training.trainer import DistributedTrainer

    model = GNNModel.gcn(graph3.feature_dim, 8, graph3.num_classes,
                         num_layers=3, seed=1)
    engine = HybridEngine(graph3, model, cluster4)
    history = DistributedTrainer(engine, lr=0.02).train(epochs=12)
    assert history.reports[-1].loss < history.reports[0].loss
