"""Derived random streams."""

import re
from pathlib import Path

import numpy as np

import repro.engines.sampling
import repro.engines.tensor_parallel
import repro.resilience
import repro.sampling
import repro.serving
from repro.utils.rng import (
    derive_rng,
    derive_seed_sequence,
    derive_uniform,
    hashed_uniforms,
)


class TestDerivation:
    def test_deterministic(self):
        a = derive_rng(7, "workload", "arrivals").random(5)
        b = derive_rng(7, "workload", "arrivals").random(5)
        assert np.array_equal(a, b)

    def test_streams_are_independent(self):
        a = derive_rng(7, "workload", "arrivals").random(5)
        b = derive_rng(7, "workload", "popularity").random(5)
        assert not np.array_equal(a, b)

    def test_seed_changes_stream(self):
        assert derive_uniform(1, "x") != derive_uniform(2, "x")

    def test_string_components_stable_across_calls(self):
        assert derive_seed_sequence(3, "retry", 1, 2) == derive_seed_sequence(
            3, "retry", 1, 2
        )

    def test_negative_components_masked(self):
        seq = derive_seed_sequence(-5, -1)
        assert all(0 <= part <= 0x7FFFFFFF for part in seq)

    def test_integer_path_matches_legacy_injector_formula(self):
        """The fault injector used to seed directly with
        ``[seed & 0x7FFFFFFF, phase, src, dst, attempt]``; the helper
        must reproduce those draws bit-for-bit so probed chaos traces
        replay unchanged."""
        seed, phase, src, dst, attempt = 42, 3, 1, 2, 0
        legacy = float(
            np.random.default_rng(
                [seed & 0x7FFFFFFF, phase, src, dst, attempt]
            ).random()
        )
        assert derive_uniform(seed, phase, src, dst, attempt) == legacy


class TestHashedUniforms:
    def test_deterministic_and_in_unit_interval(self):
        ids = np.arange(1000)
        a = hashed_uniforms(7, "uniform", 2, ids=ids)
        b = hashed_uniforms(7, "uniform", 2, ids=ids)
        assert np.array_equal(a, b)
        assert (a >= 0.0).all() and (a < 1.0).all()

    def test_streams_are_independent(self):
        ids = np.arange(100)
        a = hashed_uniforms(7, "uniform", ids=ids)
        b = hashed_uniforms(7, "labor", ids=ids)
        assert not np.array_equal(a, b)

    def test_pure_function_of_id(self):
        """Each id's draw is independent of which other ids share the
        call -- the property kappa's nested-reuse argument rests on."""
        full = hashed_uniforms(3, "kappa", 1, ids=np.arange(50))
        subset = hashed_uniforms(3, "kappa", 1, ids=np.arange(10, 20))
        assert np.array_equal(full[10:20], subset)

    def test_roughly_uniform(self):
        draws = hashed_uniforms(0, "check", ids=np.arange(20000))
        assert abs(draws.mean() - 0.5) < 0.01


class TestNoDirectRngInScannedPackages:
    SCANNED = [
        ("resilience", Path(repro.resilience.__file__).parent),
        ("sampling", Path(repro.sampling.__file__).parent),
        ("engines/sampling.py", Path(repro.engines.sampling.__file__)),
        ("engines/tensor_parallel.py",
         Path(repro.engines.tensor_parallel.__file__)),
        ("serving", Path(repro.serving.__file__).parent),
    ]

    def test_all_draws_route_through_derive_rng(self):
        """Every random draw in the resilience layer, the sampling
        subsystem, and the serving fleet (workload generation, hedge
        jitter, routing hashes) must go through ``repro.utils.rng`` so
        fault jitter and sampled closures stay replayable from a single
        run seed; a direct ``default_rng``/``RandomState`` call would
        fork an untracked stream."""
        direct = re.compile(
            r"np\.random\.(default_rng|RandomState|seed)\s*\("
        )
        offenders = []
        for label, target in self.SCANNED:
            sources = (
                sorted(target.glob("*.py")) if target.is_dir() else [target]
            )
            for source in sources:
                for lineno, line in enumerate(
                    source.read_text().splitlines(), start=1
                ):
                    code = line.split("#", 1)[0]
                    if direct.search(code):
                        offenders.append(
                            f"{label}/{source.name}:{lineno}: {line.strip()}"
                        )
        assert not offenders, (
            "direct RNG construction in scanned packages (use derive_rng):\n"
            + "\n".join(offenders)
        )
