"""Derived random streams."""

import re
from pathlib import Path

import numpy as np

import repro.resilience
from repro.utils.rng import derive_rng, derive_seed_sequence, derive_uniform


class TestDerivation:
    def test_deterministic(self):
        a = derive_rng(7, "workload", "arrivals").random(5)
        b = derive_rng(7, "workload", "arrivals").random(5)
        assert np.array_equal(a, b)

    def test_streams_are_independent(self):
        a = derive_rng(7, "workload", "arrivals").random(5)
        b = derive_rng(7, "workload", "popularity").random(5)
        assert not np.array_equal(a, b)

    def test_seed_changes_stream(self):
        assert derive_uniform(1, "x") != derive_uniform(2, "x")

    def test_string_components_stable_across_calls(self):
        assert derive_seed_sequence(3, "retry", 1, 2) == derive_seed_sequence(
            3, "retry", 1, 2
        )

    def test_negative_components_masked(self):
        seq = derive_seed_sequence(-5, -1)
        assert all(0 <= part <= 0x7FFFFFFF for part in seq)

    def test_integer_path_matches_legacy_injector_formula(self):
        """The fault injector used to seed directly with
        ``[seed & 0x7FFFFFFF, phase, src, dst, attempt]``; the helper
        must reproduce those draws bit-for-bit so probed chaos traces
        replay unchanged."""
        seed, phase, src, dst, attempt = 42, 3, 1, 2, 0
        legacy = float(
            np.random.default_rng(
                [seed & 0x7FFFFFFF, phase, src, dst, attempt]
            ).random()
        )
        assert derive_uniform(seed, phase, src, dst, attempt) == legacy


class TestNoDirectRngInResilience:
    def test_all_draws_route_through_derive_rng(self):
        """Every random draw in the resilience layer must go through
        ``repro.utils.rng`` so fault jitter stays replayable from a
        single run seed; a direct ``default_rng``/``RandomState`` call
        would fork an untracked stream."""
        package_dir = Path(repro.resilience.__file__).parent
        direct = re.compile(
            r"np\.random\.(default_rng|RandomState|seed)\s*\("
        )
        offenders = []
        for source in sorted(package_dir.glob("*.py")):
            for lineno, line in enumerate(
                source.read_text().splitlines(), start=1
            ):
                code = line.split("#", 1)[0]
                if direct.search(code):
                    offenders.append(f"{source.name}:{lineno}: {line.strip()}")
        assert not offenders, (
            "direct RNG construction in resilience (use derive_rng):\n"
            + "\n".join(offenders)
        )
