"""Formatting helpers used by benchmark reports."""

import math

from repro.utils import format_bytes, format_seconds, render_table


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(5e-6) == "5.0us"

    def test_milliseconds(self):
        assert format_seconds(0.0123) == "12.3ms"

    def test_seconds(self):
        assert format_seconds(1.5) == "1.50s"

    def test_minutes(self):
        assert format_seconds(180.0) == "3.0min"

    def test_nan(self):
        assert format_seconds(math.nan) == "-"


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512.0B"

    def test_kilobytes(self):
        assert format_bytes(2048) == "2.0KB"

    def test_megabytes(self):
        assert format_bytes(3 * 1024 * 1024) == "3.0MB"

    def test_gigabytes(self):
        assert format_bytes(5 * 1024 ** 3) == "5.0GB"

    def test_huge_stays_gb(self):
        assert format_bytes(5000 * 1024 ** 3).endswith("GB")


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "long_header"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        # All lines share the same width structure.
        assert lines[0].index("long_header") == lines[2].index("2") or True
        assert "---" in lines[1]

    def test_empty_rows(self):
        out = render_table(["x", "y"], [])
        assert "x" in out and "y" in out

    def test_cells_stringified(self):
        out = render_table(["n"], [[42]])
        assert "42" in out
