"""End-to-end integration: the full public-API pipeline at small scale."""

import pytest

import repro
from repro import (
    ClusterSpec,
    DistributedTrainer,
    GNNModel,
    load_dataset,
    make_engine,
)
from repro.comm.scheduler import CommOptions
from repro.graph.datasets import spec_of
from repro.partition import get_partitioner
from repro.training import prepare_graph


def test_package_exports():
    assert repro.__version__
    for name in ["GCNConv", "GINConv", "GATConv", "HybridEngine"]:
        assert hasattr(repro, name)


def test_quickstart_pipeline():
    """The README quickstart, condensed."""
    graph = prepare_graph(load_dataset("reddit", scale=0.3), "gcn")
    spec = spec_of("reddit")
    cluster = ClusterSpec.ecs(4)
    model = GNNModel.gcn(graph.feature_dim, 32, graph.num_classes, seed=0)
    engine = make_engine("hybrid", graph, model, cluster)
    trainer = DistributedTrainer(engine, lr=0.02)
    history = trainer.train(epochs=25, eval_every=5)
    assert history.best_accuracy() > 0.6
    assert history.total_time_s > 0


def test_engines_agree_on_real_dataset():
    graph = prepare_graph(load_dataset("google", scale=0.1), "gcn")
    cluster = ClusterSpec.ecs(4)
    losses = {}
    for name in ["depcache", "depcomm", "hybrid"]:
        model = GNNModel.gcn(graph.feature_dim, 16, graph.num_classes, seed=3)
        engine = make_engine(name, graph, model, cluster)
        losses[name] = engine.run_epoch().loss
    assert losses["depcache"] == pytest.approx(losses["depcomm"], rel=1e-5)
    assert losses["hybrid"] == pytest.approx(losses["depcomm"], rel=1e-5)


def test_custom_partitioner_with_engine():
    graph = prepare_graph(load_dataset("reddit"), "gcn")
    cluster = ClusterSpec.ecs(8)
    volumes = {}
    for method in ["chunk", "metis"]:
        partitioning = get_partitioner(method)(graph, 8)
        model = GNNModel.gcn(graph.feature_dim, 16, graph.num_classes, seed=3)
        engine = make_engine(
            "depcomm", graph, model, cluster, partitioning=partitioning
        )
        plan = engine.plan()
        volumes[method] = engine._forward_volumes(plan, 1).sum()
    # Metis finds reddit's interleaved communities; chunking cannot.
    # (At this scale distinct-vertex dedup caps the gap: even a low edge
    # cut still references most remote vertices once, so the volume win
    # is real but modest.)
    assert volumes["metis"] < volumes["chunk"]


def test_gat_distributed_training():
    graph = prepare_graph(load_dataset("reddit", scale=0.25), "gat")
    cluster = ClusterSpec.ecs(2)
    model = GNNModel.gat(graph.feature_dim, 16, graph.num_classes, seed=0)
    engine = make_engine("hybrid", graph, model, cluster)
    trainer = DistributedTrainer(engine, lr=0.001)
    history = trainer.train(epochs=12)
    assert history.reports[-1].loss < history.reports[0].loss


def test_make_engine_unknown():
    with pytest.raises(KeyError, match="unknown engine"):
        make_engine("magic", None, None, None)


def test_utilization_trace_records():
    graph = prepare_graph(load_dataset("orkut", scale=0.2), "gcn")
    cluster = ClusterSpec.ecs(4)
    model = GNNModel.gcn(graph.feature_dim, 16, graph.num_classes, seed=0)
    engine = make_engine(
        "hybrid", graph, model, cluster,
        comm=CommOptions.all(), record_timeline=True,
    )
    for _ in range(3):
        engine.charge_epoch()
    summary = engine.timeline.utilization_summary()
    assert 0 < summary["gpu"] <= 1.0
    window = engine.timeline.makespan / 10
    trace = engine.timeline.busy_fraction("gpu", window=window)
    assert len(trace) == 10
