"""Partitioners: coverage, balance, quality, and the Partitioning API."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import generators
from repro.partition import (
    Partitioning,
    chunk_partition,
    fennel_partition,
    get_partitioner,
    hash_partition,
    metis_like_partition,
)
from repro.partition.base import from_parts

ALL = [chunk_partition, hash_partition, fennel_partition, metis_like_partition]


@pytest.fixture
def graph():
    g = generators.locality_graph(120, 700, locality_width=0.03,
                                  global_fraction=0.3, seed=2)
    return g


class TestCommonInvariants:
    @pytest.mark.parametrize("partition", ALL)
    def test_covers_every_vertex(self, graph, partition):
        p = partition(graph, 4)
        assert len(p.assignment) == graph.num_vertices
        assert set(np.unique(p.assignment)) == {0, 1, 2, 3}

    @pytest.mark.parametrize("partition", ALL)
    def test_parts_disjoint_and_complete(self, graph, partition):
        p = partition(graph, 4)
        combined = np.concatenate(p.parts())
        assert sorted(combined.tolist()) == list(range(graph.num_vertices))

    @pytest.mark.parametrize("partition", ALL)
    def test_no_empty_part(self, graph, partition):
        p = partition(graph, 4)
        assert all(len(part) > 0 for part in p.parts())

    @pytest.mark.parametrize("partition", ALL)
    def test_single_part(self, graph, partition):
        p = partition(graph, 1)
        assert (p.assignment == 0).all()

    @pytest.mark.parametrize("partition", ALL)
    def test_rejects_zero_parts(self, graph, partition):
        with pytest.raises(ValueError):
            partition(graph, 0)

    @pytest.mark.parametrize("partition", ALL)
    def test_rejects_more_parts_than_vertices(self, partition):
        g = generators.ring(3)
        with pytest.raises(ValueError):
            partition(g, 5)

    @pytest.mark.parametrize("partition", ALL)
    def test_deterministic(self, graph, partition):
        a = partition(graph, 4)
        b = partition(graph, 4)
        assert np.array_equal(a.assignment, b.assignment)

    @pytest.mark.parametrize("partition", ALL)
    def test_reasonable_balance(self, graph, partition):
        assert partition(graph, 4).vertex_balance() <= 1.25


class TestChunk:
    def test_contiguous_ranges(self, graph):
        p = chunk_partition(graph, 4)
        assert (np.diff(p.assignment) >= 0).all()

    def test_balance_modes(self, graph):
        for mode in ("vertices", "edges", "hybrid"):
            p = chunk_partition(graph, 4, balance=mode)
            assert p.vertex_balance() <= 2.0

    def test_vertices_mode_near_perfect(self, graph):
        p = chunk_partition(graph, 4, balance="vertices")
        assert p.vertex_balance() <= 1.05

    def test_edge_mode_balances_in_edges(self):
        g = generators.star(99, inward=True)  # vertex 0 has all in-edges
        p = chunk_partition(g, 4, balance="edges")
        # The hub's chunk should be tiny, the rest split the leaves.
        assert len(p.part(0)) < 30

    def test_unknown_mode(self, graph):
        with pytest.raises(ValueError, match="balance"):
            chunk_partition(graph, 4, balance="nope")

    def test_tiny_graph_every_part_nonempty(self):
        g = generators.ring(4)
        p = chunk_partition(g, 4)
        assert all(len(part) == 1 for part in p.parts())


class TestHash:
    def test_round_robin(self, graph):
        p = hash_partition(graph, 4)
        assert (p.assignment == np.arange(graph.num_vertices) % 4).all()


class TestFennel:
    def test_respects_capacity(self, graph):
        p = fennel_partition(graph, 4, slack=1.1)
        sizes = np.bincount(p.assignment, minlength=4)
        assert sizes.max() <= int(np.ceil(1.1 * graph.num_vertices / 4))

    def test_beats_hash_on_cut(self, graph):
        fennel_cut = fennel_partition(graph, 4).edge_cut_fraction(graph)
        hash_cut = hash_partition(graph, 4).edge_cut_fraction(graph)
        assert fennel_cut < hash_cut

    def test_stream_orders(self, graph):
        for order in ("bfs", "sequential", "random"):
            p = fennel_partition(graph, 3, order=order)
            assert p.num_parts == 3
        with pytest.raises(ValueError):
            fennel_partition(graph, 3, order="zigzag")


class TestMetisLike:
    def test_beats_hash_on_cut(self, graph):
        metis_cut = metis_like_partition(graph, 4).edge_cut_fraction(graph)
        hash_cut = hash_partition(graph, 4).edge_cut_fraction(graph)
        assert metis_cut < hash_cut

    def test_finds_planted_communities(self):
        g = generators.community(80, 4, 6.0, intra_fraction=0.95, seed=1)
        p = metis_like_partition(g, 4, seed=1)
        # Cut should be far below the ~0.75 interleaved-chunk level.
        assert p.edge_cut_fraction(g) < 0.45

    def test_handles_disconnected_graph(self):
        g = generators.chain(10)  # plus isolated vertices below
        import numpy as np
        from repro.graph.graph import Graph
        g2 = Graph(14, g.src, g.dst)  # vertices 10..13 isolated
        p = metis_like_partition(g2, 3)
        assert len(p.assignment) == 14
        assert (p.assignment >= 0).all()


class TestPartitioningApi:
    def test_owner(self, graph):
        p = chunk_partition(graph, 4)
        for w in range(4):
            for v in p.part(w)[:3]:
                assert p.owner(int(v)) == w

    def test_remote_in_neighbors(self, graph):
        p = chunk_partition(graph, 4)
        remote = p.remote_in_neighbors(graph, 0)
        assert all(p.owner(int(v)) != 0 for v in remote)

    def test_summary_keys(self, graph):
        s = chunk_partition(graph, 4).summary(graph)
        assert {"method", "edge_cut_fraction", "vertex_balance"} <= set(s)

    def test_from_parts_roundtrip(self, graph):
        p = chunk_partition(graph, 4)
        rebuilt = from_parts(p.parts(), graph.num_vertices, "chunk")
        assert np.array_equal(rebuilt.assignment, p.assignment)

    def test_from_parts_incomplete_raises(self):
        with pytest.raises(ValueError, match="cover"):
            from_parts([np.array([0, 1])], 4, "x")

    def test_invalid_assignment_raises(self):
        with pytest.raises(ValueError):
            Partitioning(np.array([0, 5]), num_parts=2)

    def test_get_partitioner(self):
        assert get_partitioner("METIS") is metis_like_partition
        with pytest.raises(KeyError):
            get_partitioner("zoltan")


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 6), st.integers(10, 60), st.integers(0, 100))
def test_property_all_partitioners_valid(m, n, seed):
    g = generators.erdos_renyi(n, n * 3, seed=seed)
    for partition in ALL:
        p = partition(g, m)
        assert len(p.assignment) == n
        assert p.assignment.min() >= 0 and p.assignment.max() < m
        assert all(len(part) > 0 for part in p.parts())
