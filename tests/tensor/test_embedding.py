"""Embedding lookup table."""

import numpy as np
import pytest

from repro.tensor import nn


class TestEmbedding:
    def test_lookup_rows(self):
        emb = nn.Embedding(5, 3, rng=np.random.default_rng(0))
        out = emb(np.array([0, 4, 0]))
        assert out.shape == (3, 3)
        assert np.allclose(out.data[0], emb.weight.data[0])
        assert np.allclose(out.data[0], out.data[2])

    def test_gradients_accumulate_on_repeats(self):
        emb = nn.Embedding(4, 2, rng=np.random.default_rng(0))
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[1], 2.0)
        assert np.allclose(emb.weight.grad[2], 1.0)
        assert np.allclose(emb.weight.grad[0], 0.0)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            nn.Embedding(3, 2)(np.array([3]))
        with pytest.raises(IndexError):
            nn.Embedding(3, 2)(np.array([-1]))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.Embedding(0, 4)

    def test_registered_parameter(self):
        emb = nn.Embedding(3, 2)
        assert set(dict(emb.named_parameters())) == {"weight"}

    def test_trainable_node_embeddings_as_features(self, cluster2):
        """A featureless graph learns node embeddings end to end:
        the embedding output feeds the GNN as h^0 and receives
        gradients through the distributed backward."""
        from repro.core.blocks import build_block
        from repro.core.layers import GCNConv
        from repro.graph import generators
        from repro.tensor.optim import Adam
        from repro.tensor import functional as F

        g = generators.community(30, 3, 4.0, seed=1).gcn_normalized()
        labels = (np.arange(30) % 3).astype(np.int64)
        emb = nn.Embedding(30, 8, rng=np.random.default_rng(0))
        conv = GCNConv(8, 3, activation="none", rng=np.random.default_rng(1))
        block = build_block(g, np.arange(30), 1)
        opt = Adam(list(emb.parameters()) + list(conv.parameters()), lr=0.05)
        first = None
        for _ in range(30):
            opt.zero_grad()
            h0 = emb(block.input_vertices)
            logits = conv.forward(block, h0)
            loss = F.cross_entropy(logits, labels)
            loss.backward()
            opt.step()
            if first is None:
                first = float(loss.data)
        assert float(loss.data) < first * 0.5
