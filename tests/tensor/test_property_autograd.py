"""Property-based tests on autograd invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import functional as F
from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor

finite_floats = st.floats(
    min_value=-10, max_value=10, allow_nan=False, allow_infinity=False, width=64
)


def small_matrix(rows=st.integers(1, 5), cols=st.integers(1, 5)):
    return st.tuples(rows, cols).flatmap(
        lambda shape: arrays(np.float64, shape, elements=finite_floats)
    )


@settings(max_examples=30, deadline=None)
@given(small_matrix())
def test_sum_grad_is_ones(data):
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, np.ones_like(data))


@settings(max_examples=30, deadline=None)
@given(small_matrix(), st.floats(min_value=-3, max_value=3, allow_nan=False))
def test_gradient_linearity_in_seed(data, scale):
    """backward(c * seed) == c * backward(seed) for a fixed tape."""
    x1 = Tensor(data, requires_grad=True)
    (x1 * x1).backward(np.ones_like(data))
    x2 = Tensor(data, requires_grad=True)
    (x2 * x2).backward(scale * np.ones_like(data))
    assert np.allclose(x2.grad, scale * x1.grad, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(small_matrix())
def test_mean_equals_sum_over_count(data):
    x1 = Tensor(data, requires_grad=True)
    x1.mean().backward()
    x2 = Tensor(data, requires_grad=True)
    (x2.sum() / float(data.size)).backward()
    assert np.allclose(x1.grad, x2.grad, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(small_matrix())
def test_softmax_rows_sum_to_one(data):
    out = F.softmax(Tensor(data), axis=-1)
    assert np.allclose(out.data.sum(axis=-1), 1.0, atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(small_matrix())
def test_log_softmax_consistent_with_softmax(data):
    x = Tensor(data)
    assert np.allclose(
        F.log_softmax(x).data, np.log(F.softmax(x).data + 1e-30), atol=1e-5
    )


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.float64, st.tuples(st.integers(1, 8), st.just(3)), elements=finite_floats),
    st.data(),
)
def test_segment_sum_conserves_mass(data, draw):
    n = data.shape[0]
    segments = np.asarray(
        draw.draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    )
    out = F.segment_sum(Tensor(data), segments, 4)
    assert np.allclose(out.data.sum(axis=0), data.sum(axis=0), atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.float64, st.tuples(st.integers(2, 6), st.integers(2, 4)), elements=finite_floats)
)
def test_matmul_identity_grad(data):
    x = Tensor(data, requires_grad=True)
    eye = Tensor(np.eye(data.shape[1]))
    (x @ eye).sum().backward()
    assert np.allclose(x.grad, 1.0, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(2, 4), st.integers(2, 4)),
        elements=st.floats(min_value=-2, max_value=2, allow_nan=False, width=64),
    )
)
def test_gradcheck_on_random_composite(data):
    # Smooth composite only: piecewise ops would put finite differences
    # astride their kinks for adversarial inputs.
    x = Tensor(data, requires_grad=True)
    assert gradcheck(
        lambda a: ((a @ a.T).sigmoid().sum(axis=1) ** 2).sum(), [x],
        atol=5e-2, rtol=5e-2,
    )


@settings(max_examples=20, deadline=None)
@given(small_matrix())
def test_detach_blocks_gradient_flow(data):
    x = Tensor(data, requires_grad=True)
    y = (x * 2.0).detach() * 3.0
    z = y.sum() + (x * 1.0).sum()
    z.backward()
    # Only the non-detached path contributes.
    assert np.allclose(x.grad, 1.0)
