"""Analytic-vs-numeric gradient checks for every autograd Function."""

import numpy as np
import pytest

from repro.tensor import functional as F
from repro.tensor.gradcheck import gradcheck, numerical_grad
from repro.tensor.tensor import Tensor


def t(shape, seed=0, positive=False):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestArithmeticGrads:
    def test_add(self):
        assert gradcheck(lambda a, b: (a + b).sum(), [t((3, 4)), t((3, 4), 1)])

    def test_add_broadcast(self):
        assert gradcheck(lambda a, b: (a + b).sum(), [t((3, 4)), t((4,), 1)])

    def test_sub(self):
        assert gradcheck(lambda a, b: (a - b).sum(), [t((3, 4)), t((3, 4), 1)])

    def test_mul(self):
        assert gradcheck(lambda a, b: (a * b).sum(), [t((3, 4)), t((3, 4), 1)])

    def test_mul_broadcast_column(self):
        assert gradcheck(lambda a, b: (a * b).sum(), [t((3, 4)), t((3, 1), 1)])

    def test_div(self):
        assert gradcheck(
            lambda a, b: (a / b).sum(), [t((3, 4)), t((3, 4), 1, positive=True)]
        )

    def test_neg(self):
        assert gradcheck(lambda a: (-a).sum(), [t((5,))])

    def test_pow(self):
        assert gradcheck(lambda a: (a ** 3).sum(), [t((4,), positive=True)])

    def test_sqrt(self):
        assert gradcheck(lambda a: a.sqrt().sum(), [t((4,), positive=True)])

    def test_matmul(self):
        assert gradcheck(lambda a, b: (a @ b).sum(), [t((3, 4)), t((4, 2), 1)])

    def test_matmul_vector(self):
        assert gradcheck(lambda a, b: (a @ b).sum(), [t((5, 3)), t((3, 1), 1)])


class TestShapeGrads:
    def test_reshape(self):
        assert gradcheck(lambda a: a.reshape(12).sum(), [t((3, 4))])

    def test_transpose(self):
        assert gradcheck(lambda a: (a.T * a.T).sum(), [t((3, 4))])

    def test_slice(self):
        assert gradcheck(lambda a: (a[1:, ::2] ** 2).sum(), [t((4, 6))])

    def test_concat(self):
        assert gradcheck(
            lambda a, b: (F.concat([a, b], axis=1) ** 2).sum(),
            [t((3, 2)), t((3, 4), 1)],
        )


class TestReductionGrads:
    def test_sum_all(self):
        assert gradcheck(lambda a: (a * a).sum(), [t((3, 4))])

    def test_sum_axis(self):
        assert gradcheck(lambda a: (a.sum(axis=0) ** 2).sum(), [t((3, 4))])

    def test_sum_keepdims(self):
        assert gradcheck(
            lambda a: (a.sum(axis=1, keepdims=True) * a).sum(), [t((3, 4))]
        )

    def test_mean(self):
        assert gradcheck(lambda a: (a.mean(axis=1) ** 2).sum(), [t((3, 4))])

    def test_mean_all(self):
        assert gradcheck(lambda a: a.mean() * 7.0, [t((3, 4))])

    def test_max_axis(self):
        # Perturbation-safe: well-separated values.
        x = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 1.0, 3.0]]), requires_grad=True)
        assert gradcheck(lambda a: a.max(axis=1).sum(), [x])

    def test_max_all(self):
        x = Tensor(np.array([1.0, 9.0, 2.0]), requires_grad=True)
        assert gradcheck(lambda a: a.max() * 2.0, [x])


class TestNonlinearityGrads:
    def test_relu(self):
        assert gradcheck(lambda a: a.relu().sum(), [t((20,), 3)])

    def test_leaky_relu(self):
        assert gradcheck(lambda a: F.leaky_relu(a, 0.1).sum(), [t((20,), 3)])

    def test_exp(self):
        assert gradcheck(lambda a: a.exp().sum(), [t((4,))])

    def test_log(self):
        assert gradcheck(lambda a: a.log().sum(), [t((4,), positive=True)])

    def test_sigmoid(self):
        assert gradcheck(lambda a: a.sigmoid().sum(), [t((6,))])

    def test_tanh(self):
        assert gradcheck(lambda a: a.tanh().sum(), [t((6,))])

    def test_softmax(self):
        assert gradcheck(lambda a: (F.softmax(a) * F.softmax(a)).sum(), [t((3, 5))])

    def test_log_softmax(self):
        assert gradcheck(lambda a: F.log_softmax(a).sum(), [t((3, 5))])


class TestGraphOpGrads:
    def test_index_select(self):
        idx = np.array([0, 2, 2, 1])
        assert gradcheck(
            lambda a: (F.index_select(a, idx) ** 2).sum(), [t((3, 4))]
        )

    def test_segment_sum(self):
        seg = np.array([0, 0, 1, 2, 2, 2])
        assert gradcheck(
            lambda a: (F.segment_sum(a, seg, 3) ** 2).sum(), [t((6, 3))]
        )

    def test_segment_sum_empty_segment(self):
        seg = np.array([0, 0, 2])  # segment 1 empty
        out = F.segment_sum(t((3, 2)), seg, 3)
        assert np.allclose(out.data[1], 0.0)

    def test_segment_mean(self):
        seg = np.array([0, 0, 1])
        assert gradcheck(
            lambda a: (F.segment_mean(a, seg, 2) ** 2).sum(), [t((3, 4))]
        )

    def test_segment_softmax_sums_to_one(self):
        seg = np.array([0, 0, 0, 1, 1])
        out = F.segment_softmax(t((5, 1)), seg, 2)
        sums = F.segment_sum(out, seg, 2)
        assert np.allclose(sums.data, 1.0, atol=1e-5)

    def test_segment_softmax_grad(self):
        seg = np.array([0, 0, 0, 1, 1])
        assert gradcheck(
            lambda a: (F.segment_softmax(a, seg, 2) ** 2).sum(), [t((5, 1))]
        )

    def test_cross_entropy_grad(self):
        targets = np.array([0, 2, 1])
        assert gradcheck(lambda a: F.cross_entropy(a, targets), [t((3, 4))])

    def test_nll_empty_batch_raises(self):
        with pytest.raises(ValueError, match="empty batch"):
            F.nll_loss(Tensor(np.zeros((0, 3))), np.zeros(0, dtype=np.int64))

    def test_segment_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="entries"):
            F.segment_sum(t((3, 2)), np.array([0, 1]), 2)


class TestDropout:
    def test_eval_identity(self):
        x = t((10, 10))
        out = F.dropout(x, p=0.5, training=False)
        assert out is x

    def test_p_zero_identity(self):
        x = t((10, 10))
        assert F.dropout(x, p=0.0) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(t((2,)), p=1.0)

    def test_inverted_scaling_preserves_mean(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, p=0.5, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_grad_matches_mask(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones((50,)), requires_grad=True)
        out = F.dropout(x, p=0.5, rng=rng)
        out.sum().backward()
        # Gradient is exactly the applied mask.
        assert np.allclose(x.grad, out.data)


class TestNumericalGradHelper:
    def test_numerical_grad_linear(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        grad = numerical_grad(lambda a: (a * 3.0).sum(), [x], wrt=0)
        assert np.allclose(grad, 3.0, atol=1e-4)

    def test_gradcheck_detects_wrong_backward(self):
        class Broken(F.IndexSelect):
            def backward(self, grad):
                (out,) = super().backward(grad)
                return (out * 2.0,)

        x = Tensor(np.ones((3, 2)), requires_grad=True)
        with pytest.raises(AssertionError):
            gradcheck(
                lambda a: Broken.apply(a, indices=np.array([0, 1])).sum(), [x]
            )
