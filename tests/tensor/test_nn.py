"""Module system: parameter discovery, Linear, state dicts."""

import numpy as np
import pytest

from repro.tensor import nn
from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor


class TestParameterDiscovery:
    def test_linear_has_weight_and_bias(self):
        layer = nn.Linear(3, 4)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_no_bias(self):
        layer = nn.Linear(3, 4, bias=False)
        assert set(dict(layer.named_parameters())) == {"weight"}

    def test_nested_modules(self):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.fc1 = nn.Linear(2, 3)
                self.fc2 = nn.Linear(3, 1)

        names = set(dict(Net().named_parameters()))
        assert names == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_modules_in_lists(self):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.layers = [nn.Linear(2, 2), nn.Linear(2, 2)]

        assert len(Net().parameters()) == 4

    def test_parameters_in_lists(self):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.extras = [nn.Parameter(np.zeros(2))]

        names = dict(Net().named_parameters())
        assert "extras.0" in names

    def test_num_parameters(self):
        layer = nn.Linear(3, 4)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_zero_grad(self):
        layer = nn.Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(5, 3)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_forward_matches_manual(self):
        layer = nn.Linear(4, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((3, 4)).astype(np.float32)
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected, atol=1e-6)

    def test_gradcheck(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((4, 3)))
        assert gradcheck(
            lambda w, b: (x @ w + b).relu().sum(), [layer.weight, layer.bias]
        )

    def test_flops(self):
        layer = nn.Linear(10, 20)
        assert layer.flops(5) == 2 * 5 * 10 * 20 + 5 * 20
        assert nn.Linear(10, 20, bias=False).flops(5) == 2 * 5 * 10 * 20

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)


class TestStateDict:
    def test_roundtrip(self):
        a = nn.Linear(3, 2, rng=np.random.default_rng(0))
        b = nn.Linear(3, 2, rng=np.random.default_rng(9))
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_is_a_copy(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["weight"][:] = 99.0
        assert not np.allclose(layer.weight.data, 99.0)

    def test_missing_key_raises(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        del state["bias"]
        with pytest.raises(KeyError, match="missing"):
            layer.load_state_dict(state)

    def test_unexpected_key_raises(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            layer.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            layer.load_state_dict(state)


class TestTrainEval:
    def test_train_flag_propagates(self):
        seq = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5), nn.ReLU())
        seq.eval()
        assert not seq.layers[1].training
        seq.train()
        assert seq.layers[1].training

    def test_dropout_eval_is_identity(self):
        drop = nn.Dropout(0.9)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.allclose(drop(x).data, 1.0)

    def test_sequential_forward_and_indexing(self):
        seq = nn.Sequential(nn.Linear(3, 5), nn.ReLU(), nn.Linear(5, 2))
        assert len(seq) == 3
        assert isinstance(seq[0], nn.Linear)
        out = seq(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 2)
