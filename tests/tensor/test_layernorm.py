"""LayerNorm."""

import numpy as np
import pytest

from repro.tensor import nn
from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor


class TestLayerNorm:
    def test_output_standardised(self):
        norm = nn.LayerNorm(8)
        x = Tensor(np.random.default_rng(0).standard_normal((5, 8)) * 10 + 3)
        out = norm(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_affine_parameters_apply(self):
        norm = nn.LayerNorm(4)
        norm.gamma.data[:] = 2.0
        norm.beta.data[:] = 1.0
        x = Tensor(np.random.default_rng(1).standard_normal((3, 4)))
        out = norm(x).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-5)

    def test_gradcheck(self):
        norm = nn.LayerNorm(5)
        x = Tensor(
            np.random.default_rng(2).standard_normal((4, 5)), requires_grad=True
        )
        assert gradcheck(lambda x: (norm(x) ** 2).sum(), [x])

    def test_parameter_gradients(self):
        norm = nn.LayerNorm(5)
        x = Tensor(np.random.default_rng(3).standard_normal((4, 5)))
        assert gradcheck(
            lambda g, b: (norm(x) ** 2).sum(), [norm.gamma, norm.beta]
        )

    def test_dim_mismatch(self):
        with pytest.raises(ValueError, match="last dim"):
            nn.LayerNorm(4)(Tensor(np.zeros((2, 6))))

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            nn.LayerNorm(0)

    def test_discovered_parameters(self):
        names = set(dict(nn.LayerNorm(3).named_parameters()))
        assert names == {"gamma", "beta"}

    def test_inside_sequential_gnn_stack(self, small_graph, cluster2):
        """LayerNorm between propagation layers trains end to end."""
        from repro.core.blocks import LayerBlock
        from repro.core.layers import GCNConv, GNNLayer
        from repro.core.model import GNNModel
        from repro.engines import DepCommEngine
        from repro.training.prep import prepare_graph
        from repro.training.trainer import DistributedTrainer

        class NormedGCN(GNNLayer):
            def __init__(self, in_dim, out_dim, **kw):
                super().__init__(in_dim, out_dim)
                self.conv = GCNConv(in_dim, out_dim, **kw)
                self.norm = nn.LayerNorm(out_dim)

            def forward(self, block: LayerBlock, h):
                return self.norm(self.conv.forward(block, h))

            def dense_flops(self, block):
                return self.conv.dense_flops(block)

            def sparse_flops(self, block):
                return self.conv.sparse_flops(block)

            def edge_tensor_bytes(self, block):
                return self.conv.edge_tensor_bytes(block)

        graph = prepare_graph(small_graph, "gcn")
        rng = np.random.default_rng(0)
        model = GNNModel([
            NormedGCN(graph.feature_dim, 12, rng=rng),
            GCNConv(12, graph.num_classes, activation="none", rng=rng),
        ])
        engine = DepCommEngine(graph, model, cluster2)
        history = DistributedTrainer(engine, lr=0.05).train(epochs=8)
        assert history.reports[-1].loss < history.reports[0].loss
