"""Tensor construction, arithmetic, and backward-pass mechanics."""

import numpy as np
import pytest

from repro.tensor.tensor import Tensor, no_grad, tensor


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)

    def test_integer_payload_becomes_float32(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_factory(self):
        t = tensor([[1.0]], requires_grad=True)
        assert t.requires_grad
        assert t.shape == (1, 1)

    def test_detach_cuts_tape(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3.0).detach()
        assert not b.requires_grad
        assert b._ctx is None

    def test_clone_copies_data(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a.clone()
        b.data[0] = 99.0
        assert a.data[0] == 1.0

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_item(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)


class TestArithmetic:
    def test_add_sub_mul_div(self):
        a = Tensor([4.0])
        b = Tensor([2.0])
        assert (a + b).data[0] == 6.0
        assert (a - b).data[0] == 2.0
        assert (a * b).data[0] == 8.0
        assert (a / b).data[0] == 2.0

    def test_reflected_ops(self):
        a = Tensor([4.0])
        assert (1.0 + a).data[0] == 5.0
        assert (1.0 - a).data[0] == -3.0
        assert (2.0 * a).data[0] == 8.0
        assert (8.0 / a).data[0] == 2.0

    def test_neg_pow_sqrt(self):
        a = Tensor([4.0])
        assert (-a).data[0] == -4.0
        assert (a ** 2).data[0] == 16.0
        assert a.sqrt().data[0] == pytest.approx(2.0)

    def test_matmul(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose((a @ b).data, b.data)

    def test_numpy_array_times_tensor_dispatches_to_tensor(self):
        # __array_priority__ keeps numpy from eating the Tensor.
        a = np.ones((2, 2))
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = a * t
        assert isinstance(out, Tensor)


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        y.backward()
        assert x.grad[0] == pytest.approx(6.0)

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        (x * 3.0).backward()
        assert x.grad[0] == pytest.approx(5.0)

    def test_diamond_graph(self):
        # x used twice: grads must sum along both paths.
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a + b).backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_deep_chain_iterative_toposort(self):
        # 3000-deep chain would blow a recursive traversal.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)

    def test_seed_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        y.backward(np.array([10.0, 1.0]))
        assert np.allclose(x.grad, [20.0, 2.0])

    def test_seed_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(ValueError, match="seed gradient shape"):
            y.backward(np.zeros(3))

    def test_broadcast_add_unbroadcasts_grad(self):
        bias = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(np.ones((4, 3)))
        (x + bias).sum().backward()
        assert bias.grad.shape == (3,)
        assert np.allclose(bias.grad, 4.0)

    def test_broadcast_keepdim_column(self):
        col = Tensor(np.ones((4, 1)), requires_grad=True)
        x = Tensor(np.ones((4, 3)))
        (x * col).sum().backward()
        assert col.grad.shape == (4, 1)
        assert np.allclose(col.grad, 3.0)

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_blocks_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._ctx is None

    def test_no_grad_restores_state(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        y = x * 2.0
        assert y.requires_grad

    def test_non_trainable_leaf_gets_no_grad(self):
        x = Tensor([1.0], requires_grad=False)
        w = Tensor([2.0], requires_grad=True)
        (x * w).backward()
        assert x.grad is None
        assert w.grad is not None


class TestShapesAndReductions:
    def test_reshape_roundtrip(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        y = x.reshape(2, 3).reshape((6,))
        assert np.allclose(y.data, x.data)
        y.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_transpose(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.T.shape == (3, 2)
        assert x.transpose(0, 1).shape == (3, 2)

    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)))
        assert x.sum().shape == ()
        assert x.sum(axis=0).shape == (3,)
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_matches_numpy(self):
        data = np.arange(12.0).reshape(3, 4)
        assert np.allclose(Tensor(data).mean(axis=1).data, data.mean(axis=1))

    def test_max_with_ties_splits_gradient(self):
        x = Tensor(np.array([[1.0, 1.0]]), requires_grad=True)
        x.max(axis=1).backward()
        assert np.allclose(x.grad, [[0.5, 0.5]])

    def test_slicing_backward_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        assert np.allclose(x.grad, [0, 1, 1, 0, 0])

    def test_fancy_index_duplicates_accumulate(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        assert np.allclose(x.grad, [2, 0, 1])


class TestElementwise:
    def test_relu(self):
        x = Tensor([-1.0, 2.0])
        assert np.allclose(x.relu().data, [0.0, 2.0])

    def test_exp_log_inverse(self):
        x = Tensor([0.5, 1.5])
        assert np.allclose(x.exp().log().data, x.data, atol=1e-6)

    def test_sigmoid_range(self):
        x = Tensor(np.linspace(-5, 5, 11))
        s = x.sigmoid().data
        assert (s > 0).all() and (s < 1).all()

    def test_tanh_odd(self):
        x = Tensor([1.0])
        assert np.allclose(x.tanh().data, -((-x).tanh().data))
