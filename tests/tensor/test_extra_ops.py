"""abs / clip / min / elementwise maximum-minimum."""

import numpy as np
import pytest

from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor, maximum, minimum


def t(data):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=True)


class TestAbs:
    def test_forward(self):
        assert np.allclose(t([-2.0, 3.0]).abs().data, [2.0, 3.0])

    def test_grad(self):
        x = t([-2.0, 3.0, -0.5])
        assert gradcheck(lambda a: a.abs().sum(), [x])

    def test_grad_is_sign(self):
        x = t([-2.0, 3.0])
        x.abs().sum().backward()
        assert np.allclose(x.grad, [-1.0, 1.0])


class TestClip:
    def test_forward(self):
        out = t([-5.0, 0.5, 5.0]).clip(-1.0, 1.0)
        assert np.allclose(out.data, [-1.0, 0.5, 1.0])

    def test_grad_zero_outside(self):
        x = t([-5.0, 0.5, 5.0])
        x.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_gradcheck_interior(self):
        x = t([0.2, -0.3, 0.7])
        assert gradcheck(lambda a: (a.clip(-1.0, 1.0) ** 2).sum(), [x])

    def test_inverted_bounds(self):
        with pytest.raises(ValueError, match="inverted"):
            t([1.0]).clip(2.0, 1.0)


class TestMinReduction:
    def test_forward(self):
        x = t([[3.0, 1.0], [2.0, 5.0]])
        assert np.allclose(x.min(axis=1).data, [1.0, 2.0])

    def test_grad(self):
        x = t([[3.0, 1.0], [2.0, 5.0]])
        x.min(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0, 1], [1, 0]])

    def test_min_all(self):
        assert t([4.0, 2.0, 9.0]).min().data == 2.0


class TestElementwiseMaxMin:
    def test_maximum_forward(self):
        out = maximum(t([1.0, 5.0]), t([3.0, 2.0]))
        assert np.allclose(out.data, [3.0, 5.0])

    def test_maximum_grad_routing(self):
        a = t([1.0, 5.0])
        b = t([3.0, 2.0])
        maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])

    def test_maximum_tie_goes_to_first(self):
        a = t([2.0])
        b = t([2.0])
        maximum(a, b).backward()
        assert a.grad[0] == 1.0 and b.grad[0] == 0.0

    def test_minimum_forward(self):
        out = minimum(t([1.0, 5.0]), t([3.0, 2.0]))
        assert np.allclose(out.data, [1.0, 2.0])

    def test_minimum_grad(self):
        a = t([1.0, 5.0])
        b = t([3.0, 2.0])
        minimum(a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_gradcheck_composite(self):
        a = t([0.5, -1.5, 2.5])
        b = t([1.0, 1.0, 1.0])
        assert gradcheck(lambda a, b: (maximum(a, b) * minimum(a, b)).sum(),
                         [a, b])

    def test_accepts_raw_arrays(self):
        out = maximum(np.array([1.0, 4.0]), t([2.0, 3.0]))
        assert np.allclose(out.data, [2.0, 4.0])
