"""Optimisers: SGD (momentum, weight decay) and Adam."""

import numpy as np
import pytest

from repro.tensor import optim
from repro.tensor.tensor import Tensor


def quadratic_step(opt, param, target=3.0):
    """One gradient step on f(w) = (w - target)^2."""
    opt.zero_grad()
    loss = (param - target) * (param - target)
    loss.sum().backward()
    opt.step()
    return float(loss.data.sum())


class TestSGD:
    def test_converges_on_quadratic(self):
        w = Tensor([0.0], requires_grad=True)
        opt = optim.SGD([w], lr=0.1)
        for _ in range(100):
            quadratic_step(opt, w)
        assert abs(w.data[0] - 3.0) < 1e-3

    def test_momentum_accelerates(self):
        w_plain = Tensor([0.0], requires_grad=True)
        w_momentum = Tensor([0.0], requires_grad=True)
        plain = optim.SGD([w_plain], lr=0.02)
        momentum = optim.SGD([w_momentum], lr=0.02, momentum=0.9)
        for _ in range(20):
            quadratic_step(plain, w_plain)
            quadratic_step(momentum, w_momentum)
        assert abs(w_momentum.data[0] - 3.0) < abs(w_plain.data[0] - 3.0)

    def test_weight_decay_shrinks_weights(self):
        w = Tensor([5.0], requires_grad=True)
        opt = optim.SGD([w], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        w.grad = np.zeros(1)  # pure decay
        opt.step()
        assert w.data[0] < 5.0

    def test_skips_params_without_grad(self):
        w = Tensor([1.0], requires_grad=True)
        opt = optim.SGD([w], lr=0.1)
        opt.step()  # no backward happened
        assert w.data[0] == 1.0

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            optim.SGD([Tensor([1.0], requires_grad=True)], lr=-1)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            optim.SGD([Tensor([1.0], requires_grad=True)], momentum=1.5)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)

    def test_rejects_non_trainable(self):
        with pytest.raises(ValueError):
            optim.SGD([Tensor([1.0])], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Tensor([0.0], requires_grad=True)
        opt = optim.Adam([w], lr=0.3)
        for _ in range(200):
            quadratic_step(opt, w)
        assert abs(w.data[0] - 3.0) < 1e-2

    def test_first_step_is_lr_sized(self):
        # With bias correction, step 1 moves by ~lr regardless of grad scale.
        w = Tensor([0.0], requires_grad=True)
        opt = optim.Adam([w], lr=0.1)
        quadratic_step(opt, w, target=1000.0)
        assert abs(abs(w.data[0]) - 0.1) < 1e-3

    def test_weight_decay(self):
        w = Tensor([5.0], requires_grad=True)
        opt = optim.Adam([w], lr=0.1, weight_decay=1.0)
        w.grad = np.zeros(1)
        opt.step()
        assert w.data[0] < 5.0

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            optim.Adam([Tensor([1.0], requires_grad=True)], betas=(1.0, 0.9))

    def test_zero_grad_clears(self):
        w = Tensor([1.0], requires_grad=True)
        opt = optim.Adam([w])
        (w * 2.0).backward()
        opt.zero_grad()
        assert w.grad is None
