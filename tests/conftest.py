"""Shared fixtures: small graphs, tiny models, quick clusters."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.graph import generators
from repro.graph.graph import Graph


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_graph():
    """The paper's Figure 1 example-sized graph: 6 vertices, few edges."""
    src = np.array([0, 3, 5, 1, 4, 2, 0, 1])
    dst = np.array([1, 1, 1, 2, 2, 3, 2, 5])
    g = Graph(6, src, dst, name="tiny")
    rng = np.random.default_rng(0)
    g.features = rng.standard_normal((6, 8)).astype(np.float32)
    g.labels = np.array([0, 1, 0, 1, 0, 1], dtype=np.int64)
    g.num_classes = 2
    g.set_split(train_fraction=0.5, val_fraction=0.2, rng=rng)
    return g


@pytest.fixture
def small_graph():
    """A learnable community graph (64 vertices, 4 classes)."""
    g = generators.community(64, 4, avg_degree=8.0, seed=3)
    generators.attach_features(g, 16, 4, seed=4, class_signal=2.0)
    return g


@pytest.fixture
def medium_graph():
    """A locality graph big enough for 4-8 workers."""
    g = generators.locality_graph(
        200, 1400, locality_width=0.02, global_fraction=0.3, seed=5
    )
    generators.attach_features(g, 24, 5, seed=6)
    return g


@pytest.fixture
def cluster4():
    return ClusterSpec.ecs(4)


@pytest.fixture
def cluster2():
    return ClusterSpec.ecs(2)


def make_model(arch: str, graph: Graph, hidden: int = 12, seed: int = 7) -> GNNModel:
    return GNNModel.build(
        arch, graph.feature_dim, hidden, graph.num_classes, seed=seed
    )


@pytest.fixture
def gcn_model(small_graph):
    return make_model("gcn", small_graph)
