"""HistoricalEmbeddingCache: staleness semantics, eviction, accounting."""

import numpy as np
import pytest

from repro.cache.historical import HistoricalEmbeddingCache


def rows_for(ids, dim=4, value=1.0):
    return np.full((len(ids), dim), value, dtype=np.float32)


class TestStaleness:
    def test_fresh_within_tau(self):
        cache = HistoricalEmbeddingCache(2, tau=3.0)
        ids = np.array([5, 7])
        cache.store(2, ids, rows_for(ids), epoch=10)
        for epoch in (10, 11, 12):
            fresh, rows = cache.lookup(2, ids, epoch)
            assert fresh.all() and rows.shape == (2, 4)
        fresh, rows = cache.lookup(2, ids, 13)  # 13 - 10 >= 3: expired
        assert not fresh.any() and rows is None

    def test_tau_zero_never_fresh(self):
        cache = HistoricalEmbeddingCache(1, tau=0.0)
        ids = np.array([1])
        cache.store(1, ids, rows_for(ids), epoch=4)
        fresh, rows = cache.lookup(1, ids, 4)
        assert not fresh.any() and rows is None
        assert cache.counters.expirations == 1

    def test_tau_one_fresh_only_in_store_epoch(self):
        cache = HistoricalEmbeddingCache(1, tau=1.0)
        ids = np.array([1])
        cache.store(1, ids, rows_for(ids), epoch=4)
        assert cache.lookup(1, ids, 4)[0].all()
        assert not cache.lookup(1, ids, 5)[0].any()

    def test_tau_inf_always_fresh(self):
        cache = HistoricalEmbeddingCache(1, tau=float("inf"))
        ids = np.array([1])
        cache.store(1, ids, rows_for(ids), epoch=0)
        assert cache.lookup(1, ids, 10**6)[0].all()

    def test_restore_restamps(self):
        cache = HistoricalEmbeddingCache(1, tau=2.0)
        ids = np.array([3])
        cache.store(1, ids, rows_for(ids, value=1.0), epoch=0)
        cache.store(1, ids, rows_for(ids, value=9.0), epoch=5)
        fresh, rows = cache.lookup(1, ids, 6)
        assert fresh.all() and (rows == 9.0).all()
        assert cache.stamp_of(1, 3) == 5

    def test_missing_is_miss(self):
        cache = HistoricalEmbeddingCache(1, tau=2.0)
        fresh, rows = cache.lookup(1, np.array([42]), 0)
        assert not fresh.any() and rows is None
        assert cache.counters.misses == 1

    def test_mixed_fresh_rows_align(self):
        cache = HistoricalEmbeddingCache(1, tau=10.0)
        cache.store(1, np.array([2]), rows_for([2], value=2.0), epoch=0)
        cache.store(1, np.array([4]), rows_for([4], value=4.0), epoch=0)
        fresh, rows = cache.lookup(1, np.array([4, 3, 2]), 1)
        assert fresh.tolist() == [True, False, True]
        assert rows[0, 0] == 4.0 and rows[1, 0] == 2.0


class TestLayers:
    def test_layers_are_separate_id_spaces(self):
        cache = HistoricalEmbeddingCache(2, tau=10.0)
        cache.store(1, np.array([7]), rows_for([7], value=1.0), epoch=0)
        cache.store(2, np.array([7]), rows_for([7], value=2.0), epoch=0)
        assert cache.lookup(1, np.array([7]), 0)[1][0, 0] == 1.0
        assert cache.lookup(2, np.array([7]), 0)[1][0, 0] == 2.0
        assert cache.breakdown() == {1: 1, 2: 1}

    def test_layer_bounds_checked(self):
        cache = HistoricalEmbeddingCache(2, tau=1.0)
        with pytest.raises(ValueError):
            cache.store(3, np.array([0]), rows_for([0]), epoch=0)
        with pytest.raises(ValueError):
            cache.lookup(0, np.array([0]), 0)


class TestEviction:
    def test_capacity_entries_evicts_oldest(self):
        cache = HistoricalEmbeddingCache(
            1, tau=100.0, capacity_entries=2, eviction="fifo"
        )
        for epoch, u in enumerate([1, 2, 3]):
            cache.store(1, np.array([u]), rows_for([u]), epoch=epoch)
        assert len(cache) == 2
        assert not cache.contains(1, 1)  # first in, first out
        assert cache.contains(1, 2) and cache.contains(1, 3)
        assert cache.counters.evictions == 1

    def test_lru_hit_protects_entry(self):
        cache = HistoricalEmbeddingCache(
            1, tau=100.0, capacity_entries=2, eviction="lru"
        )
        cache.store(1, np.array([1]), rows_for([1]), epoch=0)
        cache.store(1, np.array([2]), rows_for([2]), epoch=0)
        cache.lookup(1, np.array([1]), 0)  # touch 1 -> 2 becomes LRU
        cache.store(1, np.array([3]), rows_for([3]), epoch=0)
        assert cache.contains(1, 1) and not cache.contains(1, 2)

    def test_capacity_bytes_bounds_residency(self):
        entry = rows_for([0]).nbytes  # 16 bytes per entry
        cache = HistoricalEmbeddingCache(1, tau=10.0, capacity_bytes=2 * entry)
        for u in range(5):
            cache.store(1, np.array([u]), rows_for([u]), epoch=0)
        assert cache.resident_bytes <= 2 * entry
        assert len(cache) == 2

    def test_invalidate_clears_everything(self):
        cache = HistoricalEmbeddingCache(1, tau=10.0)
        cache.store(1, np.array([1, 2]), rows_for([1, 2]), epoch=0)
        cache.invalidate()
        assert len(cache) == 0 and cache.resident_bytes == 0
        assert not cache.lookup(1, np.array([1]), 0)[0].any()


class TestCounters:
    def test_hit_rate(self):
        cache = HistoricalEmbeddingCache(1, tau=2.0)
        cache.store(1, np.array([1]), rows_for([1]), epoch=0)
        cache.lookup(1, np.array([1]), 1)  # hit
        cache.lookup(1, np.array([1]), 3)  # expired
        cache.lookup(1, np.array([9]), 1)  # miss
        c = cache.counters
        assert (c.hits, c.expirations, c.misses) == (1, 1, 1)
        assert c.hit_rate() == pytest.approx(1 / 3)

    def test_stored_rows_are_copies(self):
        cache = HistoricalEmbeddingCache(1, tau=10.0)
        rows = rows_for([1])
        cache.store(1, np.array([1]), rows, epoch=0)
        rows[:] = 99.0  # mutate the caller's buffer
        assert cache.lookup(1, np.array([1]), 0)[1][0, 0] == 1.0


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            HistoricalEmbeddingCache(0, tau=1.0)
        with pytest.raises(ValueError):
            HistoricalEmbeddingCache(1, tau=-1.0)
        with pytest.raises(ValueError):
            HistoricalEmbeddingCache(1, tau=1.0, eviction="random")
        cache = HistoricalEmbeddingCache(1, tau=1.0)
        with pytest.raises(ValueError):
            cache.store(1, np.array([1, 2]), rows_for([1]), epoch=0)
