"""Admission policies: ranking order, determinism, expectation math."""

import numpy as np
import pytest

from repro.cache.budget import CacheConfig
from repro.cache.policies import (
    ExpectationPolicy,
    LRUPolicy,
    StaticDegreeTopK,
    get_policy,
    make_policy,
)
from repro.graph import generators
from repro.graph.graph import Graph
from repro.partition.chunk import chunk_partition


@pytest.fixture
def star_setting():
    """Vertex 0 is a hub feeding every owned vertex of worker 0."""
    # Edges: 0 -> {1,2,3}, 4 -> 1, 5 -> 2 (workers own {1,2,3} etc.)
    src = np.array([0, 0, 0, 4, 5])
    dst = np.array([1, 2, 3, 1, 2])
    g = Graph(6, src, dst, name="star")
    partitioning = chunk_partition(g, 2)
    return g, partitioning


class TestDegree:
    def test_hub_ranks_first(self, star_setting):
        g, p = star_setting
        policy = StaticDegreeTopK(g, p, 0)
        order = policy.rank(np.array([4, 0, 5]), 1)
        assert order[0] == 0  # degree 3 beats degree 1

    def test_ties_break_by_id(self, star_setting):
        g, p = star_setting
        policy = StaticDegreeTopK(g, p, 0)
        order = policy.rank(np.array([5, 4]), 1)
        assert order.tolist() == [4, 5]

    def test_rank_is_deterministic(self, star_setting):
        g, p = star_setting
        policy = StaticDegreeTopK(g, p, 0)
        candidates = np.array([5, 0, 4])
        first = policy.rank(candidates, 1)
        assert (first == policy.rank(candidates, 1)).all()


class TestLRU:
    def test_preserves_arrival_order(self, star_setting):
        g, p = star_setting
        policy = LRUPolicy(g, p, 0)
        order = policy.rank(np.array([5, 0, 4]), 1)
        assert order.tolist() == [5, 0, 4]

    def test_runtime_eviction_is_lru(self):
        assert LRUPolicy.runtime_eviction == "lru"
        assert StaticDegreeTopK.runtime_eviction == "fifo"


class TestExpectation:
    def test_full_batch_equals_consumer_count(self, star_setting):
        g, p = star_setting
        policy = ExpectationPolicy(g, p, 0, fanout=None)
        candidates = np.arange(g.num_vertices)
        scores = policy.scores(candidates, 1)
        # Full batch degenerates to the exact local consumer count.
        owned = p.assignment == 0
        expected = np.bincount(
            g.src[owned[g.dst]], minlength=g.num_vertices
        ).astype(float)
        assert scores.tolist() == expected[candidates].tolist()
        assert expected.sum() > 0  # the fixture has boundary edges

    def test_fanout_probability_in_unit_interval(self, star_setting):
        g, p = star_setting
        policy = ExpectationPolicy(g, p, 0, fanout=1)
        scores = policy.scores(np.arange(6), 1)
        assert ((scores >= 0.0) & (scores <= 1.0)).all()

    def test_larger_fanout_larger_probability(self):
        g = generators.community(60, 3, avg_degree=6.0, seed=7)
        p = chunk_partition(g, 3)
        candidates = np.arange(g.num_vertices)
        small = ExpectationPolicy(g, p, 0, fanout=1).scores(candidates, 1)
        large = ExpectationPolicy(g, p, 0, fanout=10).scores(candidates, 1)
        assert (large >= small - 1e-12).all()

    def test_no_consumers_scores_zero(self, star_setting):
        g, p = star_setting
        policy = ExpectationPolicy(g, p, 0, fanout=2)
        # Vertex 3 feeds nobody in worker 0's partition.
        assert policy.scores(np.array([3]), 1)[0] == 0.0


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_policy("degree") is StaticDegreeTopK
        assert get_policy("LRU") is LRUPolicy
        assert get_policy("expectation") is ExpectationPolicy

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown cache policy"):
            get_policy("belady")

    def test_make_policy_passes_fanout(self, star_setting):
        g, p = star_setting
        policy = make_policy(
            CacheConfig(policy="expectation", fanout=3), g, p, 0
        )
        assert isinstance(policy, ExpectationPolicy)
        assert policy.fanout == 3
        assert isinstance(
            make_policy(CacheConfig(policy="degree"), g, p, 0),
            StaticDegreeTopK,
        )

    def test_empty_candidates(self, star_setting):
        g, p = star_setting
        for name in ("degree", "lru", "expectation"):
            policy = make_policy(CacheConfig(policy=name), g, p, 0)
            assert len(policy.rank(np.empty(0, dtype=np.int64), 1)) == 0
