"""The tau=0 determinism contract: cache on == cache off, bit for bit.

A staleness bound of zero means nothing is ever served stale: every
epoch re-fetches the CACHED sets, so a cache-enabled run must be
bit-identical to a cache-free one -- same losses, same parameters,
same modeled epoch times, same communication volume.
"""

import numpy as np
import pytest

from repro.cache.budget import CacheConfig
from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.graph import generators
from repro.training.trainer import DistributedTrainer

EPOCHS = 6


@pytest.fixture
def graph():
    g = generators.community(120, 4, avg_degree=7.0, seed=11)
    generators.attach_features(g, 12, 4, seed=12)
    g.set_split(rng=np.random.default_rng(13))
    return g.gcn_normalized()


def train(graph, engine_name, cache):
    model = GNNModel.gcn(12, 8, 4, seed=5)
    engine = make_engine(
        engine_name, graph, model, ClusterSpec.ecs(4), cache_config=cache
    )
    history = DistributedTrainer(engine, lr=0.01).train(EPOCHS)
    params = [p.data.copy() for p in model.parameters()]
    return history, params, engine


@pytest.mark.parametrize("engine_name", ["depcomm", "hybrid"])
def test_tau_zero_bit_identical(graph, engine_name):
    base_history, base_params, _ = train(graph, engine_name, None)
    tau0_history, tau0_params, engine = train(
        graph, engine_name, CacheConfig(tau=0.0)
    )
    for base, tau0 in zip(base_history.reports, tau0_history.reports):
        assert tau0.loss == base.loss
        assert tau0.epoch_time_s == base.epoch_time_s
        assert tau0.comm_bytes == base.comm_bytes
        assert tau0.forward_time_s == base.forward_time_s
        assert tau0.backward_time_s == base.backward_time_s
    for p_base, p_tau0 in zip(base_params, tau0_params):
        assert (p_base == p_tau0).all()
    # The cache never served anything stale...
    assert all(r.cache_hits == 0 for r in tau0_history.reports)
    # ...and every epoch was a refresh epoch.
    if engine._cache_active:
        assert all(r.cache_refreshed for r in tau0_history.reports)


def test_no_config_is_literally_inactive(graph):
    _, _, engine = train(graph, "depcomm", None)
    assert engine._hist_caches is None
    plan = engine.plan()
    assert plan.total_stale_vertices() == 0
    assert all(len(h) == 0 for per_l in plan.stale_deps for h in per_l)


def test_tau_zero_depcomm_has_stale_sets(graph):
    """tau=0 still routes deps through the cache path (and refreshes)."""
    _, _, engine = train(graph, "depcomm", CacheConfig(tau=0.0))
    assert engine._cache_active
    assert engine.plan().total_stale_vertices() > 0
