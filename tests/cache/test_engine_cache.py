"""Engine integration: refresh cadence, accounting, budget, the guard."""

import numpy as np
import pytest

from repro.cache.budget import CACHE_MEMORY_LABEL, CacheConfig
from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.engines import DepCommEngine, HybridEngine
from repro.engines.base import EpochReport
from repro.graph import generators
from repro.training.trainer import DistributedTrainer


@pytest.fixture
def graph():
    g = generators.community(120, 4, avg_degree=7.0, seed=21)
    generators.attach_features(g, 12, 4, seed=22)
    g.set_split(rng=np.random.default_rng(23))
    return g.gcn_normalized()


def make(graph, cache, engine_cls=DepCommEngine, **kwargs):
    model = GNNModel.gcn(12, 8, 4, seed=5)
    return model, engine_cls(
        graph, model, ClusterSpec.ecs(4), cache_config=cache, **kwargs
    )


class TestRefreshCadence:
    def test_refresh_every_tau_epochs(self, graph):
        _, engine = make(graph, CacheConfig(tau=3.0))
        history = DistributedTrainer(engine, lr=0.01).train(
            7
        )
        assert [r.cache_refreshed for r in history.reports] == [
            True, False, False, True, False, False, True,
        ]

    def test_tau_inf_fetches_once(self, graph):
        _, engine = make(graph, CacheConfig(tau=float("inf")))
        history = DistributedTrainer(engine, lr=0.01).train(5)
        refreshed = [r.cache_refreshed for r in history.reports]
        assert refreshed == [True, False, False, False, False]
        # Steady state communicates nothing: DepCache-like volume.
        assert all(r.comm_bytes == 0 for r in history.reports[1:])

    def test_force_refresh_mid_window(self, graph):
        _, engine = make(graph, CacheConfig(tau=10.0))
        engine.run_epoch()
        engine.force_refresh()
        report = engine.run_epoch()
        assert report.cache_refreshed
        # The forced refresh restarts the tau window.
        assert not engine.run_epoch().cache_refreshed


class TestAccounting:
    def test_saved_plus_moved_is_conserved(self, graph):
        """Every epoch: bytes moved + bytes saved == the uncached volume."""
        _, base_engine = make(graph, None)
        base = DistributedTrainer(base_engine, lr=0.01).train(4)
        _, engine = make(graph, CacheConfig(tau=4.0))
        cached = DistributedTrainer(engine, lr=0.01).train(4)
        for b, c in zip(base.reports, cached.reports):
            assert c.comm_bytes + c.comm_saved_bytes == b.comm_bytes

    def test_hits_and_misses_partition_the_stale_set(self, graph):
        _, engine = make(graph, CacheConfig(tau=4.0))
        stale_per_epoch = None
        for _ in range(4):
            report = engine.run_epoch()
            total = report.cache_hits + report.cache_misses
            if stale_per_epoch is None:
                stale_per_epoch = total
            assert total == stale_per_epoch
        assert stale_per_epoch == engine.plan().total_stale_vertices()

    def test_refresh_bytes_only_on_refresh_epochs(self, graph):
        _, engine = make(graph, CacheConfig(tau=3.0))
        history = DistributedTrainer(engine, lr=0.01).train(6)
        for r in history.reports:
            if r.cache_refreshed:
                assert r.refresh_bytes > 0 and r.comm_saved_bytes == 0
            else:
                assert r.refresh_bytes == 0 and r.comm_saved_bytes > 0

    def test_cache_entries_accounted_in_host_memory(self, graph):
        _, engine = make(graph, CacheConfig(tau=4.0))
        plan = engine.plan()
        labeled = sum(
            tracker.breakdown().get(CACHE_MEMORY_LABEL, 0)
            for tracker in plan.host_memory
        )
        expected = sum(
            len(plan.stale_deps[l][w]) * engine.dims[l] * 4
            for l in range(engine.num_layers)
            for w in range(engine.cluster.num_workers)
        )
        assert labeled == expected > 0


class TestCapacity:
    def test_capacity_entries_caps_stale_set(self, graph):
        _, unbounded = make(graph, CacheConfig(tau=4.0))
        full = unbounded.plan().total_stale_vertices()
        cap = max(1, full // 16)
        _, engine = make(
            graph, CacheConfig(tau=4.0, capacity_entries=cap)
        )
        # Per-worker budgets: each worker admits at most `cap` entries.
        per_worker = [
            sum(
                len(engine.plan().stale_deps[l][w])
                for l in range(engine.num_layers)
            )
            for w in range(engine.cluster.num_workers)
        ]
        assert all(n <= cap for n in per_worker)
        assert 0 < engine.plan().total_stale_vertices() < full

    def test_capacity_bytes_caps_stale_set(self, graph):
        entry_bytes = 12 * 4  # layer-1 feature row
        _, engine = make(
            graph, CacheConfig(tau=4.0, capacity_bytes=8 * entry_bytes)
        )
        plan = engine.plan()
        for w in range(engine.cluster.num_workers):
            worker_bytes = sum(
                len(plan.stale_deps[l][w]) * engine.dims[l] * 4
                for l in range(engine.num_layers)
            )
            assert worker_bytes <= 8 * entry_bytes

    def test_zero_capacity_disables_cache(self, graph):
        _, engine = make(graph, CacheConfig(tau=4.0, capacity_entries=0))
        assert engine.plan().total_stale_vertices() == 0
        assert not engine._cache_active


class TestHybridGreedy:
    def test_hybrid_picks_all_three_modes(self, graph):
        _, engine = make(graph, CacheConfig(tau=8.0), engine_cls=HybridEngine)
        plan = engine.plan()
        assert plan.total_stale_vertices() > 0
        assert 0.0 < plan.cache_ratio() < 1.0
        assert plan.stale_ratio() > 0.0

    def test_hybrid_cached_sets_disjoint(self, graph):
        _, engine = make(graph, CacheConfig(tau=8.0), engine_cls=HybridEngine)
        plan = engine.plan()
        for l in range(engine.num_layers):
            for w in range(engine.cluster.num_workers):
                stale = plan.stale_deps[l][w]
                assert len(np.intersect1d(stale, plan.comm_ids[l][w])) == 0
                assert len(np.intersect1d(stale, plan.cached_deps[l][w])) == 0

    def test_hybrid_trains(self, graph):
        _, engine = make(graph, CacheConfig(tau=8.0), engine_cls=HybridEngine)
        history = DistributedTrainer(engine, lr=0.01).train(4)
        assert history.reports[-1].loss < history.reports[0].loss


class _ScriptedEngine:
    """Feeds the trainer a scripted loss curve to exercise the guard."""

    name = "scripted"

    def __init__(self, losses, refreshed, cache_config):
        self.model = GNNModel.gcn(4, 4, 2, seed=0)
        self._script = list(zip(losses, refreshed))
        self._i = 0
        self.cache_config = cache_config
        self.forced = 0

    def run_epoch(self, optimizer=None):
        loss, refreshed = self._script[self._i]
        self._i += 1
        return EpochReport(
            epoch=self._i, epoch_time_s=0.0, loss=loss, comm_bytes=0,
            forward_time_s=0.0, backward_time_s=0.0, allreduce_time_s=0.0,
            cache_refreshed=refreshed,
        )

    def force_refresh(self):
        self.forced += 1


class TestStalenessGuard:
    def test_regression_on_stale_epoch_forces_refresh(self):
        engine = _ScriptedEngine(
            losses=[1.0, 0.9, 1.1, 0.8],
            refreshed=[True, False, False, False],
            cache_config=CacheConfig(tau=8.0, refresh_on_regression=True),
        )
        history = DistributedTrainer(engine, lr=0.01).train(4)
        # Only epoch 3 (0.9 -> 1.1, stale) regresses.
        assert engine.forced == 1
        assert history.forced_refreshes == 1

    def test_regression_on_refresh_epoch_is_tolerated(self):
        engine = _ScriptedEngine(
            losses=[1.0, 1.2],
            refreshed=[True, True],
            cache_config=CacheConfig(tau=8.0, refresh_on_regression=True),
        )
        DistributedTrainer(engine, lr=0.01).train(2)
        assert engine.forced == 0  # the inputs were already exact

    def test_guard_disabled_by_config(self):
        engine = _ScriptedEngine(
            losses=[1.0, 2.0, 3.0],
            refreshed=[True, False, False],
            cache_config=CacheConfig(tau=8.0, refresh_on_regression=False),
        )
        history = DistributedTrainer(engine, lr=0.01).train(3)
        assert engine.forced == 0
        assert history.forced_refreshes == 0

    def test_guard_end_to_end(self, graph):
        """A real training run under the guard still converges."""
        _, engine = make(graph, CacheConfig(tau=6.0))
        history = DistributedTrainer(engine, lr=0.05).train(8)
        assert history.reports[-1].loss < history.reports[0].loss


class TestCrashInvalidation:
    def test_recover_invalidates_and_forces_refresh(self, graph):
        from repro.resilience.faults import FaultSchedule, WorkerCrashFault

        fault = WorkerCrashFault(worker=1, at_time=1e9)
        cluster = ClusterSpec.ecs(4).with_faults(FaultSchedule([fault]))
        model = GNNModel.gcn(12, 8, 4, seed=5)
        engine = DepCommEngine(
            graph, model, cluster, cache_config=CacheConfig(tau=10.0)
        )
        engine.run_epoch()
        engine.run_epoch()
        assert len(engine._hist_caches[1]) > 0
        engine.recover_from_crash(fault)
        assert len(engine._hist_caches[1]) == 0
        assert engine.run_epoch().cache_refreshed
