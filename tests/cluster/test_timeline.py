"""Timeline clocks, barriers, and utilization traces."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import CPU, GPU, NET_RECV, NET_SEND, Timeline


class TestClocks:
    def test_advance_moves_clock(self):
        tl = Timeline(2)
        tl.advance(0, GPU, 1.5)
        assert tl.now(0) == pytest.approx(1.5)
        assert tl.now(1) == 0.0

    def test_zero_duration_noop(self):
        tl = Timeline(1)
        tl.advance(0, GPU, 0.0)
        assert tl.now(0) == 0.0
        assert not tl.intervals

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline(1).advance(0, GPU, -1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Timeline(1).advance(0, "quantum", 1.0)

    def test_barrier_synchronises(self):
        tl = Timeline(3)
        tl.advance(0, GPU, 1.0)
        tl.advance(2, CPU, 3.0)
        t = tl.barrier()
        assert t == pytest.approx(3.0)
        assert (tl.clocks == 3.0).all()

    def test_partial_barrier(self):
        tl = Timeline(3)
        tl.advance(0, GPU, 1.0)
        tl.advance(1, GPU, 2.0)
        tl.barrier(workers=[0, 1])
        assert tl.now(0) == tl.now(1) == pytest.approx(2.0)
        assert tl.now(2) == 0.0

    def test_advance_at_least_until_never_rewinds(self):
        tl = Timeline(1)
        tl.advance(0, GPU, 5.0)
        tl.advance_at_least_until(0, 2.0)
        assert tl.now(0) == pytest.approx(5.0)

    def test_makespan(self):
        tl = Timeline(2)
        tl.advance(1, NET_SEND, 4.0)
        assert tl.makespan == pytest.approx(4.0)

    def test_needs_a_worker(self):
        with pytest.raises(ValueError):
            Timeline(0)


class TestRecording:
    def test_intervals_recorded(self):
        tl = Timeline(1)
        tl.advance(0, GPU, 1.0, num_bytes=7)
        iv = tl.intervals[0]
        assert iv.kind == GPU and iv.duration == pytest.approx(1.0)
        assert iv.num_bytes == 7

    def test_record_interval_without_clock_motion(self):
        tl = Timeline(1)
        tl.record_interval(0, NET_RECV, start=0.0, duration=2.0, num_bytes=10)
        assert tl.now(0) == 0.0
        assert tl.totals[NET_RECV][0] == pytest.approx(2.0)

    def test_recording_disabled(self):
        tl = Timeline(1, record=False)
        tl.advance(0, GPU, 1.0)
        assert not tl.intervals
        assert tl.totals[GPU][0] == pytest.approx(1.0)  # totals still kept


class TestUtilization:
    def test_busy_fraction_full_window(self):
        tl = Timeline(1)
        tl.advance(0, GPU, 2.0)
        busy = tl.busy_fraction(GPU, window=1.0, horizon=2.0)
        assert np.allclose(busy, [1.0, 1.0])

    def test_busy_fraction_averaged_over_workers(self):
        tl = Timeline(2)
        tl.advance(0, GPU, 1.0)  # worker 1 idle
        busy = tl.busy_fraction(GPU, window=1.0, horizon=1.0)
        assert np.allclose(busy, [0.5])

    def test_interval_split_across_windows(self):
        tl = Timeline(1)
        tl.advance(0, GPU, 1.5)
        busy = tl.busy_fraction(GPU, window=1.0, horizon=2.0)
        assert np.allclose(busy, [1.0, 0.5])

    def test_bytes_per_window(self):
        tl = Timeline(1)
        tl.advance(0, NET_RECV, 0.5, num_bytes=100)
        tl.advance(0, NET_RECV, 1.0, num_bytes=300)
        received = tl.bytes_per_window(window=1.0, horizon=2.0)
        assert received.sum() == 400

    def test_empty_horizon(self):
        tl = Timeline(1)
        assert len(tl.busy_fraction(GPU, window=1.0)) == 0

    def test_utilization_summary_fractions(self):
        tl = Timeline(2)
        tl.advance(0, GPU, 1.0)
        tl.advance(1, GPU, 1.0)
        tl.barrier()
        summary = tl.utilization_summary()
        assert summary[GPU] == pytest.approx(1.0)
        assert summary[CPU] == 0.0


class TestClusterSpec:
    def test_factories(self):
        assert ClusterSpec.ecs(16).num_workers == 16
        assert ClusterSpec.ibv().device.name == "V100"
        assert ClusterSpec.single_gpu().num_workers == 1
        assert not ClusterSpec.cpu().device.is_gpu

    def test_with_workers(self):
        a = ClusterSpec.ecs(16)
        b = a.with_workers(4)
        assert b.num_workers == 4
        assert b.device is a.device

    def test_needs_a_worker(self):
        with pytest.raises(ValueError):
            ClusterSpec(0)

    def test_make_memory_trackers(self):
        trackers = ClusterSpec.ecs(3).make_memory_trackers()
        assert len(trackers) == 3
        assert trackers[0].budget_bytes == ClusterSpec.ecs(3).device.memory_bytes
