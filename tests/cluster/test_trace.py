"""Chrome-trace export of a Timeline."""

import json

import pytest

from repro.cluster.timeline import CPU, GPU, IDLE, NET_RECV, Timeline
from repro.cluster.trace import _COLORS, save_chrome_trace, timeline_to_chrome_trace


def busy_timeline():
    tl = Timeline(3)
    tl.advance(0, GPU, 0.5)
    tl.advance(1, CPU, 0.25)
    tl.advance(2, NET_RECV, 0.125, num_bytes=4096)
    tl.barrier()  # workers 1 and 2 get idle intervals
    return tl


class TestChromeTrace:
    def test_event_counts(self):
        tl = busy_timeline()
        trace = timeline_to_chrome_trace(tl)
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(meta) == tl.num_workers  # one thread_name row each
        assert len(complete) == len(tl.intervals)
        assert {e["args"]["name"] for e in meta} == {
            "worker 0", "worker 1", "worker 2"
        }

    def test_microsecond_conversion(self):
        tl = busy_timeline()
        by_kind = {
            e["name"]: e
            for e in timeline_to_chrome_trace(tl)["traceEvents"]
            if e["ph"] == "X"
        }
        gpu = by_kind["gpu"]
        assert gpu["ts"] == 0.0
        assert gpu["dur"] == 0.5 * 1e6
        recv = by_kind["net_recv"]
        assert recv["dur"] == 0.125 * 1e6
        assert recv["args"]["bytes"] == 4096

    def test_idle_intervals_exported(self):
        tl = busy_timeline()
        events = timeline_to_chrome_trace(tl)["traceEvents"]
        idles = [e for e in events if e["name"] == IDLE]
        assert len(idles) == 2  # workers 1 and 2 waited at the barrier
        assert {e["tid"] for e in idles} == {1, 2}
        assert all(e["cname"] == _COLORS["idle"] for e in idles)
        # Worker 1 stalled from 0.25 until the barrier time 0.5.
        w1 = next(e for e in idles if e["tid"] == 1)
        assert w1["ts"] == 0.25 * 1e6
        assert w1["dur"] == 0.25 * 1e6

    def test_all_kinds_have_colors(self):
        tl = busy_timeline()
        for event in timeline_to_chrome_trace(tl)["traceEvents"]:
            if event["ph"] == "X":
                assert event["cname"] == _COLORS[event["name"]]

    def test_save_appends_json_suffix(self, tmp_path):
        tl = busy_timeline()
        path = save_chrome_trace(tl, tmp_path / "trace")
        assert path.suffix == ".json"
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == tl.num_workers + len(tl.intervals)

    def test_unrecorded_timeline_exports_metadata_only(self):
        tl = Timeline(2, record=False)
        tl.advance(0, GPU, 1.0)
        events = timeline_to_chrome_trace(tl)["traceEvents"]
        assert len(events) == 2  # only the thread_name rows


class TestSpanExport:
    """Serving-style annotation spans round-trip through the trace."""

    def spanned_timeline(self):
        tl = busy_timeline()
        tl.record_span(0, "batch", 0.0, 0.5, size=3, mode="local")
        tl.record_span(0, "request", 0.1, 0.45, req_id=7, vertex=12)
        tl.record_span(2, "reply", 0.125, 0.5, replies=2)
        return tl

    def test_spans_exported_alongside_intervals(self):
        tl = self.spanned_timeline()
        events = timeline_to_chrome_trace(tl)["traceEvents"]
        spans = [e for e in events if e.get("cat") == "span"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(spans) == len(tl.spans) == 3
        assert len(complete) == len(tl.intervals) + len(tl.spans)

    def test_span_round_trip_ordering_and_attribution(self, tmp_path):
        tl = self.spanned_timeline()
        path = save_chrome_trace(tl, tmp_path / "serve_trace")
        loaded = json.loads(path.read_text())
        spans = [e for e in loaded["traceEvents"] if e.get("cat") == "span"]
        # Export preserves recording order.
        assert [e["name"] for e in spans] == ["batch", "request", "reply"]
        # Worker attribution survives as the thread id.
        assert [e["tid"] for e in spans] == [0, 0, 2]
        # Microsecond conversion and args round-trip.
        request = next(e for e in spans if e["name"] == "request")
        assert request["ts"] == pytest.approx(0.1 * 1e6)
        assert request["dur"] == pytest.approx(0.35 * 1e6)
        assert request["args"] == {"req_id": 7, "vertex": 12}
        batch = next(e for e in spans if e["name"] == "batch")
        assert batch["args"] == {"size": 3, "mode": "local"}
        # Spans sit inside the simulated makespan on their worker's row.
        for e in spans:
            assert 0 <= e["ts"] and e["ts"] + e["dur"] <= tl.makespan * 1e6

    def test_spans_skipped_when_not_recording(self):
        tl = Timeline(2, record=False)
        tl.advance(0, GPU, 1.0)
        tl.record_span(0, "batch", 0.0, 1.0)
        assert tl.spans == []
        events = timeline_to_chrome_trace(tl)["traceEvents"]
        assert [e for e in events if e.get("cat") == "span"] == []

    def test_span_validation(self):
        tl = Timeline(2)
        with pytest.raises(ValueError):
            tl.record_span(5, "batch", 0.0, 1.0)
        with pytest.raises(ValueError):
            tl.record_span(0, "batch", 1.0, 0.5)


class TestOperationalSpanExport:
    """Engine-produced spans (overlap, recovery, migration) round-trip."""

    @staticmethod
    def _engine(num_workers=4, faults=None):
        from repro.cluster.spec import ClusterSpec
        from repro.comm.scheduler import CommOptions
        from repro.core.model import GNNModel
        from repro.engines import DepCommEngine
        from repro.graph import generators
        from repro.training.prep import prepare_graph

        g = generators.community(96, 4, avg_degree=10.0, seed=3)
        generators.attach_features(g, 16, 4, seed=4, class_signal=2.0)
        graph = prepare_graph(g, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 8, graph.num_classes, seed=2)
        cluster = ClusterSpec.ecs(num_workers)
        if faults is not None:
            cluster = cluster.with_faults(faults)
        return DepCommEngine(
            graph, model, cluster,
            record_timeline=True, overlap_pass=True,
            # P optimization off => the exchange window is pure comm,
            # so the pass is guaranteed positive slack to fold into.
            comm=CommOptions(ring=True, lock_free=True, overlap=False),
        )

    def _crashed_engine(self):
        from repro.resilience.faults import (
            FaultSchedule,
            WorkerCrashError,
            WorkerCrashFault,
        )

        engine = self._engine(
            faults=FaultSchedule([WorkerCrashFault(worker=1, at_time=0.0)])
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            engine.charge_epoch()
        return engine, excinfo.value

    @staticmethod
    def _spans(tl, name, tmp_path, stem):
        path = save_chrome_trace(tl, tmp_path / stem)
        events = json.loads(path.read_text())["traceEvents"]
        return [
            e for e in events
            if e.get("cat") == "span" and e["name"] == name
        ]

    def test_overlap_spans_round_trip(self, tmp_path):
        engine = self._engine()
        engine.charge_epoch()
        recorded = [s for s in engine.timeline.spans if s.name == "overlap"]
        assert recorded  # the 4-worker DepComm config folds exchanges
        exported = self._spans(engine.timeline, "overlap", tmp_path, "ov")
        assert len(exported) == len(recorded)
        for span, event in zip(recorded, exported):
            assert event["tid"] == span.worker
            assert event["ts"] == pytest.approx(span.start * 1e6)
            assert event["dur"] == pytest.approx(
                (span.end - span.start) * 1e6
            )
            assert event["args"]["layer"] == span.args["layer"]
            assert event["args"]["saved_s"] == span.args["saved_s"] > 0

    def test_recovery_span_round_trip(self, tmp_path):
        engine, crash = self._crashed_engine()
        recovery_s, refetch = engine.recover_from_crash(crash)
        exported = self._spans(engine.timeline, "recovery", tmp_path, "rec")
        assert len(exported) == 1
        event = exported[0]
        assert event["tid"] == 1  # charged on the crashed worker's row
        assert event["dur"] == pytest.approx(recovery_s * 1e6)
        assert event["args"] == {
            "crashed_worker": 1,
            "refetch_bytes": refetch,
            "strategy": "restart",
        }

    def test_migration_span_round_trip(self, tmp_path):
        from repro.resilience.elastic import shrink_engine

        engine, crash = self._crashed_engine()
        shrunk, record, report = shrink_engine(engine, crash)
        exported = self._spans(shrunk.timeline, "migration", tmp_path, "mig")
        assert len(exported) == 1
        event = exported[0]
        assert event["dur"] == pytest.approx(report.seconds * 1e6)
        assert event["args"]["direction"] == "shrink"
        assert event["args"]["migrated_bytes"] == report.migrated_bytes
        assert event["args"]["num_workers"] == shrunk.cluster.num_workers
