"""Device/network time formulas and memory tracking."""

import pytest

from repro.cluster.device import CPU_XEON, T4, V100
from repro.cluster.memory import MemoryTracker, OutOfMemoryError
from repro.cluster.network import ECS_NETWORK, IBV_NETWORK, LOOPBACK


class TestDeviceProfile:
    def test_dense_time_linear_in_flops(self):
        t1 = T4.dense_time(1e9)
        t2 = T4.dense_time(2e9)
        assert t2 - t1 == pytest.approx(1e9 / T4.flops_per_s)

    def test_zero_flops_costs_nothing(self):
        assert T4.dense_time(0) == 0.0
        assert T4.sparse_time(0) == 0.0
        assert T4.transfer_time(0) == 0.0

    def test_kernel_launch_included(self):
        assert T4.dense_time(1) >= T4.kernel_launch_s

    def test_sparse_slower_than_dense(self):
        assert T4.sparse_time(1e9) > T4.dense_time(1e9)

    def test_v100_faster_than_t4(self):
        assert V100.dense_time(1e10) < T4.dense_time(1e10)
        assert V100.sparse_time(1e10) < T4.sparse_time(1e10)

    def test_cpu_profile_flagged(self):
        assert not CPU_XEON.is_gpu
        assert T4.is_gpu

    def test_transfer_time(self):
        assert T4.transfer_time(T4.pcie_bytes_per_s) == pytest.approx(1.0)


class TestNetworkProfile:
    def test_wire_time_includes_latency(self):
        assert ECS_NETWORK.wire_time(0) == 0.0
        assert ECS_NETWORK.wire_time(1) >= ECS_NETWORK.latency_s

    def test_congestion_multiplies(self):
        free = ECS_NETWORK.wire_time(1e6, congested=False)
        jammed = ECS_NETWORK.wire_time(1e6, congested=True)
        assert jammed == pytest.approx(free * ECS_NETWORK.congestion_factor)

    def test_ibv_much_faster(self):
        assert IBV_NETWORK.wire_time(1e6) < ECS_NETWORK.wire_time(1e6) / 5

    def test_lock_free_pack_cheaper(self):
        mutex = ECS_NETWORK.pack_time(1e4, num_messages=100, lock_free=False)
        lockfree = ECS_NETWORK.pack_time(1e4, num_messages=100, lock_free=True)
        assert lockfree < mutex

    def test_pack_scales_with_messages(self):
        few = ECS_NETWORK.pack_time(1e4, num_messages=10, lock_free=False)
        many = ECS_NETWORK.pack_time(1e4, num_messages=1000, lock_free=False)
        assert many > few

    def test_loopback_no_congestion(self):
        assert LOOPBACK.congestion_factor == 1.0


class TestMemoryTracker:
    def test_allocate_and_free(self):
        t = MemoryTracker(0, 100)
        t.allocate(60, "a")
        assert t.used_bytes == 60
        t.free(20, "a")
        assert t.used_bytes == 40
        t.free_all("a")
        assert t.used_bytes == 0

    def test_oom_raises_with_context(self):
        t = MemoryTracker(3, 100)
        t.allocate(80, "features")
        with pytest.raises(OutOfMemoryError) as err:
            t.allocate(30, "edge_tape")
        assert err.value.worker == 3
        assert err.value.label == "edge_tape"
        assert err.value.used == 80

    def test_peak_tracking(self):
        t = MemoryTracker(0, 100)
        t.allocate(70, "a")
        t.free(50, "a")
        t.allocate(10, "b")
        assert t.peak_bytes == 70

    def test_over_free_raises(self):
        t = MemoryTracker(0, 100)
        t.allocate(10, "a")
        with pytest.raises(ValueError, match="only"):
            t.free(20, "a")

    def test_breakdown_filters_empty(self):
        t = MemoryTracker(0, 100)
        t.allocate(10, "a")
        t.allocate(5, "b")
        t.free_all("b")
        assert t.breakdown() == {"a": 10}

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker(0, 100).allocate(-1, "x")

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker(0, 0)

    def test_reset(self):
        t = MemoryTracker(0, 100)
        t.allocate(50, "a")
        t.reset()
        assert t.used_bytes == 0
        assert t.breakdown() == {}
