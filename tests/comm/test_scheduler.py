"""Exchange-phase timing model: R / L / P semantics."""

import numpy as np
import pytest

from repro.cluster.network import ECS_NETWORK
from repro.cluster.timeline import GPU, NET_RECV, Timeline
from repro.comm.scheduler import CommOptions, run_exchange


def volumes_2x2(bytes_each=1e6):
    v = np.zeros((2, 2))
    v[0, 1] = v[1, 0] = bytes_each
    return v


class TestCommOptions:
    def test_labels(self):
        assert CommOptions.none().label() == "raw"
        assert CommOptions.all().label() == "R+L+P"
        assert CommOptions(ring=True, overlap=True).label() == "R+P"

    def test_factories(self):
        assert CommOptions.all().ring and CommOptions.all().overlap
        assert not CommOptions.none().lock_free


class TestRunExchange:
    def test_empty_exchange_costs_nothing(self):
        tl = Timeline(2)
        stats = run_exchange(tl, ECS_NETWORK, np.zeros((2, 2)))
        assert tl.makespan == 0.0
        assert stats.total_bytes == 0

    def test_shape_validation(self):
        tl = Timeline(2)
        with pytest.raises(ValueError, match="2x2"):
            run_exchange(tl, ECS_NETWORK, np.zeros((3, 3)))

    def test_total_bytes_excludes_diagonal(self):
        tl = Timeline(2)
        v = volumes_2x2(100)
        v[0, 0] = 999
        stats = run_exchange(tl, ECS_NETWORK, v)
        assert stats.total_bytes == 200

    def test_barrier_synchronises_clocks(self):
        tl = Timeline(2)
        v = np.zeros((2, 2))
        v[0, 1] = 1e6  # only one direction
        run_exchange(tl, ECS_NETWORK, v, barrier=True)
        assert tl.clocks[0] == tl.clocks[1]

    def test_ring_removes_congestion(self):
        base = volumes_2x2()
        tl_raw = Timeline(2)
        raw = run_exchange(tl_raw, ECS_NETWORK, base, options=CommOptions.none())
        tl_ring = Timeline(2)
        ring = run_exchange(
            tl_ring, ECS_NETWORK, base, options=CommOptions(ring=True)
        )
        assert tl_ring.makespan < tl_raw.makespan
        assert (ring.recv_s <= raw.recv_s).all()

    def test_lock_free_cheaper_packing(self):
        base = volumes_2x2()
        stats_mutex = run_exchange(
            Timeline(2), ECS_NETWORK, base,
            options=CommOptions(ring=True), bytes_per_message=64,
        )
        stats_lf = run_exchange(
            Timeline(2), ECS_NETWORK, base,
            options=CommOptions(ring=True, lock_free=True), bytes_per_message=64,
        )
        assert (stats_lf.pack_s < stats_mutex.pack_s).all()

    def test_overlap_bounded_by_serial(self):
        # Four workers, all-to-all: several chunks per receiver, so the
        # pipeline has something to fill.
        base = np.full((4, 4), 1e6)
        np.fill_diagonal(base, 0.0)
        compute = np.full((4, 4), 1e-3)
        tl_serial = Timeline(4)
        run_exchange(
            tl_serial, ECS_NETWORK, base, chunk_compute=compute,
            options=CommOptions(ring=True, lock_free=True),
        )
        tl_overlap = Timeline(4)
        run_exchange(
            tl_overlap, ECS_NETWORK, base, chunk_compute=compute,
            options=CommOptions.all(),
        )
        assert tl_overlap.makespan < tl_serial.makespan
        # Overlap can never beat max(comm, compute) alone.
        assert tl_overlap.makespan >= 3e-3

    def test_overlap_single_chunk_no_gain(self):
        # With one chunk the pipeline fill equals the whole exchange, so
        # overlap degenerates to serial -- and must not be *worse*.
        base = volumes_2x2()
        compute = np.full((2, 2), 1e-3)
        tl_serial = Timeline(2)
        run_exchange(
            tl_serial, ECS_NETWORK, base, chunk_compute=compute,
            options=CommOptions(ring=True, lock_free=True),
        )
        tl_overlap = Timeline(2)
        run_exchange(
            tl_overlap, ECS_NETWORK, base, chunk_compute=compute,
            options=CommOptions.all(),
        )
        assert tl_overlap.makespan == pytest.approx(tl_serial.makespan)

    def test_overlap_records_both_activities(self):
        tl = Timeline(2)
        run_exchange(
            tl, ECS_NETWORK, volumes_2x2(), chunk_compute=np.full((2, 2), 1e-3),
            options=CommOptions.all(),
        )
        kinds = {iv.kind for iv in tl.intervals}
        assert GPU in kinds and NET_RECV in kinds

    def test_local_compute_charged(self):
        tl = Timeline(2)
        run_exchange(
            tl, ECS_NETWORK, np.zeros((2, 2)), local_compute=np.array([1.0, 2.0]),
            barrier=False,
        )
        assert tl.now(0) == pytest.approx(1.0)
        assert tl.now(1) == pytest.approx(2.0)

    def test_full_duplex_send_recv_overlap(self):
        # A worker that both sends and receives pays max, not sum.
        tl = Timeline(2)
        stats = run_exchange(
            tl, ECS_NETWORK, volumes_2x2(1e7), options=CommOptions(ring=True)
        )
        expected = ECS_NETWORK.wire_time(1e7)
        assert tl.makespan == pytest.approx(
            expected + stats.pack_s.max(), rel=0.01
        )

    def test_makespan_property(self):
        tl = Timeline(2)
        stats = run_exchange(tl, ECS_NETWORK, volumes_2x2())
        assert stats.makespan == pytest.approx(stats.phase_s.max())
