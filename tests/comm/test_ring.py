"""Ring schedule properties (Figure 8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.ring import ring_partner, ring_rounds


class TestRingPartner:
    def test_matches_paper_formula(self):
        # Worker i sends its j-th chunk to (i + j + 1) % m.
        assert ring_partner(0, 0, 4) == 1
        assert ring_partner(3, 0, 4) == 0
        assert ring_partner(1, 2, 4) == 0

    def test_never_self(self):
        for m in range(2, 8):
            for i in range(m):
                for j in range(m - 1):
                    assert ring_partner(i, j, m) != i

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            ring_partner(0, 0, 0)


class TestRingRounds:
    def test_round_count(self):
        assert len(ring_rounds(5)) == 4
        assert ring_rounds(1) == []

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 16))
    def test_each_round_receivers_distinct(self, m):
        for round_pairs in ring_rounds(m):
            receivers = [r for _, r in round_pairs]
            assert len(set(receivers)) == m  # perfect matching

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 16))
    def test_every_ordered_pair_exactly_once(self, m):
        seen = set()
        for round_pairs in ring_rounds(m):
            for pair in round_pairs:
                assert pair not in seen
                seen.add(pair)
        assert len(seen) == m * (m - 1)
