"""Lock-free position-indexed buffers (the real data routing)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.buffers import PositionIndexedBuffer, pack_by_destination


class TestPositionIndexedBuffer:
    def test_scatter_groups_by_destination(self):
        dest = np.array([2, 0, 1, 0])
        buf = PositionIndexedBuffer(dest, num_workers=3)
        rows = np.array([20.0, 0.0, 10.0, 1.0])
        packed = buf.scatter(rows)
        assert buf.chunk_for(packed, 0).tolist() == [0.0, 1.0]
        assert buf.chunk_for(packed, 1).tolist() == [10.0]
        assert buf.chunk_for(packed, 2).tolist() == [20.0]

    def test_positions_are_a_permutation(self):
        dest = np.array([1, 1, 0, 2, 0])
        buf = PositionIndexedBuffer(dest, num_workers=3)
        assert sorted(buf.positions.tolist()) == list(range(5))

    def test_preserves_per_destination_order(self):
        dest = np.array([0, 1, 0, 1])
        buf = PositionIndexedBuffer(dest, num_workers=2)
        packed = buf.scatter(np.array([1.0, 2.0, 3.0, 4.0]))
        assert buf.chunk_for(packed, 0).tolist() == [1.0, 3.0]
        assert buf.chunk_for(packed, 1).tolist() == [2.0, 4.0]

    def test_2d_rows(self):
        dest = np.array([1, 0])
        buf = PositionIndexedBuffer(dest, num_workers=2)
        rows = np.array([[1.0, 1.0], [2.0, 2.0]])
        packed = buf.scatter(rows)
        assert np.allclose(buf.chunk_for(packed, 0), [[2.0, 2.0]])

    def test_chunk_sizes(self):
        buf = PositionIndexedBuffer(np.array([0, 2, 2]), num_workers=3)
        assert buf.chunk_sizes().tolist() == [1, 0, 2]

    def test_source_rows_point_back(self):
        dest = np.array([1, 0, 1])
        buf = PositionIndexedBuffer(dest, num_workers=2)
        rows = np.array([10.0, 20.0, 30.0])
        packed = buf.scatter(rows)
        src_rows = buf.source_rows(1)
        assert np.allclose(rows[src_rows], buf.chunk_for(packed, 1))

    def test_wrong_row_count_raises(self):
        buf = PositionIndexedBuffer(np.array([0, 1]), num_workers=2)
        with pytest.raises(ValueError, match="laid out"):
            buf.scatter(np.zeros(3))

    def test_out_of_range_destination_raises(self):
        with pytest.raises(ValueError):
            PositionIndexedBuffer(np.array([0, 5]), num_workers=2)

    def test_empty_buffer(self):
        buf = PositionIndexedBuffer(np.array([], dtype=np.int64), num_workers=2)
        packed = buf.scatter(np.zeros((0, 3)))
        assert packed.shape == (0, 3)


class TestPackByDestination:
    def test_roundtrip(self):
        rows = np.arange(12.0).reshape(6, 2)
        dest = np.array([1, 0, 1, 2, 0, 1])
        packed, chunks = pack_by_destination(rows, dest, 3)
        assert len(chunks) == 3
        reassembled = np.concatenate(chunks)
        assert np.allclose(np.sort(reassembled[:, 0]), np.sort(rows[:, 0]))
        for w, chunk in enumerate(chunks):
            assert len(chunk) == (dest == w).sum()


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_property_scatter_is_a_permutation(data):
    m = data.draw(st.integers(1, 5))
    n = data.draw(st.integers(0, 30))
    dest = np.asarray(
        data.draw(st.lists(st.integers(0, m - 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    rows = np.arange(float(n))
    buf = PositionIndexedBuffer(dest, num_workers=m)
    packed = buf.scatter(rows)
    assert sorted(packed.tolist()) == rows.tolist()
    # Chunks exactly partition the packed buffer.
    assert buf.chunk_sizes().sum() == n
    for w in range(m):
        chunk = buf.chunk_for(packed, w)
        assert np.allclose(np.sort(dest[chunk.astype(np.int64)]), w)
