"""Micro-batch formation."""

import pytest

from repro.serving import MicroBatcher, Request


def req(i, vertex, t):
    return Request(req_id=i, vertex=vertex, arrival_s=t)


class TestBatching:
    def test_window_coalesces(self):
        requests = [req(0, 5, 0.000), req(1, 6, 0.001), req(2, 7, 0.0015)]
        batches = MicroBatcher(window_s=0.002, max_batch=10).batches(requests)
        assert len(batches) == 1
        assert batches[0].size == 3
        # Window closed it: dispatch = first arrival + window.
        assert batches[0].dispatch_s == pytest.approx(0.002)

    def test_window_expiry_starts_new_batch(self):
        requests = [req(0, 5, 0.0), req(1, 6, 0.01)]
        batches = MicroBatcher(window_s=0.002, max_batch=10).batches(requests)
        assert [b.size for b in batches] == [1, 1]
        assert batches[1].dispatch_s == pytest.approx(0.012)

    def test_size_cap_dispatches_early(self):
        requests = [req(i, i, 0.0001 * i) for i in range(5)]
        batches = MicroBatcher(window_s=1.0, max_batch=2).batches(requests)
        assert [b.size for b in batches] == [2, 2, 1]
        # Size-capped batches dispatch at the capping request's arrival.
        assert batches[0].dispatch_s == pytest.approx(0.0001)
        # The trailing partial batch waits for its window.
        assert batches[2].dispatch_s == pytest.approx(0.0004 + 1.0)

    def test_zero_window_means_one_request_per_batch(self):
        requests = [req(i, i, 0.001 * i) for i in range(4)]
        batches = MicroBatcher(window_s=0.0, max_batch=64).batches(requests)
        assert [b.size for b in batches] == [1, 1, 1, 1]

    def test_unsorted_input_is_ordered_by_arrival(self):
        requests = [req(1, 6, 0.005), req(0, 5, 0.0)]
        batches = MicroBatcher(window_s=0.001, max_batch=8).batches(requests)
        assert [b.requests[0].req_id for b in batches] == [0, 1]

    def test_composition_ignores_everything_but_arrivals(self):
        """Same arrival times, different vertices: identical batching --
        the property that makes tau/mode sweeps replay the same batch
        sequence."""
        a = [req(i, i, 0.0005 * i) for i in range(6)]
        b = [req(i, 63 - i, 0.0005 * i) for i in range(6)]
        batcher = MicroBatcher(window_s=0.002, max_batch=4)
        sizes_a = [x.size for x in batcher.batches(a)]
        sizes_b = [x.size for x in batcher.batches(b)]
        dispatch_a = [x.dispatch_s for x in batcher.batches(a)]
        dispatch_b = [x.dispatch_s for x in batcher.batches(b)]
        assert sizes_a == sizes_b
        assert dispatch_a == dispatch_b


class TestMicroBatch:
    def test_vertices_dedup_first_appearance(self):
        batch = MicroBatcher(window_s=1.0, max_batch=8).batches(
            [req(0, 9, 0.0), req(1, 4, 0.001), req(2, 9, 0.002)]
        )[0]
        assert batch.vertices() == [9, 4]
        assert batch.first_arrival_of(9) == 0.0
        assert batch.first_arrival_of(4) == 0.001
        with pytest.raises(KeyError):
            batch.first_arrival_of(123)


class TestValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            MicroBatcher(window_s=-0.001)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
