"""The replicated serving fleet: routing, bit-identity, failover,
hedging, and SLO-driven autoscaling."""

from dataclasses import asdict

import pytest

from repro.core.model import GNNModel
from repro.partition.hashing import hash_partition
from repro.resilience.faults import (
    FaultSchedule,
    StragglerFault,
    WorkerCrashFault,
)
from repro.serving import (
    AutoscalerConfig,
    FleetConfig,
    InferenceServer,
    PopularityRouter,
    ServingConfig,
    ServingFleet,
    SLOAutoscaler,
    WorkloadConfig,
    generate_workload,
)

NODES = 2


@pytest.fixture
def fleet_parts(small_graph, cluster2):
    model = GNNModel.build(
        "gcn", small_graph.feature_dim, 12, small_graph.num_classes, seed=7
    )
    partitioning = hash_partition(small_graph, NODES)
    return small_graph, model, cluster2, partitioning


def workload(graph, n=160, rate=4000.0, seed=11, zipf=1.2):
    return generate_workload(
        WorkloadConfig(num_requests=n, rate_rps=rate, zipf_exponent=zipf,
                       seed=seed),
        graph.num_vertices,
    )


def make_fleet(parts, replicas=2, replica_faults=None, **cfg_kwargs):
    graph, model, cluster, partitioning = parts
    cfg_kwargs.setdefault("serving", ServingConfig(
        batch_window_s=0.002, max_batch=32, mode="local",
    ))
    cfg_kwargs.setdefault("health_every", 32)
    config = FleetConfig(replicas=replicas, seed=5, **cfg_kwargs)
    return ServingFleet(
        graph, model, cluster, partitioning, config=config,
        replica_faults=replica_faults,
    )


def crash_replica(replica_id, at_time, nodes=NODES):
    """Every worker of one serving group goes dark at ``at_time``."""
    return {replica_id: FaultSchedule(
        [WorkerCrashFault(worker=w, at_time=at_time,
                          detection_timeout_s=0.0005, permanent=True)
         for w in range(nodes)],
        seed=3,
    )}


class TestRouter:
    def test_rendezvous_is_deterministic_and_minimal(self):
        router = PopularityRouter(seed=9)
        healthy = [0, 1, 2]
        choices = {v: router.rendezvous(v, healthy) for v in range(200)}
        assert choices == {
            v: router.rendezvous(v, healthy) for v in range(200)
        }
        # Dropping a replica only remaps the vertices it owned.
        survivors = [0, 2]
        for v, old in choices.items():
            new = router.rendezvous(v, survivors)
            if old != 1:
                assert new == old
            else:
                assert new in survivors

    def test_popularity_pinning(self, small_graph):
        router = PopularityRouter(seed=9, pin_after=3)
        requests = workload(small_graph, n=120)
        for r in requests:
            router.route(r, [0, 1, 2])
        hot = router.hot_vertices()
        assert hot, "a Zipf workload must have a hot head"
        assert set(router.pins) == set(hot)
        # A pinned vertex keeps hitting its pinned replica.
        for v in hot[:3]:
            assert router.route(
                requests[0].__class__(10_000, v, 1.0), [0, 1, 2]
            ) == router.pins[v]

    def test_spread_mode_scatters_the_hot_head(self, small_graph):
        Request = type(workload(small_graph, n=1)[0])
        router = PopularityRouter(seed=9, pin_after=2)
        router.enable_spread()
        targets = {
            router.route(Request(i, 7, 0.001 * i), [0, 1, 2])
            for i in range(60)
        }
        assert len(targets) > 1, "spread mode must scatter a hot vertex"
        assert not router.pins

    def test_dead_pin_relearned_on_survivors(self, small_graph):
        Request = type(workload(small_graph, n=1)[0])
        router = PopularityRouter(seed=9, pin_after=1)
        first = router.route(Request(0, 5, 0.0), [0, 1, 2])
        assert router.pins[5] == first
        router.drop_replica(first)
        survivors = [r for r in (0, 1, 2) if r != first]
        again = router.route(Request(1, 5, 0.1), survivors)
        assert again in survivors
        assert router.pins[5] == again


class TestBitIdentity:
    def test_fleet_predictions_match_single_server(self, fleet_parts):
        """The foundational invariant: replication is routing only."""
        graph, model, cluster, partitioning = fleet_parts
        requests = workload(graph)
        config = ServingConfig(batch_window_s=0.002, max_batch=32,
                               mode="local")
        single = InferenceServer(
            graph, model, cluster, partitioning, config=config
        ).serve(requests)
        for replicas in (1, 3):
            result = make_fleet(fleet_parts, replicas=replicas).serve(requests)
            assert result.predictions == single.predictions
            assert result.ledger.shed_count == 0
            assert len(result.ledger) == len(requests)

    def test_rerun_is_bit_identical(self, fleet_parts):
        requests = workload(fleet_parts[0])
        a = make_fleet(fleet_parts, replicas=3).serve(requests)
        b = make_fleet(fleet_parts, replicas=3).serve(requests)
        assert (
            [asdict(r) for r in a.ledger.records]
            == [asdict(r) for r in b.ledger.records]
        )
        assert a.ledger.to_dict() == b.ledger.to_dict()


class TestFailover:
    def test_crash_fails_over_with_zero_dropped_requests(self, fleet_parts):
        graph = fleet_parts[0]
        requests = workload(graph)
        crash_t = requests[70].arrival_s
        fleet = make_fleet(
            fleet_parts, replicas=2,
            replica_faults=crash_replica(1, crash_t),
        )
        result = fleet.serve(requests)
        assert result.failovers > 0
        assert result.ledger.shed_count == 0, (
            "every admitted request must be answered despite the crash"
        )
        assert len(result.predictions) == len(requests)
        events = [e for e in result.health_events
                  if e["event"] == "replica-dead"]
        assert [e["replica"] for e in events] == [1]
        # The dead replica took no traffic after it was declared dead.
        declared_segment = events[0]["segment"]
        later = [
            r for r in result.ledger.records
            if r.replica == 1 and r.req_id >= (declared_segment + 1) * 32
        ]
        assert not later

    def test_failover_predictions_still_exact(self, fleet_parts):
        graph, model, cluster, partitioning = fleet_parts
        requests = workload(graph)
        single = InferenceServer(
            graph, model, cluster, partitioning,
            config=ServingConfig(batch_window_s=0.002, max_batch=32,
                                 mode="local"),
        ).serve(requests)
        fleet = make_fleet(
            fleet_parts, replicas=2,
            replica_faults=crash_replica(1, requests[70].arrival_s),
        )
        assert fleet.serve(requests).predictions == single.predictions

    def test_failed_over_records_carry_detection_latency(self, fleet_parts):
        requests = workload(fleet_parts[0])
        fleet = make_fleet(
            fleet_parts, replicas=2,
            replica_faults=crash_replica(1, requests[70].arrival_s),
        )
        result = fleet.serve(requests)
        failed_over = [r for r in result.ledger.records if r.failover]
        assert failed_over
        for rec in failed_over:
            assert rec.degraded
            assert rec.latency_s is not None and rec.latency_s > 0

    def test_total_outage_sheds_everything(self, fleet_parts):
        requests = workload(fleet_parts[0], n=64)
        fleet = make_fleet(
            fleet_parts, replicas=1,
            replica_faults=crash_replica(0, 0.0),
        )
        result = fleet.serve(requests)
        assert result.ledger.shed_count == len(requests)


class TestHedging:
    def _straggling_fleet(self, fleet_parts, requests):
        # The slowdown opens after the baseline segments so the fleet
        # learns a healthy p99 first.  Unbatched serving keeps compute
        # (what the straggler inflates) dominant over queueing delay, so
        # the segment mean clears hedge_factor * baseline p99.
        start = requests[96].arrival_s
        faults = {1: FaultSchedule(
            [StragglerFault(worker=w, gpu_factor=60.0, start=start)
             for w in range(NODES)],
            seed=3,
        )}
        return make_fleet(
            fleet_parts, replicas=2, replica_faults=faults,
            serving=ServingConfig(
                batch_window_s=0.0, max_batch=1, mode="local",
            ),
        )

    def test_straggler_triggers_hedges(self, fleet_parts):
        requests = workload(fleet_parts[0], n=192)
        result = self._straggling_fleet(fleet_parts, requests).serve(requests)
        assert result.hedges_launched > 0
        hedged = [r for r in result.ledger.records if r.hedged]
        assert len(hedged) == result.hedges_won

    def test_hedging_is_deterministic(self, fleet_parts):
        requests = workload(fleet_parts[0], n=192)
        a = self._straggling_fleet(fleet_parts, requests).serve(requests)
        b = self._straggling_fleet(fleet_parts, requests).serve(requests)
        assert (
            [asdict(r) for r in a.ledger.records]
            == [asdict(r) for r in b.ledger.records]
        )
        assert a.hedges_launched == b.hedges_launched

    def test_healthy_fleet_never_hedges(self, fleet_parts):
        requests = workload(fleet_parts[0], n=192)
        result = make_fleet(fleet_parts, replicas=2).serve(requests)
        assert result.hedges_launched == 0
        assert not any(r.hedged for r in result.ledger.records)


class TestAutoscaler:
    def test_burn_streak_scales_out(self):
        scaler = SLOAutoscaler(AutoscalerConfig(
            target_p99_s=0.01, burn_windows=2, max_replicas=3,
        ))
        assert scaler.observe(0.05, 0.0, 2, 0.1) is None
        assert scaler.observe(0.05, 0.0, 2, 0.2) == "scale-out"
        # The streak resets after a decision.
        assert scaler.observe(0.05, 0.0, 3, 0.3) is None

    def test_idle_streak_scales_in(self):
        scaler = SLOAutoscaler(AutoscalerConfig(
            target_p99_s=1.0, idle_windows=2, min_replicas=1,
        ))
        assert scaler.observe(0.01, 0.0, 2, 0.1) is None
        assert scaler.observe(0.01, 0.0, 2, 0.2) == "scale-in"

    def test_replica_caps_respected(self):
        scaler = SLOAutoscaler(AutoscalerConfig(
            target_p99_s=0.01, burn_windows=1, max_replicas=2,
            idle_windows=1, min_replicas=1,
        ))
        assert scaler.observe(0.05, 0.0, 2, 0.1) is None  # at max
        assert scaler.observe(0.001, 0.0, 1, 0.2) is None  # at min

    def test_scale_out_charges_transition_and_gates_routing(
        self, fleet_parts
    ):
        fleet = make_fleet(fleet_parts, replicas=1)
        event = fleet.scale_out(at_s=0.01, reason="test")
        assert event.transition_s > 0
        assert event.migrated_bytes > 0
        group = fleet.group(event.replica)
        assert group.ready_at_s >= 0.01 + event.transition_s
        assert fleet.active_replicas(0.01) == [0]
        assert fleet.active_replicas(group.ready_at_s) == [0, event.replica]

    def test_sustained_burn_scales_the_fleet_out(self, fleet_parts):
        graph = fleet_parts[0]
        requests = workload(graph, n=192, rate=8000.0)
        fleet = make_fleet(
            fleet_parts, replicas=1,
            autoscaler=AutoscalerConfig(
                target_p99_s=1e-5, burn_windows=2, max_replicas=2,
            ),
        )
        result = fleet.serve(requests)
        actions = [e.action for e in result.scaling_events]
        assert "scale-out" in actions
        assert result.summary()["num_replicas_started"] == 2
        assert result.ledger.shed_count == 0

    def test_sustained_idle_scales_the_fleet_in(self, fleet_parts):
        graph = fleet_parts[0]
        requests = workload(graph, n=192, rate=1000.0)
        fleet = make_fleet(
            fleet_parts, replicas=2,
            autoscaler=AutoscalerConfig(
                target_p99_s=10.0, idle_windows=2, min_replicas=1,
            ),
        )
        result = fleet.serve(requests)
        actions = [e.action for e in result.scaling_events]
        assert "scale-in" in actions
        assert result.summary()["num_replicas_final"] == 1
        assert result.ledger.shed_count == 0


class TestOpsMode:
    def test_self_heal_off_keeps_the_levers_manual(self, fleet_parts):
        requests = workload(fleet_parts[0])
        fleet = make_fleet(
            fleet_parts, replicas=2, self_heal=False,
            replica_faults=crash_replica(1, requests[70].arrival_s),
        )
        result = fleet.serve(requests)
        # No automatic response: the dead replica's traffic stays shed.
        assert result.failovers == 0
        assert not result.health_events
        assert result.ledger.shed_count > 0
        # The quarantine lever still works and routes traffic away.
        more = workload(fleet_parts[0], seed=12)
        fleet.quarantine(1)
        assert fleet.health_events[-1]["event"] == "replica-quarantined"
        before = len(fleet.final_records())
        fleet.serve(more)
        new = fleet.final_records()[before:]
        assert all(r.replica != 1 for r in new if not r.shed)


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(replicas=0)
        with pytest.raises(ValueError):
            FleetConfig(health_every=0)
        with pytest.raises(ValueError):
            FleetConfig(hedge_factor=1.0)
        with pytest.raises(ValueError):
            FleetConfig(baseline_segments=0)
