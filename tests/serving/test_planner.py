"""Per-request dependency planning."""

import pytest

from repro.core.model import GNNModel
from repro.costmodel.probe import probe_constants
from repro.partition.chunk import chunk_partition
from repro.partition.hashing import hash_partition
from repro.serving.planner import RequestPlanner


@pytest.fixture
def planner_parts(small_graph, cluster4):
    model = GNNModel.build(
        "gcn", small_graph.feature_dim, 12, small_graph.num_classes, seed=7
    )
    constants = probe_constants(cluster4, model)
    partitioning = hash_partition(small_graph, 4)
    return small_graph, model, constants, partitioning, cluster4


def build(planner_parts, mode="auto", num_parts=None):
    graph, model, constants, partitioning, cluster = planner_parts
    if num_parts is not None:
        partitioning = chunk_partition(graph, num_parts)
    return RequestPlanner(
        graph, partitioning, constants, model.num_layers,
        cluster.network, mode=mode,
    )


class TestProfiles:
    def test_profile_is_memoized(self, planner_parts):
        planner = build(planner_parts)
        assert planner.profile(3) is planner.profile(3)

    def test_profile_shape(self, planner_parts):
        graph, model, _, partitioning, _ = planner_parts
        planner = build(planner_parts)
        p = planner.profile(5)
        assert p.vertex == 5
        assert p.owner == partitioning.owner(5)
        assert len(p.vertex_layers) == model.num_layers + 1
        assert list(p.vertex_layers[0]) == [5]
        assert p.local_cost_s > 0
        assert p.remote_cost_s > 0
        assert p.closure_size >= 1

    def test_single_partition_prefers_local(self, planner_parts):
        """With one owner there is no compute to spread and no boundary
        to cross, so remote pays pure latency overhead."""
        planner = build(planner_parts, num_parts=1)
        p = planner.profile(0)
        assert p.cross_inputs == 0
        assert p.preferred_mode() == "local"


class TestChoice:
    def test_forced_modes_override_costs(self, planner_parts):
        assert build(planner_parts, mode="local").choose(2) == "local"
        assert build(planner_parts, mode="remote").choose(2) == "remote"
        assert build(planner_parts, mode="local").choose_batch([1, 2]) == "local"

    def test_auto_matches_preferred_mode(self, planner_parts):
        planner = build(planner_parts)
        for v in range(8):
            assert planner.choose(v) == planner.profile(v).preferred_mode()

    def test_choose_batch_sums_estimates(self, planner_parts):
        planner = build(planner_parts)
        vertices = [0, 1, 2, 3]
        local = sum(planner.profile(v).local_cost_s for v in vertices)
        remote = sum(planner.profile(v).remote_cost_s for v in vertices)
        expected = "local" if local <= remote else "remote"
        assert planner.choose_batch(vertices) == expected

    def test_rejects_unknown_mode(self, planner_parts):
        with pytest.raises(ValueError):
            build(planner_parts, mode="psychic")

    def test_rejects_zero_layers(self, planner_parts):
        graph, _, constants, partitioning, cluster = planner_parts
        with pytest.raises(ValueError):
            RequestPlanner(graph, partitioning, constants, 0, cluster.network)
