"""The inference server: exactness, determinism, caching, SLOs, faults."""

import numpy as np
import pytest

from repro.core.blocks import build_block
from repro.core.model import GNNModel
from repro.partition.hashing import hash_partition
from repro.resilience.faults import FaultSchedule, WorkerCrashFault
from repro.serving import (
    InferenceServer,
    ServingConfig,
    SLOConfig,
    WorkloadConfig,
    generate_workload,
)
from repro.tensor.tensor import Tensor, no_grad


@pytest.fixture
def serving_parts(small_graph, cluster4):
    model = GNNModel.build(
        "gcn", small_graph.feature_dim, 12, small_graph.num_classes, seed=7
    )
    partitioning = hash_partition(small_graph, 4)
    return small_graph, model, cluster4, partitioning


def make_server(serving_parts, config=None, faults=None, **kwargs):
    graph, model, cluster, partitioning = serving_parts
    return InferenceServer(
        graph, model, cluster, partitioning, config=config, faults=faults,
        **kwargs,
    )


def workload(graph, n=60, rate=5000.0, seed=11, zipf=1.2):
    return generate_workload(
        WorkloadConfig(num_requests=n, rate_rps=rate, zipf_exponent=zipf,
                       seed=seed),
        graph.num_vertices,
    )


def full_graph_logits(graph, model):
    """Reference: an exact full-graph layer-by-layer forward."""
    ids = np.arange(graph.num_vertices, dtype=np.int64)
    prev = graph.features.astype(np.float64)
    for l in range(1, model.num_layers + 1):
        block = build_block(graph, ids, l)
        pos = np.searchsorted(ids, block.input_vertices)
        with no_grad():
            out = model.layer(l).forward(block, Tensor(prev[pos]))
        prev = out.data
    return prev


class TestExactness:
    def test_predictions_match_full_graph_forward(self, serving_parts):
        graph, model, _, _ = serving_parts
        reference = np.argmax(full_graph_logits(graph, model), axis=1)
        requests = workload(graph)
        result = make_server(serving_parts).serve(requests)
        assert len(result.predictions) == len(requests)
        for r in requests:
            assert result.predictions[r.req_id] == reference[r.vertex]

    def test_batched_cached_and_remote_agree(self, serving_parts):
        graph = serving_parts[0]
        requests = workload(graph)
        unbatched = make_server(
            serving_parts, ServingConfig(batch_window_s=0.0, max_batch=1)
        ).serve(requests)
        batched = make_server(
            serving_parts, ServingConfig(batch_window_s=0.005, max_batch=32)
        ).serve(requests)
        cached = make_server(
            serving_parts,
            ServingConfig(batch_window_s=0.005, max_batch=32, tau_s=10.0),
        ).serve(requests)
        remote = make_server(
            serving_parts,
            ServingConfig(batch_window_s=0.005, max_batch=32, mode="remote"),
        ).serve(requests)
        assert batched.predictions == unbatched.predictions
        assert cached.predictions == unbatched.predictions
        assert remote.predictions == unbatched.predictions
        assert batched.num_batches < unbatched.num_batches


class TestSegmentedServing:
    """Continuation state threaded through serve() across segments."""

    @staticmethod
    def _segmented(server, requests, width):
        from repro.cluster.timeline import Timeline
        from repro.serving.slo import LatencyLedger

        state = {
            "timeline": Timeline(server.cluster.num_workers),
            "ledger": LatencyLedger(),
            "predictions": {},
            "inflight": [],
        }
        for i in range(0, len(requests), width):
            server.serve(requests[i:i + width], **state)
        return state

    def test_segmented_equals_one_shot(self, serving_parts):
        # One request per batch, so segment boundaries cannot change
        # the batching; the segmented run must then be bit-identical.
        graph = serving_parts[0]
        requests = workload(graph)
        config = ServingConfig(batch_window_s=0.0, max_batch=1)
        one = make_server(serving_parts, config).serve(requests)
        state = self._segmented(
            make_server(serving_parts, config), requests, width=15
        )
        assert state["ledger"].to_dict() == one.ledger.to_dict()
        assert state["predictions"] == one.predictions
        assert state["timeline"].makespan == one.timeline.makespan

    def test_segmented_equals_one_shot_under_faults(self, serving_parts):
        from repro.resilience.faults import StragglerFault

        graph = serving_parts[0]
        requests = workload(graph)
        config = ServingConfig(batch_window_s=0.0, max_batch=1, mode="local")
        faults = lambda: FaultSchedule(  # noqa: E731 - fresh per server
            [StragglerFault(worker=1, gpu_factor=20.0, start=0.002)]
        )
        one = make_server(serving_parts, config, faults=faults()).serve(
            requests
        )
        state = self._segmented(
            make_server(serving_parts, config, faults=faults()),
            requests, width=20,
        )
        assert state["ledger"].to_dict() == one.ledger.to_dict()

    def test_fault_window_straddling_segment_boundary(self, serving_parts):
        """A bounded fault window that opens in one segment and closes
        in the next must charge identically whether the stream is served
        in one shot or segment by segment -- the continuation carries no
        hidden fault state."""
        from repro.resilience.faults import StragglerFault

        graph = serving_parts[0]
        requests = workload(graph)
        width = 20
        boundary_t = requests[width].arrival_s
        start, end = boundary_t - 0.0015, boundary_t + 0.0015
        # The window genuinely crosses the segment boundary.
        assert requests[width - 1].arrival_s < end
        assert requests[width].arrival_s > start
        config = ServingConfig(batch_window_s=0.0, max_batch=1, mode="local")
        faults = lambda: FaultSchedule(  # noqa: E731 - fresh per server
            [StragglerFault(worker=1, gpu_factor=25.0, start=start, end=end)]
        )
        one = make_server(serving_parts, config, faults=faults()).serve(
            requests
        )
        state = self._segmented(
            make_server(serving_parts, config, faults=faults()),
            requests, width=width,
        )
        assert state["ledger"].to_dict() == one.ledger.to_dict()
        assert state["predictions"] == one.predictions
        assert state["timeline"].makespan == one.timeline.makespan
        # The window did bite: some request slowed relative to fault-free.
        clean = make_server(serving_parts, config).serve(requests)
        assert one.ledger.p99_s > clean.ledger.p99_s

    def test_mid_stream_config_change_applies_to_later_segments(
        self, serving_parts
    ):
        graph = serving_parts[0]
        requests = workload(graph, n=60, rate=20000.0)
        server = make_server(
            serving_parts, ServingConfig(batch_window_s=0.0, max_batch=1)
        )
        state = self._segmented(server, requests[:30], width=30)
        assert not any(r.shed for r in state["ledger"].records)
        # Tighten admission control between segments: only the second
        # half may shed.
        server.config = ServingConfig(
            batch_window_s=0.0, max_batch=1,
            slo=SLOConfig(max_pending=1),
        )
        server.serve(requests[30:], **state)
        shed_ids = [r.req_id for r in state["ledger"].records if r.shed]
        assert shed_ids
        assert min(shed_ids) >= 30


class TestDeterminism:
    def test_same_seed_bit_identical_ledger(self, serving_parts):
        graph = serving_parts[0]
        requests = workload(graph)
        config = ServingConfig(batch_window_s=0.003, max_batch=16, tau_s=0.05)
        a = make_server(serving_parts, config).serve(requests)
        b = make_server(serving_parts, config).serve(requests)
        assert a.ledger.to_dict() == b.ledger.to_dict()
        assert a.predictions == b.predictions


class TestCache:
    def test_tau_zero_never_hits(self, serving_parts):
        graph = serving_parts[0]
        result = make_server(
            serving_parts, ServingConfig(tau_s=0.0)
        ).serve(workload(graph))
        assert result.cache.counters.hits == 0
        assert all(r.mode != "cached" for r in result.ledger.records)

    def test_large_tau_serves_repeats_from_cache(self, serving_parts):
        graph = serving_parts[0]
        result = make_server(
            serving_parts, ServingConfig(tau_s=10.0)
        ).serve(workload(graph))
        cached = [r for r in result.ledger.records if r.mode == "cached"]
        assert result.cache.counters.hits > 0
        assert cached
        assert all(r.staleness_s >= 0 for r in cached)
        assert result.ledger.mean_staleness_s() > 0
        assert all(r.comm_bytes == 0.0 for r in cached)

    def test_raising_tau_never_raises_comm(self, serving_parts):
        graph = serving_parts[0]
        requests = workload(graph, n=80)
        totals = []
        for tau in (0.0, 0.005, 0.05, 10.0):
            result = make_server(
                serving_parts,
                ServingConfig(batch_window_s=0.002, max_batch=16,
                              tau_s=tau, mode="remote"),
            ).serve(requests)
            totals.append(result.ledger.total_comm_bytes)
        assert totals == sorted(totals, reverse=True)
        assert totals[-1] < totals[0]


class TestSLO:
    def test_overload_sheds(self, serving_parts):
        graph = serving_parts[0]
        requests = workload(graph, n=80, rate=200000.0)
        result = make_server(
            serving_parts,
            ServingConfig(slo=SLOConfig(max_pending=4)),
        ).serve(requests)
        assert result.ledger.shed_count > 0
        shed = [r for r in result.ledger.records if r.shed]
        assert all(r.mode == "shed" and r.worker == -1 for r in shed)
        assert all(r.latency_s is None for r in shed)
        # Every offered request is in the ledger exactly once.
        assert sorted(r.req_id for r in result.ledger.records) == list(range(80))

    def test_no_bound_serves_everything(self, serving_parts):
        graph = serving_parts[0]
        result = make_server(serving_parts).serve(workload(graph))
        assert result.ledger.shed_count == 0
        assert len(result.ledger.served()) == 60


class TestDegradedServing:
    def test_crashed_owner_falls_back(self, serving_parts):
        graph = serving_parts[0]
        faults = FaultSchedule([WorkerCrashFault(worker=1, at_time=0.0)])
        result = make_server(serving_parts, faults=faults).serve(
            workload(graph)
        )
        served = result.ledger.served()
        assert len(served) == 60  # nothing fails outright
        assert all(r.worker != 1 for r in served)
        assert result.ledger.degraded_count > 0

    def test_remote_mode_excludes_dead_workers(self, serving_parts):
        graph = serving_parts[0]
        faults = FaultSchedule([WorkerCrashFault(worker=2, at_time=0.0)])
        result = make_server(
            serving_parts,
            ServingConfig(batch_window_s=0.003, max_batch=16, mode="remote"),
            faults=faults,
        ).serve(workload(graph))
        assert len(result.ledger.served()) == 60
        # Worker 2's clock never moves: it took part in nothing.
        assert result.timeline.now(2) == 0.0

    def test_all_dead_sheds_everything(self, serving_parts):
        graph = serving_parts[0]
        faults = FaultSchedule(
            [WorkerCrashFault(worker=w, at_time=0.0) for w in range(4)]
        )
        result = make_server(serving_parts, faults=faults).serve(
            workload(graph, n=10)
        )
        assert result.ledger.shed_count == 10


class TestTimeline:
    def test_spans_recorded_with_attribution(self, serving_parts):
        graph = serving_parts[0]
        result = make_server(serving_parts).serve(workload(graph))
        spans = result.timeline.spans
        assert spans
        names = {s.name for s in spans}
        assert "batch" in names and "request" in names and "reply" in names
        assert names <= {"batch", "compute", "fetch", "request", "reply"}
        assert all(0 <= s.worker < 4 for s in spans)
        assert all(s.end >= s.start for s in spans)
        request_spans = [s for s in spans if s.name == "request"]
        assert len(request_spans) == 60
        served_workers = {
            r.req_id: r.worker for r in result.ledger.served()
        }
        for s in request_spans:
            assert s.worker == served_workers[s.args["req_id"]]

    def test_record_timeline_false_skips_spans(self, serving_parts):
        graph = serving_parts[0]
        result = make_server(serving_parts, record_timeline=False).serve(
            workload(graph, n=20)
        )
        assert result.timeline.spans == []
        assert len(result.ledger.served()) == 20

    def test_summary_keys(self, serving_parts):
        graph = serving_parts[0]
        result = make_server(serving_parts).serve(workload(graph, n=20))
        summary = result.summary()
        for key in ("num_requests", "served", "latency_p99_ms",
                    "throughput_rps", "num_batches", "cache_hits",
                    "makespan_s"):
            assert key in summary
        assert "records" not in summary
        assert result.makespan_s > 0


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ServingConfig(tau_s=-1.0)
        with pytest.raises(ValueError):
            ServingConfig(mode="cached")  # planner-only mode
        with pytest.raises(ValueError):
            ServingConfig(request_bytes=-1)
        with pytest.raises(ValueError):
            SLOConfig(max_pending=0)

    def test_rejects_featureless_graph(self, serving_parts, small_graph):
        graph, model, cluster, partitioning = serving_parts
        import copy

        bare = copy.copy(graph)
        bare.features = None
        with pytest.raises(ValueError):
            InferenceServer(bare, model, cluster, partitioning)

    def test_rejects_mismatched_partitioning(self, serving_parts, tiny_graph):
        graph, model, cluster, _ = serving_parts
        wrong = hash_partition(tiny_graph, 4)
        with pytest.raises(ValueError):
            InferenceServer(graph, model, cluster, wrong)
