"""Seeded workload generation."""

import pytest

from repro.serving import BurstPhase, WorkloadConfig, generate_workload


class TestGeneration:
    def test_deterministic(self):
        config = WorkloadConfig(num_requests=100, rate_rps=500.0, seed=7)
        a = generate_workload(config, 64)
        b = generate_workload(config, 64)
        assert a == b

    def test_seed_changes_stream(self):
        a = generate_workload(WorkloadConfig(num_requests=50, seed=1), 64)
        b = generate_workload(WorkloadConfig(num_requests=50, seed=2), 64)
        assert a != b

    def test_arrivals_increase_and_ids_sequential(self):
        requests = generate_workload(WorkloadConfig(num_requests=80), 32)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(t > 0 for t in arrivals)
        assert [r.req_id for r in requests] == list(range(80))
        assert all(0 <= r.vertex < 32 for r in requests)

    def test_zipf_concentrates_popularity(self):
        uniform = generate_workload(
            WorkloadConfig(num_requests=400, zipf_exponent=0.0, seed=3), 200
        )
        skewed = generate_workload(
            WorkloadConfig(num_requests=400, zipf_exponent=1.5, seed=3), 200
        )
        assert len({r.vertex for r in skewed}) < len({r.vertex for r in uniform})

    def test_arrivals_independent_of_popularity(self):
        """Separate derived streams: changing the exponent moves which
        vertices are requested but not when requests arrive."""
        mild = generate_workload(
            WorkloadConfig(num_requests=60, zipf_exponent=0.5, seed=9), 64
        )
        hot = generate_workload(
            WorkloadConfig(num_requests=60, zipf_exponent=1.5, seed=9), 64
        )
        assert [r.arrival_s for r in mild] == [r.arrival_s for r in hot]

    def test_burst_compresses_gaps(self):
        base = WorkloadConfig(num_requests=300, rate_rps=1000.0, seed=5)
        burst = WorkloadConfig(
            num_requests=300, rate_rps=1000.0, seed=5,
            bursts=(BurstPhase(start_s=0.05, end_s=0.15, rate_multiplier=8.0),),
        )
        plain = generate_workload(base, 64)
        bursty = generate_workload(burst, 64)

        def in_window(reqs):
            return sum(1 for r in reqs if 0.05 <= r.arrival_s < 0.15)

        assert in_window(bursty) > in_window(plain)

    def test_rate_at_multiplies_inside_burst(self):
        config = WorkloadConfig(
            num_requests=10, rate_rps=100.0,
            bursts=(BurstPhase(0.1, 0.2, rate_multiplier=4.0),),
        )
        assert config.rate_at(0.05) == 100.0
        assert config.rate_at(0.15) == 400.0
        assert config.rate_at(0.2) == 100.0  # half-open window


class TestValidation:
    def test_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_requests=0)
        with pytest.raises(ValueError):
            WorkloadConfig(num_requests=1, rate_rps=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(num_requests=1, zipf_exponent=-0.1)

    def test_rejects_bad_bursts(self):
        with pytest.raises(ValueError):
            BurstPhase(start_s=-1.0, end_s=1.0)
        with pytest.raises(ValueError):
            BurstPhase(start_s=1.0, end_s=1.0)
        with pytest.raises(ValueError):
            BurstPhase(start_s=0.0, end_s=1.0, rate_multiplier=0.0)

    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            generate_workload(WorkloadConfig(num_requests=1), 0)
