"""Trainer, history, and time-to-accuracy bookkeeping."""

import numpy as np
import pytest

from repro.core.model import GNNModel
from repro.engines import DepCommEngine, HybridEngine
from repro.training.prep import prepare_graph
from repro.training.trainer import DistributedTrainer, TrainingHistory


@pytest.fixture
def engine(small_graph, cluster2):
    graph = prepare_graph(small_graph, "gcn")
    model = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=1)
    return DepCommEngine(graph, model, cluster2)


class TestTrainer:
    def test_loss_decreases(self, engine):
        trainer = DistributedTrainer(engine, lr=0.05)
        history = trainer.train(epochs=10)
        assert history.reports[-1].loss < history.reports[0].loss

    def test_history_accounting(self, engine):
        trainer = DistributedTrainer(engine, lr=0.05)
        history = trainer.train(epochs=5, eval_every=2)
        assert len(history.reports) == 5
        assert history.total_time_s == pytest.approx(
            sum(r.epoch_time_s for r in history.reports)
        )
        assert history.avg_epoch_time_s > 0
        # Evals at 2, 4, and the final epoch 5.
        assert [p.epoch for p in history.convergence] == [2, 4, 5]

    def test_convergence_times_monotone(self, engine):
        trainer = DistributedTrainer(engine, lr=0.05)
        history = trainer.train(epochs=6, eval_every=2)
        times = [p.time_s for p in history.convergence]
        assert times == sorted(times)

    def test_time_to_accuracy(self, engine):
        trainer = DistributedTrainer(engine, lr=0.05)
        history = trainer.train(epochs=20, eval_every=2)
        best = history.best_accuracy()
        assert best > 0.5
        t = history.time_to_accuracy(best - 0.01)
        assert t is not None and t <= history.total_time_s
        assert history.time_to_accuracy(1.1) is None

    def test_early_stop_at_target(self, engine):
        trainer = DistributedTrainer(engine, lr=0.05)
        history = trainer.train(epochs=100, eval_every=1, target_accuracy=0.5)
        assert len(history.reports) < 100

    def test_patience_stops_on_plateau(self, small_graph, cluster2):
        # A zero learning rate plateaus immediately: with patience=2 the
        # run stops after the third evaluation (first sets the best,
        # two stale ones exhaust patience).
        graph = prepare_graph(small_graph, "gcn")
        model = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=1)
        stale_engine = DepCommEngine(graph, model, cluster2)
        trainer = DistributedTrainer(stale_engine, lr=1e-12)
        history = trainer.train(epochs=50, eval_every=1, patience=2)
        assert len(history.reports) <= 4

    def test_patience_validation(self, engine):
        with pytest.raises(ValueError, match="patience"):
            DistributedTrainer(engine).train(epochs=2, eval_every=1, patience=0)

    def test_sgd_option(self, engine):
        trainer = DistributedTrainer(engine, optimizer="sgd", lr=0.1)
        history = trainer.train(epochs=3)
        assert len(history.reports) == 3

    def test_unknown_optimizer(self, engine):
        with pytest.raises(ValueError):
            DistributedTrainer(engine, optimizer="lbfgs")

    def test_zero_epochs_rejected(self, engine):
        with pytest.raises(ValueError):
            DistributedTrainer(engine).train(epochs=0)

    def test_empty_history_properties(self):
        h = TrainingHistory(engine_name="x")
        assert h.avg_epoch_time_s == 0.0
        assert h.best_accuracy() == 0.0
        assert np.isnan(h.final_loss)


class TestPrepareGraph:
    def test_gcn_normalises(self, small_graph):
        g = prepare_graph(small_graph, "gcn")
        assert g.edge_weight.max() <= 1.0
        assert g.num_edges > small_graph.num_edges  # self loops added

    def test_gat_plain_weights(self, small_graph):
        g = prepare_graph(small_graph, "GAT")
        assert np.allclose(g.edge_weight, 1.0)

    def test_unknown_arch(self, small_graph):
        with pytest.raises(ValueError):
            prepare_graph(small_graph, "transformer")


class TestHybridTraining:
    def test_hybrid_trains_like_depcomm(self, small_graph, cluster2):
        graph = prepare_graph(small_graph, "gcn")
        results = {}
        for engine_cls in [DepCommEngine, HybridEngine]:
            model = GNNModel.gcn(graph.feature_dim, 12, graph.num_classes, seed=1)
            engine = engine_cls(graph, model, cluster2)
            trainer = DistributedTrainer(engine, lr=0.05)
            history = trainer.train(epochs=12, eval_every=12)
            results[engine_cls.name] = history.convergence[-1].accuracy
        assert results["hybrid"] == pytest.approx(results["depcomm"], abs=0.02)
