"""Classification metrics."""

import numpy as np
import pytest

from repro.training.metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    macro_f1,
    micro_f1,
    per_class_f1,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_half(self):
        assert accuracy(np.array([0, 1]), np.array([0, 0])) == 0.5

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0]), np.array([0, 1]))


class TestConfusionMatrix:
    def test_counts(self):
        m = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), 3)
        assert m[0, 0] == 1
        assert m[1, 1] == 1
        assert m[2, 1] == 1  # true 2 predicted 1
        assert m[2, 2] == 1
        assert m.sum() == 4

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([5]), np.array([0]), 3)

    def test_alignment_checked(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)


class TestF1:
    def test_perfect_macro(self):
        p = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(p, p, 3) == pytest.approx(1.0)

    def test_known_value(self):
        # Class 0: tp=1 fp=1 fn=0 -> P=0.5 R=1 F1=2/3.
        # Class 1: tp=0 -> F1=0.
        predictions = np.array([0, 0])
        labels = np.array([0, 1])
        f1 = per_class_f1(predictions, labels, 2)
        assert f1[0] == pytest.approx(2 / 3)
        assert f1[1] == 0.0

    def test_absent_class_scores_zero(self):
        f1 = per_class_f1(np.array([0]), np.array([0]), 3)
        assert f1[0] == 1.0 and f1[1] == 0.0 and f1[2] == 0.0

    def test_micro_equals_accuracy(self):
        rng = np.random.default_rng(0)
        p = rng.integers(0, 4, 50)
        t = rng.integers(0, 4, 50)
        assert micro_f1(p, t, 4) == accuracy(p, t)

    def test_report_keys(self):
        r = classification_report(np.array([0, 1]), np.array([0, 1]), 2)
        assert set(r) == {"accuracy", "macro_f1", "micro_f1"}
        assert all(v == 1.0 for v in r.values())
