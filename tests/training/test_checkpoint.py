"""Checkpoint save/load round trips (model and optimizer state)."""

import numpy as np
import pytest

from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.tensor.optim import SGD, Adam
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.trainer import DistributedTrainer


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        a = GNNModel.gcn(8, 16, 3, seed=1)
        b = GNNModel.gcn(8, 16, 3, seed=2)
        path = save_checkpoint(a, tmp_path / "model", epoch=7)
        meta = load_checkpoint(b, path)
        assert meta == {"epoch": 7}
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_npz_suffix_added(self, tmp_path):
        model = GNNModel.gcn(4, 4, 2)
        path = save_checkpoint(model, tmp_path / "ckpt")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_metadata_types(self, tmp_path):
        model = GNNModel.gat(4, 4, 2)
        path = save_checkpoint(
            model, tmp_path / "m", dataset="reddit", accuracy=0.93, tags=[1, 2]
        )
        meta = load_checkpoint(GNNModel.gat(4, 4, 2), path)
        assert meta["dataset"] == "reddit"
        assert meta["accuracy"] == pytest.approx(0.93)
        assert meta["tags"] == [1, 2]

    def test_architecture_mismatch_rejected(self, tmp_path):
        path = save_checkpoint(GNNModel.gcn(8, 16, 3), tmp_path / "m")
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(GNNModel.gcn(8, 32, 3), path)

    def test_no_metadata(self, tmp_path):
        model = GNNModel.gin(4, 4, 2, seed=3)
        path = save_checkpoint(model, tmp_path / "m")
        meta = load_checkpoint(GNNModel.gin(4, 4, 2, seed=4), path)
        assert meta == {}


def _take_steps(model, optimizer, steps=3, seed=0):
    """Drive the optimizer with synthetic gradients to build up state."""
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        for p in model.parameters():
            p.grad = rng.standard_normal(p.data.shape).astype(p.data.dtype)
        optimizer.step()
        optimizer.zero_grad()


class TestOptimizerCheckpoint:
    def test_adam_state_roundtrip(self, tmp_path):
        model = GNNModel.gcn(8, 16, 3, seed=1)
        opt = Adam(model.parameters(), lr=0.01)
        _take_steps(model, opt)
        path = save_checkpoint(model, tmp_path / "m", optimizer=opt, epoch=3)

        model2 = GNNModel.gcn(8, 16, 3, seed=2)
        opt2 = Adam(model2.parameters(), lr=0.01)
        meta = load_checkpoint(model2, path, optimizer=opt2)
        assert meta == {"epoch": 3}
        assert opt2._step_count == opt._step_count
        for m_a, m_b in zip(opt._m, opt2._m):
            np.testing.assert_array_equal(m_a, m_b)
        for v_a, v_b in zip(opt._v, opt2._v):
            np.testing.assert_array_equal(v_a, v_b)

    def test_sgd_momentum_roundtrip(self, tmp_path):
        model = GNNModel.gcn(8, 16, 3, seed=1)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        _take_steps(model, opt)
        path = save_checkpoint(model, tmp_path / "m", optimizer=opt)

        model2 = GNNModel.gcn(8, 16, 3, seed=2)
        opt2 = SGD(model2.parameters(), lr=0.1, momentum=0.9)
        load_checkpoint(model2, path, optimizer=opt2)
        for v_a, v_b in zip(opt._velocity, opt2._velocity):
            if v_a is None:
                assert v_b is None
            else:
                np.testing.assert_array_equal(v_a, v_b)

    def test_optimizer_kind_mismatch_rejected(self, tmp_path):
        model = GNNModel.gcn(8, 16, 3, seed=1)
        opt = Adam(model.parameters())
        _take_steps(model, opt)
        path = save_checkpoint(model, tmp_path / "m", optimizer=opt)
        sgd = SGD(GNNModel.gcn(8, 16, 3).parameters(), lr=0.1)
        with pytest.raises(ValueError, match="kind mismatch"):
            load_checkpoint(GNNModel.gcn(8, 16, 3), path, optimizer=sgd)

    def test_resume_without_optimizer_state_rejected(self, tmp_path):
        model = GNNModel.gcn(8, 16, 3, seed=1)
        path = save_checkpoint(model, tmp_path / "m")  # model-only
        opt = Adam(GNNModel.gcn(8, 16, 3).parameters())
        with pytest.raises(ValueError, match="no optimizer state"):
            load_checkpoint(GNNModel.gcn(8, 16, 3), path, optimizer=opt)

    def test_model_only_load_ignores_optimizer_keys(self, tmp_path):
        model = GNNModel.gcn(8, 16, 3, seed=1)
        opt = Adam(model.parameters())
        _take_steps(model, opt)
        path = save_checkpoint(model, tmp_path / "m", optimizer=opt)
        # Loading without an optimizer must not trip on __opt__/ keys.
        model2 = GNNModel.gcn(8, 16, 3, seed=2)
        load_checkpoint(model2, path)
        for pa, pb in zip(model.parameters(), model2.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestResumeRegression:
    def test_resumed_training_matches_uninterrupted(
        self, small_graph, cluster2, tmp_path
    ):
        """Save at epoch 3, resume elsewhere, match the 6-epoch run."""

        def fresh_engine(seed):
            model = GNNModel.build(
                "gcn", small_graph.feature_dim, 12,
                small_graph.num_classes, seed=seed,
            )
            return make_engine("depcomm", small_graph, model, cluster2)

        clean_engine = fresh_engine(seed=1)
        clean = DistributedTrainer(clean_engine, lr=0.05)
        clean.train(6)

        first_engine = fresh_engine(seed=1)
        first = DistributedTrainer(first_engine, lr=0.05)
        first.train(3)
        path = save_checkpoint(
            first_engine.model, tmp_path / "mid",
            optimizer=first.optimizer, epoch=3,
        )

        resumed_engine = fresh_engine(seed=99)  # different init weights
        resumed = DistributedTrainer(resumed_engine, lr=0.05)
        meta = load_checkpoint(
            resumed_engine.model, path, optimizer=resumed.optimizer
        )
        assert meta["epoch"] == 3
        resumed.train(3)

        for got, want in zip(
            resumed_engine.model.parameters(), clean_engine.model.parameters()
        ):
            np.testing.assert_array_equal(got.data, want.data)
