"""Checkpoint save/load round trips."""

import numpy as np
import pytest

from repro.core.model import GNNModel
from repro.training.checkpoint import load_checkpoint, save_checkpoint


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        a = GNNModel.gcn(8, 16, 3, seed=1)
        b = GNNModel.gcn(8, 16, 3, seed=2)
        path = save_checkpoint(a, tmp_path / "model", epoch=7)
        meta = load_checkpoint(b, path)
        assert meta == {"epoch": 7}
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_npz_suffix_added(self, tmp_path):
        model = GNNModel.gcn(4, 4, 2)
        path = save_checkpoint(model, tmp_path / "ckpt")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_metadata_types(self, tmp_path):
        model = GNNModel.gat(4, 4, 2)
        path = save_checkpoint(
            model, tmp_path / "m", dataset="reddit", accuracy=0.93, tags=[1, 2]
        )
        meta = load_checkpoint(GNNModel.gat(4, 4, 2), path)
        assert meta["dataset"] == "reddit"
        assert meta["accuracy"] == pytest.approx(0.93)
        assert meta["tags"] == [1, 2]

    def test_architecture_mismatch_rejected(self, tmp_path):
        path = save_checkpoint(GNNModel.gcn(8, 16, 3), tmp_path / "m")
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(GNNModel.gcn(8, 32, 3), path)

    def test_no_metadata(self, tmp_path):
        model = GNNModel.gin(4, 4, 2, seed=3)
        path = save_checkpoint(model, tmp_path / "m")
        meta = load_checkpoint(GNNModel.gin(4, 4, 2, seed=4), path)
        assert meta == {}
