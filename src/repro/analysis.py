"""Analysis reports: graph shape and dependency structure.

Answers the questions a NeutronStar operator asks before provisioning:
how skewed/local is my graph, how many dependencies will each worker
have, and how much replication would DepCache incur -- the quantities
Section 2.3 identifies as deciding DepCache vs DepComm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.graph.graph import Graph
from repro.graph.khop import dependency_layers, khop_closure
from repro.partition.base import Partitioning


@dataclass
class GraphReport:
    """Structural statistics of one graph."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_in_degree: int
    degree_gini: float
    chunk_locality: float  # fraction of edges within +-5% id distance

    def as_dict(self) -> Dict[str, float]:
        return dict(vars(self))


def gini(values: np.ndarray) -> float:
    """Gini coefficient in [0, 1); 0 = uniform, ->1 = concentrated."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    n = len(values)
    if n == 0 or values.sum() == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * values).sum()) / (n * values.sum()) - (n + 1) / n)


def analyze_graph(graph: Graph) -> GraphReport:
    """Degree skew + id locality, the DepCache/DepComm deciders."""
    in_deg = graph.in_degrees()
    if graph.num_edges:
        distance = np.abs(graph.src - graph.dst)
        window = max(int(0.05 * graph.num_vertices), 1)
        locality = float((distance <= window).mean())
    else:
        locality = 1.0
    return GraphReport(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=graph.avg_degree,
        max_in_degree=int(in_deg.max()) if graph.num_vertices else 0,
        degree_gini=gini(in_deg),
        chunk_locality=locality,
    )


@dataclass
class DependencyReport:
    """Per-worker dependency structure under a partitioning."""

    num_workers: int
    num_layers: int
    remote_deps_per_worker: List[int]
    closure_vertices_per_worker: List[int]
    replication_factor: float
    comm_bytes_per_layer: int  # one direction, for a given dim

    def as_dict(self) -> Dict[str, object]:
        return dict(vars(self))


def analyze_dependencies(
    graph: Graph,
    partitioning: Partitioning,
    num_layers: int = 2,
    dim: int = 256,
) -> DependencyReport:
    """What DepComm would ship and DepCache would replicate."""
    remote = []
    closure = []
    total_copies = 0
    for w in range(partitioning.num_parts):
        owned = partitioning.part(w)
        deps = dependency_layers(graph, owned, num_layers)
        remote.append(int(len(deps[0])))
        layers, _ = khop_closure(graph, owned, num_layers)
        closure.append(int(len(layers[-1])))
        total_copies += len(layers[-1])
    return DependencyReport(
        num_workers=partitioning.num_parts,
        num_layers=num_layers,
        remote_deps_per_worker=remote,
        closure_vertices_per_worker=closure,
        replication_factor=total_copies / max(graph.num_vertices, 1),
        comm_bytes_per_layer=int(sum(remote) * dim * 4),
    )


def recommend_strategy(
    graph: Graph, partitioning: Partitioning, num_layers: int = 2
) -> str:
    """A rule-of-thumb recommendation from the structural report.

    This is *not* the cost model (Algorithm 4 makes the real per-vertex
    decision); it is the back-of-envelope heuristic Section 2.3's
    discussion suggests: high replication -> DepComm, low -> DepCache,
    otherwise Hybrid.
    """
    report = analyze_dependencies(graph, partitioning, num_layers)
    rf = report.replication_factor
    m = partitioning.num_parts
    if rf <= 1.0 + 0.15 * (m - 1):
        return "depcache"
    if rf >= 1.0 + 0.75 * (m - 1):
        return "depcomm"
    return "hybrid"
