"""DepCache engine (Algorithm 2): cache every remote dependency.

Every worker pulls its vertices' full L-hop in-neighborhood closure to
local storage before training and recomputes all dependent
representations each epoch.  No per-epoch communication (except the
parameter all-reduce), maximal redundant computation -- the classic
data-parallel adaptation used by AliGraph/Euler/AGL/DistDGL (without
sampling here; see :mod:`repro.engines.sampling` for the sampled
variant).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.engines.base import BaseEngine
from repro.graph.khop import dependency_layers


class DepCacheEngine(BaseEngine):
    """All remote dependencies cached (R = D, C = empty)."""

    name = "depcache"
    chunked_execution = True  # NeutronStar codebase streams chunks
    tape_location = "host"

    def decide_dependencies(
        self, worker: int
    ) -> Tuple[List[np.ndarray], List[np.ndarray], float]:
        owned = self.partitioning.part(worker)
        deps = dependency_layers(self.graph, owned, self.num_layers)
        cached = [d.copy() for d in deps]
        communicated = [np.empty(0, dtype=np.int64) for _ in deps]
        return cached, communicated, 0.0
