"""The distributed training engine shared by DepCache / DepComm / Hybrid.

The strategies differ *only* in how each worker splits its remote
dependencies into cached ``R_i^l`` and communicated ``C_i^l`` sets
(Section 3); subclasses implement :meth:`BaseEngine.decide_dependencies`
and everything else is shared.

This class is a thin façade over :mod:`repro.execution`: planning
compiles the :class:`EnginePlan` into the per-layer dataflow
:class:`~repro.execution.program.Program` (Section 4), numeric paths
live on the :class:`~repro.execution.executor.LayerExecutor`, timeline
charging on the :class:`~repro.execution.accountant.LayerAccountant`,
and optimization passes (:mod:`repro.execution.passes`) annotate the
program.  The historical hook methods (``_forward``,
``_charge_forward_layer``, ...) remain as one-line shims so subclass
overrides and external callers keep working unchanged.  Numerics are
real; time is modeled per DESIGN.md section 5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache.budget import CacheConfig
from repro.cache.historical import HistoricalEmbeddingCache
from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import CPU, IDLE, Timeline
from repro.comm.scheduler import CommOptions, ExchangeStats
from repro.core.blocks import LayerBlock
from repro.core.model import GNNModel
from repro.costmodel.probe import ProbeResult, probe_constants
from repro.execution.accountant import (
    BACKWARD_MULTIPLIER,
    HOST_MEMORY_BYTES,
    LayerAccountant,
    account_memory,
    max_chunk_edges,
)
from repro.execution.executor import LayerExecutor
from repro.execution.passes import run_passes
from repro.execution.plan import (
    EnginePlan,
    EpochReport,
    build_engine_plan,
    build_historical_caches,
)
from repro.execution.program import Program, compile_program
from repro.graph.graph import Graph
from repro.partition.base import Partitioning
from repro.partition.chunk import chunk_partition
from repro.resilience import engine_recovery
from repro.resilience.faults import WorkerCrashError
from repro.resilience.injector import FaultInjector
from repro.resilience.retry import RetryPolicy

__all__ = [
    "BACKWARD_MULTIPLIER", "HOST_MEMORY_BYTES",
    "BaseEngine", "EnginePlan", "EpochReport",
]


class BaseEngine:
    """Distributed full-batch GNN training over a simulated cluster.

    ``graph`` must be prepared (e.g. ``gcn_normalized()``); ``model`` is
    the shared replica; ``partitioning`` defaults to chunk-based;
    ``comm`` selects the R/L/P optimizations; ``overlap_pass`` enables
    the Section-5.4 comm/compute overlap program pass (off by default,
    and off means charging is bit-identical to the pre-pass engine).
    """

    name = "base"
    # One source-chunk of edge tensors on the device at a time
    # (NeutronStar); ROC-style engines keep the whole tape resident.
    chunked_execution = True
    tape_location = "host"  # autograd tape home (Section 5.8)
    tape_multiplier = 1.0  # extra edge buffers sans free-after-use

    def __init__(
        self,
        graph: Graph,
        model: GNNModel,
        cluster: ClusterSpec,
        partitioning: Optional[Partitioning] = None,
        comm: CommOptions = CommOptions.all(),
        record_timeline: bool = False,
        mu: float = 0.8,
        memory_limit_bytes: Optional[int] = None,
        update_mode: str = "allreduce",
        retry: Optional[RetryPolicy] = None,
        cache_config: Optional[CacheConfig] = None,
        overlap_pass: bool = False,
        program_passes: Optional[Tuple[str, ...]] = None,
    ):
        if update_mode not in ("allreduce", "parameter-server"):
            raise ValueError(
                "update_mode must be 'allreduce' or 'parameter-server', "
                f"got {update_mode!r}"
            )
        if graph.features is None or graph.labels is None:
            raise ValueError("training graph needs features and labels")
        if model.in_dim != graph.feature_dim:
            raise ValueError(
                f"model in_dim {model.in_dim} != feature dim {graph.feature_dim}"
            )
        self.graph = graph
        self.model = model
        self.cluster = cluster
        self.partitioning = partitioning or chunk_partition(
            graph, cluster.num_workers
        )
        if self.partitioning.num_parts != cluster.num_workers:
            raise ValueError("partitioning does not match cluster size")
        self.comm = comm
        self.update_mode = update_mode
        self.overlap_pass = bool(overlap_pass)
        self.program_passes = tuple(program_passes or ())
        # A truthy fault schedule activates the fault-aware charging
        # paths; otherwise charging is bit-identical to fault-free.
        if cluster.faults:
            self.faults: Optional[FaultInjector] = FaultInjector(cluster.faults)
            self.retry: Optional[RetryPolicy] = retry or RetryPolicy()
        else:
            self.faults = None
            self.retry = None
        self.timeline: Timeline = cluster.make_timeline(record=record_timeline)
        self.mu = mu
        self.memory_limit_bytes = memory_limit_bytes
        # Staleness-bounded caching (the third dependency mode); no
        # config means bit-identical to the cache-free engine.
        self.cache_config = cache_config
        self._hist_caches: Optional[List[HistoricalEmbeddingCache]] = None
        self._last_refresh_epoch: Optional[int] = None
        self._force_refresh = False
        self._cache_refreshing = False
        self._in_training_forward = False
        self._forward_stats: List[ExchangeStats] = []
        self.assignment = self.partitioning.assignment
        self.dims = model.dims()
        self.num_layers = model.num_layers
        self.constants: Optional[ProbeResult] = None
        # Per-worker effective constants from the health monitor;
        # empty means every worker plans with self.constants.
        self.constants_overrides: Dict[int, ProbeResult] = {}
        self.plan_: Optional[EnginePlan] = None
        self.program_: Optional[Program] = None
        self.executor = LayerExecutor(self)
        self.accountant = LayerAccountant(self)
        self._epoch = 0
        # Position lookup of every vertex inside its owner's sorted set.
        self._owner_pos = np.zeros(graph.num_vertices, dtype=np.int64)
        for w in range(cluster.num_workers):
            part = self.partitioning.part(w)
            self._owner_pos[part] = np.arange(len(part))

    # -- planning (compiles the plan into the dataflow program) ---
    def decide_dependencies(
        self, worker: int
    ) -> Tuple[List[np.ndarray], List[np.ndarray], float]:
        """Split each layer's remote deps into (cached, communicated).

        Returns ``(cached_per_layer, communicated_per_layer, prep_s)``,
        lists indexed ``[l-1]``; cache-aware engines may return a
        4-tuple with the staleness-bounded CACHED set third.
        """
        raise NotImplementedError

    def plan(self) -> EnginePlan:
        """Build the execution plan (idempotent); may raise OOM."""
        if self.plan_ is not None:
            return self.plan_
        if self.constants is None:
            # Probe with the optimised communication path: Algorithm 4's
            # t_c is the steady-state byte cost, not congestion/mutex
            # artefacts (those cascade into all-cache decisions).
            self.constants = probe_constants(self.cluster, self.model)
        plan = build_engine_plan(self)
        self._account_memory(plan)
        self.plan_ = plan
        self.program_ = run_passes(compile_program(self, plan), self)
        self._hist_caches = build_historical_caches(self, plan)
        return plan

    @property
    def _pos_in_compute(self) -> List[List[np.ndarray]]:
        """Per (layer, worker) vertex -> compute-set row (-1 if absent)."""
        return self.program_.pos_in_compute

    @property
    def _stale_rows(self) -> List[List[Optional[np.ndarray]]]:
        """Per (layer, worker) block-input row positions of H_i^l."""
        return self.program_.stale_rows

    @property
    def _cache_active(self) -> bool:
        return self._hist_caches is not None

    def _constants_for(self, worker: int) -> Optional[ProbeResult]:
        """Effective cost-model constants for ``worker``'s planning
        (health-monitor overrides win; else the cluster-wide probe)."""
        return self.constants_overrides.get(worker, self.constants)

    def replan(
        self, constants_overrides: Optional[Dict[int, ProbeResult]] = None
    ) -> EnginePlan:
        """Re-run dependency planning mid-training (online re-planning).

        Discards plan and program, re-decides R/C/H sets, charges the
        new preprocessing, barriers.  Historical caches restart cold, so
        the next epoch refreshes -- re-planning never serves stale
        entries stamped under the old plan.
        """
        if constants_overrides is not None:
            self.constants_overrides = dict(constants_overrides)
        self.plan_ = None
        self.program_ = None
        plan = self.plan()
        if plan.preprocessing_s > 0:
            for w in range(self.cluster.num_workers):
                self.timeline.advance(w, CPU, plan.preprocessing_s)
        self.timeline.barrier()
        if self._cache_active:
            self._last_refresh_epoch = None
            self._force_refresh = True
        return plan

    def _spawn_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs a reshaped clone of this engine inherits."""
        return dict(
            comm=self.comm,
            record_timeline=self.timeline.record,
            mu=self.mu,
            memory_limit_bytes=self.memory_limit_bytes,
            update_mode=self.update_mode,
            retry=self.retry,
            cache_config=self.cache_config,
            overlap_pass=self.overlap_pass, program_passes=self.program_passes,
        )

    def respawn(
        self, cluster: ClusterSpec, partitioning: Partitioning
    ) -> "BaseEngine":
        """A fresh engine of the same class on a reshaped cluster.

        Shares the graph and the *model object* (optimizers stay valid
        across an elastic reshape) and inherits the probed constants;
        the new timeline starts at zero and the elastic layer advances
        it to the handover point.
        """
        engine = type(self)(
            self.graph,
            self.model,
            cluster,
            partitioning=partitioning,
            **self._spawn_kwargs(),
        )
        engine.constants = self.constants
        return engine

    # -- resilience: fault-aware lookups, crashes, re-provisioning 
    def _device(self, worker: int):
        """The device profile ``worker`` experiences *now* (stragglers)."""
        if self.faults is None:
            return self.cluster.device
        return self.faults.device_view(
            self.cluster.device, worker, self.timeline.now(worker)
        )

    def _sync(self) -> float:
        """Barrier + crash detection: a dead worker becomes observable
        here and surfaces as :class:`WorkerCrashError` for the recovery
        policy (:mod:`repro.training.resilient`) to handle."""
        t = self.timeline.barrier()
        if self.faults is None:
            return t
        fault = self.faults.schedule.pending_crash(t)
        if fault is None:
            return t
        if fault.detection_timeout_s > 0:
            for w in range(self.cluster.num_workers):
                self.timeline.advance(w, IDLE, fault.detection_timeout_s)
        raise WorkerCrashError(fault, self.timeline.barrier())

    def reprovision_bytes(self, worker: int) -> int:
        """Dependency state a replacement for ``worker`` must re-fetch."""
        return engine_recovery.reprovision_bytes(self, worker)

    def recover_from_crash(
        self, crash, provision_s: float = 0.05
    ) -> Tuple[float, int]:
        """Charge a rollback-restart re-provision; ``(seconds, bytes)``.

        See :func:`repro.resilience.engine_recovery.recover_from_crash`.
        """
        return engine_recovery.recover_from_crash(self, crash, provision_s)

    def rollback_to_epoch(self, epoch: int) -> None:
        """Reset the epoch counter after a checkpoint restore (the
        modeled clock is *not* rewound -- lost work stays charged)."""
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        self._epoch = int(epoch)

    # -- staleness-bounded caching lifecycle ----------------------
    def force_refresh(self) -> None:
        """Make the next epoch a refresh epoch (staleness-accuracy
        guard); a no-op without a cache config."""
        self._force_refresh = True

    def _begin_epoch_cache(self) -> bool:
        """Decide whether this epoch re-fetches the CACHED sets: fires
        when the cache is cold, ``tau`` elapsed or is 0, or a refresh
        was forced.  Kept on ``self._cache_refreshing``."""
        if not self._cache_active:
            self._cache_refreshing = False
            return False
        tau = self.cache_config.tau
        due = (
            tau <= 0
            or self._last_refresh_epoch is None
            or self._force_refresh
            or (self._epoch - self._last_refresh_epoch) >= tau
        )
        self._cache_refreshing = bool(due)
        if due:
            self._last_refresh_epoch = self._epoch
            self._force_refresh = False
        return self._cache_refreshing

    # -- execution shims: numeric paths on the executor.  Real methods
    # (not re-exports) so subclass overrides / super() chains compose.
    def run_epoch(self, optimizer=None) -> EpochReport:
        """One full-batch training epoch (forward, loss, backward, update)."""
        return self.executor.run_epoch(optimizer=optimizer)

    def _forward(self, plan: EnginePlan, training: bool):
        return self.executor.forward(plan, training)

    def _gather_inputs(self, plan, h_values, l, w, block: LayerBlock):
        return self.executor.gather_inputs(plan, h_values, l, w, block)

    def _apply_historical_cache(self, l, w, block: LayerBlock, rows) -> None:
        self.executor.apply_historical_cache(l, w, block, rows)

    def _compute_loss(self, plan, out_tensors):
        return self.executor.compute_loss(plan, out_tensors)

    def _backward(self, plan, in_tensors, out_tensors, loss_tensors) -> None:
        self.executor.backward(plan, in_tensors, out_tensors, loss_tensors)

    def _route_input_grads(self, plan, grad_acc, l, w, grad_rows) -> None:
        self.executor.route_input_grads(plan, grad_acc, l, w, grad_rows)

    def _accumulate(self, plan, grad_acc, layer_idx, worker, positions, rows):
        self.executor.accumulate(plan, grad_acc, layer_idx, worker, positions, rows)

    def evaluate(self, mask: Optional[np.ndarray] = None) -> float:
        """Accuracy over ``mask`` (default: test mask), forward-only."""
        return self.executor.evaluate(mask=mask)

    # -- accounting shims: timeline charging on the accountant ----
    def _layer_compute_split(self, plan: EnginePlan, l: int):
        return self.accountant.layer_compute_split(plan, l)

    def _forward_volumes(self, plan: EnginePlan, l: int) -> np.ndarray:
        return self.accountant.forward_volumes(plan, l)

    def _backward_volumes(self, plan: EnginePlan, l: int) -> np.ndarray:
        return self.accountant.backward_volumes(plan, l)

    def _cache_traffic(self, plan: EnginePlan, l: int, backward: bool):
        return self.accountant.cache_traffic(plan, l, backward)

    def _charge_forward_layer(self, plan: EnginePlan, l: int) -> ExchangeStats:
        return self.accountant.charge_forward_layer(plan, l)

    def _charge_backward_layer(self, plan: EnginePlan, l: int) -> None:
        self.accountant.charge_backward_layer(plan, l)

    def _charge_allreduce(self) -> None:
        self.accountant.charge_allreduce()

    def _account_memory(self, plan: EnginePlan) -> None:
        account_memory(self, plan)

    def _max_chunk_edges(self, plan: EnginePlan, l: int, w: int) -> int:
        return max_chunk_edges(self, plan, l, w)

    def charge_epoch(self) -> float:
        """Charge one epoch's modeled time WITHOUT numerical execution
        (one accountant implementation, shared with
        :meth:`epoch_time_estimate`, so the two cannot drift)."""
        return self.accountant.charge_epoch()

    def epoch_time_estimate(self) -> float:
        """Modeled seconds for one epoch (timing-only fast path)."""
        return self.accountant.charge_epoch()
