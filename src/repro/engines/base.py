"""The distributed training engine shared by DepCache / DepComm / Hybrid.

The three dependency-management strategies differ *only* in how each
worker splits its remote dependencies into a cached set ``R_i^l`` and a
communicated set ``C_i^l`` (Section 3): everything else -- block
construction, master-mirror exchanges, the layer-by-layer forward with
``GetFromDepNbr`` and backward with ``PostToDepNbr``, loss, all-reduce
-- is identical and lives here.  Subclasses implement
:meth:`BaseEngine.decide_dependencies`.

Numerics are real (the autograd substrate computes exact full-batch
gradients; all engines produce identical parameter updates).  Time is
modeled: every activity is charged to the cluster timeline per
DESIGN.md section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache.budget import CACHE_MEMORY_LABEL, CacheConfig
from repro.cache.historical import HistoricalEmbeddingCache
from repro.cache.policies import get_policy
from repro.cluster.spec import ClusterSpec
from repro.cluster.memory import MemoryTracker
from repro.cluster.timeline import CPU, GPU, IDLE, NET_RECV, NET_SEND, Timeline
from repro.comm.scheduler import CacheTraffic, CommOptions, ExchangeStats, run_exchange
from repro.resilience.faults import WorkerCrashError, WorkerCrashFault
from repro.resilience.injector import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.core.blocks import LayerBlock, build_block
from repro.core.mirror import MirrorExchange
from repro.core.model import GNNModel
from repro.costmodel.probe import ProbeResult, probe_constants
from repro.graph.graph import Graph
from repro.partition.base import Partitioning
from repro.partition.chunk import chunk_partition
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad

# Host (DRAM) budget per worker, scaled like device memory (the paper's
# nodes have 62 GB).  DepCache keeps its closure tape in host memory.
HOST_MEMORY_BYTES = 230 * 1024 * 1024

# Fraction of a layer's forward compute charged again during backward.
BACKWARD_MULTIPLIER = 2.0


@dataclass
class EpochReport:
    """What one training epoch produced (modeled time + real loss).

    ``comm_bytes`` is the forward mirror-exchange volume actually moved
    this epoch (refresh traffic included, cache-served traffic not).
    The cache fields stay zero unless staleness-bounded caching is on:
    ``cache_hits`` / ``cache_misses`` count entries served stale versus
    (re-)fetched, ``refresh_bytes`` the re-fetch volume, and
    ``comm_saved_bytes`` what a cache-free run would additionally have
    sent.
    """

    epoch: int
    epoch_time_s: float
    loss: float
    comm_bytes: int
    forward_time_s: float
    backward_time_s: float
    allreduce_time_s: float
    cache_hits: int = 0
    cache_misses: int = 0
    refresh_bytes: int = 0
    comm_saved_bytes: int = 0
    cache_refreshed: bool = False


@dataclass
class EnginePlan:
    """Per-worker, per-layer execution plan (built once, reused)."""

    compute_sets: List[List[np.ndarray]]  # [l-1][worker] -> global ids
    blocks: List[List[LayerBlock]]  # [l-1][worker]
    comm_ids: List[List[np.ndarray]]  # [l-1][worker] -> received ids
    exchanges: List[MirrorExchange]  # [l-1]
    cached_deps: List[List[np.ndarray]]  # [l-1][worker] -> R_i^l
    preprocessing_s: float = 0.0
    device_memory: List[MemoryTracker] = field(default_factory=list)
    host_memory: List[MemoryTracker] = field(default_factory=list)
    # Staleness-bounded CACHED sets H_i^l and their refresh exchange
    # (charged only on refresh epochs); empty without a cache config.
    stale_deps: List[List[np.ndarray]] = field(default_factory=list)
    refresh_exchanges: List[MirrorExchange] = field(default_factory=list)

    def total_comm_vertices(self) -> int:
        return sum(ex.total_vertices for ex in self.exchanges)

    def total_stale_vertices(self) -> int:
        return sum(ex.total_vertices for ex in self.refresh_exchanges)

    def cache_ratio(self) -> float:
        cached = sum(len(r) for per_l in self.cached_deps for r in per_l)
        comm = sum(len(c) for per_l in self.comm_ids for c in per_l)
        stale = sum(len(h) for per_l in self.stale_deps for h in per_l)
        total = cached + comm + stale
        return cached / total if total else 1.0

    def stale_ratio(self) -> float:
        cached = sum(len(r) for per_l in self.cached_deps for r in per_l)
        comm = sum(len(c) for per_l in self.comm_ids for c in per_l)
        stale = sum(len(h) for per_l in self.stale_deps for h in per_l)
        total = cached + comm + stale
        return stale / total if total else 0.0


class BaseEngine:
    """Distributed full-batch GNN training over a simulated cluster.

    Parameters
    ----------
    graph:
        Prepared training graph (normalise weights before passing, e.g.
        ``graph.gcn_normalized()`` for GCN).
    model:
        The shared model replica (see :class:`repro.core.model.GNNModel`
        on why sharing is equivalent to all-reduce data parallelism).
    cluster:
        Simulated hardware.
    partitioning:
        Vertex-to-worker assignment; default chunk-based.
    comm:
        Which of the R/L/P optimizations are on.
    """

    name = "base"
    # Chunked execution keeps only one source-chunk of edge tensors in
    # device memory (NeutronStar's design); non-chunked engines
    # (DepCache-on-DNN-systems, ROC) keep the whole tape resident.
    chunked_execution = True
    # Where the autograd tape lives: "host" (NeutronStar caches
    # intermediates in host memory, Section 5.8) or "device".
    tape_location = "host"
    # Multiplier on edge-tape bytes: systems without NeutronStar's
    # free-after-use chunk management keep extra edge buffers around.
    tape_multiplier = 1.0

    def __init__(
        self,
        graph: Graph,
        model: GNNModel,
        cluster: ClusterSpec,
        partitioning: Optional[Partitioning] = None,
        comm: CommOptions = CommOptions.all(),
        record_timeline: bool = False,
        mu: float = 0.8,
        memory_limit_bytes: Optional[int] = None,
        update_mode: str = "allreduce",
        retry: Optional[RetryPolicy] = None,
        cache_config: Optional[CacheConfig] = None,
    ):
        if update_mode not in ("allreduce", "parameter-server"):
            raise ValueError(
                "update_mode must be 'allreduce' or 'parameter-server', "
                f"got {update_mode!r}"
            )
        if graph.features is None or graph.labels is None:
            raise ValueError("training graph needs features and labels")
        if model.in_dim != graph.feature_dim:
            raise ValueError(
                f"model in_dim {model.in_dim} != feature dim {graph.feature_dim}"
            )
        self.graph = graph
        self.model = model
        self.cluster = cluster
        self.partitioning = partitioning or chunk_partition(
            graph, cluster.num_workers
        )
        if self.partitioning.num_parts != cluster.num_workers:
            raise ValueError("partitioning does not match cluster size")
        self.comm = comm
        self.update_mode = update_mode
        # Resilience: a truthy (non-empty) fault schedule on the cluster
        # activates the fault-aware charging paths; otherwise every code
        # path below is bit-identical to the fault-free engine.
        if cluster.faults:
            self.faults: Optional[FaultInjector] = FaultInjector(cluster.faults)
            self.retry: Optional[RetryPolicy] = retry or RetryPolicy()
        else:
            self.faults = None
            self.retry = None
        self.timeline: Timeline = cluster.make_timeline(record=record_timeline)
        self.mu = mu
        self.memory_limit_bytes = memory_limit_bytes
        # Staleness-bounded caching (the third dependency mode).  With
        # no config, every path below is bit-identical to the cache-free
        # engine -- the same guarantee pattern the fault schedule gives.
        self.cache_config = cache_config
        self._hist_caches: Optional[List[HistoricalEmbeddingCache]] = None
        self._last_refresh_epoch: Optional[int] = None
        self._force_refresh = False
        self._cache_refreshing = False
        self._in_training_forward = False
        self._forward_stats: List[ExchangeStats] = []
        self.assignment = self.partitioning.assignment
        self.dims = model.dims()
        self.num_layers = model.num_layers
        self.constants: Optional[ProbeResult] = None
        # Per-worker effective constants (online re-planning): the
        # health monitor scales the probed constants for degraded
        # workers; empty means every worker plans with self.constants.
        self.constants_overrides: Dict[int, ProbeResult] = {}
        self.plan_: Optional[EnginePlan] = None
        self._epoch = 0
        # Position lookup of every vertex inside its owner's sorted set.
        self._owner_pos = np.zeros(graph.num_vertices, dtype=np.int64)
        for w in range(cluster.num_workers):
            part = self.partitioning.part(w)
            self._owner_pos[part] = np.arange(len(part))

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def decide_dependencies(
        self, worker: int
    ) -> Tuple[List[np.ndarray], List[np.ndarray], float]:
        """Split each layer's remote deps into (cached, communicated).

        Returns ``(cached_per_layer, communicated_per_layer,
        preprocessing_seconds)``; both lists are indexed ``[l-1]``.
        Cache-aware engines may return a 4-tuple ``(cached,
        communicated, stale_cached, preprocessing_seconds)`` whose third
        element is the staleness-bounded CACHED set per layer.
        """
        raise NotImplementedError

    def plan(self) -> EnginePlan:
        """Build the execution plan (idempotent); may raise OOM."""
        if self.plan_ is not None:
            return self.plan_
        if self.constants is None:
            # Probe with the optimised communication path: Algorithm 4's
            # t_c is the steady-state byte cost; congestion and mutex
            # overheads are configuration artefacts the greedy should
            # not over-react to (they cascade into all-cache decisions).
            self.constants = probe_constants(self.cluster, self.model)
        m = self.cluster.num_workers
        L = self.num_layers
        graph = self.graph

        cached_all: List[List[np.ndarray]] = [[] for _ in range(L)]
        decisions: List[Dict[int, np.ndarray]] = [dict() for _ in range(L)]
        stale_decisions: List[Dict[int, np.ndarray]] = [dict() for _ in range(L)]
        preprocessing = 0.0
        empty = np.empty(0, dtype=np.int64)
        for w in range(m):
            result = self.decide_dependencies(w)
            if len(result) == 4:
                cached, communicated, stale, prep_s = result
            else:
                cached, communicated, prep_s = result
                stale = [empty] * L
            preprocessing = max(preprocessing, prep_s)  # workers run in parallel
            for l in range(L):
                cached_all[l].append(cached[l])
                decisions[l][w] = communicated[l]
                stale_decisions[l][w] = stale[l]

        # Derive compute sets top-down: a dependency in C is received, a
        # dependency in H is served from the historical cache (received
        # only on refresh epochs), a dependency in R (or any remote
        # input outside the decided set, i.e. cached-subtree interior)
        # is computed locally.
        compute_sets: List[List[np.ndarray]] = [[None] * m for _ in range(L)]
        comm_ids: List[List[np.ndarray]] = [[None] * m for _ in range(L)]
        stale_ids: List[List[np.ndarray]] = [[None] * m for _ in range(L)]
        blocks: List[List[LayerBlock]] = [[None] * m for _ in range(L)]
        for w in range(m):
            owned = self.partitioning.part(w)
            need = owned
            for l in range(L, 0, -1):
                compute_sets[l - 1][w] = need
                block = build_block(graph, need, l)
                blocks[l - 1][w] = block
                remote_inputs = block.input_vertices[
                    self.assignment[block.input_vertices] != w
                ]
                comm = np.intersect1d(remote_inputs, decisions[l - 1][w])
                comm_ids[l - 1][w] = comm
                stale = np.intersect1d(remote_inputs, stale_decisions[l - 1][w])
                stale_ids[l - 1][w] = stale
                local_remote = np.setdiff1d(
                    np.setdiff1d(remote_inputs, comm), stale
                )
                if l > 1:
                    need = np.union1d(owned, local_remote)

        exchanges = [
            MirrorExchange(self.assignment, comm_ids[l], m) for l in range(L)
        ]
        refresh_exchanges = [
            MirrorExchange(self.assignment, stale_ids[l], m) for l in range(L)
        ]
        plan = EnginePlan(
            compute_sets=compute_sets,
            blocks=blocks,
            comm_ids=comm_ids,
            exchanges=exchanges,
            cached_deps=cached_all,
            preprocessing_s=preprocessing,
            stale_deps=stale_ids,
            refresh_exchanges=refresh_exchanges,
        )
        self._account_memory(plan)
        self.plan_ = plan
        self._build_lookups(plan)
        self._build_historical_caches(plan)
        return plan

    def _build_lookups(self, plan: EnginePlan) -> None:
        """Per (layer, worker) masks/positions for gradient routing."""
        n = self.graph.num_vertices
        m = self.cluster.num_workers
        self._pos_in_compute = [
            [None] * m for _ in range(self.num_layers)
        ]
        for l in range(self.num_layers):
            for w in range(m):
                pos = np.full(n, -1, dtype=np.int64)
                ids = plan.compute_sets[l][w]
                pos[ids] = np.arange(len(ids))
                self._pos_in_compute[l][w] = pos
        # Row positions of the stale-cached set inside each block's
        # input rows (None where the set is empty).
        self._stale_rows: List[List[Optional[np.ndarray]]] = [
            [None] * m for _ in range(self.num_layers)
        ]
        for l in range(self.num_layers):
            for w in range(m):
                stale = plan.stale_deps[l][w]
                if stale is None or len(stale) == 0:
                    continue
                block = plan.blocks[l][w]
                rows = np.flatnonzero(np.isin(block.input_vertices, stale))
                self._stale_rows[l][w] = rows

    def _build_historical_caches(self, plan: EnginePlan) -> None:
        """One per-worker bounded-staleness store, sized by the plan."""
        if self.cache_config is None or plan.total_stale_vertices() == 0:
            self._hist_caches = None
            return
        eviction = get_policy(self.cache_config.policy).runtime_eviction
        self._hist_caches = [
            HistoricalEmbeddingCache(
                self.num_layers, self.cache_config.tau, eviction=eviction
            )
            for _ in range(self.cluster.num_workers)
        ]

    @property
    def _cache_active(self) -> bool:
        return self._hist_caches is not None

    def _constants_for(self, worker: int) -> Optional[ProbeResult]:
        """Effective cost-model constants for ``worker``'s planning.

        Health-monitor overrides (observed stragglers / degraded links)
        take precedence over the cluster-wide probe; with no overrides
        this is exactly ``self.constants``, so the default path is
        bit-identical to pre-elastic behavior.
        """
        return self.constants_overrides.get(worker, self.constants)

    def replan(
        self, constants_overrides: Optional[Dict[int, ProbeResult]] = None
    ) -> EnginePlan:
        """Re-run dependency planning mid-training (online re-planning).

        Discards the current plan, re-decides every worker's R/C/H sets
        (with ``constants_overrides`` as per-worker effective constants
        when given), charges the new plan's preprocessing to every
        worker's CPU clock, and barriers.  Historical caches restart
        cold, so the next epoch is a refresh epoch -- re-planning never
        serves stale entries stamped under the old plan.
        """
        if constants_overrides is not None:
            self.constants_overrides = dict(constants_overrides)
        self.plan_ = None
        plan = self.plan()
        if plan.preprocessing_s > 0:
            for w in range(self.cluster.num_workers):
                self.timeline.advance(w, CPU, plan.preprocessing_s)
        self.timeline.barrier()
        if self._cache_active:
            self._last_refresh_epoch = None
            self._force_refresh = True
        return plan

    def _spawn_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs a reshaped clone of this engine inherits."""
        return dict(
            comm=self.comm,
            record_timeline=self.timeline.record,
            mu=self.mu,
            memory_limit_bytes=self.memory_limit_bytes,
            update_mode=self.update_mode,
            retry=self.retry,
            cache_config=self.cache_config,
        )

    def respawn(
        self, cluster: ClusterSpec, partitioning: Partitioning
    ) -> "BaseEngine":
        """A fresh engine of the same class on a reshaped cluster.

        Shares the graph and the *model object* (so an optimizer bound
        to ``model.parameters()`` stays valid across an elastic shrink
        or rejoin) and inherits the probed constants -- planning on the
        new shape reuses the same T_v/T_e/T_c the old plan was built
        with.  The new engine's timeline starts at zero; the elastic
        layer advances it to the handover point.
        """
        engine = type(self)(
            self.graph,
            self.model,
            cluster,
            partitioning=partitioning,
            **self._spawn_kwargs(),
        )
        engine.constants = self.constants
        return engine

    # ------------------------------------------------------------------
    # Resilience: fault-aware lookups, crash detection, re-provisioning
    # ------------------------------------------------------------------
    def _device(self, worker: int):
        """The device profile ``worker`` experiences *now* (stragglers)."""
        if self.faults is None:
            return self.cluster.device
        return self.faults.device_view(
            self.cluster.device, worker, self.timeline.now(worker)
        )

    def _sync(self) -> float:
        """Barrier + crash detection (the failure detector fires here).

        BSP layer barriers are where a dead worker becomes observable:
        everyone else arrives, the detector times out, and the engine
        surfaces :class:`WorkerCrashError` for the recovery policy
        (:mod:`repro.training.resilient`) to handle.
        """
        t = self.timeline.barrier()
        if self.faults is None:
            return t
        fault = self.faults.schedule.pending_crash(t)
        if fault is None:
            return t
        if fault.detection_timeout_s > 0:
            for w in range(self.cluster.num_workers):
                self.timeline.advance(w, IDLE, fault.detection_timeout_s)
        raise WorkerCrashError(fault, self.timeline.barrier())

    def reprovision_bytes(self, worker: int) -> int:
        """Dependency state a replacement for ``worker`` must re-fetch.

        Every engine re-transfers the worker's own partition (features +
        parameters); on top of that comes the engine-specific dependency
        state: DepCache must re-materialise its cached L-hop closures
        (features of every cached vertex plus the replicated adjacency),
        while DepComm re-registers mirrors and fetches nothing -- the
        churn-side of the hybrid trade-off.
        """
        plan = self.plan()
        feat_bytes = self.graph.feature_dim * 4
        owned = self.partitioning.part(worker)
        total = len(owned) * feat_bytes + self.model.parameter_bytes()
        for l in range(self.num_layers):
            total += len(plan.cached_deps[l][worker]) * feat_bytes
            block = plan.blocks[l][worker]
            total += block.num_edges * 12  # replicated adjacency (src,dst,w)
            # Historical-cache entries are re-materialised too (the
            # replacement starts cold and must fetch exact values).
            total += len(plan.stale_deps[l][worker]) * self.dims[l] * 4
        return int(total)

    def recover_from_crash(
        self, crash, provision_s: float = 0.05
    ) -> Tuple[float, int]:
        """Charge a rollback-restart re-provision to the timeline.

        Models the replacement worker being provisioned, peers streaming
        the partition plus cached dependency state to it, and the
        preprocessing (probe + Algorithm 4) re-running; every surviving
        worker idles at the re-admission barrier meanwhile.  Returns
        ``(recovery_seconds, refetch_bytes)``; the caller is responsible
        for rolling model/optimizer state back to the last checkpoint.
        """
        fault = crash.fault if isinstance(crash, WorkerCrashError) else crash
        if not isinstance(fault, WorkerCrashFault):
            raise TypeError(f"expected a crash fault, got {fault!r}")
        if self.faults is None:
            raise RuntimeError("engine has no fault schedule to recover from")
        worker = fault.worker
        t0 = self.timeline.barrier()
        refetch = self.reprovision_bytes(worker)
        network = self.cluster.network
        if provision_s > 0:
            self.timeline.advance(worker, IDLE, provision_s)
        self.timeline.advance(
            worker, NET_RECV, network.wire_time(refetch), num_bytes=refetch
        )
        plan = self.plan()
        if plan.preprocessing_s > 0:
            self.timeline.advance(worker, CPU, plan.preprocessing_s)
        self.faults.schedule.mark_recovered(fault)
        if self._cache_active:
            # The replacement's historical cache restarts cold; refresh
            # cluster-wide next epoch so everyone is exact again.
            self._hist_caches[worker].invalidate()
            self._force_refresh = True
        t1 = self.timeline.barrier()  # survivors idle until re-admission
        return t1 - t0, refetch

    def rollback_to_epoch(self, epoch: int) -> None:
        """Reset the epoch counter after a checkpoint restore.

        The modeled clock is *not* rewound -- lost work stays on the
        timeline -- but replayed epochs report their logical numbers.
        """
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        self._epoch = int(epoch)

    # ------------------------------------------------------------------
    # Staleness-bounded caching lifecycle
    # ------------------------------------------------------------------
    def force_refresh(self) -> None:
        """Make the next epoch a refresh epoch (staleness-accuracy guard).

        The trainer calls this when validation loss regresses under a
        stale cache; a no-op without a cache config.
        """
        self._force_refresh = True

    def _begin_epoch_cache(self) -> bool:
        """Decide whether this epoch re-fetches the CACHED sets.

        Refresh fires when the cache is cold, the staleness bound
        ``tau`` has elapsed since the last refresh, ``tau`` is 0 (always
        exact), or a refresh was forced.  Returns the decision, also
        kept on ``self._cache_refreshing`` for gather/grad routing.
        """
        if not self._cache_active:
            self._cache_refreshing = False
            return False
        tau = self.cache_config.tau
        due = (
            tau <= 0
            or self._last_refresh_epoch is None
            or self._force_refresh
            or (self._epoch - self._last_refresh_epoch) >= tau
        )
        self._cache_refreshing = bool(due)
        if due:
            self._last_refresh_epoch = self._epoch
            self._force_refresh = False
        return self._cache_refreshing

    # ------------------------------------------------------------------
    # Memory model
    # ------------------------------------------------------------------
    def _account_memory(self, plan: EnginePlan) -> None:
        """Register resident bytes; raises OutOfMemoryError when over."""
        m = self.cluster.num_workers
        device_budget = self.cluster.device.memory_bytes
        plan.device_memory = [MemoryTracker(w, device_budget) for w in range(m)]
        plan.host_memory = [MemoryTracker(w, HOST_MEMORY_BYTES) for w in range(m)]
        for w in range(m):
            device = plan.device_memory[w]
            host = plan.host_memory[w]
            tape = host if self.tape_location == "host" else device
            # Features resident for every locally available layer-1
            # input (stale-cached rows are accounted as cache entries).
            feat_rows = (
                plan.blocks[0][w].num_inputs
                - len(plan.comm_ids[0][w])
                - len(plan.stale_deps[0][w])
            )
            tape.allocate(feat_rows * self.dims[0] * 4, "features")
            # Historical-embedding entries live in host memory alongside
            # the DepCache closures they share the budget with.
            cache_bytes = sum(
                len(plan.stale_deps[l][w]) * self.dims[l] * 4
                for l in range(self.num_layers)
            )
            if cache_bytes:
                host.allocate(cache_bytes, CACHE_MEMORY_LABEL)
            peak_chunk = 0
            for l in range(1, self.num_layers + 1):
                block = plan.blocks[l - 1][w]
                layer = self.model.layer(l)
                # Activations (inputs + outputs) live on the tape until
                # backward.
                tape.allocate(
                    block.num_inputs * self.dims[l - 1] * 4
                    + block.num_outputs * self.dims[l] * 4,
                    f"activations_l{l}",
                )
                edge_bytes = int(
                    layer.edge_tensor_bytes(block) * self.tape_multiplier
                )
                if self.chunked_execution:
                    # Tape edge tensors live in host memory; the device
                    # holds one source-chunk working set at a time.
                    tape.allocate(edge_bytes, f"edge_tape_l{l}")
                    chunk_edges = self._max_chunk_edges(plan, l, w)
                    if block.num_edges:
                        chunk_bytes = int(
                            edge_bytes * chunk_edges / block.num_edges
                        )
                    else:
                        chunk_bytes = 0
                    io_bytes = (
                        chunk_edges * 12
                        + block.num_outputs * (self.dims[l - 1] + self.dims[l]) * 4
                    )
                    peak_chunk = max(peak_chunk, chunk_bytes + io_bytes)
                else:
                    # Whole tape resident on the executing device.
                    tape.allocate(edge_bytes, f"edge_tape_l{l}")
            if self.chunked_execution:
                # A chunk that doesn't fit is subdivided further (the
                # point of chunked execution: "only needs to load a
                # chunk ... at a time"), so the working set is capped by
                # the budget rather than OOMing the device.
                device.allocate(
                    min(peak_chunk, int(device.budget_bytes * 0.8)),
                    "chunk_working_set",
                )

    def _max_chunk_edges(self, plan: EnginePlan, l: int, w: int) -> int:
        """Largest per-source-worker edge chunk in worker ``w``'s block."""
        block = plan.blocks[l - 1][w]
        if block.num_edges == 0:
            return 0
        owners = self.assignment[block.edge_src_global]
        counts = np.bincount(owners, minlength=self.cluster.num_workers)
        return int(counts.max())

    # ------------------------------------------------------------------
    # Epoch execution
    # ------------------------------------------------------------------
    def run_epoch(self, optimizer=None) -> EpochReport:
        """One full-batch training epoch (forward, loss, backward, update)."""
        plan = self.plan()
        m = self.cluster.num_workers
        refreshed = self._begin_epoch_cache()
        self._forward_stats = []
        t_start = self._sync()

        self._in_training_forward = True
        try:
            h_values, in_tensors, out_tensors = self._forward(plan, training=True)
        finally:
            self._in_training_forward = False
        loss_value, loss_tensors = self._compute_loss(plan, out_tensors)
        t_forward = self._sync()

        self._backward(plan, in_tensors, out_tensors, loss_tensors)
        t_backward = self._sync()

        self._charge_allreduce()
        if optimizer is not None:
            optimizer.step()
            optimizer.zero_grad()
        t_end = self._sync()

        self._epoch += 1
        stats = self._forward_stats
        return EpochReport(
            epoch=self._epoch,
            epoch_time_s=t_end - t_start,
            loss=loss_value,
            comm_bytes=sum(s.total_bytes for s in stats),
            forward_time_s=t_forward - t_start,
            backward_time_s=t_backward - t_forward,
            allreduce_time_s=t_end - t_backward,
            cache_hits=sum(s.cache_hits for s in stats),
            cache_misses=sum(s.cache_misses for s in stats),
            refresh_bytes=sum(s.refresh_bytes for s in stats),
            comm_saved_bytes=sum(s.saved_bytes for s in stats),
            cache_refreshed=refreshed,
        )

    # -- forward -------------------------------------------------------
    def _forward(self, plan: EnginePlan, training: bool):
        m = self.cluster.num_workers
        h_values: List[List[np.ndarray]] = [
            [None] * m for _ in range(self.num_layers + 1)
        ]
        in_tensors: List[List[Tensor]] = [
            [None] * m for _ in range(self.num_layers)
        ]
        out_tensors: List[List[Tensor]] = [
            [None] * m for _ in range(self.num_layers)
        ]
        for l in range(1, self.num_layers + 1):
            self._charge_forward_layer(plan, l)
            layer = self.model.layer(l)
            for w in range(m):
                block = plan.blocks[l - 1][w]
                rows = self._gather_inputs(plan, h_values, l, w, block)
                h_in = Tensor(rows, requires_grad=training)
                if training:
                    out = layer.forward(block, h_in)
                else:
                    with no_grad():
                        out = layer.forward(block, h_in)
                h_values[l][w] = out.data
                in_tensors[l - 1][w] = h_in
                out_tensors[l - 1][w] = out
            self._sync()
        return h_values, in_tensors, out_tensors

    def _gather_inputs(
        self,
        plan: EnginePlan,
        h_values: List[List[np.ndarray]],
        l: int,
        w: int,
        block: LayerBlock,
    ) -> np.ndarray:
        """Assemble h^{l-1} rows for a block (GetFromDepNbr).

        Numerically, rows come from the feature matrix (layer 1) or from
        the producing worker's stored output (redundant copies are
        bit-identical, so reading the owner's copy is exact).
        """
        ids = block.input_vertices
        if l == 1:
            # Features are static, so a "stale" cached feature row is
            # bit-identical to a fresh fetch; no override needed.
            return self.graph.features[ids]
        rows = np.empty((len(ids), self.dims[l - 1]), dtype=np.float32)
        pos_local = self._pos_in_compute[l - 2][w][ids]
        local = pos_local >= 0
        if local.any():
            rows[local] = h_values[l - 1][w][pos_local[local]]
        remote_ids = ids[~local]
        if len(remote_ids):
            owners = self.assignment[remote_ids]
            for j in np.unique(owners):
                sel = owners == j
                pos = self._pos_in_compute[l - 2][j][remote_ids[sel]]
                if (pos < 0).any():
                    raise RuntimeError(
                        "owner did not compute a vertex it owns (plan bug)"
                    )
                rows[np.where(~local)[0][sel]] = h_values[l - 1][j][pos]
        self._apply_historical_cache(l, w, block, rows)
        return rows

    def _apply_historical_cache(
        self, l: int, w: int, block: LayerBlock, rows: np.ndarray
    ) -> None:
        """Serve/refresh worker ``w``'s stale-cached rows for layer ``l``.

        ``rows`` arrives holding the exact (owner-computed) values.  On a
        training refresh epoch the stale set's rows are stored into the
        historical cache (exact, newly stamped).  Otherwise any entry
        still within the staleness bound overrides its exact row --
        that is the bounded-staleness approximation; expired or missing
        entries keep the exact value ("exact value on miss").
        """
        if not self._cache_active or l < 2:
            return
        srows = self._stale_rows[l - 1][w]
        if srows is None or len(srows) == 0:
            return
        hist = self._hist_caches[w]
        sids = block.input_vertices[srows]
        if self._cache_refreshing and self._in_training_forward:
            hist.store(l, sids, rows[srows], self._epoch)
            return
        fresh, cached_rows = hist.lookup(l, sids, self._epoch)
        if cached_rows is not None:
            rows[srows[fresh]] = cached_rows

    # -- loss ----------------------------------------------------------
    def _compute_loss(self, plan, out_tensors):
        m = self.cluster.num_workers
        train_mask = self.graph.train_mask
        if train_mask is None:
            raise ValueError("graph has no train mask; call set_split()")
        total_train = int(train_mask.sum())
        loss_tensors = []
        loss_value = 0.0
        for w in range(m):
            owned = self.partitioning.part(w)
            mine = owned[train_mask[owned]]
            if len(mine) == 0:
                loss_tensors.append(None)
                continue
            rows = self._pos_in_compute[self.num_layers - 1][w][mine]
            logits = out_tensors[self.num_layers - 1][w][rows]
            log_probs = F.log_softmax(logits, axis=-1)
            picked = log_probs[
                (np.arange(len(mine)), self.graph.labels[mine])
            ]
            loss_w = -picked.sum() / float(total_train)
            loss_tensors.append(loss_w)
            loss_value += float(loss_w.data)
            # Prediction + loss cost: a softmax over the classes.
            flops = 6.0 * len(mine) * self.dims[-1]
            self.timeline.advance(w, GPU, self._device(w).dense_time(flops))
        return loss_value, loss_tensors

    # -- backward ------------------------------------------------------
    def _backward(self, plan, in_tensors, out_tensors, loss_tensors):
        m = self.cluster.num_workers
        # Pending output gradients per (layer, worker), aligned with the
        # worker's compute set rows.
        grad_acc: List[List[Optional[np.ndarray]]] = [
            [None] * m for _ in range(self.num_layers)
        ]
        for l in range(self.num_layers, 0, -1):
            for w in range(m):
                if l == self.num_layers:
                    if loss_tensors[w] is not None:
                        loss_tensors[w].backward()
                else:
                    seed = grad_acc[l - 1][w]
                    if seed is None:
                        continue
                    out_tensors[l - 1][w].backward(seed)
                if l > 1:
                    grad_in = in_tensors[l - 1][w].grad
                    if grad_in is not None:
                        self._route_input_grads(plan, grad_acc, l, w, grad_in)
            self._charge_backward_layer(plan, l)
            self._sync()

    def _route_input_grads(self, plan, grad_acc, l, w, grad_rows):
        """PostToDepNbr: push input grads to whoever computed the value.

        Rows served from the historical cache on a non-refresh epoch are
        treated as constants: their value was not produced by the owner
        this epoch, so no gradient flows back (the standard historical-
        embedding approximation).  On refresh epochs the stale set's
        inputs are the owners' current values and gradients flow
        normally -- which is what makes ``tau = 0`` bit-identical to
        DepComm.
        """
        block = plan.blocks[l - 1][w]
        ids = block.input_vertices
        pos_local = self._pos_in_compute[l - 2][w][ids]
        local = pos_local >= 0
        self._accumulate(plan, grad_acc, l - 2, w, pos_local[local], grad_rows[local])
        push = ~local
        if self._cache_active and not self._cache_refreshing:
            srows = self._stale_rows[l - 1][w]
            if srows is not None and len(srows):
                push = push.copy()
                push[srows] = False
        remote_ids = ids[push]
        if len(remote_ids) == 0:
            return
        remote_rows = grad_rows[push]
        owners = self.assignment[remote_ids]
        for j in np.unique(owners):
            sel = owners == j
            pos = self._pos_in_compute[l - 2][j][remote_ids[sel]]
            self._accumulate(plan, grad_acc, l - 2, j, pos, remote_rows[sel])

    def _accumulate(self, plan, grad_acc, layer_idx, worker, positions, rows):
        if len(positions) == 0:
            return
        acc = grad_acc[layer_idx][worker]
        if acc is None:
            shape = (
                len(plan.compute_sets[layer_idx][worker]),
                self.dims[layer_idx + 1],
            )
            acc = np.zeros(shape, dtype=np.float32)
            grad_acc[layer_idx][worker] = acc
        np.add.at(acc, positions, rows)

    # ------------------------------------------------------------------
    # Timing charges
    # ------------------------------------------------------------------
    def _layer_compute_split(self, plan: EnginePlan, l: int):
        """Per-worker (chunk_compute, local_compute, dense) seconds."""
        m = self.cluster.num_workers
        chunk_compute = np.zeros((m, m))
        local_compute = np.zeros(m)
        dense = np.zeros(m)
        layer = self.model.layer(l)
        d_in = self.dims[l - 1]
        for w in range(m):
            device = self._device(w)
            block = plan.blocks[l - 1][w]
            dense[w] = device.dense_time(layer.dense_flops(block))
            if block.num_edges == 0:
                continue
            sparse_total = layer.sparse_flops(block)
            comm_set = plan.comm_ids[l - 1][w]
            stale_set = plan.stale_deps[l - 1][w]
            # Stale-cached sources count as received: their rows arrive
            # over the wire on refresh epochs and are staged from the
            # host-resident cache otherwise, paying the same H2D copy.
            if len(comm_set) or len(stale_set):
                received = np.zeros(self.graph.num_vertices, dtype=bool)
                received[comm_set] = True
                received[stale_set] = True
                from_comm = received[block.edge_src_global]
            else:
                from_comm = np.zeros(block.num_edges, dtype=bool)
            owners = self.assignment[block.edge_src_global]
            per_edge = sparse_total / block.num_edges
            for j in range(m):
                sel = from_comm & (owners == j)
                count = int(sel.sum())
                if count == 0:
                    continue
                vertices = len(plan.exchanges[l - 1].recv_ids.get((j, w), ())) + len(
                    plan.refresh_exchanges[l - 1].recv_ids.get((j, w), ())
                )
                h2d = device.transfer_time(
                    vertices * d_in * 4 + count * 12
                )
                chunk_compute[j, w] = device.sparse_time(per_edge * count) + h2d
            local_edges = int((~from_comm).sum())
            if local_edges:
                h2d = (
                    device.transfer_time(local_edges * 12)
                    if self.chunked_execution
                    else 0.0
                )
                local_compute[w] = device.sparse_time(per_edge * local_edges) + h2d
        return chunk_compute, local_compute, dense

    def _forward_volumes(self, plan: EnginePlan, l: int) -> np.ndarray:
        """Byte-volume matrix of layer ``l``'s forward exchange."""
        return plan.exchanges[l - 1].volume_matrix(self.dims[l - 1])

    def _backward_volumes(self, plan: EnginePlan, l: int) -> np.ndarray:
        """Byte-volume matrix of layer ``l``'s gradient return."""
        if l > 1:
            return self._forward_volumes(plan, l).T
        return np.zeros((self.cluster.num_workers,) * 2)

    def _cache_traffic(self, plan: EnginePlan, l: int, backward: bool) -> Optional[CacheTraffic]:
        """The stale-cached share of layer ``l``'s exchange, if any."""
        if not self._cache_active:
            return None
        exchange = plan.refresh_exchanges[l - 1]
        if exchange.total_vertices == 0:
            return None
        volumes = exchange.volume_matrix(self.dims[l - 1])
        if backward:
            # Gradient return happens only when the fetch happened; no
            # grads flow into layer-1 inputs (features), matching
            # _backward_volumes.
            if l == 1:
                return None
            return CacheTraffic(
                volumes=volumes.T, refresh=self._cache_refreshing, entries=0
            )
        return CacheTraffic(
            volumes=volumes,
            refresh=self._cache_refreshing,
            entries=exchange.total_vertices,
        )

    def _charge_forward_layer(self, plan: EnginePlan, l: int) -> ExchangeStats:
        volumes = self._forward_volumes(plan, l)
        chunk_compute, local_compute, dense = self._layer_compute_split(plan, l)
        stats = run_exchange(
            self.timeline,
            self.cluster.network,
            volumes,
            chunk_compute=chunk_compute,
            local_compute=local_compute,
            options=self.comm,
            barrier=False,
            bytes_per_message=self.dims[l - 1] * 4,
            faults=self.faults,
            retry=self.retry,
            cache=self._cache_traffic(plan, l, backward=False),
        )
        self._forward_stats.append(stats)
        for w in range(self.cluster.num_workers):
            self.timeline.advance(w, GPU, dense[w])
        return stats

    def _charge_backward_layer(self, plan: EnginePlan, l: int) -> None:
        chunk_compute, local_compute, dense = self._layer_compute_split(plan, l)
        backward_mult = BACKWARD_MULTIPLIER
        compute = (chunk_compute.sum(axis=0) + local_compute + dense) * backward_mult
        volumes = self._backward_volumes(plan, l)
        run_exchange(
            self.timeline,
            self.cluster.network,
            volumes,
            chunk_compute=None,
            local_compute=compute,
            options=self.comm,
            barrier=False,
            bytes_per_message=self.dims[l - 1] * 4,
            faults=self.faults,
            retry=self.retry,
            cache=self._cache_traffic(plan, l, backward=True),
        )

    def _charge_allreduce(self) -> None:
        """Parameter synchronisation: ring all-reduce or parameter server.

        The paper uses synchronous all-reduce and notes the model "is
        orthogonal to and can be replaced by the Parameter-Server
        model"; both are implemented (see the update-mode ablation
        benchmark for the comparison).
        """
        m = self.cluster.num_workers
        if m == 1:
            return
        network = self.cluster.network
        param_bytes = self.model.parameter_bytes()
        if self.update_mode == "parameter-server":
            # Every worker pushes gradients to and pulls parameters from
            # one server whose NIC serialises all m transfers.
            wire = 2.0 * m * param_bytes / network.bytes_per_s
            latency = 2.0 * network.latency_s
        else:
            # Ring all-reduce: 2 (m-1)/m of the data crosses each link.
            wire = 2.0 * (m - 1) / m * param_bytes / network.bytes_per_s
            latency = 2.0 * (m - 1) * network.latency_s
        if self.faults is not None:
            # Both collectives are bounded by the slowest participating
            # link (ring: every link is on the critical path; PS: the
            # server serialises all transfers).
            t = self.timeline.makespan
            schedule = self.faults.schedule
            divisor = 1.0
            extra_latency = 0.0
            for i in range(m):
                for j in range(m):
                    if i == j:
                        continue
                    d, e = schedule.link_degradation(i, j, t)
                    divisor = max(divisor, d)
                    extra_latency = max(extra_latency, e)
            wire *= divisor
            hops = 2.0 * (m - 1) if self.update_mode == "allreduce" else 2.0
            latency += extra_latency * hops
        for w in range(m):
            self.timeline.advance(
                w, NET_SEND, wire + latency, num_bytes=int(param_bytes)
            )
        self._sync()

    # ------------------------------------------------------------------
    # Evaluation and convenience
    # ------------------------------------------------------------------
    def evaluate(self, mask: Optional[np.ndarray] = None) -> float:
        """Accuracy over ``mask`` (default: test mask), forward-only."""
        plan = self.plan()
        if mask is None:
            mask = self.graph.test_mask
        if mask is None:
            raise ValueError("graph has no test mask; call set_split()")
        h_values, _, out_tensors = self._forward(plan, training=False)
        correct = 0
        total = 0
        L = self.num_layers
        for w in range(self.cluster.num_workers):
            owned = self.partitioning.part(w)
            mine = owned[mask[owned]]
            if len(mine) == 0:
                continue
            rows = self._pos_in_compute[L - 1][w][mine]
            predictions = h_values[L][w][rows].argmax(axis=1)
            correct += int((predictions == self.graph.labels[mine]).sum())
            total += len(mine)
        return correct / total if total else 0.0

    def charge_epoch(self) -> float:
        """Charge one epoch's modeled time WITHOUT numerical execution.

        The timing model depends only on the plan (block sizes, volumes)
        -- not on tensor values -- so performance benchmarks use this
        fast path; accuracy experiments use :meth:`run_epoch`.
        Returns the epoch's modeled seconds.
        """
        plan = self.plan()
        self._begin_epoch_cache()
        self._forward_stats = []
        t_start = self._sync()
        for l in range(1, self.num_layers + 1):
            self._charge_forward_layer(plan, l)
            self._sync()
        # Loss/prediction charge (matches _compute_loss).
        if self.graph.train_mask is not None:
            for w in range(self.cluster.num_workers):
                owned = self.partitioning.part(w)
                mine = int(self.graph.train_mask[owned].sum())
                flops = 6.0 * mine * self.dims[-1]
                self.timeline.advance(
                    w, GPU, self._device(w).dense_time(flops)
                )
        self._sync()
        for l in range(self.num_layers, 0, -1):
            self._charge_backward_layer(plan, l)
            self._sync()
        self._charge_allreduce()
        self._epoch += 1
        return self._sync() - t_start

    def epoch_time_estimate(self) -> float:
        """Modeled seconds for one epoch (timing-only fast path)."""
        return self.charge_epoch()
