"""DistDGL-like engine: sampled mini-batch DepCache training.

Reproduces the defining behaviours of DistDGL (Section 2.2, 5.3):

- neighborhood sampling with a (10, 25) fanout -- at most 10 in-
  neighbors of each seed, then at most 25 of each of those;
- mini-batch synchronous SGD over each worker's training vertices;
- per-batch *sampling RPCs* against the distributed graph store: the
  sampled closure's remote vertex ids and features are fetched over the
  network every batch, which is the bottleneck that keeps DistDGL's GPU
  utilization low (Figure 13) and its bandwidth use high;
- an accuracy ceiling below full-batch training (Figure 14), because
  only a sampled subset of neighbors participates.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import CPU, GPU, NET_RECV, Timeline
from repro.comm.scheduler import CommOptions
from repro.core.blocks import LayerBlock, build_block_from_edges
from repro.core.model import GNNModel
from repro.engines.base import BACKWARD_MULTIPLIER, EpochReport
from repro.graph.graph import Graph
from repro.partition.base import Partitioning
from repro.partition.chunk import chunk_partition
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad

# CPU seconds to draw one sampled edge from the local/remote store.
_SAMPLE_SECONDS_PER_EDGE = 2.5e-7
# Per-sampling-RPC latency (one round per layer per batch).
_RPC_ROUNDS_PER_LAYER = 2


class SamplingEngine:
    """Mini-batch sampled training in the style of DistDGL."""

    name = "distdgl"

    def __init__(
        self,
        graph: Graph,
        model: GNNModel,
        cluster: ClusterSpec,
        partitioning: Optional[Partitioning] = None,
        comm: CommOptions = CommOptions.none(),
        fanouts: Tuple[int, ...] = (10, 25),
        batch_size: int = 128,
        record_timeline: bool = False,
        seed: int = 0,
        **_ignored,
    ):
        if graph.features is None or graph.labels is None:
            raise ValueError("training graph needs features and labels")
        if len(fanouts) != model.num_layers:
            raise ValueError("need one fanout per layer")
        self.graph = graph
        self.model = model
        self.cluster = cluster
        self.partitioning = partitioning or chunk_partition(
            graph, cluster.num_workers
        )
        self.fanouts = tuple(fanouts)
        self.batch_size = batch_size
        self.timeline: Timeline = cluster.make_timeline(record=record_timeline)
        self.rng = np.random.default_rng(seed)
        self.assignment = self.partitioning.assignment
        self.dims = model.dims()
        self.num_layers = model.num_layers
        self._epoch = 0

    # ------------------------------------------------------------------
    def plan(self):
        """Sampling has no static plan; kept for interface parity."""
        return None

    # ------------------------------------------------------------------
    def _sample_blocks(
        self, seeds: np.ndarray, worker: int = 0
    ) -> Tuple[List[LayerBlock], int, int]:
        """Top-down sampled blocks; returns (blocks, edges, remote rows).

        ``blocks[l-1]`` computes layer ``l``; blocks are built top
        (layer L) first, so lower layers cover the expanded frontier.
        """
        csc = self.graph.csc
        blocks: List[Optional[LayerBlock]] = [None] * self.num_layers
        frontier = np.unique(seeds)
        total_edges = 0
        remote_rows = 0
        for l in range(self.num_layers, 0, -1):
            fanout = self.fanouts[self.num_layers - l]
            src_parts, dst_parts, eid_parts = [], [], []
            for v in frontier:
                lo, hi = csc.indptr[v], csc.indptr[v + 1]
                degree = hi - lo
                if degree == 0:
                    continue
                if degree <= fanout:
                    take = np.arange(lo, hi)
                else:
                    take = lo + self.rng.choice(degree, size=fanout, replace=False)
                src_parts.append(csc.other[take])
                dst_parts.append(csc.key[take])
                eid_parts.append(csc.edge_ids[take])
            if src_parts:
                src = np.concatenate(src_parts)
                dst = np.concatenate(dst_parts)
                eids = np.concatenate(eid_parts)
            else:
                src = dst = eids = np.empty(0, dtype=np.int64)
            block = build_block_from_edges(
                self.graph, frontier, src, dst, eids, l
            )
            blocks[l - 1] = block
            total_edges += block.num_edges
            frontier = block.input_vertices
        # Remote rows: features fetched from peers for the bottom block.
        owners = self.assignment[blocks[0].input_vertices]
        remote_rows = int((owners != worker).sum())
        return blocks, total_edges, remote_rows

    # ------------------------------------------------------------------
    def _charge_batch(
        self, worker: int, blocks: List[LayerBlock], sampled_edges: int, remote_rows: int
    ) -> None:
        device = self.cluster.device
        network = self.cluster.network
        # Sampling CPU time + RPC rounds against the graph store.
        self.timeline.advance(
            worker, CPU, sampled_edges * _SAMPLE_SECONDS_PER_EDGE
        )
        rpc_bytes = remote_rows * (self.dims[0] * 4 + 8) + sampled_edges * 8
        rpc_time = (
            network.latency_s * _RPC_ROUNDS_PER_LAYER * self.num_layers
            + rpc_bytes / network.bytes_per_s
        )
        self.timeline.advance(worker, NET_RECV, rpc_time, num_bytes=int(rpc_bytes))
        # GPU compute: forward + backward over the sampled blocks.
        gpu = 0.0
        for l in range(1, self.num_layers + 1):
            layer = self.model.layer(l)
            block = blocks[l - 1]
            gpu += device.dense_time(layer.dense_flops(block))
            gpu += device.sparse_time(layer.sparse_flops(block))
            gpu += device.transfer_time(
                block.num_inputs * self.dims[l - 1] * 4
            )
        self.timeline.advance(worker, GPU, gpu * (1.0 + BACKWARD_MULTIPLIER))

    # ------------------------------------------------------------------
    def _forward_blocks(
        self, blocks: List[LayerBlock], training: bool
    ) -> Tensor:
        h = Tensor(
            self.graph.features[blocks[0].input_vertices],
            requires_grad=False,
        )
        out = h
        for l in range(1, self.num_layers + 1):
            layer = self.model.layer(l)
            if training:
                out = layer.forward(blocks[l - 1], out)
            else:
                with no_grad():
                    out = layer.forward(blocks[l - 1], out)
        return out

    def run_epoch(self, optimizer=None) -> EpochReport:
        """One epoch = every worker's train vertices in mini-batches."""
        train_mask = self.graph.train_mask
        if train_mask is None:
            raise ValueError("graph has no train mask; call set_split()")
        m = self.cluster.num_workers
        t_start = self.timeline.barrier()
        worker_batches = []
        for w in range(m):
            owned = self.partitioning.part(w)
            mine = owned[train_mask[owned]]
            self.rng.shuffle(mine)
            worker_batches.append(
                [
                    mine[i : i + self.batch_size]
                    for i in range(0, len(mine), self.batch_size)
                ]
            )
        num_rounds = max((len(b) for b in worker_batches), default=0)
        total_loss = 0.0
        loss_terms = 0
        comm_bytes = 0
        for r in range(num_rounds):
            for w in range(m):
                if r >= len(worker_batches[w]) or len(worker_batches[w][r]) == 0:
                    continue
                seeds = worker_batches[w][r]
                blocks, edges, remote_rows = self._sample_blocks(seeds, worker=w)
                self._charge_batch(w, blocks, edges, remote_rows)
                comm_bytes += remote_rows * self.dims[0] * 4
                logits = self._forward_blocks(blocks, training=True)
                rows = np.searchsorted(blocks[-1].compute_vertices, seeds)
                loss = F.cross_entropy(logits[rows], self.graph.labels[seeds])
                total_loss += float(loss.data)
                loss_terms += 1
                loss.backward()
                if optimizer is not None:
                    optimizer.step()
                    optimizer.zero_grad()
            # Synchronous SGD: parameter all-reduce each round.
            self._charge_allreduce()
            self.timeline.barrier()
        t_end = self.timeline.barrier()
        self._epoch += 1
        return EpochReport(
            epoch=self._epoch,
            epoch_time_s=t_end - t_start,
            loss=total_loss / max(loss_terms, 1),
            comm_bytes=comm_bytes,
            forward_time_s=0.0,
            backward_time_s=0.0,
            allreduce_time_s=0.0,
        )

    def charge_epoch(self) -> float:
        """Timing-only epoch (samples blocks, skips tensor math)."""
        train_mask = self.graph.train_mask
        if train_mask is None:
            raise ValueError("graph has no train mask; call set_split()")
        m = self.cluster.num_workers
        t_start = self.timeline.barrier()
        worker_batches = []
        for w in range(m):
            owned = self.partitioning.part(w)
            mine = owned[train_mask[owned]]
            worker_batches.append(
                [
                    mine[i : i + self.batch_size]
                    for i in range(0, len(mine), self.batch_size)
                ]
            )
        num_rounds = max((len(b) for b in worker_batches), default=0)
        for r in range(num_rounds):
            for w in range(m):
                if r >= len(worker_batches[w]) or len(worker_batches[w][r]) == 0:
                    continue
                blocks, edges, remote_rows = self._sample_blocks(
                    worker_batches[w][r], worker=w
                )
                self._charge_batch(w, blocks, edges, remote_rows)
            self._charge_allreduce()
            self.timeline.barrier()
        self._epoch += 1
        return self.timeline.barrier() - t_start

    def _charge_allreduce(self) -> None:
        m = self.cluster.num_workers
        if m == 1:
            return
        network = self.cluster.network
        param_bytes = self.model.parameter_bytes()
        wire = 2.0 * (m - 1) / m * param_bytes / network.bytes_per_s
        for w in range(m):
            self.timeline.advance(
                w, "net_send", wire + 2 * (m - 1) * network.latency_s,
                num_bytes=int(param_bytes),
            )

    # ------------------------------------------------------------------
    def evaluate(self, mask: Optional[np.ndarray] = None) -> float:
        """Sampled-inference accuracy (the sampling accuracy ceiling)."""
        if mask is None:
            mask = self.graph.test_mask
        if mask is None:
            raise ValueError("graph has no test mask; call set_split()")
        targets = np.where(mask)[0]
        correct = 0
        for i in range(0, len(targets), self.batch_size):
            seeds = targets[i : i + self.batch_size]
            blocks, _, _ = self._sample_blocks(seeds)
            logits = self._forward_blocks(blocks, training=False)
            rows = np.searchsorted(blocks[-1].compute_vertices, seeds)
            predictions = logits.data[rows].argmax(axis=1)
            correct += int((predictions == self.graph.labels[seeds]).sum())
        return correct / len(targets) if len(targets) else 0.0
