"""DistDGL-like engine: a thin façade over :mod:`repro.sampling`.

Reproduces the defining behaviours of DistDGL (Section 2.2, 5.3) as
one configuration of :class:`~repro.sampling.SampledTrainingEngine`:

- uniform neighborhood sampling with a (10, 25) fanout, drawn from the
  single sequential RNG stream the pre-subsystem engine used
  (``legacy_rng=True``), so loss trajectories reproduce bit for bit;
- mini-batch synchronous SGD over each worker's training vertices;
- per-batch *sampling RPCs* against the distributed graph store
  (``rpc_accounting=True``): the id-plane round trips and payloads
  that keep DistDGL's GPU utilization low (Figure 13) — feature rows
  themselves are priced by the compiled exchange phase like every
  other engine;
- an accuracy ceiling below full-batch training (Figure 14), because
  only a sampled subset of neighbors participates.

The old private charging formulas are gone: every mini-batch now
compiles to the typed Program IR and is charged by the accountant.
``_sample_blocks`` survives for callers that want raw blocks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.core.blocks import LayerBlock
from repro.core.model import GNNModel
from repro.graph.graph import Graph
from repro.partition.base import Partitioning
from repro.sampling.engine import SampledTrainingEngine


class SamplingEngine(SampledTrainingEngine):
    """Mini-batch sampled training in the style of DistDGL."""

    name = "distdgl"

    def __init__(
        self,
        graph: Graph,
        model: GNNModel,
        cluster: ClusterSpec,
        partitioning: Optional[Partitioning] = None,
        comm: CommOptions = CommOptions.none(),
        fanouts: Tuple[int, ...] = (10, 25),
        batch_size: int = 128,
        record_timeline: bool = False,
        seed: int = 0,
        **kwargs,
    ):
        super().__init__(
            graph,
            model,
            cluster,
            partitioning=partitioning,
            comm=comm,
            fanouts=fanouts,
            batch_size=batch_size,
            record_timeline=record_timeline,
            seed=seed,
            sampler="uniform",
            kappa=kwargs.pop("kappa", 0.0),
            rpc_accounting=True,
            legacy_rng=True,
            **kwargs,
        )

    def _sample_blocks(
        self, seeds: np.ndarray, worker: int = 0
    ) -> Tuple[List[LayerBlock], int, int]:
        """Top-down sampled blocks; returns (blocks, edges, remote rows).

        ``blocks[l-1]`` computes layer ``l``; blocks are built top
        (layer L) first, so lower layers cover the expanded frontier.
        """
        closure = self.sampler.sample_batch(
            self.graph, seeds, worker=worker, legacy_rng=self.rng
        )
        owners = self.assignment[closure.blocks[0].input_vertices]
        return (
            closure.blocks,
            closure.num_sampled_edges,
            int((owners != worker).sum()),
        )
