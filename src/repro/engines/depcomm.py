"""DepComm engine (Algorithm 3): communicate every remote dependency.

Workers compute only their own vertices; every layer's remote inputs
are pulled from their masters (forward) and partial gradients are
pushed back (backward), via the master-mirror exchange.  No redundant
computation, per-layer communication every epoch -- the strategy of
ROC/DistGNN/Dorylus (here with NeutronStar's chunked, ring-scheduled,
overlapped communication unless the options say otherwise).

With a :class:`repro.cache.CacheConfig`, an explicit cache mode is
layered on top: the admission policy ranks each layer's remote
dependencies and the :class:`repro.cache.CacheBudget` admits a prefix
into the staleness-bounded CACHED set (served from the historical
cache, re-fetched every ``tau`` epochs).  Unlike the hybrid greedy --
which only picks CACHED when it strictly amortizes -- this user-driven
mode admits regardless of ``tau``: at ``tau = 0`` the run stays
bit-identical to plain DepComm, which is the determinism contract the
cache subsystem is tested against.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.cache.budget import CacheBudget
from repro.cache.policies import make_policy
from repro.engines.base import BaseEngine
from repro.graph.khop import dependency_layers


class DepCommEngine(BaseEngine):
    """All remote dependencies communicated (R = empty, C = D)."""

    name = "depcomm"
    chunked_execution = True
    tape_location = "host"

    def decide_dependencies(
        self, worker: int
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray], float]:
        owned = self.partitioning.part(worker)
        deps = dependency_layers(self.graph, owned, self.num_layers)
        cached = [np.empty(0, dtype=np.int64) for _ in deps]
        stale = [np.empty(0, dtype=np.int64) for _ in deps]
        communicated = [d.copy() for d in deps]
        if self.cache_config is not None:
            budget = CacheBudget.for_config(self.cache_config)
            policy = make_policy(
                self.cache_config, self.graph, self.partitioning, worker
            )
            for l in range(1, self.num_layers + 1):
                entry_bytes = self.dims[l - 1] * 4
                taken: List[int] = []
                for u in policy.rank(deps[l - 1], l):
                    if not budget.admit(entry_bytes):
                        break
                    taken.append(int(u))
                stale[l - 1] = np.asarray(sorted(taken), dtype=np.int64)
                communicated[l - 1] = np.setdiff1d(deps[l - 1], stale[l - 1])
        return cached, communicated, stale, 0.0
