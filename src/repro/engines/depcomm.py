"""DepComm engine (Algorithm 3): communicate every remote dependency.

Workers compute only their own vertices; every layer's remote inputs
are pulled from their masters (forward) and partial gradients are
pushed back (backward), via the master-mirror exchange.  No redundant
computation, per-layer communication every epoch -- the strategy of
ROC/DistGNN/Dorylus (here with NeutronStar's chunked, ring-scheduled,
overlapped communication unless the options say otherwise).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.engines.base import BaseEngine
from repro.graph.khop import dependency_layers


class DepCommEngine(BaseEngine):
    """All remote dependencies communicated (R = empty, C = D)."""

    name = "depcomm"
    chunked_execution = True
    tape_location = "host"

    def decide_dependencies(
        self, worker: int
    ) -> Tuple[List[np.ndarray], List[np.ndarray], float]:
        owned = self.partitioning.part(worker)
        deps = dependency_layers(self.graph, owned, self.num_layers)
        cached = [np.empty(0, dtype=np.int64) for _ in deps]
        communicated = [d.copy() for d in deps]
        return cached, communicated, 0.0
