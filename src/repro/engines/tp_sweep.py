"""Skew x hidden-dim sweep locating the hybrid <-> tensor-parallel crossover.

One grid cell fixes a ``scaled_social`` hub exponent (degree skew) and a
hidden width, then charges an epoch for every strategy: the three pure
dependency engines, the pure tensor-parallel engine, and the four-way
hybrid (``hybrid4``).  The interesting diagonal is NeutronTP's claim:
dense slice transposes are volume-balanced and framing-free, so they
overtake the per-vertex exchange exactly where skew concentrates sends
on hub owners *and* wide hiddens make the straggler's bytes expensive --
while at narrow hiddens the all-to-all's fixed per-peer latency floor
loses to the (overlappable) sparse exchange everywhere.

Used by ``repro tp-sweep`` and ``benchmarks/bench_tp.py``; the catalog's
``social-flat`` / ``social-skewed`` entries pin the two endpoints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.graph import generators
from repro.training.prep import prepare_graph

#: Default grid: the ``social-flat`` / ``social-skewed`` endpoints plus
#: ``social-large``'s midpoint skew, against narrow / medium / wide
#: hiddens.  The crossover sits on the wide-hidden column.
DEFAULT_EXPONENTS = (0.1, 0.85, 1.2)
DEFAULT_HIDDENS = (16, 64, 256)

PURE_THREE_WAY = ("depcache", "depcomm", "hybrid")
STRATEGIES = PURE_THREE_WAY + ("tp", "hybrid4")


def run_tp_sweep(
    exponents: Sequence[float] = DEFAULT_EXPONENTS,
    hiddens: Sequence[int] = DEFAULT_HIDDENS,
    *,
    num_vertices: int = 3072,
    avg_degree: float = 16.0,
    num_communities: int = 8,
    feature_dim: int = 64,
    num_labels: int = 16,
    num_layers: int = 2,
    arch: str = "gcn",
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
) -> Dict:
    """Charge every (exponent, hidden) cell for all five strategies.

    Returns ``{"rows": [...], "crossover": {...}}``.  Each row carries
    the per-strategy modeled epoch seconds, the best pure three-way
    time, and ``hybrid4``'s chosen ``tp_layers``.  ``crossover``
    summarises where tensor parallelism wins: the cells whose four-way
    plan beats the best pure three-way plan, and the cells where even
    the pure TP engine does.
    """
    from repro.engines import make_engine

    cluster = cluster or ClusterSpec.ecs(16)
    rows: List[Dict] = []
    for exponent in exponents:
        graph = generators.scaled_social(
            num_vertices,
            avg_degree=avg_degree,
            num_communities=num_communities,
            hub_exponent=exponent,
            seed=seed,
        )
        generators.attach_features(
            graph, feature_dim, num_labels, seed=seed + 1, class_signal=0.6
        )
        graph.name = f"social-exp{exponent:g}"
        prepared = prepare_graph(graph, arch)
        for hidden in hiddens:
            model = GNNModel.build(
                arch, feature_dim, hidden, num_labels,
                num_layers=num_layers, seed=seed,
            )
            times: Dict[str, float] = {}
            tp_layers: List[bool] = []
            for strategy in STRATEGIES:
                engine = make_engine(strategy, prepared, model, cluster)
                times[strategy] = engine.charge_epoch()
                if strategy == "hybrid4":
                    tp_layers = list(engine.plan().tp_layers)
            best_three = min(times[name] for name in PURE_THREE_WAY)
            rows.append({
                "hub_exponent": exponent,
                "hidden": hidden,
                "times_s": times,
                "best_three_s": best_three,
                "tp_layers": tp_layers,
                "four_way_wins": times["hybrid4"] < best_three,
                "tp_wins": times["tp"] < best_three,
            })
    return {
        "num_vertices": num_vertices,
        "avg_degree": avg_degree,
        "num_workers": cluster.num_workers,
        "feature_dim": feature_dim,
        "num_layers": num_layers,
        "arch": arch,
        "exponents": list(exponents),
        "hiddens": list(hiddens),
        "rows": rows,
        "crossover": _summarise_crossover(rows),
    }


def _summarise_crossover(rows: List[Dict]) -> Dict:
    """Locate the flip region and the two corner verdicts.

    ``flattest`` / ``most_skewed`` order cells by (exponent, hidden):
    the flattest cell is the narrow-hidden low-skew corner, the most
    skewed the wide-hidden high-skew corner -- the two ends of the
    sweep's diagonal.
    """
    ordered = sorted(rows, key=lambda r: (r["hub_exponent"], r["hidden"]))
    flattest = ordered[0]
    most_skewed = ordered[-1]
    return {
        "four_way_win_cells": [
            [r["hub_exponent"], r["hidden"]] for r in ordered
            if r["four_way_wins"]
        ],
        "tp_win_cells": [
            [r["hub_exponent"], r["hidden"]] for r in ordered if r["tp_wins"]
        ],
        "flattest": {
            "cell": [flattest["hub_exponent"], flattest["hidden"]],
            "tp_wins": flattest["tp_wins"],
            "four_way_wins": flattest["four_way_wins"],
        },
        "most_skewed": {
            "cell": [most_skewed["hub_exponent"], most_skewed["hidden"]],
            "tp_wins": most_skewed["tp_wins"],
            "four_way_wins": most_skewed["four_way_wins"],
        },
    }
