"""Single-machine baselines: DGL-like, PyG-like, and single-node NTS.

Tables 4 and 5 compare NeutronStar against shared-memory systems.  On
one worker there are no remote dependencies, so all three run the same
numerics; they differ in the memory model:

- **DGL-like**: whole-graph execution with the full autograd tape
  (edge tensors of every layer) resident in device memory.
- **PyG-like**: DGL-like plus a dense |V| x |V| adjacency matrix (the
  paper: "it uses the matrix, instead of the compressed matrix, to
  store the graph"), which is what OOMs it first.
- **NTS single-node**: NeutronStar's chunked execution -- intermediate
  results cached in host memory, the device holding one edge chunk at a
  time (Section 5.8), letting it process graphs DGL/PyG cannot.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.engines.base import BaseEngine, EnginePlan

# Extra working memory DGL/PyG-style full-graph execution needs beyond
# the tape (workspace for segment ops and autograd temporaries).
_FRAMEWORK_OVERHEAD = 1.15


class SharedMemoryEngine(BaseEngine):
    """Single-worker full-graph engine with a selectable memory model."""

    name = "shared-memory"
    VARIANTS = ("dgl", "pyg", "nts")

    def __init__(
        self,
        graph,
        model,
        cluster=None,
        variant: str = "nts",
        paper_num_vertices: int = 0,
        **kwargs,
    ):
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}")
        cluster = cluster or ClusterSpec.single_gpu()
        if cluster.num_workers != 1:
            raise ValueError("SharedMemoryEngine runs on a single worker")
        self.variant = variant
        self.paper_num_vertices = paper_num_vertices
        self.name = variant
        if variant == "nts":
            self.chunked_execution = True
            self.tape_location = "host"
        else:
            self.chunked_execution = False
            self.tape_location = "device"
        kwargs.setdefault("comm", CommOptions.none())
        super().__init__(graph, model, cluster, **kwargs)

    def decide_dependencies(
        self, worker: int
    ) -> Tuple[List[np.ndarray], List[np.ndarray], float]:
        empty = [np.empty(0, dtype=np.int64) for _ in range(self.num_layers)]
        return empty, [e.copy() for e in empty], 0.0

    def _account_memory(self, plan: EnginePlan) -> None:
        super()._account_memory(plan)
        tracker = plan.device_memory[0]
        if self.variant == "pyg":
            # PyG stores the graph as a dense |V| x |V| matrix.  The
            # quadratic term under-scales when vertex counts are scaled
            # down by s (linear terms shrink by s, quadratic by s^2), so
            # the scaled stand-in is 4 * V * paper_V bytes -- the same
            # value relative to the linear terms as at paper scale.
            n = self.graph.num_vertices
            paper_n = max(self.paper_num_vertices, n)
            tracker.allocate(4 * n * paper_n, "dense_adjacency")
        if self.variant in ("dgl", "pyg"):
            overhead = int(tracker.used_bytes * (_FRAMEWORK_OVERHEAD - 1.0))
            tracker.allocate(overhead, "framework_workspace")

    def _max_chunk_edges(self, plan: EnginePlan, l: int, w: int) -> int:
        """NTS single-node splits edges into fixed-size source chunks."""
        if self.variant != "nts":
            return super()._max_chunk_edges(plan, l, w)
        block = plan.blocks[l - 1][w]
        num_chunks = 16
        return int(np.ceil(block.num_edges / num_chunks))
