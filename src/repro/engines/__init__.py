"""Training engines: the paper's strategies and its baselines."""

from repro.engines.base import BaseEngine, EnginePlan, EpochReport
from repro.engines.depcache import DepCacheEngine
from repro.engines.depcomm import DepCommEngine
from repro.engines.hybrid import HybridEngine
from repro.engines.roc_like import RocLikeEngine
from repro.engines.sampling import SamplingEngine
from repro.engines.shared_memory import SharedMemoryEngine
from repro.engines.tensor_parallel import (
    FourWayHybridEngine,
    TensorParallelEngine,
)
from repro.engines.tp_sweep import run_tp_sweep
from repro.sampling.engine import SampledTrainingEngine

_ENGINES = {
    "depcache": DepCacheEngine,
    "depcomm": DepCommEngine,
    "hybrid": HybridEngine,
    "hybrid4": FourWayHybridEngine,
    "roc": RocLikeEngine,
    "distdgl": SamplingEngine,
    "sampling": SamplingEngine,
    "sampled": SampledTrainingEngine,
    "tp": TensorParallelEngine,
}


def make_engine(name: str, graph, model, cluster, **kwargs):
    """Build an engine by name (depcache | depcomm | hybrid | roc | distdgl)."""
    try:
        engine_cls = _ENGINES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_ENGINES))
        raise KeyError(f"unknown engine {name!r}; known: {known}") from None
    return engine_cls(graph, model, cluster, **kwargs)


__all__ = [
    "BaseEngine",
    "EnginePlan",
    "EpochReport",
    "DepCacheEngine",
    "DepCommEngine",
    "FourWayHybridEngine",
    "HybridEngine",
    "RocLikeEngine",
    "SampledTrainingEngine",
    "SamplingEngine",
    "SharedMemoryEngine",
    "TensorParallelEngine",
    "make_engine",
    "run_tp_sweep",
]
