"""Hybrid engine: Algorithm 4 decides caching vs communication per vertex.

The NeutronStar strategy: probe the environment constants, score every
remote dependency's redundant-computation cost (Eq. 1) against its
communication cost (Eq. 2), and cache the cache-efficient ones under
the memory budget; communicate the rest.  ``force_cache_fraction``
bypasses the cost comparison to sweep the cache/comm ratio (Figure 11).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.costmodel.costs import TensorParallelCostInputs
from repro.costmodel.partitioner import (
    DependencyPartition,
    partition_dependencies,
    vote_tp_layers,
)
from repro.costmodel.probe import probe_constants
from repro.engines.base import BaseEngine, HOST_MEMORY_BYTES

# Modeled wall time of the probe run (a few training steps on a 64-
# vertex test graph, Algorithm 4 line 1).
_PROBE_SECONDS = 6.0e-3

# By default Algorithm 4 may use this share of host memory for cached
# dependency subtrees (the rest holds the worker's own data and tape).
_DEFAULT_CACHE_BUDGET_FRACTION = 0.5


class HybridEngine(BaseEngine):
    """Cost-model-driven mixture of DepCache and DepComm."""

    name = "hybrid"
    chunked_execution = True
    tape_location = "host"

    def __init__(
        self,
        *args,
        force_cache_fraction: Optional[float] = None,
        tensor_parallel: bool = False,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if force_cache_fraction is not None and not 0 <= force_cache_fraction <= 1:
            raise ValueError("force_cache_fraction must be in [0, 1]")
        self.force_cache_fraction = force_cache_fraction
        # Four-way mode: offer tensor parallelism (NeutronTP's sliced
        # all-to-all) as a per-layer alternative to the three per-vertex
        # dependency treatments.
        self.tensor_parallel = tensor_parallel
        # Latest Algorithm-4 result per worker: online re-planning warm
        # starts the greedy from these instead of re-measuring every
        # subtree from scratch.
        self._dep_partitions: Dict[int, DependencyPartition] = {}

    def _spawn_kwargs(self):
        kwargs = super()._spawn_kwargs()
        kwargs["force_cache_fraction"] = self.force_cache_fraction
        kwargs["tensor_parallel"] = self.tensor_parallel
        return kwargs

    def _tp_inputs(self, worker: int) -> TensorParallelCostInputs:
        owned = self.partitioning.part(worker)
        return TensorParallelCostInputs(
            num_workers=self.cluster.num_workers,
            num_vertices=self.graph.num_vertices,
            num_owned=len(owned),
            total_edges=self.graph.num_edges,
            owned_in_edges=int(
                (self.assignment[self.graph.dst] == worker).sum()
            ),
        )

    def _choose_tp_layers(self) -> List[bool]:
        """Global per-layer TP vote: flip a layer iff the slowest
        worker's slice-transpose cost beats the slowest worker's
        three-way mix plus the sender-straggler penalty (see
        :func:`repro.costmodel.partitioner.vote_tp_layers`), so every
        worker executes the same per-layer strategy."""
        L = self.num_layers
        if not self.tensor_parallel or not self._dep_partitions:
            return [False] * L
        flags = vote_tp_layers(
            self._dep_partitions,
            self.assignment,
            self.dims,
            self.constants,
            self.cluster.num_workers,
        )
        return (flags + [False] * L)[:L]

    def decide_dependencies(
        self, worker: int
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray], float]:
        constants = self._constants_for(worker)
        if constants is None:
            self.constants = probe_constants(self.cluster, self.model)
            constants = self.constants
        budget = self.memory_limit_bytes
        if budget is None:
            budget = int(HOST_MEMORY_BYTES * _DEFAULT_CACHE_BUDGET_FRACTION)
        result = partition_dependencies(
            self.graph,
            self.partitioning,
            worker,
            self.dims,
            constants,
            memory_limit_bytes=budget,
            mu=self.mu,
            force_cache_fraction=self.force_cache_fraction,
            cache=self.cache_config,
            warm_start=self._dep_partitions.get(worker),
            tp=self._tp_inputs(worker) if self.tensor_parallel else None,
        )
        self._dep_partitions[worker] = result
        prep = result.modeled_seconds + _PROBE_SECONDS
        return result.cached, result.communicated, result.stale_cached, prep
