"""Tensor-parallel engine (NeutronTP): slice features, not the graph.

The fourth dependency-management strategy.  Where DepCache recomputes,
DepComm fetches, and CACHED serves stale rows, tensor parallelism makes
the whole question disappear: every worker aggregates the *full* edge
set over its column slice of every vertex's features, and two dense
slice-transpose all-to-alls per layer (slice before aggregation,
unslice after) replace the irregular mirror exchange.  Communication
volume becomes load-balanced by construction -- each worker ships
``n_own * (d - width_r)`` floats regardless of degree skew -- which is
exactly the regime where hub-heavy partitions starve the per-vertex
strategies.

:class:`TensorParallelEngine` runs *every* layer tensor-parallel;
:class:`FourWayHybridEngine` extends the hybrid greedy to a four-way
per-layer choice, flipping a layer to TP when the modeled slice-
transpose cost undercuts the best recompute/fetch/cache mix (summed
across workers, so all workers agree on the flip).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.engines.base import BaseEngine
from repro.engines.hybrid import HybridEngine

# Modeled preparation time: slicing the feature matrix and setting up
# the all-to-all routes is a single linear pass, far cheaper than any
# dependency expansion -- a small flat constant mirrors that.
_TP_PREP_SECONDS = 1.0e-3


class TensorParallelEngine(BaseEngine):
    """Every layer tensor-parallel (pure NeutronTP)."""

    name = "tp"
    chunked_execution = True
    tape_location = "host"

    def decide_dependencies(
        self, worker: int
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray], float]:
        # Tensor-parallel layers have no per-vertex dependency choices:
        # the plan builder sees the TP flags and gives every layer the
        # shared full-graph block, so all three sets stay empty.
        empty = np.empty(0, dtype=np.int64)
        L = self.num_layers
        return (
            [empty] * L,
            [empty] * L,
            [empty] * L,
            _TP_PREP_SECONDS,
        )

    def _choose_tp_layers(self) -> List[bool]:
        return [True] * self.num_layers


class FourWayHybridEngine(HybridEngine):
    """Hybrid greedy with tensor parallelism as a fourth per-layer arm."""

    name = "hybrid4"

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("tensor_parallel", True)
        super().__init__(*args, **kwargs)
