"""ROC-like baseline: DepComm with whole-block broadcast communication.

Section 5.3's finding about ROC: "the ROC worker does not differentiate
the output messages with various destinations and sends the whole
messages block to all workers, where the remote workers pick the
necessary dependencies from the block."  This engine reproduces that
behaviour: identical numerics to DepComm, but every layer's exchange
ships each worker's *entire* partition representations to every peer,
received blocks stay resident on the device, and none of NeutronStar's
R/L/P optimizations apply.  It also keeps the whole autograd tape in
device memory (Section 5.8: ROC lacks chunked message computation),
which is where its OOM cases come from.
"""

from __future__ import annotations

import numpy as np

from repro.comm.scheduler import CommOptions
from repro.engines.base import EnginePlan
from repro.engines.depcomm import DepCommEngine


class RocLikeEngine(DepCommEngine):
    """DepComm numerics with ROC's broadcast communication pattern."""

    name = "roc"
    chunked_execution = False
    tape_location = "device"
    # ROC keeps separate forward and backward edge buffers plus receive
    # staging (no free-after-use chunk management).
    tape_multiplier = 2.5

    def __init__(self, *args, **kwargs):
        kwargs["comm"] = CommOptions.none()
        super().__init__(*args, **kwargs)

    def _forward_volumes(self, plan: EnginePlan, l: int) -> np.ndarray:
        """Every worker broadcasts its whole partition block."""
        m = self.cluster.num_workers
        volumes = np.zeros((m, m))
        d = self.dims[l - 1]
        for s in range(m):
            block_bytes = len(self.partitioning.part(s)) * d * 4
            for r in range(m):
                if r != s:
                    volumes[s, r] = block_bytes
        return volumes

    def _backward_volumes(self, plan: EnginePlan, l: int) -> np.ndarray:
        if l > 1:
            return self._forward_volumes(plan, l).T
        return np.zeros((self.cluster.num_workers,) * 2)

    # CPU rate at which a receiver scans a broadcast block to pick out
    # the dependencies it actually needs (the paper: "the remote workers
    # pick the necessary dependencies from the block").
    _FILTER_BYTES_PER_S = 2.0e9

    def _charge_block_filtering(self, l: int) -> None:
        """Receiver-side cost of scanning every peer's broadcast block
        and staging it over PCIe -- ROC's defining inefficiency."""
        from repro.cluster.timeline import CPU

        m = self.cluster.num_workers
        for r in range(m):
            total = 0.0
            for s in range(m):
                if s == r:
                    continue
                block_bytes = len(self.partitioning.part(s)) * self.dims[l - 1] * 4
                total += (
                    block_bytes / self._FILTER_BYTES_PER_S
                    + self.cluster.device.transfer_time(block_bytes)
                )
            self.timeline.advance(r, CPU, total)

    def _charge_forward_layer(self, plan: EnginePlan, l: int) -> None:
        self._charge_block_filtering(l)
        super()._charge_forward_layer(plan, l)

    def _charge_backward_layer(self, plan: EnginePlan, l: int) -> None:
        if l > 1:
            self._charge_block_filtering(l)
        super()._charge_backward_layer(plan, l)

    def _account_memory(self, plan: EnginePlan) -> None:
        super()._account_memory(plan)
        # Received peer blocks stay resident on the device while the
        # layer executes: (|V| - |V_own|) rows of the widest layer.
        widest = max(self.dims[:-1])
        for w, tracker in enumerate(plan.device_memory):
            remote_rows = self.graph.num_vertices - len(self.partitioning.part(w))
            tracker.allocate(remote_rows * widest * 4, "received_blocks")
