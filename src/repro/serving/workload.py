"""Seeded inference workload generation.

A serving workload is a time-ordered stream of node-level prediction
requests.  Three knobs shape it:

- **Poisson arrivals** at ``rate_rps`` (exponential gaps), optionally
  scaled up inside :class:`BurstPhase` windows so overload behaviour
  (queueing, shedding) can be exercised;
- **Zipfian popularity**: vertex ``rank r`` is requested with weight
  ``1 / (r + 1)^s``, over a seeded permutation of the vertex ids, so a
  handful of hot vertices dominate -- the regime where micro-batch
  dedup and the historical cache pay off;
- a **seed**: all randomness routes through
  :func:`repro.utils.rng.derive_rng` with named streams, so the same
  config yields a bit-identical request list every time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class Request:
    """One node-level prediction request."""

    req_id: int
    vertex: int
    arrival_s: float


@dataclass(frozen=True)
class BurstPhase:
    """Arrival-rate multiplier over ``[start_s, end_s)``."""

    start_s: float
    end_s: float
    rate_multiplier: float = 4.0

    def __post_init__(self):
        if self.start_s < 0:
            raise ValueError("burst start must be >= 0")
        if self.end_s <= self.start_s:
            raise ValueError("burst window must have end > start")
        if self.rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")

    def active(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a generated request stream.

    ``zipf_exponent = 0`` degrades to uniform popularity; larger values
    concentrate requests on fewer vertices (web-style traffic is often
    quoted near 1.0).
    """

    num_requests: int
    rate_rps: float = 1000.0
    zipf_exponent: float = 1.0
    seed: int = 0
    bursts: Tuple[BurstPhase, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.num_requests < 1:
            raise ValueError("num_requests must be positive")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.zipf_exponent < 0:
            raise ValueError("zipf_exponent must be >= 0")

    def rate_at(self, t: float) -> float:
        rate = self.rate_rps
        for burst in self.bursts:
            if burst.active(t):
                rate *= burst.rate_multiplier
        return rate


def generate_workload(config: WorkloadConfig, num_vertices: int) -> List[Request]:
    """Materialise the request stream for a graph of ``num_vertices``.

    Arrivals and popularity use independent derived streams, so e.g.
    changing ``num_requests`` leaves the popularity permutation -- and
    therefore which vertices are hot -- untouched.
    """
    if num_vertices < 1:
        raise ValueError("need at least one vertex to request")

    arrival_rng = derive_rng(config.seed, "serving", "arrivals")
    popularity_rng = derive_rng(config.seed, "serving", "popularity")

    # Zipf weights over ranks, mapped to vertex ids via a seeded
    # permutation so popularity is not correlated with id order (ids
    # often encode locality in the catalog datasets).
    ranks = np.arange(num_vertices, dtype=np.float64)
    weights = 1.0 / np.power(ranks + 1.0, config.zipf_exponent)
    probs = weights / weights.sum()
    permutation = popularity_rng.permutation(num_vertices)
    picks = popularity_rng.choice(num_vertices, size=config.num_requests, p=probs)
    vertices = permutation[picks]

    # Inhomogeneous Poisson arrivals: the next gap is drawn at the
    # current intensity, so a burst window multiplies the local rate.
    requests: List[Request] = []
    t = 0.0
    for i in range(config.num_requests):
        t += float(arrival_rng.exponential(1.0 / config.rate_at(t)))
        requests.append(Request(req_id=i, vertex=int(vertices[i]), arrival_s=t))
    return requests
