"""Per-request latency accounting and service-level objectives.

Every request ends as a :class:`RequestRecord` in a
:class:`LatencyLedger` -- including shed ones, so tail percentiles and
shed rates are computed over the *offered* load, not just the served
share.  The ledger is plain data derived deterministically from the
simulated run: same seed, same config, bit-identical ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class SLOConfig:
    """Admission-control knobs.

    ``max_pending``: a request arriving while this many admitted
    requests are still in flight is shed immediately (load shedding
    under overload).  ``deadline_s`` is advisory -- requests finishing
    past it are counted as violations, not cancelled.  ``None``
    disables either bound.
    """

    max_pending: Optional[int] = None
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")


@dataclass(frozen=True)
class RequestRecord:
    """Outcome of one request.

    ``mode`` is how it was served (``cached`` / ``local`` / ``remote``
    / ``shed``); ``worker`` the coordinator that answered it;
    ``comm_bytes`` its share of the cross-worker traffic its batch
    moved; ``staleness_s`` the age of the cached embedding it was
    served from (0 for exact recomputes); ``degraded`` marks answers
    produced on a fallback worker or from an expired cache entry while
    the owner was dead.

    Fleet serving (:mod:`repro.serving.fleet`) annotates three more
    fields: ``replica`` is the serving group that produced the answer
    (-1 for a plain single-server run), ``hedged`` marks answers won by
    a seeded duplicate sent to a backup replica, and ``failover`` marks
    answers re-served on a healthy replica after the routed one was
    declared dead.
    """

    req_id: int
    vertex: int
    arrival_s: float
    dispatch_s: float
    finish_s: Optional[float]
    mode: str
    worker: int
    comm_bytes: float = 0.0
    staleness_s: float = 0.0
    shed: bool = False
    degraded: bool = False
    replica: int = -1
    hedged: bool = False
    failover: bool = False

    @property
    def latency_s(self) -> Optional[float]:
        if self.shed or self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s


class LatencyLedger:
    """Accumulates :class:`RequestRecord` rows and summarises them."""

    def __init__(self):
        self.records: List[RequestRecord] = []

    def add(self, record: RequestRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    def served(self) -> List[RequestRecord]:
        return [r for r in self.records if not r.shed]

    def latencies_s(self) -> np.ndarray:
        return np.array(
            [r.latency_s for r in self.records if r.latency_s is not None]
        )

    def percentile_s(self, p: float) -> float:
        lat = self.latencies_s()
        return float(np.percentile(lat, p)) if len(lat) else 0.0

    @property
    def p50_s(self) -> float:
        return self.percentile_s(50.0)

    @property
    def p95_s(self) -> float:
        return self.percentile_s(95.0)

    @property
    def p99_s(self) -> float:
        return self.percentile_s(99.0)

    @property
    def mean_s(self) -> float:
        lat = self.latencies_s()
        return float(lat.mean()) if len(lat) else 0.0

    def throughput_rps(self) -> float:
        """Served requests over the span from first arrival to last reply."""
        served = self.served()
        if not served:
            return 0.0
        start = min(r.arrival_s for r in self.records)
        end = max(r.finish_s for r in served)
        span = end - start
        return len(served) / span if span > 0 else float("inf")

    # ------------------------------------------------------------------
    @property
    def shed_count(self) -> int:
        return sum(1 for r in self.records if r.shed)

    @property
    def degraded_count(self) -> int:
        return sum(1 for r in self.records if r.degraded)

    def mode_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.mode] = out.get(r.mode, 0) + 1
        return out

    @property
    def total_comm_bytes(self) -> float:
        return float(sum(r.comm_bytes for r in self.records))

    def mean_staleness_s(self) -> float:
        stale = [r.staleness_s for r in self.records if r.mode == "cached"]
        return float(np.mean(stale)) if stale else 0.0

    def deadline_violations(self, deadline_s: float) -> int:
        return sum(
            1
            for r in self.records
            if r.latency_s is not None and r.latency_s > deadline_s
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary plus the full per-request table."""
        return {
            "num_requests": len(self.records),
            "served": len(self.served()),
            "shed": self.shed_count,
            "degraded": self.degraded_count,
            "mode_counts": self.mode_counts(),
            "latency_p50_ms": self.p50_s * 1e3,
            "latency_p95_ms": self.p95_s * 1e3,
            "latency_p99_ms": self.p99_s * 1e3,
            "latency_mean_ms": self.mean_s * 1e3,
            "throughput_rps": self.throughput_rps(),
            "total_comm_bytes": self.total_comm_bytes,
            "mean_staleness_s": self.mean_staleness_s(),
            "records": [self._record_dict(r) for r in self.records],
        }

    @staticmethod
    def _record_dict(r: RequestRecord) -> Dict[str, object]:
        out: Dict[str, object] = {
            "req_id": r.req_id,
            "vertex": r.vertex,
            "arrival_s": r.arrival_s,
            "dispatch_s": r.dispatch_s,
            "finish_s": r.finish_s,
            "latency_ms": (
                None if r.latency_s is None else r.latency_s * 1e3
            ),
            "mode": r.mode,
            "worker": r.worker,
            "comm_bytes": r.comm_bytes,
            "staleness_s": r.staleness_s,
            "shed": r.shed,
            "degraded": r.degraded,
        }
        # Fleet annotations only appear on fleet-routed records, so a
        # plain single-server ledger serialises exactly as it always
        # did (the golden-parity fixtures pin that layout).
        if r.replica >= 0:
            out["replica"] = r.replica
            out["hedged"] = r.hedged
            out["failover"] = r.failover
        return out
