"""The online inference server.

An :class:`InferenceServer` answers a time-ordered stream of node-level
prediction requests against a trained model on the partitioned cluster.
Execution is simulated on the same :class:`~repro.cluster.timeline.Timeline`
the training engines charge, so request latency is made of the same
ingredients as epoch time: wire time and latency from the
:class:`~repro.cluster.network.NetworkProfile`, compute priced by the
probed ``T_v`` / ``T_e`` constants, BSP exchanges through
:func:`~repro.comm.scheduler.run_exchange`.

Per micro-batch the server:

1. applies admission control (``SLOConfig.max_pending``), shedding
   requests that arrive over a full backlog;
2. serves vertices whose historical embedding is still inside the
   staleness bound ``tau_s`` straight from the cache (staleness keyed
   to the *arrival time* of the batch's oldest request per vertex, so
   raising ``tau_s`` can only merge recompute events, never add them);
3. recomputes the rest, either **locally** on the coordinating worker
   (DepCache-style closure recompute, zero traffic) or **remotely**
   as a distributed layer-by-layer forward (DepComm-style exchanges);
4. replies, appending one :class:`~repro.serving.slo.RequestRecord`
   per request to the ledger.

Numerically every answer is exact: computed answers run the real model
forward over the union closure, and cached answers replay previously
computed rows bit-for-bit (embeddings are static after training), so
batching and caching change *when* and *where* work happens -- never
the predictions.

When a :class:`~repro.resilience.faults.FaultSchedule` marks workers
crashed, serving degrades instead of failing: a dead coordinator is
replaced by the next alive worker in the ring, the dead worker's
compute share folds into the coordinator, exchanges run with
``participants`` restricted to live workers, and expired cache entries
are served stale ("stale-if-error") when the owner is dead.  All such
answers carry ``degraded=True`` in the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cache.historical import HistoricalEmbeddingCache
from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import CPU, GPU, NET_RECV, NET_SEND, Timeline
from repro.comm.scheduler import CommOptions, run_exchange
from repro.core.model import GNNModel
from repro.costmodel.probe import ProbeResult, probe_constants
from repro.execution.executor import StalenessBoundedReader, run_closure_forward
from repro.graph.graph import Graph
from repro.graph.khop import khop_closure
from repro.partition.base import Partitioning
from repro.resilience.faults import FaultSchedule
from repro.resilience.injector import FaultInjector
from repro.serving.batcher import MicroBatch, MicroBatcher
from repro.serving.planner import RequestPlanner
from repro.serving.slo import LatencyLedger, RequestRecord, SLOConfig
from repro.serving.workload import Request

_SERVE_MODES = ("auto", "local", "remote")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one serving run.

    ``tau_s`` bounds how stale a served historical embedding may be, in
    seconds of simulated time (0 disables the cache: every request
    recomputes).  ``mode`` forces local/remote recompute or lets the
    planner pick per batch.  ``request_bytes`` / ``reply_bytes`` size
    the client-facing messages; ``cache_lookup_s`` is the per-request
    cost of probing the embedding store.
    """

    batch_window_s: float = 0.002
    max_batch: int = 32
    tau_s: float = 0.0
    mode: str = "auto"
    slo: SLOConfig = field(default_factory=SLOConfig)
    request_bytes: int = 64
    reply_bytes: int = 64
    cache_lookup_s: float = 5e-6

    def __post_init__(self):
        if self.mode not in _SERVE_MODES:
            raise ValueError(f"mode must be one of {_SERVE_MODES}, got {self.mode!r}")
        if self.tau_s < 0:
            raise ValueError("tau_s must be >= 0")
        if self.request_bytes < 0 or self.reply_bytes < 0:
            raise ValueError("message sizes must be >= 0")
        if self.cache_lookup_s < 0:
            raise ValueError("cache_lookup_s must be >= 0")


@dataclass
class ServingResult:
    """Everything one serving run produced."""

    ledger: LatencyLedger
    predictions: Dict[int, int]
    timeline: Timeline
    num_batches: int
    cache: HistoricalEmbeddingCache

    @property
    def makespan_s(self) -> float:
        return self.timeline.makespan

    def summary(self) -> Dict[str, object]:
        out = self.ledger.to_dict()
        del out["records"]
        out["num_batches"] = self.num_batches
        out["cache_hits"] = self.cache.counters.hits
        out["cache_expirations"] = self.cache.counters.expirations
        out["makespan_s"] = self.makespan_s
        return out


class InferenceServer:
    """Serves node-level predictions on the partitioned cluster."""

    def __init__(
        self,
        graph: Graph,
        model: GNNModel,
        cluster: ClusterSpec,
        partitioning: Partitioning,
        config: Optional[ServingConfig] = None,
        constants: Optional[ProbeResult] = None,
        faults: Optional[FaultSchedule] = None,
        comm: CommOptions = CommOptions.all(),
        record_timeline: bool = True,
    ):
        if graph.features is None:
            raise ValueError("serving needs a graph with features")
        if len(partitioning.assignment) != graph.num_vertices:
            raise ValueError("partitioning does not match the graph")
        self.graph = graph
        self.model = model
        self.cluster = cluster
        self.partitioning = partitioning
        self.config = config or ServingConfig()
        self.constants = constants or probe_constants(cluster, model, comm=comm)
        self.faults = faults if faults else None
        self.comm = comm
        self.record_timeline = record_timeline
        self.num_layers = model.num_layers
        self.dims = model.dims()
        self.planner = RequestPlanner(
            graph,
            partitioning,
            self.constants,
            self.num_layers,
            cluster.network,
            mode=self.config.mode,
        )
        # Historical h^L rows, one logical layer, stamped in microseconds
        # of simulated arrival time (tau_s converts to the same unit).
        # Reads go through the same StalenessBoundedReader the training
        # gather uses, so the freshness rule cannot fork between paths.
        self.cache = HistoricalEmbeddingCache(
            num_layers=1, tau=self.config.tau_s * 1e6
        )
        self.reader = StalenessBoundedReader(self.cache)

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Sequence[Request],
        timeline: Optional[Timeline] = None,
        ledger: Optional[LatencyLedger] = None,
        predictions: Optional[Dict[int, int]] = None,
        inflight: Optional[List[float]] = None,
    ) -> ServingResult:
        """Run a request stream (or one segment of it) and return the ledger.

        With the default ``None`` state arguments the whole stream is
        served against fresh state -- the historical behavior.  Passing
        the ``timeline`` / ``ledger`` / ``predictions`` / ``inflight``
        of a previous call continues that run instead, so a caller (the
        ops harness) can serve a stream in segments, observe the ledger
        between segments, and retune ``self.config`` mid-stream (e.g.
        tighten admission control) without forking the simulated clock.
        """
        cfg = self.config
        network = self.cluster.network
        m = self.cluster.num_workers
        if timeline is None:
            timeline = Timeline(m, record=self.record_timeline)
        injector = FaultInjector(self.faults) if self.faults else None
        batcher = MicroBatcher(cfg.batch_window_s, cfg.max_batch)
        batches = batcher.batches(requests)
        if ledger is None:
            ledger = LatencyLedger()
        if predictions is None:
            predictions = {}
        if inflight is None:
            inflight = []  # finish times of admitted requests

        for batch in batches:
            self._serve_batch(
                batch, timeline, network, injector, ledger, predictions, inflight
            )
        return ServingResult(
            ledger=ledger,
            predictions=predictions,
            timeline=timeline,
            num_batches=len(batches),
            cache=self.cache,
        )

    # ------------------------------------------------------------------
    def _dead_workers(self, t: float) -> set:
        if self.faults is None:
            return set()
        return {c.worker for c in self.faults.crashes() if c.at_time <= t}

    @staticmethod
    def _fallback(worker: int, dead: set, m: int) -> int:
        for step in range(m):
            candidate = (worker + step) % m
            if candidate not in dead:
                return candidate
        raise RuntimeError("no alive worker to serve on")

    def _serve_batch(
        self,
        batch: MicroBatch,
        timeline: Timeline,
        network,
        injector: Optional[FaultInjector],
        ledger: LatencyLedger,
        predictions: Dict[int, int],
        inflight: List[float],
    ) -> None:
        cfg = self.config
        m = self.cluster.num_workers
        dead = self._dead_workers(batch.dispatch_s)
        alive = [w for w in range(m) if w not in dead]

        # -- admission -------------------------------------------------
        admitted: List[Request] = []
        for r in batch.requests:
            pending = sum(1 for f in inflight if f > r.arrival_s) + len(admitted)
            overloaded = (
                cfg.slo.max_pending is not None and pending >= cfg.slo.max_pending
            )
            if overloaded or not alive:
                ledger.add(RequestRecord(
                    req_id=r.req_id, vertex=r.vertex, arrival_s=r.arrival_s,
                    dispatch_s=batch.dispatch_s, finish_s=None, mode="shed",
                    worker=-1, shed=True,
                ))
                continue
            admitted.append(r)
        if not admitted:
            return

        # Split the batch by owning worker: each group serves on its own
        # coordinator, so independent groups proceed in parallel across
        # the cluster (dedup happens within a group; unrelated vertices
        # on other workers never wait on it).
        groups: Dict[int, List[Request]] = {}
        for r in admitted:
            owner = self.partitioning.owner(r.vertex)
            coordinator = self._fallback(owner, dead, m)
            groups.setdefault(coordinator, []).append(r)
        for coordinator, group in groups.items():
            self._serve_group(
                batch, group, coordinator, dead, alive,
                timeline, network, injector, ledger, predictions, inflight,
            )

    def _serve_group(
        self,
        batch: MicroBatch,
        admitted: List[Request],
        coordinator: int,
        dead: set,
        alive: List[int],
        timeline: Timeline,
        network,
        injector: Optional[FaultInjector],
        ledger: LatencyLedger,
        predictions: Dict[int, int],
        inflight: List[float],
    ) -> None:
        cfg = self.config
        L = self.num_layers
        coord_degraded = any(
            self.partitioning.owner(r.vertex) != coordinator for r in admitted
        )

        timeline.advance_at_least_until(coordinator, batch.dispatch_s)

        # -- ingress: the clients' requests reach the coordinator ------
        ingress_bytes = cfg.request_bytes * len(admitted)
        if ingress_bytes > 0:
            timeline.advance(
                coordinator, NET_RECV, network.wire_time(ingress_bytes),
                num_bytes=ingress_bytes,
            )

        # -- staleness-bounded cache probe, keyed per vertex to the ----
        # -- arrival of the batch's oldest request for that vertex -----
        distinct: List[int] = []
        key_us: Dict[int, int] = {}
        for r in admitted:
            if r.vertex not in key_us:
                key_us[r.vertex] = int(round(r.arrival_s * 1e6))
                distinct.append(r.vertex)
        cached_rows: Dict[int, np.ndarray] = {}
        staleness: Dict[int, float] = {}
        stale_if_error: Dict[int, bool] = {}
        for v in distinct:
            # Serving an expired entry stale beats failing the request
            # outright when the owner is down ("stale-if-error").
            row, stamp, served_expired = self.reader.probe(
                1, v, key_us[v],
                allow_expired=self.partitioning.owner(v) in dead,
            )
            if row is not None:
                cached_rows[v] = row
                staleness[v] = (key_us[v] - stamp) / 1e6
                stale_if_error[v] = served_expired

        num_cache_hits = sum(
            1 for r in admitted if r.vertex in cached_rows
        )
        if num_cache_hits and cfg.cache_lookup_s > 0:
            timeline.advance(coordinator, CPU, cfg.cache_lookup_s * num_cache_hits)

        computed = [v for v in distinct if v not in cached_rows]
        computed_set = set(computed)

        # -- recompute the rest ----------------------------------------
        batch_bytes = 0.0
        mode = "cached"
        t_compute_start = timeline.now(coordinator)
        if computed:
            mode = self.planner.choose_batch(computed)
            vertex_layers, edge_layers = khop_closure(
                self.graph, np.array(computed, dtype=np.int64), L
            )
            if mode == "local":
                self._charge_local(
                    timeline, coordinator, vertex_layers, edge_layers
                )
            else:
                batch_bytes = self._charge_remote(
                    timeline, network, injector, coordinator, alive, dead,
                    vertex_layers, edge_layers,
                )
            rows = run_closure_forward(self.model, self.graph, vertex_layers)
            seed_ids = vertex_layers[0]
            pos = np.searchsorted(seed_ids, np.array(computed, dtype=np.int64))
            for v, p in zip(computed, pos):
                row = rows[p]
                cached_rows[v] = row
                staleness[v] = 0.0
                self.reader.refresh(1, np.array([v]), row[None, :], key_us[v])
        t_compute_end = timeline.now(coordinator)

        timeline.record_span(
            coordinator, "batch", batch.dispatch_s, t_compute_end,
            size=len(admitted), mode=mode, computed=len(computed),
            cached=len(distinct) - len(computed),
        )
        if computed:
            timeline.record_span(
                coordinator,
                "compute" if mode == "local" else "fetch",
                t_compute_start, t_compute_end, mode=mode,
                vertices=len(computed),
            )

        # -- replies ---------------------------------------------------
        computed_requests = [r for r in admitted if r.vertex in computed_set]
        per_request_bytes = (
            batch_bytes / len(computed_requests) if computed_requests else 0.0
        )
        reply_serialize_s = (
            cfg.reply_bytes / network.bytes_per_s if cfg.reply_bytes else 0.0
        )
        reply_start = timeline.now(coordinator)
        for r in admitted:
            timeline.advance(
                coordinator, NET_SEND, reply_serialize_s,
                num_bytes=cfg.reply_bytes,
            )
            finish = timeline.now(coordinator) + network.latency_s
            row = cached_rows[r.vertex]
            predictions[r.req_id] = int(np.argmax(row))
            was_computed = r.vertex in computed_set
            record = RequestRecord(
                req_id=r.req_id,
                vertex=r.vertex,
                arrival_s=r.arrival_s,
                dispatch_s=batch.dispatch_s,
                finish_s=finish,
                mode=mode if was_computed else "cached",
                worker=coordinator,
                comm_bytes=per_request_bytes if was_computed else 0.0,
                staleness_s=staleness[r.vertex],
                degraded=coord_degraded or stale_if_error.get(r.vertex, False),
            )
            ledger.add(record)
            inflight.append(finish)
            timeline.record_span(
                coordinator, "request", r.arrival_s, finish,
                req_id=r.req_id, vertex=r.vertex, mode=record.mode,
            )
        timeline.record_span(
            coordinator, "reply", reply_start, timeline.now(coordinator),
            replies=len(admitted),
        )

    # ------------------------------------------------------------------
    def _charge_local(
        self, timeline: Timeline, coordinator: int,
        vertex_layers, edge_layers,
    ) -> None:
        """DepCache-style: the coordinator recomputes the union closure."""
        L = self.num_layers
        gpu_s = 0.0
        for l in range(1, L + 1):
            gpu_s += self.constants.vertex_cost(l) * len(vertex_layers[L - l])
            gpu_s += self.constants.edge_cost(l) * len(edge_layers[L - l])
        if self.faults is not None:
            gpu_s *= self.faults.gpu_factor(coordinator, timeline.now(coordinator))
        timeline.advance(coordinator, GPU, gpu_s)

    def _charge_remote(
        self,
        timeline: Timeline,
        network,
        injector: Optional[FaultInjector],
        coordinator: int,
        alive: List[int],
        dead: set,
        vertex_layers,
        edge_layers,
    ) -> float:
        """DepComm-style: a distributed forward over the union closure.

        Each layer is one BSP exchange among the alive workers: every
        worker computes its owned share of the layer's compute set
        (dead workers' shares fold into the coordinator) and boundary
        representations cross the wire once per unique (source, dest
        worker) pair.  Returns the total exchanged bytes.
        """
        L = self.num_layers
        m = self.cluster.num_workers
        assignment = self.partitioning.assignment
        dispatch = timeline.now(coordinator)
        for w in alive:
            timeline.advance_at_least_until(w, dispatch)
        total_bytes = 0.0

        def live_owner(workers: np.ndarray) -> np.ndarray:
            if not dead:
                return workers
            out = workers.copy()
            for d in dead:
                out[out == d] = coordinator
            return out

        for l in range(1, L + 1):
            compute = vertex_layers[L - l]
            edges = edge_layers[L - l]
            v_owner = live_owner(assignment[compute])
            e_owner = live_owner(assignment[self.graph.dst[edges]])
            local_compute = (
                self.constants.vertex_cost(l)
                * np.bincount(v_owner, minlength=m).astype(np.float64)
                + self.constants.edge_cost(l)
                * np.bincount(e_owner, minlength=m).astype(np.float64)
            )
            # One representation crosses per unique (src, dest-worker)
            # pair -- the frontier dedup micro-batching buys.
            src = self.graph.src[edges]
            src_owner = live_owner(assignment[src])
            dst_owner = e_owner
            crossing = src_owner != dst_owner
            volumes = np.zeros((m, m))
            if crossing.any():
                pair_keys = src[crossing] * np.int64(m) + dst_owner[crossing]
                unique_keys, first = np.unique(pair_keys, return_index=True)
                payload = self.dims[l - 1] * 4
                np.add.at(
                    volumes,
                    (src_owner[crossing][first], dst_owner[crossing][first]),
                    float(payload),
                )
            stats = run_exchange(
                timeline, network, volumes,
                local_compute=local_compute,
                options=self.comm,
                barrier=True,
                bytes_per_message=float(self.dims[l - 1] * 4),
                faults=injector,
                participants=alive,
            )
            total_bytes += stats.total_bytes

        # Final gather: h^L rows of seeds owned elsewhere hop to the
        # coordinator for the reply.
        seeds = vertex_layers[0]
        seed_owner = live_owner(assignment[seeds])
        gather_bytes = int((seed_owner != coordinator).sum()) * self.dims[L] * 4
        if gather_bytes:
            timeline.advance(
                coordinator, NET_RECV, network.wire_time(gather_bytes),
                num_bytes=gather_bytes,
            )
            total_bytes += gather_bytes
        return total_bytes
