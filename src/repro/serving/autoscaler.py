"""SLO-burn-driven autoscaling of the serving fleet.

The autoscaler watches the same per-segment statistics the health
checker derives from the ledgers -- never the injected schedule -- and
turns sustained SLO burn into replica count changes:

- **scale out** when ``burn_windows`` consecutive segments either blow
  the p99 target (``p99 > target_p99_s``) or shed more than
  ``shed_burn_fraction`` of offered load;
- **scale in** when ``idle_windows`` consecutive segments sit below
  ``idle_fraction`` of the target with zero shedding and the fleet is
  above ``min_replicas``.

Replica spin-up is not free: a new serving group must stream every
partition's features and adjacency from the donor replica before it can
take traffic.  :func:`charge_replica_transition` prices that handover
through :func:`~repro.comm.scheduler.run_exchange` on the new replica's
timeline -- the same machinery (and the same
``ADJ_BYTES_PER_EDGE``-per-edge state model) the elastic trainer uses
for shrink/rejoin migrations -- and records a ``migration`` span, so
chrome traces show fleet reshapes exactly like training reshapes.  The
fleet gates routing on the resulting ``ready_at_s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.timeline import Timeline
from repro.comm.scheduler import CommOptions, run_exchange
from repro.resilience.elastic import ADJ_BYTES_PER_EDGE


@dataclass(frozen=True)
class AutoscalerConfig:
    """SLO targets and hysteresis windows."""

    target_p99_s: float
    min_replicas: int = 1
    max_replicas: int = 4
    burn_windows: int = 2
    idle_windows: int = 4
    idle_fraction: float = 0.25
    shed_burn_fraction: float = 0.05

    def __post_init__(self):
        if self.target_p99_s <= 0:
            raise ValueError("target_p99_s must be positive")
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.burn_windows < 1 or self.idle_windows < 1:
            raise ValueError("hysteresis windows must be >= 1")


@dataclass(frozen=True)
class ScalingEvent:
    """One applied scaling decision (recorded by the fleet)."""

    action: str  # "scale-out" | "scale-in"
    at_s: float
    replica: int
    reason: str
    transition_s: float = 0.0
    migrated_bytes: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "action": self.action,
            "at_s": self.at_s,
            "replica": self.replica,
            "reason": self.reason,
            "transition_s": self.transition_s,
            "migrated_bytes": self.migrated_bytes,
        }


class SLOAutoscaler:
    """Hysteresis counter turning burn/idle streaks into decisions."""

    def __init__(self, config: AutoscalerConfig):
        self.config = config
        self._burn_streak = 0
        self._idle_streak = 0
        self.decisions: List[Dict[str, object]] = []

    def observe(
        self, p99_s: float, shed_fraction: float,
        num_replicas: int, at_s: float,
    ) -> Optional[str]:
        """Feed one segment's stats; returns a decision or ``None``."""
        cfg = self.config
        burning = p99_s > cfg.target_p99_s or (
            shed_fraction > cfg.shed_burn_fraction
        )
        idle = (
            p99_s < cfg.idle_fraction * cfg.target_p99_s
            and shed_fraction == 0.0
        )
        self._burn_streak = self._burn_streak + 1 if burning else 0
        self._idle_streak = self._idle_streak + 1 if idle else 0

        decision: Optional[str] = None
        if (
            self._burn_streak >= cfg.burn_windows
            and num_replicas < cfg.max_replicas
        ):
            decision = "scale-out"
        elif (
            self._idle_streak >= cfg.idle_windows
            and num_replicas > cfg.min_replicas
        ):
            decision = "scale-in"
        if decision is not None:
            self.decisions.append({
                "action": decision,
                "at_s": float(at_s),
                "p99_s": float(p99_s),
                "shed_fraction": float(shed_fraction),
                "num_replicas": int(num_replicas),
            })
            self._burn_streak = 0
            self._idle_streak = 0
        return decision


# ----------------------------------------------------------------------
def replica_state_bytes(graph, partitioning, m: int) -> np.ndarray:
    """Per-worker bytes of partition state a fresh replica must load.

    Worker ``w``'s share is its owned vertices' features plus their
    in-edges' adjacency -- the same per-vertex state model elastic
    migrations charge (``feature_dim * 4 + in_deg * ADJ_BYTES_PER_EDGE``
    bytes per vertex).
    """
    assignment = partitioning.assignment
    in_deg = np.bincount(graph.dst, minlength=graph.num_vertices)
    per_vertex = graph.feature_dim * 4 + in_deg * ADJ_BYTES_PER_EDGE
    out = np.zeros(m)
    for w in range(m):
        out[w] = float(per_vertex[assignment == w].sum())
    return out


def charge_replica_transition(
    timeline: Timeline,
    network,
    graph,
    partitioning,
    handover_s: float,
    direction: str = "scale-out",
    comm: CommOptions = CommOptions.all(),
) -> Tuple[float, float]:
    """Charge a replica spin-up/teardown on ``timeline``.

    Every worker of the (new or retiring) replica streams its partition
    state across the wire -- a ring exchange where worker ``w`` receives
    its shard from the donor's ``(w + 1) % m`` peer, priced through
    :func:`run_exchange` after advancing to the handover point.  Returns
    ``(transition_seconds, migrated_bytes)`` and records a ``migration``
    span tagged with ``direction``.
    """
    m = timeline.num_workers
    shard_bytes = replica_state_bytes(graph, partitioning, m)
    volumes = np.zeros((m, m))
    for w in range(m):
        volumes[(w + 1) % m, w] = shard_bytes[w]
    for w in range(m):
        timeline.advance_at_least_until(w, handover_s)
    t0 = timeline.barrier()
    run_exchange(
        timeline, network, volumes,
        options=comm,
        barrier=True,
        bytes_per_message=graph.feature_dim * 4,
    )
    t1 = timeline.barrier()
    timeline.record_span(
        0, "migration", t0, t1,
        direction=direction,
        migrated_bytes=int(volumes.sum()),
        num_workers=m,
    )
    return t1 - t0, float(volumes.sum())


__all__ = [
    "AutoscalerConfig",
    "ScalingEvent",
    "SLOAutoscaler",
    "replica_state_bytes",
    "charge_replica_transition",
]
