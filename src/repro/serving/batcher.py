"""Micro-batching of concurrent inference requests.

Requests that arrive within a short window are coalesced into one
micro-batch: the batch executes a *single* forward over the union of
the members' k-hop closures, so overlapping frontiers (hot vertices,
shared neighborhoods) are computed once instead of per request --
the serving-side analogue of training's redundancy elimination.

Batch composition depends only on arrival times and the window/size
caps -- never on how the batch will be served (cache hits, mode,
faults) -- so sweeping the staleness bound or the serving mode replays
the exact same batch sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.serving.workload import Request


@dataclass(frozen=True)
class MicroBatch:
    """Requests dispatched together.

    ``dispatch_s`` is when the batch closes and execution begins: the
    window expiring (``first arrival + window``) or the size cap
    filling (the capping request's arrival), whichever is earlier.
    """

    requests: List[Request]
    dispatch_s: float

    @property
    def size(self) -> int:
        return len(self.requests)

    def vertices(self) -> List[int]:
        """Distinct requested vertices, keyed by earliest arrival.

        Order follows first appearance, so index 0's arrival is the
        batch's oldest request for that vertex -- the timestamp the
        server uses as the vertex's staleness key.
        """
        seen = {}
        for r in self.requests:
            if r.vertex not in seen:
                seen[r.vertex] = r
        return list(seen)

    def first_arrival_of(self, vertex: int) -> float:
        for r in self.requests:
            if r.vertex == vertex:
                return r.arrival_s
        raise KeyError(f"vertex {vertex} not in batch")


class MicroBatcher:
    """Window + size-capped batcher over a time-ordered request stream.

    ``window_s = 0`` degrades to one batch per request (the unbatched
    baseline); ``max_batch = 1`` likewise.
    """

    def __init__(self, window_s: float = 0.002, max_batch: int = 32):
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.window_s = window_s
        self.max_batch = max_batch

    def batches(self, requests: Sequence[Request]) -> List[MicroBatch]:
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        out: List[MicroBatch] = []
        current: List[Request] = []
        close = 0.0
        for r in ordered:
            if not current:
                current = [r]
                close = r.arrival_s + self.window_s
                continue
            if r.arrival_s <= close and len(current) < self.max_batch:
                current.append(r)
                continue
            out.append(self._finish(current, close))
            current = [r]
            close = r.arrival_s + self.window_s
        if current:
            out.append(self._finish(current, close))
        return out

    def _finish(self, batch: List[Request], close: float) -> MicroBatch:
        if len(batch) >= self.max_batch:
            dispatch = batch[-1].arrival_s  # size cap closed it early
        else:
            dispatch = close
        return MicroBatch(requests=list(batch), dispatch_s=dispatch)
