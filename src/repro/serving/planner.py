"""Per-request dependency planning (Algorithm 4, serving edition).

Training decides DepCache vs DepComm per *vertex* with the probed
constants ``T_v`` / ``T_e`` / ``T_c``; serving faces the same choice
per *request*: the worker answering a request for vertex ``v`` either
recomputes the k-hop closure of ``v`` from its replicated graph data
(**local**, DepCache-style -- pure compute, zero traffic) or drives a
distributed forward in which every worker computes its owned share and
ships boundary representations (**remote**, DepComm-style -- less
compute on the hot worker, cross-worker traffic priced at ``T_c``).
The :class:`RequestPlanner` prices both from the same
:class:`~repro.costmodel.probe.ProbeResult` the training planner uses
and memoizes the per-vertex closure profile, since Zipfian workloads
hit the same hot vertices over and over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.cluster.network import NetworkProfile
from repro.costmodel.probe import ProbeResult
from repro.graph.graph import Graph
from repro.graph.khop import khop_closure
from repro.partition.base import Partitioning

MODES = ("auto", "local", "remote", "cached")


@dataclass(frozen=True)
class ClosureProfile:
    """Memoized k-hop closure of one vertex, priced both ways.

    ``vertex_layers`` / ``edge_layers`` follow the
    :func:`~repro.graph.khop.khop_closure` convention: layer ``l``
    (1-based) computes ``vertex_layers[L - l]`` over
    ``edge_layers[L - l]``.
    """

    vertex: int
    owner: int
    vertex_layers: Tuple[np.ndarray, ...]
    edge_layers: Tuple[np.ndarray, ...]
    local_cost_s: float
    remote_cost_s: float
    cross_inputs: int  # closure inputs not owned by ``owner``

    @property
    def closure_size(self) -> int:
        return len(self.vertex_layers[-1])

    def preferred_mode(self) -> str:
        return "local" if self.local_cost_s <= self.remote_cost_s else "remote"


class RequestPlanner:
    """Prices local-recompute vs remote-fetch per requested vertex."""

    def __init__(
        self,
        graph: Graph,
        partitioning: Partitioning,
        constants: ProbeResult,
        num_layers: int,
        network: NetworkProfile,
        mode: str = "auto",
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if num_layers < 1:
            raise ValueError("num_layers must be positive")
        self.graph = graph
        self.partitioning = partitioning
        self.constants = constants
        self.num_layers = num_layers
        self.network = network
        self.mode = mode
        self._profiles: Dict[int, ClosureProfile] = {}

    # ------------------------------------------------------------------
    def profile(self, vertex: int) -> ClosureProfile:
        """The (memoized) priced closure of ``vertex``."""
        cached = self._profiles.get(vertex)
        if cached is not None:
            return cached

        L = self.num_layers
        vertex_layers, edge_layers = khop_closure(self.graph, [vertex], L)
        owner = self.partitioning.owner(vertex)
        assignment = self.partitioning.assignment

        # Local: the owner recomputes the whole closure serially.
        local = 0.0
        for l in range(1, L + 1):
            local += self.constants.vertex_cost(l) * len(vertex_layers[L - l])
            local += self.constants.edge_cost(l) * len(edge_layers[L - l])

        # Remote: each layer's compute set splits across its owners (the
        # critical path is the largest share), boundary inputs travel at
        # T_c, and each of the L exchange rounds pays a request+reply
        # latency.
        remote = 0.0
        cross_total = 0
        for l in range(1, L + 1):
            compute = vertex_layers[L - l]
            edges = edge_layers[L - l]
            owners = assignment[compute]
            shares = np.bincount(owners, minlength=self.partitioning.num_parts)
            remote += self.constants.vertex_cost(l) * int(shares.max())
            edge_owners = assignment[self.graph.dst[edges]]
            edge_shares = np.bincount(
                edge_owners, minlength=self.partitioning.num_parts
            )
            remote += self.constants.edge_cost(l) * int(edge_shares.max())
            # Inputs crossing an ownership boundary at this layer.
            src = self.graph.src[edges]
            dst_owner = assignment[self.graph.dst[edges]]
            crossing = assignment[src] != dst_owner
            cross = len(np.unique(src[crossing] * np.int64(self.partitioning.num_parts) + dst_owner[crossing]))
            cross_total += cross
            remote += self.constants.comm_cost(l) * cross
            remote += 2.0 * self.network.latency_s

        profile = ClosureProfile(
            vertex=int(vertex),
            owner=owner,
            vertex_layers=tuple(vertex_layers),
            edge_layers=tuple(edge_layers),
            local_cost_s=local,
            remote_cost_s=remote,
            cross_inputs=cross_total,
        )
        self._profiles[vertex] = profile
        return profile

    def choose(self, vertex: int) -> str:
        """``"local"`` or ``"remote"`` for one request."""
        if self.mode in ("local", "remote"):
            return self.mode
        if self.mode == "cached":
            # Forced-cache mode still needs a recompute path on miss;
            # fall through to the cost comparison.
            pass
        return self.profile(vertex).preferred_mode()

    def choose_batch(self, vertices: List[int]) -> str:
        """Mode for a deduped micro-batch: cheaper summed estimate wins.

        A batch executes one way or the other as a unit (its union
        closure shares frontiers), so the decision sums the memoized
        per-vertex estimates rather than re-profiling the union -- an
        upper bound on both sides that errs identically, which is what
        a relative comparison needs.
        """
        if self.mode in ("local", "remote"):
            return self.mode
        local = sum(self.profile(v).local_cost_s for v in vertices)
        remote = sum(self.profile(v).remote_cost_s for v in vertices)
        return "local" if local <= remote else "remote"
