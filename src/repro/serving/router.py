"""Popularity-aware request routing across replicated serving groups.

The fleet (:mod:`repro.serving.fleet`) replicates the whole serving
plane: every replica holds the same partitions and can answer any
request, so routing is purely a locality/load decision.  The router
combines two deterministic mechanisms:

- **Rendezvous (highest-random-weight) hashing** as the base policy:
  each (vertex, replica) pair hashes to a 64-bit score through
  :func:`repro.utils.rng.hashed_uint64` and the healthy replica with
  the highest score wins.  Removing a replica only remaps the vertices
  it owned; adding one steals an even ``1/n`` slice -- the classic
  consistent-hashing property, with no ring state to keep.
- **Popularity pinning**: once a vertex has been routed ``pin_after``
  times it is *pinned* to the replica that has been serving it, so the
  Zipf-hot head of the workload keeps hitting the replica whose
  :class:`~repro.cache.historical.HistoricalEmbeddingCache` already
  holds its closure.  Pins follow failover: a pin to a dead replica is
  dropped and re-learned on the survivors.
- **Hot-spread mode**: after a scale-out the hotspot that triggered it
  is usually a handful of pinned vertices saturating one replica.
  ``spread_hot=True`` clears the pin table and instead spreads requests
  for hot vertices (observed count >= ``pin_after``) across all healthy
  replicas, keyed by ``req_id`` so the spread is deterministic and
  stateless.

All hash draws route through :mod:`repro.utils.rng` keyed streams, so
routing is a pure function of ``(seed, request stream, health events)``
-- the property the fleet's bit-identity and replay tests rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serving.workload import Request
from repro.utils.rng import hashed_uint64


class PopularityRouter:
    """Deterministic popularity-aware router over replica ids."""

    def __init__(self, seed: int = 0, pin_after: int = 3,
                 spread_hot: bool = False):
        if pin_after < 1:
            raise ValueError("pin_after must be >= 1")
        self.seed = int(seed)
        self.pin_after = int(pin_after)
        self.spread_hot = bool(spread_hot)
        #: observed request count per vertex (popularity estimate)
        self.counts: Dict[int, int] = {}
        #: vertex -> replica pin (cache affinity for the hot head)
        self.pins: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def rendezvous(self, vertex: int, healthy: Sequence[int]) -> int:
        """Highest-random-weight choice among the healthy replicas."""
        if not healthy:
            raise ValueError("no healthy replica to route to")
        ids = np.array([int(vertex)], dtype=np.int64)
        best, best_score = healthy[0], -1
        for replica in healthy:
            score = int(hashed_uint64(
                self.seed, "rendezvous", int(replica), ids=ids
            )[0])
            if score > best_score:
                best, best_score = int(replica), score
        return best

    def alternate(self, vertex: int, primary: int,
                  healthy: Sequence[int]) -> Optional[int]:
        """Second-highest rendezvous choice (hedge / failover target)."""
        others = [r for r in healthy if r != primary]
        if not others:
            return None
        return self.rendezvous(vertex, others)

    # ------------------------------------------------------------------
    def route(self, request: Request, healthy: Sequence[int]) -> int:
        """Pick the replica for one request and update popularity state."""
        v = int(request.vertex)
        count = self.counts.get(v, 0) + 1
        self.counts[v] = count

        if self.spread_hot and count > self.pin_after:
            # Hot vertex under spread mode: deterministic per-request
            # scatter across every healthy replica.
            ids = np.array([int(request.req_id)], dtype=np.int64)
            idx = int(hashed_uint64(self.seed, "spread", ids=ids)[0]
                      % len(healthy))
            return int(sorted(healthy)[idx])

        pinned = self.pins.get(v)
        if pinned is not None and pinned in healthy:
            return pinned
        choice = self.rendezvous(v, healthy)
        if pinned is not None and pinned not in healthy:
            del self.pins[v]  # dead pin: re-learn on the survivors
        if not self.spread_hot and count >= self.pin_after:
            self.pins[v] = choice
        return choice

    def route_segment(
        self, requests: Sequence[Request], healthy: Sequence[int]
    ) -> Dict[int, List[Request]]:
        """Route a whole segment; returns replica -> request list."""
        out: Dict[int, List[Request]] = {}
        for r in requests:
            out.setdefault(self.route(r, healthy), []).append(r)
        return out

    # ------------------------------------------------------------------
    def drop_replica(self, replica: int) -> None:
        """Forget every pin to a replica that left the fleet."""
        self.pins = {v: r for v, r in self.pins.items() if r != replica}

    def enable_spread(self) -> None:
        """Switch to hot-spread mode (scale-out mitigation): clear the
        pin table so rendezvous re-shards the cold tail onto the new
        replica, and scatter the hot head across every replica."""
        self.spread_hot = True
        self.pins.clear()

    def hot_vertices(self) -> List[int]:
        """Vertices past the pin threshold, hottest first."""
        hot = [v for v, c in self.counts.items() if c >= self.pin_after]
        return sorted(hot, key=lambda v: (-self.counts[v], v))


__all__ = ["PopularityRouter"]
