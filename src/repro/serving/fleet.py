"""Self-healing replicated serving fleet.

A :class:`ServingFleet` runs ``N`` replicated serving groups -- each a
full :class:`~repro.serving.server.InferenceServer` over the *same*
trained model and partitions, with its own
:class:`~repro.cache.historical.HistoricalEmbeddingCache`,
:class:`~repro.cluster.timeline.Timeline`, and
:class:`~repro.serving.slo.LatencyLedger` -- behind a
:class:`~repro.serving.router.PopularityRouter`.  Because every answer
an :class:`InferenceServer` produces is an exact model forward (cached
rows replay previously exact rows), replication is purely a
routing-and-recovery concern: a fault-free ``N``-replica fleet returns
predictions bit-identical to a single server's, which is the fleet's
foundational invariant (pinned by ``tests/serving/test_fleet.py``).

The stream is served in fixed-size *segments* (``health_every``
requests).  After each segment the fleet inspects only observable
ledger signals -- never the injected schedule -- and heals itself:

- **health-checked failover**: a replica whose segment ends in a run of
  ``crash_shed_run`` consecutive shed requests (the signature of a
  serving group whose workers all went dark: admission control sheds
  *everything* once no worker is alive) is declared dead.  Its
  unanswered requests are re-served on the rendezvous-alternate replica
  as seeded duplicates delayed by a p99-derived detection timer, and
  future traffic routes around it.
- **hedged requests**: a replica whose segment-mean latency exceeds
  ``hedge_factor`` times the fleet's baseline p99 is a *suspect*
  (straggling, not dead).  While suspect, every request routed to it is
  duplicated to its rendezvous alternate after the same p99-derived
  timer (plus seeded jitter via :func:`repro.utils.rng.derive_rng`);
  whichever copy finishes first wins the ledger.  Fault-free runs never
  mark suspects, so hedging cannot perturb a healthy fleet.
- **SLO-driven autoscaling** (optional): an attached
  :class:`~repro.serving.autoscaler.SLOAutoscaler` turns sustained
  p99/shed burn into scale-out (replica spin-up charged through
  :func:`~repro.comm.scheduler.run_exchange`, hot pins spread) and
  sustained idle into scale-in.

``self_heal=False`` disables every automatic response while keeping the
levers (:meth:`quarantine`, :meth:`scale_out`) public -- the mode the
ops harness uses so the graded :class:`~repro.ops.detectors.
DetectionPipeline` and mitigation own the response instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import Timeline
from repro.comm.scheduler import CommOptions
from repro.core.model import GNNModel
from repro.costmodel.probe import ProbeResult, probe_constants
from repro.graph.graph import Graph
from repro.partition.base import Partitioning
from repro.resilience.faults import FaultSchedule
from repro.serving.autoscaler import (
    AutoscalerConfig,
    ScalingEvent,
    SLOAutoscaler,
    charge_replica_transition,
)
from repro.serving.router import PopularityRouter
from repro.serving.server import InferenceServer, ServingConfig
from repro.serving.slo import LatencyLedger, RequestRecord
from repro.serving.workload import Request
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of one fleet run."""

    replicas: int = 2
    serving: ServingConfig = field(default_factory=ServingConfig)
    seed: int = 0
    #: requests per health-check segment
    health_every: int = 32
    #: popularity pin threshold (see PopularityRouter)
    pin_after: int = 3
    #: trailing consecutive sheds declaring a replica dead
    crash_shed_run: int = 3
    #: suspect threshold: segment mean > factor * baseline p99
    hedge_factor: float = 3.0
    #: hedge/failover timer = timer_factor * baseline p99
    hedge_timer_factor: float = 1.0
    #: uniform jitter added to every hedge/failover timer
    hedge_jitter_s: float = 1e-4
    #: segments whose served latencies form the fleet baseline
    baseline_segments: int = 3
    #: automatic failover / hedging / autoscaling on observation
    self_heal: bool = True
    autoscaler: Optional[AutoscalerConfig] = None

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.health_every < 1:
            raise ValueError("health_every must be >= 1")
        if self.crash_shed_run < 1:
            raise ValueError("crash_shed_run must be >= 1")
        if self.hedge_factor <= 1.0:
            raise ValueError("hedge_factor must be > 1")
        if self.hedge_timer_factor < 0 or self.hedge_jitter_s < 0:
            raise ValueError("hedge timer parameters must be >= 0")
        if self.baseline_segments < 1:
            raise ValueError("baseline_segments must be >= 1")


class ReplicaGroup:
    """One serving group: a server plus its private continuation state."""

    def __init__(
        self,
        replica_id: int,
        graph: Graph,
        model: GNNModel,
        cluster: ClusterSpec,
        partitioning: Partitioning,
        config: ServingConfig,
        constants: ProbeResult,
        faults: Optional[FaultSchedule] = None,
        comm: CommOptions = CommOptions.all(),
        record_timeline: bool = True,
        ready_at_s: float = 0.0,
    ):
        self.replica_id = int(replica_id)
        self.server = InferenceServer(
            graph, model, cluster, partitioning,
            config=config, constants=constants, faults=faults,
            comm=comm, record_timeline=record_timeline,
        )
        self.timeline = Timeline(cluster.num_workers, record=record_timeline)
        self.ledger = LatencyLedger()
        self.predictions: Dict[int, int] = {}
        self.inflight: List[float] = []
        self.ready_at_s = float(ready_at_s)
        self.healthy = True
        self.retired = False

    def serve(self, requests: Sequence[Request]) -> List[RequestRecord]:
        """Serve one batch against this replica's continuation state."""
        start = len(self.ledger.records)
        self.server.serve(
            requests,
            timeline=self.timeline, ledger=self.ledger,
            predictions=self.predictions, inflight=self.inflight,
        )
        return self.ledger.records[start:]

    @property
    def served_count(self) -> int:
        return sum(1 for r in self.ledger.records if not r.shed)


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    ledger: LatencyLedger  # one final record per request, req_id order
    predictions: Dict[int, int]
    replicas: List[ReplicaGroup]  # every group ever started
    num_segments: int
    hedges_launched: int
    hedges_won: int
    failovers: int
    health_events: List[Dict[str, object]]
    scaling_events: List[ScalingEvent]

    def summary(self) -> Dict[str, object]:
        out = self.ledger.to_dict()
        del out["records"]
        out["num_replicas_started"] = len(self.replicas)
        out["num_replicas_final"] = sum(
            1 for g in self.replicas if g.healthy and not g.retired
        )
        out["num_segments"] = self.num_segments
        out["hedges_launched"] = self.hedges_launched
        out["hedges_won"] = self.hedges_won
        out["failovers"] = self.failovers
        out["health_events"] = list(self.health_events)
        out["scaling_events"] = [e.to_dict() for e in self.scaling_events]
        replica_served: Dict[str, int] = {}
        for r in self.ledger.records:
            if not r.shed and r.replica >= 0:
                key = str(r.replica)
                replica_served[key] = replica_served.get(key, 0) + 1
        out["replica_served"] = replica_served
        return out


class ServingFleet:
    """Replicated serving groups with routing, failover, and scaling."""

    def __init__(
        self,
        graph: Graph,
        model: GNNModel,
        cluster: ClusterSpec,
        partitioning: Partitioning,
        config: Optional[FleetConfig] = None,
        constants: Optional[ProbeResult] = None,
        replica_faults: Optional[Dict[int, FaultSchedule]] = None,
        comm: CommOptions = CommOptions.all(),
        record_timeline: bool = True,
    ):
        self.graph = graph
        self.model = model
        self.cluster = cluster
        self.partitioning = partitioning
        self.config = config or FleetConfig()
        # One probe shared by every replica: same constants, same plans.
        self.constants = constants or probe_constants(cluster, model, comm=comm)
        self.comm = comm
        self.record_timeline = record_timeline
        self._replica_faults = dict(replica_faults or {})
        self.router = PopularityRouter(
            seed=self.config.seed, pin_after=self.config.pin_after,
        )
        self.groups: List[ReplicaGroup] = [
            self._spawn_group(i) for i in range(self.config.replicas)
        ]
        self.autoscaler = (
            SLOAutoscaler(self.config.autoscaler)
            if self.config.autoscaler is not None else None
        )
        self.suspects: set = set()
        self.health_events: List[Dict[str, object]] = []
        self.scaling_events: List[ScalingEvent] = []
        self.hedges_launched = 0
        self.hedges_won = 0
        self.failovers = 0
        self._segments = 0
        self._baseline_latencies: List[float] = []
        self._final: Dict[int, RequestRecord] = {}
        self.predictions: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _spawn_group(self, replica_id: int, ready_at_s: float = 0.0):
        return ReplicaGroup(
            replica_id, self.graph, self.model, self.cluster,
            self.partitioning, self.config.serving, self.constants,
            faults=self._replica_faults.get(replica_id),
            comm=self.comm, record_timeline=self.record_timeline,
            ready_at_s=ready_at_s,
        )

    def group(self, replica_id: int) -> ReplicaGroup:
        return self.groups[replica_id]

    def active_replicas(self, at_s: float) -> List[int]:
        """Replicas eligible for routing at simulated time ``at_s``."""
        return [
            g.replica_id for g in self.groups
            if g.healthy and not g.retired and g.ready_at_s <= at_s
        ]

    def final_records(self) -> List[RequestRecord]:
        """One winning record per request, in req_id order."""
        return [self._final[k] for k in sorted(self._final)]

    def fleet_clock_s(self) -> float:
        """The latest makespan across every live replica's timeline."""
        live = [
            g.timeline.makespan for g in self.groups
            if g.healthy and not g.retired
        ]
        return max(live) if live else 0.0

    # -- baseline / timers ---------------------------------------------
    def _baseline_p99(self) -> Optional[float]:
        if self._segments < self.config.baseline_segments:
            return None
        if not self._baseline_latencies:
            return None
        return float(np.percentile(np.array(self._baseline_latencies), 99))

    def _timer_s(self, req_id: int, stream: str) -> float:
        """P99-derived hedge/failover delay with seeded jitter."""
        base = self._baseline_p99() or 0.0
        jitter = 0.0
        if self.config.hedge_jitter_s > 0:
            jitter = float(
                derive_rng(self.config.seed, stream, int(req_id)).uniform(
                    0.0, self.config.hedge_jitter_s
                )
            )
        return self.config.hedge_timer_factor * base + jitter

    # -- serving --------------------------------------------------------
    def serve(self, requests: Sequence[Request]) -> FleetResult:
        """Serve a stream (or one more segment batch of it)."""
        width = self.config.health_every
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        for lo in range(0, len(ordered), width):
            self._serve_segment(ordered[lo:lo + width])
        return self.result()

    def result(self) -> FleetResult:
        ledger = LatencyLedger()
        for record in self.final_records():
            ledger.add(record)
        return FleetResult(
            ledger=ledger,
            predictions=dict(self.predictions),
            replicas=list(self.groups),
            num_segments=self._segments,
            hedges_launched=self.hedges_launched,
            hedges_won=self.hedges_won,
            failovers=self.failovers,
            health_events=list(self.health_events),
            scaling_events=list(self.scaling_events),
        )

    # ------------------------------------------------------------------
    def _serve_segment(self, segment: List[Request]) -> None:
        if not segment:
            return
        cfg = self.config
        seg_start = segment[0].arrival_s
        healthy = self.active_replicas(seg_start)
        winners: Dict[int, RequestRecord] = {}

        if not healthy:
            # Total outage: every request is answered with a shed.
            for r in segment:
                winners[r.req_id] = RequestRecord(
                    req_id=r.req_id, vertex=r.vertex, arrival_s=r.arrival_s,
                    dispatch_s=r.arrival_s, finish_s=None, mode="shed",
                    worker=-1, shed=True,
                )
            self._finish_segment(segment, winners)
            return

        assignment = self.router.route_segment(segment, healthy)
        arrival_of = {r.req_id: r.arrival_s for r in segment}

        # 1. Primary serve, per replica in id order (deterministic).
        primary: Dict[int, List[RequestRecord]] = {}
        for replica_id in sorted(assignment):
            records = self.group(replica_id).serve(assignment[replica_id])
            primary[replica_id] = records
            for r in records:
                winners[r.req_id] = replace(r, replica=replica_id)
            self.predictions.update(self.group(replica_id).predictions)

        # 2. Health check + failover of unanswered requests.  With
        # self-healing off the fleet does not even declare deaths: the
        # ops harness grades an external pipeline on exactly that call.
        if cfg.self_heal:
            for replica_id in sorted(assignment):
                if self._replica_died(replica_id, primary[replica_id]):
                    self._declare_dead(replica_id, seg_start)
                    # A crash inside a batching window that straddles
                    # the previous segment boundary leaves sheds already
                    # finalized there; failover covers every unanswered
                    # request the dead replica ever absorbed.
                    stale = [
                        rec for rec in self._final.values()
                        if rec.shed and rec.replica == replica_id
                    ]
                    self._failover(
                        replica_id, assignment[replica_id],
                        primary[replica_id], winners, arrival_of,
                        stale=stale,
                    )

        # 3. Hedged duplicates for suspect (straggling) replicas.
        if cfg.self_heal and self.suspects:
            self._hedge(assignment, winners, arrival_of)

        self._finish_segment(segment, winners)

    def _finish_segment(
        self, segment: List[Request], winners: Dict[int, RequestRecord]
    ) -> None:
        cfg = self.config
        self._final.update(winners)
        self._segments += 1

        served = [
            rec.latency_s for rec in winners.values()
            if rec.latency_s is not None
        ]
        shed = sum(1 for rec in winners.values() if rec.shed)
        if self._segments <= cfg.baseline_segments:
            self._baseline_latencies.extend(served)

        if not cfg.self_heal:
            return

        # Suspect bookkeeping: straggling replicas get hedged next
        # segment; recovered replicas stop being hedged.
        baseline = self._baseline_p99()
        if baseline is not None and baseline > 0:
            by_replica: Dict[int, List[float]] = {}
            for rec in winners.values():
                if rec.latency_s is not None and rec.replica >= 0:
                    by_replica.setdefault(rec.replica, []).append(
                        rec.latency_s
                    )
            for replica_id, lats in sorted(by_replica.items()):
                mean = float(np.mean(lats))
                group = self.group(replica_id)
                if not group.healthy or group.retired:
                    self.suspects.discard(replica_id)
                elif mean > cfg.hedge_factor * baseline:
                    self.suspects.add(replica_id)
                else:
                    self.suspects.discard(replica_id)

        if self.autoscaler is not None:
            p99 = (
                float(np.percentile(np.array(served), 99)) if served else 0.0
            )
            offered = len(winners)
            at_s = max(r.arrival_s for r in segment)
            decision = self.autoscaler.observe(
                p99, shed / offered if offered else 0.0,
                len(self.active_replicas(at_s)), at_s,
            )
            if decision == "scale-out":
                self.scale_out(at_s, reason="slo-burn")
            elif decision == "scale-in":
                self.scale_in(at_s, reason="idle")

    # -- health / failover ----------------------------------------------
    def _replica_died(
        self, replica_id: int, records: List[RequestRecord]
    ) -> bool:
        """Crash signature: the segment *ends* in a run of sheds.

        Overload shedding interleaves sheds with serves as the backlog
        drains; a serving group whose workers all went dark sheds every
        request from the crash onward, so a long trailing all-shed run
        is the observable crash signal.
        """
        group = self.group(replica_id)
        if not group.healthy or group.retired:
            return False
        trailing = 0
        for r in reversed(records):
            if not r.shed:
                break
            trailing += 1
        return trailing >= self.config.crash_shed_run

    def _declare_dead(self, replica_id: int, at_s: float) -> None:
        group = self.group(replica_id)
        group.healthy = False
        self.suspects.discard(replica_id)
        self.router.drop_replica(replica_id)
        self.health_events.append({
            "event": "replica-dead",
            "replica": replica_id,
            "at_s": float(at_s),
            "segment": self._segments,
        })

    def _failover(
        self,
        dead_replica: int,
        routed: List[Request],
        records: List[RequestRecord],
        winners: Dict[int, RequestRecord],
        arrival_of: Dict[int, float],
        stale: Sequence[RequestRecord] = (),
    ) -> None:
        """Re-serve the dead replica's unanswered requests elsewhere.

        Duplicates arrive on the alternate replica a p99-derived timer
        after the original request -- the failure-detection delay an
        operator would pay -- and keep the *original* ``arrival_s`` in
        the ledger so the delay shows up as latency, not as amnesia.
        ``stale`` carries sheds the replica produced in earlier segments
        (a crash landing in a batch window that straddled the boundary).
        """
        unanswered = {r.req_id for r in records if r.shed}
        pending = [r for r in routed if r.req_id in unanswered]
        for rec in sorted(stale, key=lambda r: r.req_id):
            arrival_of.setdefault(rec.req_id, rec.arrival_s)
            pending.append(Request(rec.req_id, rec.vertex, rec.arrival_s))
        if not pending:
            return
        survivors = [
            g.replica_id for g in self.groups
            if g.healthy and not g.retired
        ]
        if not survivors:
            return  # nothing to fail over to; sheds stand
        retry: Dict[int, List[Request]] = {}
        for req in pending:
            target = self.router.rendezvous(req.vertex, survivors)
            delay = self._timer_s(req.req_id, "failover")
            retry.setdefault(target, []).append(
                Request(req.req_id, req.vertex, req.arrival_s + delay)
            )
        for target in sorted(retry):
            dups = sorted(retry[target], key=lambda r: r.arrival_s)
            served = self.group(target).serve(dups)
            self.predictions.update(self.group(target).predictions)
            for rec in served:
                if rec.shed:
                    continue
                winners[rec.req_id] = replace(
                    rec,
                    arrival_s=arrival_of[rec.req_id],
                    replica=target,
                    failover=True,
                    degraded=True,
                )
                self.failovers += 1

    # -- hedging ---------------------------------------------------------
    def _hedge(
        self,
        assignment: Dict[int, List[Request]],
        winners: Dict[int, RequestRecord],
        arrival_of: Dict[int, float],
    ) -> None:
        healthy = [
            g.replica_id for g in self.groups
            if g.healthy and not g.retired
        ]
        if len(healthy) < 2:
            return
        hedges: Dict[int, List[Request]] = {}
        for replica_id in sorted(assignment):
            if replica_id not in self.suspects:
                continue
            for req in assignment[replica_id]:
                alt = self.router.alternate(req.vertex, replica_id, healthy)
                if alt is None:
                    continue
                delay = self._timer_s(req.req_id, "hedge")
                hedges.setdefault(alt, []).append(
                    Request(req.req_id, req.vertex, req.arrival_s + delay)
                )
                self.hedges_launched += 1
        for alt in sorted(hedges):
            dups = sorted(hedges[alt], key=lambda r: r.arrival_s)
            served = self.group(alt).serve(dups)
            self.predictions.update(self.group(alt).predictions)
            for rec in served:
                if rec.shed or rec.finish_s is None:
                    continue
                current = winners.get(rec.req_id)
                beaten = (
                    current is None or current.shed
                    or current.finish_s is None
                    or rec.finish_s < current.finish_s
                )
                if beaten:
                    winners[rec.req_id] = replace(
                        rec,
                        arrival_s=arrival_of[rec.req_id],
                        replica=alt,
                        hedged=True,
                    )
                    self.hedges_won += 1

    # -- scaling ---------------------------------------------------------
    def quarantine(self, replica_id: int) -> None:
        """Operator lever: stop routing to a replica (ops mitigation)."""
        self._declare_dead(replica_id, self.fleet_clock_s())
        self.health_events[-1]["event"] = "replica-quarantined"

    def scale_out(self, at_s: float, reason: str = "slo-burn") -> ScalingEvent:
        """Start a new replica; spin-up charged through ``run_exchange``."""
        replica_id = len(self.groups)
        group = self._spawn_group(replica_id)
        handover = max(float(at_s), self.fleet_clock_s())
        transition_s, migrated = charge_replica_transition(
            group.timeline, self.cluster.network,
            self.graph, self.partitioning,
            handover, direction="scale-out", comm=self.comm,
        )
        group.ready_at_s = group.timeline.makespan
        self.groups.append(group)
        # Spread the hot head over the grown fleet: the hotspot that
        # forced the scale-out is a few pinned vertices by definition.
        self.router.enable_spread()
        event = ScalingEvent(
            action="scale-out", at_s=float(at_s), replica=replica_id,
            reason=reason, transition_s=transition_s,
            migrated_bytes=migrated,
        )
        self.scaling_events.append(event)
        return event

    def scale_in(self, at_s: float, reason: str = "idle"):
        """Retire the youngest active replica; teardown is charged too."""
        candidates = [
            g for g in self.groups
            if g.healthy and not g.retired and g.replica_id > 0
        ]
        if not candidates:
            return None
        group = max(candidates, key=lambda g: g.replica_id)
        transition_s, migrated = charge_replica_transition(
            group.timeline, self.cluster.network,
            self.graph, self.partitioning,
            max(float(at_s), group.timeline.makespan),
            direction="scale-in", comm=self.comm,
        )
        group.retired = True
        self.suspects.discard(group.replica_id)
        self.router.drop_replica(group.replica_id)
        event = ScalingEvent(
            action="scale-in", at_s=float(at_s), replica=group.replica_id,
            reason=reason, transition_s=transition_s,
            migrated_bytes=migrated,
        )
        self.scaling_events.append(event)
        return event


__all__ = ["FleetConfig", "FleetResult", "ReplicaGroup", "ServingFleet"]
