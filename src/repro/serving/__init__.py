"""Online inference serving on the partitioned cluster.

Training ends with a model and a partitioned graph spread over ``m``
workers; this package answers *node-level prediction requests* against
that state, charging every microsecond of request latency through the
same :class:`~repro.cluster.timeline.Timeline` /
:class:`~repro.cluster.network.NetworkProfile` machinery the training
engines use.  The pieces mirror the training-side dependency-management
split:

- :mod:`repro.serving.workload` -- seeded request generators (Poisson
  arrivals, Zipfian vertex popularity, burst phases);
- :mod:`repro.serving.planner` -- per-request choice between serving
  from the staleness-bounded historical cache, recomputing the k-hop
  closure locally (DepCache-style), or fetching remote representations
  through the exchange scheduler (DepComm-style), priced with the same
  probed ``T_v`` / ``T_e`` / ``T_c`` constants as Algorithm 4;
- :mod:`repro.serving.batcher` -- micro-batching of concurrent
  requests with k-hop frontier dedup;
- :mod:`repro.serving.slo` -- the per-request latency ledger
  (p50/p95/p99, throughput), admission control, and load shedding;
- :mod:`repro.serving.server` -- the :class:`InferenceServer` tying it
  together, including degraded serving under a
  :class:`~repro.resilience.faults.FaultSchedule`;
- :mod:`repro.serving.fleet` / :mod:`repro.serving.router` /
  :mod:`repro.serving.autoscaler` -- the self-healing replicated fleet:
  N serving groups behind a popularity-aware router, with
  health-checked failover, seeded hedged requests, and SLO-burn-driven
  autoscaling.
"""

from repro.serving.autoscaler import (
    AutoscalerConfig,
    ScalingEvent,
    SLOAutoscaler,
)
from repro.serving.batcher import MicroBatch, MicroBatcher
from repro.serving.fleet import (
    FleetConfig,
    FleetResult,
    ReplicaGroup,
    ServingFleet,
)
from repro.serving.router import PopularityRouter
from repro.serving.planner import ClosureProfile, RequestPlanner
from repro.serving.server import InferenceServer, ServingConfig, ServingResult
from repro.serving.slo import LatencyLedger, RequestRecord, SLOConfig
from repro.serving.workload import (
    BurstPhase,
    Request,
    WorkloadConfig,
    generate_workload,
)

__all__ = [
    "AutoscalerConfig",
    "BurstPhase",
    "ClosureProfile",
    "FleetConfig",
    "FleetResult",
    "InferenceServer",
    "LatencyLedger",
    "MicroBatch",
    "MicroBatcher",
    "PopularityRouter",
    "ReplicaGroup",
    "Request",
    "RequestPlanner",
    "RequestRecord",
    "SLOAutoscaler",
    "SLOConfig",
    "ScalingEvent",
    "ServingConfig",
    "ServingFleet",
    "ServingResult",
    "WorkloadConfig",
    "generate_workload",
]
