"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the Table-2 dataset catalog (scaled and paper sizes).
``probe``
    Probe the environment constants T_v / T_e / T_c for a model on a
    cluster (Algorithm 4, line 1).
``train``
    Train a model with a chosen engine on a simulated cluster; reports
    real loss/accuracy and modeled cluster time, optionally saving a
    checkpoint.
``compare``
    Per-epoch modeled time of DepCache vs DepComm vs Hybrid on one
    dataset (the Figure 2 / Figure 9 workflow as one command).
``analyze``
    Structural report (degree skew, locality, replication factor) and
    a strategy recommendation for a dataset under a partitioning.
``chaos``
    Inject faults (stragglers, link degradation, message loss, worker
    crashes) and compare how each engine degrades; crashes are
    recovered by checkpoint rollback-restart, by elastic shrink
    (survivors absorb the dead partition), or per-crash (``auto``).
``cache-sweep``
    Sweep the staleness bound tau (and optionally the cache capacity)
    of the historical-embedding cache, reporting per-epoch
    communication volume and accuracy against a cache-free baseline.
``replan-sweep``
    Compare static planning against health-monitor-driven online
    re-planning under sustained stragglers / degraded links.
``serve``
    Online inference serving: answer a seeded stream of node-level
    prediction requests on the partitioned cluster, with micro-batching,
    a staleness-bounded embedding cache, and hybrid local/remote
    dependency planning; reports the per-request latency ledger.
``serve-bench``
    Serving benchmark: batched vs unbatched throughput at identical
    predictions, plus a staleness-bound sweep showing the
    traffic/staleness trade-off.
``explain-plan``
    Print the compiled per-layer dataflow program (step kinds, vertex
    counts, bytes, applied passes) for an engine on a dataset; with
    ``--sampled`` (or a sampled engine) dry-runs the first mini-batch
    round(s) and renders each round's compiled Program.
``sample-sweep``
    Sweep the sampled-training grid (sampler x fanout x kappa x
    feature-cache capacity), reporting charged epoch time, comm
    bytes, and reuse/cache counters per grid point.
``tp-sweep``
    Sweep degree skew x hidden width on the scaled-social family and
    locate where tensor parallelism (the fourth dependency strategy)
    overtakes the best pure three-way plan.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cluster.memory import OutOfMemoryError
from repro.cluster.spec import ClusterSpec
from repro.comm.scheduler import CommOptions
from repro.core.model import GNNModel
from repro.costmodel.probe import probe_constants
from repro.engines import make_engine
from repro.graph.datasets import DATASETS, load_dataset, spec_of
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.prep import prepare_graph
from repro.training.trainer import DistributedTrainer
from repro.utils import jsonable, render_table, write_json


def _cluster(args) -> ClusterSpec:
    if args.cluster == "ecs":
        return ClusterSpec.ecs(args.nodes)
    if args.cluster == "ibv":
        return ClusterSpec.ibv(args.nodes)
    return ClusterSpec.cpu(args.nodes)


def _add_sampling_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sampler", default="uniform",
                        choices=["uniform", "labor", "ladies"],
                        help="mini-batch sampler for --engine sampled "
                             "(default uniform)")
    parser.add_argument("--fanouts", default=None,
                        help="comma-separated per-layer fanouts, seed layer "
                             "first, e.g. '10,25' (default: the engine's)")
    parser.add_argument("--kappa", type=float, default=0.0,
                        help="batch-dependency knob: fraction of the "
                             "previous batch's sampled closure reused "
                             "(default 0 = independent batches)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="mini-batch seed count (default 128)")


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=8,
                        help="number of simulated workers (default 8)")
    parser.add_argument("--cluster", choices=["ecs", "ibv", "cpu"],
                        default="ecs", help="hardware profile (default ecs)")


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", required=True,
                        help="catalog dataset name (see `datasets`)")
    parser.add_argument("--arch", choices=["gcn", "gin", "gat", "sage"],
                        default="gcn")
    parser.add_argument("--hidden", type=int, default=None,
                        help="hidden width (default: the dataset's Table-2 value)")
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=0)


def _cache_config(args):
    """Build a CacheConfig from the shared cache flags (None = no cache)."""
    tau = getattr(args, "tau", None)
    if tau is None:
        return None
    from repro.cache import CacheConfig

    capacity_mb = getattr(args, "cache_mb", None)
    return CacheConfig(
        tau=float("inf") if tau == "inf" else float(tau),
        policy=getattr(args, "cache_policy", "expectation"),
        capacity_bytes=(
            int(capacity_mb * 1024 * 1024) if capacity_mb is not None else None
        ),
    )


def _build(args, engine_name: str, comm: CommOptions = CommOptions.all(), **extra):
    graph = prepare_graph(load_dataset(args.dataset, scale=args.scale), args.arch)
    spec = spec_of(args.dataset)
    model = GNNModel.build(
        args.arch, graph.feature_dim, args.hidden or spec.hidden_dim,
        graph.num_classes, num_layers=args.layers, seed=args.seed,
    )
    engine = make_engine(
        engine_name, graph, model, _cluster(args), comm=comm,
        cache_config=_cache_config(args), **extra,
    )
    return graph, model, engine


def _parse_fanouts(text: str):
    """Parse ``'10,25;5,10'`` into ``((10, 25), (5, 10))``."""
    groups = []
    for group in text.split(";"):
        group = group.strip()
        if group:
            groups.append(tuple(int(f) for f in group.split(",")))
    if not groups:
        raise SystemExit("--fanouts needs at least one group like '10,25'")
    return tuple(groups)


def _sampling_kwargs(args, engine_name: Optional[str] = None):
    """Sampling flags forwarded to sampled engines (empty otherwise)."""
    name = engine_name or getattr(args, "engine", None)
    if name not in ("sampled", "distdgl"):
        return {}
    extra = {}
    if getattr(args, "fanouts", None):
        extra["fanouts"] = _parse_fanouts(args.fanouts)[0]
    if getattr(args, "batch_size", None) is not None:
        extra["batch_size"] = args.batch_size
    if getattr(args, "kappa", 0.0):
        extra["kappa"] = args.kappa
    # The distdgl facade hardwires uniform sampling; only the generic
    # sampled engine takes a sampler choice.
    if name == "sampled" and getattr(args, "sampler", None):
        extra["sampler"] = args.sampler
    return extra


def cmd_datasets(_args) -> int:
    rows = []
    for spec in DATASETS.values():
        rows.append([
            spec.name, str(spec.num_vertices), str(spec.num_edges),
            f"{spec.avg_degree:.1f}", str(spec.feature_dim),
            str(spec.num_labels), str(spec.hidden_dim),
            spec.paper_vertices, spec.paper_edges,
        ])
    print(render_table(
        ["name", "|V|", "|E|", "deg", "ftr", "#L", "hid",
         "paper |V|", "paper |E|"],
        rows,
    ))
    return 0


def cmd_probe(args) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    spec = spec_of(args.dataset)
    model = GNNModel.build(
        args.arch, graph.feature_dim, args.hidden or spec.hidden_dim,
        graph.num_classes, num_layers=args.layers, seed=args.seed,
    )
    constants = probe_constants(_cluster(args), model)
    print(f"Probed constants ({args.cluster}, {args.arch} on {args.dataset}):")
    rows = []
    for l in range(1, model.num_layers + 1):
        rows.append([
            str(l), f"{constants.vertex_cost(l):.3e}",
            f"{constants.edge_cost(l):.3e}", f"{constants.comm_cost(l):.3e}",
        ])
    print(render_table(["layer", "T_v (s/vertex)", "T_e (s/edge)",
                        "T_c (s/dep)"], rows))
    return 0


def cmd_train(args) -> int:
    graph, model, engine = _build(args, args.engine, **_sampling_kwargs(args))
    try:
        plan = engine.plan()
    except OutOfMemoryError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    if hasattr(plan, "cache_ratio"):
        print(f"plan: {plan.cache_ratio() * 100:.0f}% of remote "
              "dependencies cached")
    trainer = DistributedTrainer(engine, lr=args.lr)
    history = trainer.train(epochs=args.epochs, eval_every=args.eval_every)
    rows = [
        [str(p.epoch), f"{p.loss:.4f}", f"{p.accuracy * 100:.2f}%",
         f"{p.time_s:.3f}s"]
        for p in history.convergence
    ]
    print(render_table(["epoch", "loss", "accuracy", "cluster time"], rows))
    print(f"best accuracy {history.best_accuracy() * 100:.2f}%, "
          f"avg epoch {history.avg_epoch_time_s * 1e3:.2f} ms")
    if getattr(engine, "cache_config", None) is not None:
        hits = sum(r.cache_hits for r in history.reports)
        misses = sum(r.cache_misses for r in history.reports)
        saved = sum(r.comm_saved_bytes for r in history.reports)
        rate = hits / (hits + misses) if hits + misses else 0.0
        print(f"cache: {rate * 100:.0f}% hit rate, "
              f"{saved / 1e6:.2f} MB comm saved, "
              f"{history.forced_refreshes} forced refreshes")
    if args.checkpoint:
        path = save_checkpoint(
            model, args.checkpoint,
            dataset=args.dataset, arch=args.arch,
            epochs=args.epochs, accuracy=history.best_accuracy(),
        )
        print(f"checkpoint written to {path}")
    if args.json:
        payload = {
            "dataset": args.dataset,
            "arch": args.arch,
            "engine": args.engine,
            "epochs": args.epochs,
            "best_accuracy": history.best_accuracy(),
            "final_loss": history.final_loss,
            "avg_epoch_time_s": history.avg_epoch_time_s,
            "convergence": [
                {"epoch": p.epoch, "time_s": p.time_s,
                 "accuracy": p.accuracy, "loss": p.loss}
                for p in history.convergence
            ],
        }
        if getattr(engine, "cache_config", None) is not None:
            hits = sum(r.cache_hits for r in history.reports)
            misses = sum(r.cache_misses for r in history.reports)
            payload["cache"] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                "comm_saved_bytes": sum(
                    r.comm_saved_bytes for r in history.reports
                ),
                "forced_refreshes": history.forced_refreshes,
            }
        write_json(args.json, payload)
    return 0


def _requested_passes(args) -> tuple:
    names = []
    for attr, name in (
        ("fuse_pass", "fuse-scatter-gather"),
        ("pipeline_pass", "chunk-pipeline"),
        ("ring_pass", "ring-reorder"),
    ):
        if getattr(args, attr, False):
            names.append(name)
    return tuple(names)


def cmd_explain_plan(args) -> int:
    if args.sampled or args.engine in ("sampled", "distdgl"):
        return _explain_sampled(args)
    from repro.execution import describe_program, render_program

    _, _, engine = _build(args, args.engine)
    if getattr(args, "overlap_pass", False):
        engine.overlap_pass = True
    engine.program_passes = _requested_passes(args)
    try:
        engine.plan()
    except OutOfMemoryError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    if args.json:
        write_json(args.json, describe_program(engine))
        print(f"program written to {args.json}")
    else:
        print(render_program(engine))
    return 0


def _explain_sampled(args) -> int:
    """``explain-plan --sampled``: dry-run and render mini-batch rounds."""
    from repro.sampling import describe_sampled_batches, render_sampled_batches

    engine_name = (
        args.engine if args.engine in ("sampled", "distdgl") else "sampled"
    )
    _, _, engine = _build(
        args, engine_name, **_sampling_kwargs(args, engine_name)
    )
    if args.overlap_pass:
        engine.overlap_pass = True
    engine.program_passes = _requested_passes(args)
    try:
        engine.plan()
    except OutOfMemoryError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    if args.json:
        write_json(
            args.json, describe_sampled_batches(engine, num_batches=args.batches)
        )
        print(f"program written to {args.json}")
    else:
        print(render_sampled_batches(engine, num_batches=args.batches))
    return 0


def cmd_sample_sweep(args) -> int:
    from repro.sampling import run_sample_sweep

    rows_data = run_sample_sweep(
        args.dataset,
        scale=args.scale,
        samplers=tuple(s.strip() for s in args.samplers.split(",") if s.strip()),
        fanouts=_parse_fanouts(args.fanouts),
        kappas=tuple(float(k) for k in args.kappas.split(",")),
        cache_mb=tuple(float(c) for c in args.cache_mb.split(",")),
        cluster=_cluster(args),
        arch=args.arch,
        hidden=args.hidden,
        batch_size=args.batch_size,
        epochs=args.epochs,
        seed=args.seed,
    )
    rows = [
        [
            r["sampler"],
            ",".join(str(f) for f in r["fanouts"]),
            f"{r['kappa']:g}",
            f"{r['cache_mb']:g}",
            f"{r['epoch_s'] * 1e3:.2f}",
            f"{r['comm_bytes'] / 1e3:.1f}",
            str(r["sampled_edges"]),
            str(r["unique_remote"]),
            str(r["fetched_rows"]),
            str(r["reused_rows"]),
            str(r["pinned_rows"]),
        ]
        for r in rows_data
    ]
    print(render_table(
        ["sampler", "fanouts", "kappa", "cache MB", "epoch ms", "comm KB",
         "edges", "uniq remote", "fetched", "reused", "pinned"],
        rows,
    ))
    if args.json:
        write_json(args.json, {
            "dataset": args.dataset,
            "nodes": args.nodes,
            "cluster": args.cluster,
            "batch_size": args.batch_size,
            "epochs": args.epochs,
            "rows": rows_data,
        })
    return 0


def cmd_tp_sweep(args) -> int:
    from repro.engines.tp_sweep import PURE_THREE_WAY, run_tp_sweep

    result = run_tp_sweep(
        exponents=tuple(float(e) for e in args.exponents.split(",")),
        hiddens=tuple(int(h) for h in args.hiddens.split(",")),
        num_vertices=args.vertices,
        avg_degree=args.degree,
        num_layers=args.layers,
        arch=args.arch,
        cluster=_cluster(args),
        seed=args.seed,
    )
    rows = []
    for r in result["rows"]:
        times = r["times_s"]
        rows.append([
            f"{r['hub_exponent']:g}", str(r["hidden"]),
            *(f"{times[name] * 1e3:.3f}" for name in PURE_THREE_WAY),
            f"{times['tp'] * 1e3:.3f}", f"{times['hybrid4'] * 1e3:.3f}",
            "".join("T" if flag else "." for flag in r["tp_layers"]),
            "hybrid4" if r["four_way_wins"]
            else ("tp" if r["tp_wins"] else "three-way"),
        ])
    print(render_table(
        ["skew", "hidden", "depcache ms", "depcomm ms", "hybrid ms",
         "tp ms", "hybrid4 ms", "tp layers", "winner"],
        rows,
    ))
    crossover = result["crossover"]
    wins = crossover["four_way_win_cells"]
    if wins:
        print(f"four-way beats the best pure three-way plan at: "
              f"{', '.join(f'(skew={e:g}, hidden={h})' for e, h in wins)}")
    else:
        print("four-way never beats the best pure three-way plan "
              "on this grid")
    if args.json:
        write_json(args.json, result)
        print(f"sweep written to {args.json}")
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import analyze_dependencies, analyze_graph, recommend_strategy
    from repro.partition import get_partitioner

    graph = prepare_graph(load_dataset(args.dataset, scale=args.scale), args.arch)
    report = analyze_graph(graph)
    print(f"{args.dataset}: |V|={report.num_vertices} |E|={report.num_edges} "
          f"deg={report.avg_degree:.1f} gini={report.degree_gini:.2f} "
          f"locality={report.chunk_locality:.2f}")
    partitioning = get_partitioner(args.partitioner)(graph, args.nodes)
    deps = analyze_dependencies(graph, partitioning, num_layers=args.layers)
    recommendation = recommend_strategy(graph, partitioning, args.layers)
    print(f"partitioning: {args.partitioner} x {args.nodes} -> "
          f"replication {deps.replication_factor:.2f}x, "
          f"{deps.comm_bytes_per_layer / 1e6:.2f} MB/layer communicated")
    print(f"recommendation: {recommendation}")
    if args.json:
        write_json(args.json, {
            "dataset": args.dataset,
            "num_vertices": report.num_vertices,
            "num_edges": report.num_edges,
            "avg_degree": report.avg_degree,
            "degree_gini": report.degree_gini,
            "chunk_locality": report.chunk_locality,
            "partitioner": args.partitioner,
            "nodes": args.nodes,
            "replication_factor": deps.replication_factor,
            "comm_bytes_per_layer": deps.comm_bytes_per_layer,
            "recommendation": jsonable(recommendation),
        })
    return 0


def _parse_endpoint(token: str):
    return None if token in ("*", "") else int(token)


_TRUTHY = ("1", "true", "yes", "perm", "permanent")


def _parse_fault_args(args, allow_crash: bool = True, required: bool = True) -> List:
    """Build fault objects from the ``repro chaos`` flag grammar."""
    from repro.resilience import (
        LinkDegradationFault,
        MessageLossFault,
        StragglerFault,
        WorkerCrashFault,
    )

    faults: List = []
    for spec in args.straggler or []:
        parts = spec.split(":")
        faults.append(StragglerFault(
            worker=int(parts[0]),
            gpu_factor=float(parts[1]) if len(parts) > 1 else 4.0,
            cpu_factor=float(parts[2]) if len(parts) > 2 else None,
            start=float(parts[3]) if len(parts) > 3 else 0.0,
            end=float(parts[4]) if len(parts) > 4 else float("inf"),
        ))
    for spec in args.degrade or []:
        parts = spec.split(":")
        if len(parts) < 3:
            raise SystemExit(f"--degrade wants SRC:DST:FACTOR, got {spec!r}")
        faults.append(LinkDegradationFault(
            src=_parse_endpoint(parts[0]),
            dst=_parse_endpoint(parts[1]),
            bandwidth_factor=float(parts[2]),
            extra_latency_s=float(parts[3]) if len(parts) > 3 else 0.0,
        ))
    for spec in args.loss or []:
        parts = spec.split(":")
        faults.append(MessageLossFault(
            drop_fraction=float(parts[0]),
            src=_parse_endpoint(parts[1]) if len(parts) > 1 else None,
            dst=_parse_endpoint(parts[2]) if len(parts) > 2 else None,
        ))
    for spec in getattr(args, "crash", None) or []:
        if not allow_crash:
            raise SystemExit("--crash is not valid for this command")
        parts = spec.split(":")
        if len(parts) < 2:
            raise SystemExit(f"--crash wants WORKER:TIME, got {spec!r}")
        faults.append(WorkerCrashFault(
            worker=int(parts[0]),
            at_time=float(parts[1]),
            detection_timeout_s=(
                float(parts[2]) if len(parts) > 2 and parts[2] else 0.05
            ),
            permanent=(
                parts[3].lower() in _TRUTHY if len(parts) > 3 else False
            ),
        ))
    if not faults and required:
        raise SystemExit(
            "chaos needs at least one fault "
            "(--straggler / --degrade / --loss"
            + (" / --crash)" if allow_crash else ")")
        )
    return faults


def cmd_chaos(args) -> int:
    from repro.resilience import (
        FaultSchedule,
        RecoveryExhaustedError,
        RecoveryPolicy,
        RetryPolicy,
        run_chaos,
    )

    graph = prepare_graph(load_dataset(args.dataset, scale=args.scale), args.arch)
    spec = spec_of(args.dataset)

    def model_factory():
        return GNNModel.build(
            args.arch, graph.feature_dim, args.hidden or spec.hidden_dim,
            graph.num_classes, num_layers=args.layers, seed=args.seed,
        )

    cluster = _cluster(args)
    faults = _parse_fault_args(args)
    engines = (
        ["depcache", "depcomm", "hybrid"]
        if args.engine == "all" else [args.engine]
    )
    policy = RecoveryPolicy(
        checkpoint_every=args.checkpoint_every,
        strategy=args.recovery,
        rejoin_after_epochs=args.rejoin_after,
    )
    rows = []
    reports = {}
    failures = {}
    for engine_name in engines:
        schedule = FaultSchedule(list(faults), seed=args.fault_seed)
        try:
            report = run_chaos(
                engine_name, graph, model_factory, cluster, schedule,
                epochs=args.epochs, retry=RetryPolicy(), policy=policy,
                mode=args.mode,
                **_sampling_kwargs(args, engine_name),
            )
        except OutOfMemoryError as err:
            rows.append([engine_name, "OOM", "-", "-", "-", "-", "-", err.label])
            continue
        except RecoveryExhaustedError as err:
            failures[engine_name] = {
                "error": "recovery_exhausted",
                "worker": err.fault.worker,
                "detected_at_s": err.detected_at_s,
                "recoveries": err.recoveries,
                "max_recoveries": policy.max_recoveries,
                "message": str(err),
            }
            rows.append([
                engine_name, "FAILED", "-", "-", "-", "-",
                f"{err.recoveries} (budget exhausted)", "-",
            ])
            continue
        reports[engine_name] = report
        rows.append([
            engine_name,
            f"{report.clean_epoch_s * 1e3:.2f}",
            f"{report.faulty_epoch_s * 1e3:.2f}",
            f"{report.degradation:.2f}x",
            str(report.retries),
            f"{report.idle_fraction * 100:.1f}%",
            (
                f"{len(report.recoveries)} "
                f"({report.total_recovery_s * 1e3:.1f} ms)"
                if report.recoveries else "-"
            ),
            str(report.num_workers_final),
        ])
    print(render_table(
        ["engine", "clean ms", "faulty ms", "slowdown", "retries",
         "idle", "recoveries", "workers"],
        rows,
    ))
    if args.json:
        payload = {
            "dataset": args.dataset,
            "mode": args.mode,
            "recovery": args.recovery,
            "epochs": args.epochs,
            "engines": {name: r.to_dict() for name, r in reports.items()},
            "failures": failures,
        }
        write_json(args.json, payload)
    return 1 if failures else 0


def _ops_run_row(res):
    v, g = res.verdict, res.grade
    blame = "-"
    if v is not None:
        if v.worker is not None:
            blame = f"worker {v.worker}"
        elif v.link is not None:
            src, dst = v.link
            blame = f"link {src}->{'*' if dst is None else dst}"
        elif v.layer is not None:
            blame = f"layer {v.layer}"
    return [
        res.problem.name,
        res.problem.kind,
        v.kind if v is not None else "missed",
        blame,
        f"{g.detection.ttd_s * 1e3:.2f}" if g.detection.detected else "-",
        f"{g.detection.score:.2f}",
        f"{g.mitigation.score:.2f}",
        f"{g.overall:.2f}",
        "yes" if res.aborted else "no",
    ]


def cmd_ops(args) -> int:
    from repro.ops import (
        get_problem,
        list_problems,
        load_bundle,
        replay_bundle,
        run_problem,
        save_bundle,
    )

    if args.ops_command == "list":
        problems = list_problems()
        print(render_table(
            ["problem", "kind", "workload", "mitigation", "description"],
            [[p.name, p.kind, p.workload, p.mitigation, p.description]
             for p in problems],
        ))
        if args.json:
            write_json(args.json, {
                "problems": [p.spec_dict() for p in problems],
            })
        return 0

    if args.ops_command == "run":
        if args.problem and not args.all:
            problems = [get_problem(args.problem)]
        else:
            problems = list_problems()
        mitigate = not args.no_mitigate
        rows, payload, recorded = [], {}, []
        for problem in problems:
            res = run_problem(problem, seed=args.seed, mitigate=mitigate)
            rows.append(_ops_run_row(res))
            payload[problem.name] = {
                "seed": res.seed,
                "mitigate": res.mitigate,
                "aborted": res.aborted,
                "clean_unit_s": res.clean_unit_s,
                "verdict": res.verdict.to_dict() if res.verdict else None,
                "mitigation": (
                    res.mitigation.to_dict() if res.mitigation else None
                ),
                "grade": res.grade.to_dict(),
            }
            if args.record:
                stem = args.record[:-5] if args.record.endswith(".json") \
                    else args.record
                path = args.record if len(problems) == 1 \
                    else f"{stem}-{problem.name}.json"
                recorded.append(save_bundle(res, path))
        print(render_table(
            ["problem", "kind", "verdict", "blame", "ttd ms",
             "detect", "mitigate", "overall", "aborted"],
            rows,
        ))
        for path in recorded:
            print(f"bundle written to {path}")
        if args.json:
            write_json(args.json, {
                "seed": args.seed,
                "mitigate": mitigate,
                "problems": payload,
            })
        return 0

    # grade / replay consume a recorded bundle, engine-free.
    bundle = load_bundle(args.bundle)
    report = replay_bundle(bundle)
    if args.ops_command == "grade":
        g = report.grade
        print(render_table(
            ["problem", "detect", "blame", "ttd ms", "mitigate",
             "recovery ms", "regression", "overall"],
            [[
                report.name,
                f"{g.detection.score:.2f}",
                f"{g.detection.blame_score:.2f}",
                f"{g.detection.ttd_s * 1e3:.2f}"
                if g.detection.detected else "-",
                f"{g.mitigation.score:.2f}",
                f"{g.mitigation.recovery_s * 1e3:.2f}"
                if g.mitigation.recovered else "-",
                f"{g.mitigation.regression:+.2f}"
                if g.mitigation.recovered else "-",
                f"{g.overall:.2f}",
            ]],
        ))
        if args.json:
            write_json(args.json, report.to_dict())
        return 0

    # replay: verify the bundle reproduces itself bit-identically.
    status = "identical" if report.identical else "DIVERGED"
    print(render_table(
        ["problem", "seed", "observations", "verdict", "grade", "replay"],
        [[
            report.name,
            str(report.seed),
            "match" if report.observations_match else "MISMATCH",
            "match" if report.verdict_match else "MISMATCH",
            "match" if report.grade_match else "MISMATCH",
            status,
        ]],
    ))
    for line in report.mismatches:
        print(f"mismatch: {line}")
    if args.json:
        write_json(args.json, report.to_dict())
    return 0 if report.identical else 1


def cmd_compare(args) -> int:
    rows = []
    times = {}
    notes = {}
    for engine_name in ["depcache", "depcomm", "hybrid"]:
        try:
            _, _, engine = _build(args, engine_name)
            t = engine.charge_epoch()
            times[engine_name] = t
            extra = ""
            if engine_name == "hybrid":
                extra = f"{engine.plan().cache_ratio() * 100:.0f}% cached"
            notes[engine_name] = extra
            rows.append([engine_name, f"{t * 1e3:.2f}", extra])
        except OutOfMemoryError as err:
            notes[engine_name] = err.label
            rows.append([engine_name, "OOM", err.label])
    print(render_table(["engine", "epoch ms", "notes"], rows))
    best = min(times, key=times.get) if times else None
    if best:
        print(f"best: {best}")
    if args.json:
        write_json(args.json, {
            "dataset": args.dataset,
            "arch": args.arch,
            "nodes": args.nodes,
            "cluster": args.cluster,
            "engines": {
                name: {
                    "epoch_s": times.get(name, "OOM"),
                    "notes": notes[name],
                }
                for name in ["depcache", "depcomm", "hybrid"]
            },
            "best": best,
        })
    return 0


def cmd_cache_sweep(args) -> int:
    from repro.cache.sweep import run_cache_sweep

    graph = prepare_graph(load_dataset(args.dataset, scale=args.scale), args.arch)
    spec = spec_of(args.dataset)

    def model_factory():
        return GNNModel.build(
            args.arch, graph.feature_dim, args.hidden or spec.hidden_dim,
            graph.num_classes, num_layers=args.layers, seed=args.seed,
        )

    taus = [
        float("inf") if t.strip() == "inf" else float(t)
        for t in args.taus.split(",")
    ]
    capacities = (
        [int(float(c) * 1024 * 1024) for c in args.capacity_mb.split(",")]
        if args.capacity_mb else [None]
    )
    try:
        result = run_cache_sweep(
            graph, model_factory, _cluster(args),
            taus=taus, capacities=capacities, epochs=args.epochs,
            engine_name=args.engine, policy=args.cache_policy, lr=args.lr,
        )
    except OutOfMemoryError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    print(f"baseline ({args.engine}, no cache): "
          f"{result.baseline_comm_bytes / 1e3:.1f} KB/epoch, "
          f"accuracy {result.baseline_accuracy * 100:.2f}%, "
          f"epoch {result.baseline_epoch_s * 1e3:.2f} ms")
    rows = []
    for p in result.points:
        capacity = (
            "-" if p.capacity_bytes is None
            else f"{p.capacity_bytes / 1024 / 1024:g}MB"
        )
        rows.append([
            "inf" if p.tau == float("inf") else f"{p.tau:g}",
            capacity,
            f"{p.avg_comm_bytes / 1e3:.1f}",
            f"{p.comm_reduction * 100:.1f}%",
            f"{p.accuracy * 100:.2f}%",
            f"{p.accuracy_delta * 100:+.2f}%",
            f"{p.hit_rate() * 100:.0f}%",
            f"{p.speedup:.2f}x",
            str(p.forced_refreshes),
        ])
    print(render_table(
        ["tau", "capacity", "KB/epoch", "comm saved", "accuracy",
         "delta", "hit rate", "speedup", "forced"],
        rows,
    ))
    best = result.best(accuracy_tolerance=args.accuracy_tolerance)
    if best is not None:
        print(f"best within {args.accuracy_tolerance * 100:.0f}% accuracy: "
              f"tau={best.tau:g} saves {best.comm_reduction * 100:.1f}% comm")
    else:
        print("no point stayed within the accuracy tolerance")
    if args.json:
        write_json(args.json, result.to_dict())
    return 0


def cmd_replan_sweep(args) -> int:
    from repro.resilience import FaultSchedule, run_replan_sweep

    graph = prepare_graph(load_dataset(args.dataset, scale=args.scale), args.arch)
    spec = spec_of(args.dataset)

    def model_factory():
        return GNNModel.build(
            args.arch, graph.feature_dim, args.hidden or spec.hidden_dim,
            graph.num_classes, num_layers=args.layers, seed=args.seed,
        )

    faults = _parse_fault_args(args, allow_crash=False)

    def schedule_factory():
        return FaultSchedule(list(faults), seed=args.fault_seed)

    try:
        result = run_replan_sweep(
            args.engine, graph, model_factory, _cluster(args),
            schedule_factory, epochs=args.epochs,
            check_every=args.check_every, alpha=args.alpha,
            drift_threshold=args.drift_threshold,
        )
    except OutOfMemoryError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    rows = [[
        result["engine"],
        f"{result['static_makespan_s'] * 1e3:.2f}",
        f"{result['adaptive_makespan_s'] * 1e3:.2f}",
        f"{result['speedup']:.2f}x",
        str(result["replans"]),
        f"{result['static_cache_ratio'] * 100:.0f}%",
        f"{result['adaptive_cache_ratio'] * 100:.0f}%",
    ]]
    print(render_table(
        ["engine", "static ms", "adaptive ms", "speedup", "replans",
         "static cached", "adaptive cached"],
        rows,
    ))
    if args.json:
        write_json(args.json, result)
    return 0


def _serving_setup(args):
    """Graph + (optionally trained) model + partitioning for serving."""
    from repro.partition import get_partitioner

    graph = prepare_graph(load_dataset(args.dataset, scale=args.scale), args.arch)
    spec = spec_of(args.dataset)
    model = GNNModel.build(
        args.arch, graph.feature_dim, args.hidden or spec.hidden_dim,
        graph.num_classes, num_layers=args.layers, seed=args.seed,
    )
    cluster = _cluster(args)
    if getattr(args, "checkpoint", None):
        meta = load_checkpoint(model, args.checkpoint)
        print(f"loaded checkpoint {args.checkpoint} "
              f"({meta.get('dataset', '?')}, {meta.get('arch', '?')})")
    elif getattr(args, "train_epochs", 0):
        engine = make_engine("hybrid", graph, model, cluster)
        DistributedTrainer(engine, lr=0.01).train(
            epochs=args.train_epochs, eval_every=args.train_epochs
        )
        print(f"trained {args.train_epochs} epochs before serving")
    partitioning = get_partitioner(args.partitioner)(graph, args.nodes)
    return graph, model, cluster, partitioning


def _parse_bursts(specs):
    from repro.serving import BurstPhase

    bursts = []
    for spec in specs or []:
        parts = spec.split(":")
        if len(parts) < 2:
            raise SystemExit(f"--burst wants START:END[:MULTIPLIER], got {spec!r}")
        bursts.append(BurstPhase(
            start_s=float(parts[0]),
            end_s=float(parts[1]),
            rate_multiplier=float(parts[2]) if len(parts) > 2 else 4.0,
        ))
    return tuple(bursts)


def cmd_serve(args) -> int:
    from repro.resilience import FaultSchedule
    from repro.serving import (
        InferenceServer,
        ServingConfig,
        SLOConfig,
        WorkloadConfig,
        generate_workload,
    )

    graph, model, cluster, partitioning = _serving_setup(args)
    workload = generate_workload(
        WorkloadConfig(
            num_requests=args.requests,
            rate_rps=args.rate,
            zipf_exponent=args.zipf,
            seed=args.workload_seed,
            bursts=_parse_bursts(args.burst),
        ),
        graph.num_vertices,
    )
    faults = _parse_fault_args(args, required=False)
    config = ServingConfig(
        batch_window_s=args.batch_window,
        max_batch=args.max_batch,
        tau_s=args.tau_s,
        mode=args.serve_mode,
        slo=SLOConfig(max_pending=args.max_pending),
    )
    server = InferenceServer(
        graph, model, cluster, partitioning, config=config,
        faults=FaultSchedule(faults, seed=args.fault_seed) if faults else None,
    )
    result = server.serve(workload)
    ledger = result.ledger
    modes = ", ".join(
        f"{mode} {count}" for mode, count in sorted(ledger.mode_counts().items())
    )
    rows = [[
        str(len(ledger)),
        str(len(ledger.served())),
        str(ledger.shed_count),
        str(ledger.degraded_count),
        f"{ledger.p50_s * 1e3:.2f}",
        f"{ledger.p95_s * 1e3:.2f}",
        f"{ledger.p99_s * 1e3:.2f}",
        f"{ledger.throughput_rps():.0f}",
        f"{ledger.total_comm_bytes / 1e3:.1f}",
        f"{ledger.mean_staleness_s() * 1e3:.1f}",
    ]]
    print(render_table(
        ["requests", "served", "shed", "degraded", "p50 ms", "p95 ms",
         "p99 ms", "rps", "comm KB", "staleness ms"],
        rows,
    ))
    print(f"modes: {modes} | {result.num_batches} micro-batches, "
          f"cache hits {result.cache.counters.hits}")
    if args.trace:
        from repro.cluster.trace import save_chrome_trace

        path = save_chrome_trace(result.timeline, args.trace)
        print(f"chrome trace written to {path}")
    if args.json:
        write_json(args.json, {
            "dataset": args.dataset,
            "partitioner": args.partitioner,
            "tau_s": args.tau_s,
            "mode": args.serve_mode,
            "batch_window_s": args.batch_window,
            "max_batch": args.max_batch,
            "summary": jsonable(result.summary()),
            "ledger": jsonable(ledger.to_dict()),
        })
    return 0


def cmd_serve_bench(args) -> int:
    from repro.serving import (
        InferenceServer,
        ServingConfig,
        WorkloadConfig,
        generate_workload,
    )

    graph, model, cluster, partitioning = _serving_setup(args)
    workload = generate_workload(
        WorkloadConfig(
            num_requests=args.requests,
            rate_rps=args.rate,
            zipf_exponent=args.zipf,
            seed=args.workload_seed,
        ),
        graph.num_vertices,
    )

    def run(window_s, max_batch, tau_s, mode):
        config = ServingConfig(
            batch_window_s=window_s, max_batch=max_batch,
            tau_s=tau_s, mode=mode,
        )
        server = InferenceServer(
            graph, model, cluster, partitioning, config=config,
            record_timeline=False,
        )
        return server.serve(workload)

    # Batched vs unbatched at identical predictions.
    unbatched = run(0.0, 1, 0.0, "local")
    batched = run(args.batch_window, args.max_batch, 0.0, "local")
    speedup = (
        batched.ledger.throughput_rps() / unbatched.ledger.throughput_rps()
        if unbatched.ledger.throughput_rps() else float("inf")
    )
    rows = [
        ["unbatched", f"{unbatched.ledger.throughput_rps():.0f}",
         f"{unbatched.ledger.p99_s * 1e3:.2f}", "-"],
        ["batched", f"{batched.ledger.throughput_rps():.0f}",
         f"{batched.ledger.p99_s * 1e3:.2f}", f"{speedup:.2f}x"],
    ]
    print(render_table(["serving", "rps", "p99 ms", "speedup"], rows))
    identical = batched.predictions == unbatched.predictions
    print(f"predictions identical: {identical}")

    # Staleness-bound sweep (remote mode so traffic is non-trivial).
    taus = [float(t) for t in args.taus.split(",")]
    sweep = []
    rows = []
    for tau in taus:
        result = run(args.batch_window, args.max_batch, tau, "remote")
        ledger = result.ledger
        point = {
            "tau_s": tau,
            "comm_bytes": ledger.total_comm_bytes,
            "p99_ms": ledger.p99_s * 1e3,
            "mean_staleness_s": ledger.mean_staleness_s(),
            "cache_hits": result.cache.counters.hits,
        }
        sweep.append(point)
        rows.append([
            f"{tau:g}", f"{ledger.total_comm_bytes / 1e3:.1f}",
            f"{ledger.p99_s * 1e3:.2f}",
            f"{ledger.mean_staleness_s() * 1e3:.1f}",
            str(result.cache.counters.hits),
        ])
    print(render_table(
        ["tau s", "comm KB", "p99 ms", "staleness ms", "cache hits"], rows
    ))
    if args.json:
        write_json(args.json, {
            "dataset": args.dataset,
            "requests": args.requests,
            "batched_rps": batched.ledger.throughput_rps(),
            "unbatched_rps": unbatched.ledger.throughput_rps(),
            "batching_speedup": speedup,
            "predictions_identical": identical,
            "tau_sweep": sweep,
        })
    return 0


def _parse_replica_faults(args, nodes: int):
    """Per-replica fault schedules from the ``repro fleet`` grammar."""
    from repro.resilience import FaultSchedule, StragglerFault, WorkerCrashFault

    per_replica: dict = {}
    for spec in args.crash_replica or []:
        parts = spec.split(":")
        if len(parts) < 2:
            raise SystemExit(
                f"--crash-replica wants REPLICA:TIME[:TIMEOUT], got {spec!r}"
            )
        replica = int(parts[0])
        at_time = float(parts[1])
        timeout = float(parts[2]) if len(parts) > 2 else 0.05
        # Every worker of the group goes dark: the whole replica dies.
        per_replica.setdefault(replica, []).extend(
            WorkerCrashFault(
                worker=w, at_time=at_time,
                detection_timeout_s=timeout, permanent=True,
            )
            for w in range(nodes)
        )
    for spec in args.straggle_replica or []:
        parts = spec.split(":")
        if len(parts) < 2:
            raise SystemExit(
                "--straggle-replica wants REPLICA:GPU_FACTOR[:START[:END]], "
                f"got {spec!r}"
            )
        replica = int(parts[0])
        per_replica.setdefault(replica, []).extend(
            StragglerFault(
                worker=w,
                gpu_factor=float(parts[1]),
                start=float(parts[2]) if len(parts) > 2 else 0.0,
                end=float(parts[3]) if len(parts) > 3 else float("inf"),
            )
            for w in range(nodes)
        )
    return {
        replica: FaultSchedule(faults, seed=args.fault_seed)
        for replica, faults in sorted(per_replica.items())
    }


def cmd_fleet(args) -> int:
    from repro.serving import (
        AutoscalerConfig,
        FleetConfig,
        ServingConfig,
        ServingFleet,
        SLOConfig,
        WorkloadConfig,
        generate_workload,
    )

    graph, model, cluster, partitioning = _serving_setup(args)
    workload = generate_workload(
        WorkloadConfig(
            num_requests=args.requests,
            rate_rps=args.rate,
            zipf_exponent=args.zipf,
            seed=args.workload_seed,
            bursts=_parse_bursts(args.burst),
        ),
        graph.num_vertices,
    )
    autoscaler = None
    if args.autoscale_p99 is not None:
        autoscaler = AutoscalerConfig(
            target_p99_s=args.autoscale_p99,
            min_replicas=args.min_replicas,
            max_replicas=args.max_replicas,
            burn_windows=args.burn_windows,
            idle_windows=args.idle_windows,
        )
    config = FleetConfig(
        replicas=args.replicas,
        serving=ServingConfig(
            batch_window_s=args.batch_window,
            max_batch=args.max_batch,
            tau_s=args.tau_s,
            mode=args.serve_mode,
            slo=SLOConfig(max_pending=args.max_pending),
        ),
        seed=args.fleet_seed,
        health_every=args.health_every,
        pin_after=args.pin_after,
        hedge_factor=args.hedge_factor,
        self_heal=not args.no_self_heal,
        autoscaler=autoscaler,
    )
    fleet = ServingFleet(
        graph, model, cluster, partitioning, config=config,
        replica_faults=_parse_replica_faults(args, args.nodes),
    )
    result = fleet.serve(workload)
    ledger = result.ledger
    summary = result.summary()
    rows = [[
        str(len(ledger)),
        str(len(ledger.served())),
        str(ledger.shed_count),
        f"{ledger.p50_s * 1e3:.2f}",
        f"{ledger.p99_s * 1e3:.2f}",
        f"{ledger.throughput_rps():.0f}",
        f"{summary['num_replicas_started']}"
        f"→{summary['num_replicas_final']}",
        f"{result.hedges_launched}/{result.hedges_won}",
        str(result.failovers),
        str(len(result.scaling_events)),
    ]]
    print(render_table(
        ["requests", "served", "shed", "p50 ms", "p99 ms", "rps",
         "replicas", "hedges l/w", "failovers", "scalings"],
        rows,
    ))
    for event in result.health_events:
        print(f"health: {event['event']} replica {event['replica']} "
              f"at {event['at_s'] * 1e3:.2f} ms (segment {event['segment']})")
    for event in result.scaling_events:
        print(f"scaling: {event.action} replica {event.replica} "
              f"at {event.at_s * 1e3:.2f} ms ({event.reason}, "
              f"{event.migrated_bytes / 1e3:.1f} KB migrated)")
    if args.trace:
        from repro.cluster.trace import save_chrome_trace

        path = save_chrome_trace(fleet.groups[0].timeline, args.trace)
        print(f"chrome trace of replica 0 written to {path}")
    if args.json:
        write_json(args.json, {
            "dataset": args.dataset,
            "partitioner": args.partitioner,
            "replicas": args.replicas,
            "health_every": args.health_every,
            "self_heal": not args.no_self_heal,
            "summary": jsonable(summary),
            "ledger": jsonable(ledger.to_dict()),
        })
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NeutronStar reproduction: distributed GNN training "
                    "with hybrid dependency management",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the dataset catalog")

    probe = sub.add_parser("probe", help="probe T_v/T_e/T_c")
    _add_model_args(probe)
    _add_cluster_args(probe)

    train = sub.add_parser("train", help="train a model")
    _add_model_args(train)
    _add_cluster_args(train)
    train.add_argument("--engine", default="hybrid",
                       choices=["depcache", "depcomm", "hybrid", "hybrid4",
                                "tp", "distdgl", "sampled"])
    _add_sampling_args(train)
    train.add_argument("--epochs", type=int, default=30)
    train.add_argument("--lr", type=float, default=0.01)
    train.add_argument("--eval-every", type=int, default=5)
    train.add_argument("--checkpoint", default=None,
                       help="path to save the trained model (.npz)")
    train.add_argument("--tau", default=None,
                       help="staleness bound for the historical-embedding "
                            "cache in epochs ('inf' allowed); omit for no "
                            "cache")
    train.add_argument("--cache-mb", type=float, default=None,
                       help="cache capacity cap in MB (default unbounded)")
    train.add_argument("--cache-policy", default="expectation",
                       choices=["degree", "lru", "expectation"],
                       help="cache admission policy (default expectation)")
    train.add_argument("--json", default=None,
                       help="write a training summary to this JSON file")

    sweep = sub.add_parser(
        "cache-sweep",
        help="sweep the staleness bound tau against a cache-free baseline",
    )
    _add_model_args(sweep)
    _add_cluster_args(sweep)
    sweep.add_argument("--engine", default="depcomm",
                       choices=["depcomm", "hybrid"])
    sweep.add_argument("--epochs", type=int, default=20)
    sweep.add_argument("--lr", type=float, default=0.01)
    sweep.add_argument("--taus", default="0,2,4,8",
                       help="comma-separated staleness bounds ('inf' allowed)")
    sweep.add_argument("--capacity-mb", default=None,
                       help="comma-separated capacity caps in MB "
                            "(default: unbounded only)")
    sweep.add_argument("--cache-policy", default="expectation",
                       choices=["degree", "lru", "expectation"])
    sweep.add_argument("--accuracy-tolerance", type=float, default=0.01,
                       help="accuracy drop tolerated when picking the best "
                            "point (default 0.01)")
    sweep.add_argument("--json", default=None,
                       help="write the sweep result to this JSON file")

    compare = sub.add_parser(
        "compare", help="compare DepCache/DepComm/Hybrid epoch times"
    )
    _add_model_args(compare)
    _add_cluster_args(compare)
    compare.add_argument("--json", default=None,
                         help="write the comparison to this JSON file")

    explain = sub.add_parser(
        "explain-plan",
        help="print the compiled per-layer dataflow program",
    )
    _add_model_args(explain)
    _add_cluster_args(explain)
    explain.add_argument("--engine", default="hybrid",
                         choices=["depcache", "depcomm", "hybrid", "hybrid4",
                                  "roc", "distdgl", "sampled", "tp"])
    explain.add_argument("--sampled", action="store_true",
                         help="dry-run and render per-batch sampled "
                              "programs (implied by a sampled engine)")
    explain.add_argument("--batches", type=int, default=1,
                         help="mini-batch rounds to render with --sampled "
                              "(default 1)")
    _add_sampling_args(explain)
    explain.add_argument("--tau", default=None,
                         help="staleness bound in epochs ('inf' allowed); "
                              "omit for no cache")
    explain.add_argument("--cache-mb", type=float, default=None,
                         help="cache capacity cap in MB (default unbounded)")
    explain.add_argument("--cache-policy", default="expectation",
                         choices=["degree", "lru", "expectation"])
    explain.add_argument("--overlap-pass", action="store_true",
                         help="apply the comm/compute overlap program pass")
    explain.add_argument("--fuse-pass", action="store_true",
                         help="apply the fuse-scatter-gather program pass")
    explain.add_argument("--pipeline-pass", action="store_true",
                         help="apply the chunk-pipeline program pass")
    explain.add_argument("--ring-pass", action="store_true",
                         help="apply the ring-reorder program pass")
    explain.add_argument("--json", default=None,
                         help="write the program description to this JSON "
                              "file")

    ssweep = sub.add_parser(
        "sample-sweep",
        help="sweep sampler x fanout x kappa x feature-cache capacity",
    )
    _add_model_args(ssweep)
    _add_cluster_args(ssweep)
    ssweep.add_argument("--samplers", default="uniform,labor,ladies",
                        help="comma-separated sampler names "
                             "(default uniform,labor,ladies)")
    ssweep.add_argument("--fanouts", default="10,25",
                        help="semicolon-separated fanout groups, e.g. "
                             "'10,25;5,10' (default '10,25')")
    ssweep.add_argument("--kappas", default="0",
                        help="comma-separated kappa values in [0,1]")
    ssweep.add_argument("--cache-mb", default="0",
                        help="comma-separated static feature-cache "
                             "capacities in MB (0 = no cache)")
    ssweep.add_argument("--batch-size", type=int, default=128)
    ssweep.add_argument("--epochs", type=int, default=2,
                        help="charged epochs per grid point (default 2)")
    ssweep.add_argument("--json", default=None,
                        help="write the sweep rows to this JSON file")

    tpsweep = sub.add_parser(
        "tp-sweep",
        help="degree-skew x hidden-dim sweep locating the hybrid <-> "
             "tensor-parallel crossover",
    )
    _add_cluster_args(tpsweep)
    tpsweep.add_argument("--exponents", default="0.1,0.85,1.2",
                         help="comma-separated scaled-social hub exponents "
                              "(default '0.1,0.85,1.2')")
    tpsweep.add_argument("--hiddens", default="16,64,256",
                         help="comma-separated hidden widths "
                              "(default '16,64,256')")
    tpsweep.add_argument("--vertices", type=int, default=3072,
                         help="scaled-social vertex count (default 3072)")
    tpsweep.add_argument("--degree", type=float, default=16.0,
                         help="scaled-social average degree (default 16)")
    tpsweep.add_argument("--arch", choices=["gcn", "gin", "gat", "sage"],
                         default="gcn")
    tpsweep.add_argument("--layers", type=int, default=2)
    tpsweep.add_argument("--seed", type=int, default=0)
    tpsweep.add_argument("--json", default=None,
                         help="write the sweep result to this JSON file")

    analyze = sub.add_parser(
        "analyze", help="structural report + strategy recommendation"
    )
    _add_model_args(analyze)
    _add_cluster_args(analyze)
    analyze.add_argument("--partitioner", default="chunk",
                         choices=["chunk", "hash", "fennel", "metis"])
    analyze.add_argument("--json", default=None,
                         help="write the report to this JSON file")

    chaos = sub.add_parser(
        "chaos",
        help="inject faults and compare engine degradation/recovery",
    )
    _add_model_args(chaos)
    _add_cluster_args(chaos)
    chaos.add_argument("--engine", default="all",
                       choices=["all", "depcache", "depcomm", "hybrid",
                                "distdgl", "sampled"])
    _add_sampling_args(chaos)
    chaos.add_argument("--epochs", type=int, default=5)
    chaos.add_argument("--mode", choices=["timing", "train"],
                       default="timing")
    chaos.add_argument("--straggler", action="append", metavar="SPEC",
                       help="WORKER:GPU_FACTOR[:CPU_FACTOR[:START[:END]]]")
    chaos.add_argument("--degrade", action="append", metavar="SPEC",
                       help="SRC:DST:FACTOR[:EXTRA_LATENCY_S]; '*' matches "
                            "any endpoint")
    chaos.add_argument("--loss", action="append", metavar="SPEC",
                       help="FRACTION[:SRC[:DST]] of sends dropped")
    chaos.add_argument("--crash", action="append", metavar="SPEC",
                       help="WORKER:TIME[:DETECTION_TIMEOUT_S[:PERMANENT]]; "
                            "a truthy 4th field marks the worker as gone "
                            "for good")
    chaos.add_argument("--checkpoint-every", type=int, default=5,
                       help="epochs between recovery checkpoints")
    chaos.add_argument("--fault-seed", type=int, default=0,
                       help="seed for message-loss draws")
    chaos.add_argument("--recovery", default="restart",
                       choices=["restart", "shrink", "auto"],
                       help="crash recovery strategy: re-provision and "
                            "replay, shrink onto the survivors, or pick "
                            "per crash (default restart)")
    chaos.add_argument("--rejoin-after", type=int, default=None,
                       help="epochs after a shrink before the departed "
                            "worker rejoins (default: never)")
    chaos.add_argument("--json", default=None,
                       help="write per-engine chaos reports to this JSON "
                            "file")

    ops = sub.add_parser(
        "ops",
        help="operations benchmark: graded detect/localize/mitigate "
             "problems with trace replay",
    )
    ops_sub = ops.add_subparsers(dest="ops_command", required=True)
    ops_list = ops_sub.add_parser(
        "list", help="list the registered ops problems"
    )
    ops_list.add_argument("--json", default=None,
                          help="write the problem specs to this JSON file")
    ops_run = ops_sub.add_parser(
        "run", help="run one problem (or all) end-to-end and grade it"
    )
    ops_run.add_argument("problem", nargs="?", default=None,
                         help="problem name (see 'repro ops list'); "
                              "omitted = all")
    ops_run.add_argument("--all", action="store_true",
                         help="run every registered problem")
    ops_run.add_argument("--seed", type=int, default=0,
                         help="single run seed; every stream (graph, "
                              "faults, workload) derives from it")
    ops_run.add_argument("--no-mitigate", action="store_true",
                         help="detect and grade only; apply no mitigation")
    ops_run.add_argument("--record", default=None,
                         help="write replayable bundle(s) to this path "
                              "(per-problem suffix when running several)")
    ops_run.add_argument("--json", default=None,
                         help="write verdicts + grades to this JSON file")
    ops_grade = ops_sub.add_parser(
        "grade", help="re-grade a recorded bundle offline"
    )
    ops_grade.add_argument("bundle", help="bundle path from ops run --record")
    ops_grade.add_argument("--json", default=None,
                           help="write the grade report to this JSON file")
    ops_replay = ops_sub.add_parser(
        "replay",
        help="replay a recorded bundle without the engine and verify "
             "bit-identity (non-zero exit on divergence)",
    )
    ops_replay.add_argument("bundle",
                            help="bundle path from ops run --record")
    ops_replay.add_argument("--json", default=None,
                            help="write the replay report to this JSON file")

    replan = sub.add_parser(
        "replan-sweep",
        help="compare static planning vs online re-planning under "
             "sustained faults",
    )
    _add_model_args(replan)
    _add_cluster_args(replan)
    replan.add_argument("--engine", default="hybrid",
                        choices=["depcache", "depcomm", "hybrid"])
    replan.add_argument("--epochs", type=int, default=10)
    replan.add_argument("--straggler", action="append", metavar="SPEC",
                        help="WORKER:GPU_FACTOR[:CPU_FACTOR[:START[:END]]]")
    replan.add_argument("--degrade", action="append", metavar="SPEC",
                        help="SRC:DST:FACTOR[:EXTRA_LATENCY_S]; '*' matches "
                             "any endpoint")
    replan.add_argument("--loss", action="append", metavar="SPEC",
                        help="FRACTION[:SRC[:DST]] of sends dropped")
    replan.add_argument("--fault-seed", type=int, default=0,
                        help="seed for message-loss draws")
    replan.add_argument("--check-every", type=int, default=1,
                        help="epochs between health-monitor observations")
    replan.add_argument("--alpha", type=float, default=0.4,
                        help="EWMA smoothing for the health estimates")
    replan.add_argument("--drift-threshold", type=float, default=0.3,
                        help="relative drift that triggers a re-plan")
    replan.add_argument("--json", default=None,
                        help="write the sweep result to this JSON file")

    serve = sub.add_parser(
        "serve",
        help="online inference serving on the partitioned cluster",
    )
    _add_model_args(serve)
    _add_cluster_args(serve)
    serve.add_argument("--partitioner", default="chunk",
                       choices=["chunk", "hash", "fennel", "metis"])
    serve.add_argument("--checkpoint", default=None,
                       help="load model weights from this .npz before serving")
    serve.add_argument("--train-epochs", type=int, default=0,
                       help="quick-train this many epochs before serving "
                            "(ignored with --checkpoint)")
    serve.add_argument("--requests", type=int, default=200,
                       help="number of requests to generate (default 200)")
    serve.add_argument("--rate", type=float, default=2000.0,
                       help="mean arrival rate in requests/s (default 2000)")
    serve.add_argument("--zipf", type=float, default=1.0,
                       help="Zipf popularity exponent; 0 = uniform")
    serve.add_argument("--workload-seed", type=int, default=0)
    serve.add_argument("--burst", action="append", metavar="SPEC",
                       help="START:END[:MULTIPLIER] arrival-rate burst window")
    serve.add_argument("--batch-window", type=float, default=0.002,
                       help="micro-batch window in seconds (default 2 ms)")
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--tau-s", type=float, default=0.0,
                       help="staleness bound for served embeddings in "
                            "seconds (0 = always recompute)")
    serve.add_argument("--serve-mode", default="auto",
                       choices=["auto", "local", "remote"],
                       help="force local recompute / remote fetch, or let "
                            "the planner pick per batch (default auto)")
    serve.add_argument("--max-pending", type=int, default=None,
                       help="shed requests arriving over this backlog")
    serve.add_argument("--straggler", action="append", metavar="SPEC",
                       help="WORKER:GPU_FACTOR[:CPU_FACTOR[:START[:END]]]")
    serve.add_argument("--degrade", action="append", metavar="SPEC",
                       help="SRC:DST:FACTOR[:EXTRA_LATENCY_S]")
    serve.add_argument("--loss", action="append", metavar="SPEC",
                       help="FRACTION[:SRC[:DST]] of sends dropped")
    serve.add_argument("--crash", action="append", metavar="SPEC",
                       help="WORKER:TIME -- serve degraded around the dead "
                            "worker")
    serve.add_argument("--fault-seed", type=int, default=0)
    serve.add_argument("--trace", default=None,
                       help="write a chrome trace of the serving timeline")
    serve.add_argument("--json", default=None,
                       help="write summary + per-request ledger to this "
                            "JSON file")

    serve_bench = sub.add_parser(
        "serve-bench",
        help="serving benchmark: batching speedup + staleness sweep",
    )
    _add_model_args(serve_bench)
    _add_cluster_args(serve_bench)
    serve_bench.add_argument("--partitioner", default="chunk",
                             choices=["chunk", "hash", "fennel", "metis"])
    serve_bench.add_argument("--requests", type=int, default=400)
    serve_bench.add_argument("--rate", type=float, default=200000.0,
                             help="arrival rate; the default saturates the "
                                  "cluster so batching gains show")
    serve_bench.add_argument("--zipf", type=float, default=1.1)
    serve_bench.add_argument("--workload-seed", type=int, default=0)
    serve_bench.add_argument("--batch-window", type=float, default=0.002)
    serve_bench.add_argument("--max-batch", type=int, default=64)
    serve_bench.add_argument("--taus", default="0,0.01,0.05,0.2",
                             help="comma-separated staleness bounds in "
                                  "seconds for the sweep")
    serve_bench.add_argument("--json", default=None,
                             help="write the benchmark result to this JSON "
                                  "file")

    fleet = sub.add_parser(
        "fleet",
        help="replicated serving fleet: health-checked routing, failover, "
             "hedging, autoscaling",
    )
    _add_model_args(fleet)
    _add_cluster_args(fleet)
    fleet.add_argument("--partitioner", default="chunk",
                       choices=["chunk", "hash", "fennel", "metis"])
    fleet.add_argument("--checkpoint", default=None,
                       help="load model weights from this .npz before serving")
    fleet.add_argument("--train-epochs", type=int, default=0,
                       help="quick-train this many epochs before serving "
                            "(ignored with --checkpoint)")
    fleet.add_argument("--requests", type=int, default=200,
                       help="number of requests to generate (default 200)")
    fleet.add_argument("--rate", type=float, default=2000.0,
                       help="mean arrival rate in requests/s (default 2000)")
    fleet.add_argument("--zipf", type=float, default=1.0,
                       help="Zipf popularity exponent; 0 = uniform")
    fleet.add_argument("--workload-seed", type=int, default=0)
    fleet.add_argument("--burst", action="append", metavar="SPEC",
                       help="START:END[:MULTIPLIER] arrival-rate burst window")
    fleet.add_argument("--batch-window", type=float, default=0.002,
                       help="micro-batch window in seconds (default 2 ms)")
    fleet.add_argument("--max-batch", type=int, default=32)
    fleet.add_argument("--tau-s", type=float, default=0.0,
                       help="staleness bound for served embeddings in "
                            "seconds (0 = always recompute)")
    fleet.add_argument("--serve-mode", default="auto",
                       choices=["auto", "local", "remote"])
    fleet.add_argument("--max-pending", type=int, default=None,
                       help="shed requests arriving over this backlog")
    fleet.add_argument("--replicas", type=int, default=2,
                       help="serving groups behind the router (default 2)")
    fleet.add_argument("--fleet-seed", type=int, default=0,
                       help="seed for routing + hedge-jitter streams")
    fleet.add_argument("--health-every", type=int, default=32,
                       help="requests per health-check segment (default 32)")
    fleet.add_argument("--pin-after", type=int, default=3,
                       help="popularity pin threshold (default 3)")
    fleet.add_argument("--hedge-factor", type=float, default=3.0,
                       help="suspect threshold: segment mean over this "
                            "multiple of the baseline p99 (default 3)")
    fleet.add_argument("--no-self-heal", action="store_true",
                       help="disable automatic failover/hedging/autoscaling "
                            "(the ops-harness mode)")
    fleet.add_argument("--crash-replica", action="append", metavar="SPEC",
                       help="REPLICA:TIME[:TIMEOUT] -- every worker of the "
                            "replica goes dark at TIME")
    fleet.add_argument("--straggle-replica", action="append", metavar="SPEC",
                       help="REPLICA:GPU_FACTOR[:START[:END]] -- slow every "
                            "worker of the replica")
    fleet.add_argument("--fault-seed", type=int, default=0)
    fleet.add_argument("--autoscale-p99", type=float, default=None,
                       help="target p99 seconds; enables the SLO autoscaler")
    fleet.add_argument("--min-replicas", type=int, default=1)
    fleet.add_argument("--max-replicas", type=int, default=4)
    fleet.add_argument("--burn-windows", type=int, default=2,
                       help="consecutive burning segments before scale-out")
    fleet.add_argument("--idle-windows", type=int, default=4,
                       help="consecutive idle segments before scale-in")
    fleet.add_argument("--trace", default=None,
                       help="write a chrome trace of replica 0's timeline")
    fleet.add_argument("--json", default=None,
                       help="write summary + per-request ledger to this "
                            "JSON file")

    return parser


_COMMANDS = {
    "datasets": cmd_datasets,
    "probe": cmd_probe,
    "train": cmd_train,
    "compare": cmd_compare,
    "analyze": cmd_analyze,
    "chaos": cmd_chaos,
    "ops": cmd_ops,
    "cache-sweep": cmd_cache_sweep,
    "replan-sweep": cmd_replan_sweep,
    "serve": cmd_serve,
    "serve-bench": cmd_serve_bench,
    "fleet": cmd_fleet,
    "explain-plan": cmd_explain_plan,
    "sample-sweep": cmd_sample_sweep,
    "tp-sweep": cmd_tp_sweep,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
