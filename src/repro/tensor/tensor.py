"""The autograd tensor and its reverse-mode tape.

The design mirrors a miniature PyTorch: every differentiable operation is
a :class:`Function` whose ``forward`` returns raw numpy data and whose
``backward`` maps the output gradient to input gradients.  ``apply``
records the function on the implicit tape (the ``_ctx`` pointers), and
:meth:`Tensor.backward` replays the tape in reverse topological order.

Only float64/float32 numerics are supported; GNN training in this
reproduction uses float32 to match the paper's GPU setting.
"""

from __future__ import annotations

import contextlib
import threading
from typing import List, Optional, Tuple, Union

import numpy as np

Arrayish = Union["Tensor", np.ndarray, float, int, list, tuple]

_grad_state = threading.local()


def _grad_enabled() -> bool:
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Disable gradient recording inside the ``with`` block."""
    previous = _grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def _as_array(value: Arrayish, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    array = np.asarray(value, dtype=dtype)
    if array.dtype.kind in "iub" and dtype is None:
        # Integer payloads become float32: the engine is a float tensor
        # library; integer index arrays are passed as op attributes, not
        # as tensors.
        array = array.astype(np.float32)
    return array


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum the leading dimensions that broadcasting added.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along dimensions that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Function:
    """A node on the autograd tape.

    Subclasses implement ``forward`` (numpy in, numpy out) and
    ``backward`` (output gradient in, tuple of input gradients out, one
    entry per input tensor, ``None`` for non-differentiable inputs).
    """

    def __init__(self, *inputs: "Tensor"):
        self.inputs = inputs
        self.saved: Tuple = ()

    def save_for_backward(self, *items) -> None:
        self.saved = items

    def forward(self, *arrays: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad: np.ndarray):  # pragma: no cover
        raise NotImplementedError

    @classmethod
    def apply(cls, *inputs: Arrayish, **kwargs) -> "Tensor":
        tensors = tuple(
            value if isinstance(value, Tensor) else Tensor(value) for value in inputs
        )
        ctx = cls(*tensors, **kwargs) if kwargs else cls(*tensors)
        data = ctx.forward(*(t.data for t in tensors))
        requires = _grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._ctx = ctx
        return out


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_ctx")
    # Make `np.ndarray * Tensor` dispatch to Tensor.__rmul__ instead of
    # numpy's broadcasting element-wise attempt.
    __array_priority__ = 100.0

    def __init__(self, data: Arrayish, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._ctx: Optional[Function] = None

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        out = Tensor(self.data.copy(), requires_grad=self.requires_grad)
        return out

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_note})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[Arrayish] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (and must be provided for non-scalar
        outputs only if a different seed gradient is wanted).
        """
        if grad is None:
            seed = np.ones_like(self.data)
        else:
            seed = _as_array(grad)
            if seed.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {seed.shape} != tensor shape {self.data.shape}"
                )

        order = self._toposort()
        grads = {id(self): seed}
        for node in order:
            ctx = node._ctx
            if ctx is None:
                continue
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            input_grads = ctx.backward(node_grad)
            if not isinstance(input_grads, tuple):
                input_grads = (input_grads,)
            if len(input_grads) != len(ctx.inputs):
                raise RuntimeError(
                    f"{type(ctx).__name__}.backward returned {len(input_grads)} "
                    f"gradients for {len(ctx.inputs)} inputs"
                )
            for tensor_in, g in zip(ctx.inputs, input_grads):
                if g is None or not tensor_in.requires_grad and tensor_in._ctx is None:
                    continue
                existing = grads.get(id(tensor_in))
                grads[id(tensor_in)] = g if existing is None else existing + g
            # Leaves accumulate into .grad.
            for tensor_in in ctx.inputs:
                if tensor_in.requires_grad and tensor_in._ctx is None:
                    pending = grads.pop(id(tensor_in), None)
                    if pending is not None:
                        pending = _unbroadcast(pending, tensor_in.data.shape)
                        if tensor_in.grad is None:
                            tensor_in.grad = pending.copy()
                        else:
                            tensor_in.grad = tensor_in.grad + pending
        # The root itself may be a leaf.
        if self.requires_grad and self._ctx is None:
            pending = grads.pop(id(self), None)
            if pending is not None:
                self.grad = pending if self.grad is None else self.grad + pending

    def _toposort(self) -> List["Tensor"]:
        order: List[Tensor] = []
        seen = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            if node._ctx is not None:
                for parent in node._ctx.inputs:
                    if id(parent) not in seen:
                        stack.append((parent, False))
        order.reverse()
        return order

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic (delegating to Function subclasses below)
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        return Add.apply(self, other)

    __radd__ = __add__

    def __sub__(self, other: Arrayish) -> "Tensor":
        return Sub.apply(self, other)

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return Sub.apply(other, self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        return Mul.apply(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        return Div.apply(self, other)

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return Div.apply(other, self)

    def __neg__(self) -> "Tensor":
        return Neg.apply(self)

    def __pow__(self, exponent: float) -> "Tensor":
        return Pow.apply(self, exponent=float(exponent))

    def __matmul__(self, other: Arrayish) -> "Tensor":
        return MatMul.apply(self, other)

    def __getitem__(self, index) -> "Tensor":
        return Slice.apply(self, index=index)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Reshape.apply(self, shape=shape)

    def transpose(self, axis0: int = 0, axis1: int = 1) -> "Tensor":
        return Transpose.apply(self, axis0=axis0, axis1=axis1)

    @property
    def T(self) -> "Tensor":
        return self.transpose(0, 1)

    # ------------------------------------------------------------------
    # Reductions and element-wise math
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Mean.apply(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Max.apply(self, axis=axis, keepdims=keepdims)

    def exp(self) -> "Tensor":
        return Exp.apply(self)

    def log(self) -> "Tensor":
        return Log.apply(self)

    def sqrt(self) -> "Tensor":
        return Pow.apply(self, exponent=0.5)

    def relu(self) -> "Tensor":
        return Relu.apply(self)

    def abs(self) -> "Tensor":
        return Abs.apply(self)

    def clip(self, low: float, high: float) -> "Tensor":
        return Clip.apply(self, low=float(low), high=float(high))

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Minimum via the max machinery (ties split evenly)."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    def sigmoid(self) -> "Tensor":
        return Sigmoid.apply(self)

    def tanh(self) -> "Tensor":
        return Tanh.apply(self)


def tensor(data: Arrayish, requires_grad: bool = False) -> Tensor:
    """Factory mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


# ----------------------------------------------------------------------
# Elementary functions
# ----------------------------------------------------------------------
class Add(Function):
    def forward(self, a, b):
        self.save_for_backward(a.shape, b.shape)
        return a + b

    def backward(self, grad):
        a_shape, b_shape = self.saved
        return _unbroadcast(grad, a_shape), _unbroadcast(grad, b_shape)


class Sub(Function):
    def forward(self, a, b):
        self.save_for_backward(a.shape, b.shape)
        return a - b

    def backward(self, grad):
        a_shape, b_shape = self.saved
        return _unbroadcast(grad, a_shape), _unbroadcast(-grad, b_shape)


class Mul(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad):
        a, b = self.saved
        return _unbroadcast(grad * b, a.shape), _unbroadcast(grad * a, b.shape)


class Div(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad):
        a, b = self.saved
        grad_a = _unbroadcast(grad / b, a.shape)
        grad_b = _unbroadcast(-grad * a / (b * b), b.shape)
        return grad_a, grad_b


class Neg(Function):
    def forward(self, a):
        return -a

    def backward(self, grad):
        return (-grad,)


class Pow(Function):
    def __init__(self, *inputs, exponent: float):
        super().__init__(*inputs)
        self.exponent = exponent

    def forward(self, a):
        self.save_for_backward(a)
        return a ** self.exponent

    def backward(self, grad):
        (a,) = self.saved
        return (grad * self.exponent * a ** (self.exponent - 1.0),)


class MatMul(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a @ b

    def backward(self, grad):
        a, b = self.saved
        grad_a = grad @ b.swapaxes(-1, -2)
        grad_b = a.swapaxes(-1, -2) @ grad
        return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)


class Slice(Function):
    def __init__(self, *inputs, index):
        super().__init__(*inputs)
        self.index = index

    def forward(self, a):
        self.save_for_backward(a.shape)
        return a[self.index]

    def backward(self, grad):
        (shape,) = self.saved
        full = np.zeros(shape, dtype=grad.dtype)
        np.add.at(full, self.index, grad)
        return (full,)


class Reshape(Function):
    def __init__(self, *inputs, shape):
        super().__init__(*inputs)
        self.shape = shape

    def forward(self, a):
        self.save_for_backward(a.shape)
        return a.reshape(self.shape)

    def backward(self, grad):
        (shape,) = self.saved
        return (grad.reshape(shape),)


class Transpose(Function):
    def __init__(self, *inputs, axis0: int, axis1: int):
        super().__init__(*inputs)
        self.axis0 = axis0
        self.axis1 = axis1

    def forward(self, a):
        return a.swapaxes(self.axis0, self.axis1)

    def backward(self, grad):
        return (grad.swapaxes(self.axis0, self.axis1),)


class Sum(Function):
    def __init__(self, *inputs, axis=None, keepdims: bool = False):
        super().__init__(*inputs)
        self.axis = axis
        self.keepdims = keepdims

    def forward(self, a):
        self.save_for_backward(a.shape)
        return a.sum(axis=self.axis, keepdims=self.keepdims)

    def backward(self, grad):
        (shape,) = self.saved
        if self.axis is not None and not self.keepdims:
            axes = self.axis if isinstance(self.axis, tuple) else (self.axis,)
            for axis in sorted(a % len(shape) for a in axes):
                grad = np.expand_dims(grad, axis)
        return (np.broadcast_to(grad, shape).copy(),)


class Mean(Function):
    def __init__(self, *inputs, axis=None, keepdims: bool = False):
        super().__init__(*inputs)
        self.axis = axis
        self.keepdims = keepdims

    def forward(self, a):
        self.save_for_backward(a.shape)
        return a.mean(axis=self.axis, keepdims=self.keepdims)

    def backward(self, grad):
        (shape,) = self.saved
        if self.axis is None:
            count = int(np.prod(shape))
        else:
            axes = self.axis if isinstance(self.axis, tuple) else (self.axis,)
            count = int(np.prod([shape[a] for a in axes]))
        if self.axis is not None and not self.keepdims:
            axes = self.axis if isinstance(self.axis, tuple) else (self.axis,)
            for axis in sorted(a % len(shape) for a in axes):
                grad = np.expand_dims(grad, axis)
        return (np.broadcast_to(grad, shape).copy() / count,)


class Max(Function):
    def __init__(self, *inputs, axis=None, keepdims: bool = False):
        super().__init__(*inputs)
        self.axis = axis
        self.keepdims = keepdims

    def forward(self, a):
        out = a.max(axis=self.axis, keepdims=True)
        self.save_for_backward(a, out)
        if not self.keepdims and self.axis is not None:
            return np.squeeze(out, axis=self.axis)
        if not self.keepdims and self.axis is None:
            return out.reshape(())
        return out

    def backward(self, grad):
        a, out = self.saved
        mask = (a == out).astype(grad.dtype)
        # Split ties evenly, matching the subgradient convention.
        mask /= mask.sum(axis=self.axis, keepdims=True)
        if self.axis is not None and not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        elif self.axis is None:
            grad = np.broadcast_to(grad, out.shape)
        return (mask * grad,)


class Exp(Function):
    def forward(self, a):
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out,)


class Log(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad):
        (a,) = self.saved
        return (grad / a,)


class Relu(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.maximum(a, 0.0)

    def backward(self, grad):
        (a,) = self.saved
        return (grad * (a > 0),)


class Abs(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.abs(a)

    def backward(self, grad):
        (a,) = self.saved
        return (grad * np.sign(a),)


class Clip(Function):
    def __init__(self, *inputs, low: float, high: float):
        super().__init__(*inputs)
        if low > high:
            raise ValueError(f"clip bounds inverted: [{low}, {high}]")
        self.low = low
        self.high = high

    def forward(self, a):
        self.save_for_backward(a)
        return np.clip(a, self.low, self.high)

    def backward(self, grad):
        (a,) = self.saved
        inside = (a >= self.low) & (a <= self.high)
        return (grad * inside,)


class Maximum(Function):
    """Elementwise max of two tensors (ties send the gradient to a)."""

    def forward(self, a, b):
        self.save_for_backward(a, b)
        return np.maximum(a, b)

    def backward(self, grad):
        a, b = self.saved
        take_a = a >= b
        return (
            _unbroadcast(grad * take_a, a.shape),
            _unbroadcast(grad * ~take_a, b.shape),
        )


def maximum(a: Arrayish, b: Arrayish) -> "Tensor":
    """Differentiable elementwise maximum."""
    return Maximum.apply(a, b)


def minimum(a: Arrayish, b: Arrayish) -> "Tensor":
    """Differentiable elementwise minimum (via ``-max(-a, -b)``)."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    return -Maximum.apply(-a, -b)


class Sigmoid(Function):
    def forward(self, a):
        out = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out * (1.0 - out),)


class Tanh(Function):
    def forward(self, a):
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * (1.0 - out * out),)
