"""Learning-rate schedulers wrapping an Optimizer."""

from __future__ import annotations

import math

from repro.tensor.optim import Optimizer


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * progress)
        )


class WarmupLR(LRScheduler):
    """Linear ramp from ``start_factor x base`` to base over warmup epochs,
    then constant."""

    def __init__(
        self, optimizer: Optimizer, warmup_epochs: int, start_factor: float = 0.1
    ):
        super().__init__(optimizer)
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be positive")
        if not 0 < start_factor <= 1:
            raise ValueError("start_factor must be in (0, 1]")
        self.warmup_epochs = warmup_epochs
        self.start_factor = start_factor

    def get_lr(self) -> float:
        if self.epoch >= self.warmup_epochs:
            return self.base_lr
        fraction = self.epoch / self.warmup_epochs
        factor = self.start_factor + (1.0 - self.start_factor) * fraction
        return self.base_lr * factor
