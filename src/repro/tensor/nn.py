"""Minimal neural-network module system on top of the autograd engine.

``Module`` mirrors PyTorch's: parameters are discovered recursively from
attributes, ``zero_grad``/``parameters``/``state_dict`` behave as
expected, and the GNN layers in :mod:`repro.core.layers` subclass it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter discovery."""

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._child_modules():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def _child_modules(self) -> Iterator["Module"]:
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            # Keep the stored dtype: a resumed trajectory must be
            # bit-identical to the uninterrupted one, and training can
            # legitimately widen parameters (e.g. float64 Adam updates).
            p.data = np.asarray(state[name]).copy()


class Linear(Module):
    """Fully connected layer ``y = x @ W + b``.

    Weights are stored ``(in_features, out_features)`` so forward is a
    plain matmul without a transpose, matching the paper's pseudocode.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear needs positive feature sizes")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def flops(self, rows: int) -> int:
        """Multiply-add FLOPs to push ``rows`` rows through this layer."""
        flops = 2 * rows * self.in_features * self.out_features
        if self.bias is not None:
            flops += rows * self.out_features
        return flops


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training, rng=self.rng)


class Embedding(Module):
    """Learnable lookup table: integer ids -> dense vectors.

    Used for graphs without input features (the paper substitutes
    random features; a learnable embedding is the trainable variant).
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError("Embedding needs positive sizes")
        self.num_embeddings = num_embeddings
        self.dim = dim
        rng = rng or np.random.default_rng()
        self.weight = Parameter(
            (rng.standard_normal((num_embeddings, dim)) * 0.1).astype(np.float32)
        )

    def forward(self, ids) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError("embedding id out of range")
        return F.index_select(self.weight, ids)


class LayerNorm(Module):
    """Layer normalisation over the last dimension (Ba et al. 2016).

    Deep GNNs (3+ layers) commonly insert this between propagation
    layers to fight oversmoothing-induced scale drift.
    """

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        if dim <= 0:
            raise ValueError("LayerNorm needs a positive dim")
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones((dim,)))
        self.beta = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"LayerNorm({self.dim}) got last dim {x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.eps).sqrt()
        return normalised * self.gamma + self.beta


class Sequential(Module):
    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]
