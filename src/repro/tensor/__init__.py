"""From-scratch numpy autograd engine.

This package plays the role that PyTorch's autograd library plays in the
paper (Section 4.1): a differentiable NN backend with opaque,
hardware-optimisable operators.  NeutronStar's contribution is to
decouple distributed dependency management from these in-worker NN
operations; everything in :mod:`repro.core` builds on the primitives
defined here.

Public surface:

- :class:`Tensor` -- the autograd tensor.
- :mod:`repro.tensor.nn` -- ``Module``, ``Linear``, ``Dropout`` ...
- :mod:`repro.tensor.optim` -- ``SGD`` and ``Adam`` optimisers.
- :func:`repro.tensor.gradcheck.gradcheck` -- numerical gradient checks.
"""

from repro.tensor.tensor import Tensor, no_grad, tensor
from repro.tensor import functional
from repro.tensor import init
from repro.tensor import nn
from repro.tensor import optim
from repro.tensor import schedulers

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "functional",
    "init",
    "nn",
    "optim",
    "schedulers",
]
