"""Functional ops built on the autograd tape.

Besides the usual NN nonlinearities, this module provides the gather /
scatter / segment primitives that GNN message passing needs: they are
the numpy equivalents of the sparse kernels the paper offloads to the
GPU (``ScatterToEdge`` and ``GatherByDst`` in Section 4.1 are expressed
with :func:`index_select` and :func:`segment_sum`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tensor.tensor import Function, Tensor


# ----------------------------------------------------------------------
# Gather / scatter primitives
# ----------------------------------------------------------------------
class IndexSelect(Function):
    """``out[i] = x[indices[i]]`` along axis 0 (edge scatter / row gather)."""

    def __init__(self, *inputs, indices: np.ndarray):
        super().__init__(*inputs)
        self.indices = indices

    def forward(self, x):
        self.save_for_backward(x.shape)
        return x[self.indices]

    def backward(self, grad):
        (shape,) = self.saved
        out = np.zeros(shape, dtype=grad.dtype)
        np.add.at(out, self.indices, grad)
        return (out,)


class SegmentSum(Function):
    """``out[s] = sum_{i: seg[i]==s} x[i]`` (dst-grouped aggregation)."""

    def __init__(self, *inputs, segments: np.ndarray, num_segments: int):
        super().__init__(*inputs)
        self.segments = segments
        self.num_segments = num_segments

    def forward(self, x):
        out_shape = (self.num_segments,) + x.shape[1:]
        out = np.zeros(out_shape, dtype=x.dtype)
        np.add.at(out, self.segments, x)
        return out

    def backward(self, grad):
        return (grad[self.segments],)


def index_select(x: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``x`` by integer ``indices`` (differentiable)."""
    indices = np.asarray(indices, dtype=np.int64)
    return IndexSelect.apply(x, indices=indices)


def segment_sum(x: Tensor, segments: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` grouped by ``segments`` into ``num_segments`` rows."""
    segments = np.asarray(segments, dtype=np.int64)
    if len(segments) != len(x):
        raise ValueError(
            f"segments has {len(segments)} entries for {len(x)} rows"
        )
    return SegmentSum.apply(x, segments=segments, num_segments=num_segments)


class FusedGatherScatter(Function):
    """Gather-by-src + (optional weight) + segment-sum as one kernel.

    The fused form of ``IndexSelect -> Mul -> SegmentSum`` (and the
    trailing count division for ``"mean"``): forward and backward
    replay the unfused chain's numpy operations in the same order, so
    the result -- value and gradient -- is bit-identical to the op
    chain while skipping the intermediate ``Function`` nodes and the
    per-edge tape tensor.
    """

    def __init__(
        self,
        *inputs,
        src_pos: np.ndarray,
        segments: np.ndarray,
        num_segments: int,
        weights: Optional[np.ndarray],
        reducer: str,
    ):
        super().__init__(*inputs)
        self.src_pos = src_pos
        self.segments = segments
        self.num_segments = num_segments
        self.weights = weights
        self.reducer = reducer

    def _counts(self, ndim: int, dtype) -> np.ndarray:
        # Exactly segment_mean's divisor: bincount, clamp, broadcast.
        counts = np.bincount(
            self.segments, minlength=self.num_segments
        ).astype(dtype)
        return np.maximum(counts, 1.0).reshape(
            (self.num_segments,) + (1,) * (ndim - 1)
        )

    def forward(self, x):
        messages = x[self.src_pos]
        if self.weights is not None:
            messages = messages * self.weights.reshape(-1, 1)
        # Allocation dtype follows the *message* rows (matching what
        # SegmentSum sees in the unfused chain, weight promotion
        # included), not the raw input.
        self.save_for_backward(x.shape, messages.dtype)
        out = np.zeros(
            (self.num_segments,) + messages.shape[1:], dtype=messages.dtype
        )
        np.add.at(out, self.segments, messages)
        if self.reducer == "mean":
            out = out / self._counts(messages.ndim, messages.dtype)
        return out

    def backward(self, grad):
        shape, dtype = self.saved
        if self.reducer == "mean":
            grad = grad / self._counts(len(shape), dtype)
        per_edge = grad[self.segments]
        if self.weights is not None:
            per_edge = per_edge * self.weights.reshape(-1, 1)
        out = np.zeros(shape, dtype=per_edge.dtype)
        np.add.at(out, self.src_pos, per_edge)
        return (out,)


def fused_gather_scatter(
    x: Tensor,
    src_pos: np.ndarray,
    segments: np.ndarray,
    num_segments: int,
    weights: Optional[np.ndarray] = None,
    reducer: str = "sum",
) -> Tensor:
    """One-kernel ``x[src_pos] (* weights)`` summed (or meaned) by
    ``segments`` -- the fused Scatter/Edge/Gather step."""
    if reducer not in ("sum", "weighted_sum", "mean"):
        raise ValueError(f"unsupported fused reducer {reducer!r}")
    if reducer == "weighted_sum" and weights is None:
        raise ValueError("weighted_sum fusion needs edge weights")
    return FusedGatherScatter.apply(
        x,
        src_pos=np.asarray(src_pos, dtype=np.int64),
        segments=np.asarray(segments, dtype=np.int64),
        num_segments=num_segments,
        weights=weights if reducer == "weighted_sum" else None,
        reducer=reducer,
    )


def segment_mean(x: Tensor, segments: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows grouped by ``segments``; empty segments yield zeros."""
    segments = np.asarray(segments, dtype=np.int64)
    totals = segment_sum(x, segments, num_segments)
    counts = np.bincount(segments, minlength=num_segments).astype(x.dtype)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (x.ndim - 1))
    return totals / counts


def segment_softmax(scores: Tensor, segments: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over rows sharing a segment id (GAT attention normalisation).

    The per-segment max shift is detached (a constant under the softmax),
    matching the standard numerically-stable formulation.
    """
    segments = np.asarray(segments, dtype=np.int64)
    shift = np.full((num_segments,) + scores.shape[1:], -np.inf, dtype=scores.dtype)
    np.maximum.at(shift, segments, scores.data)
    shift = np.where(np.isinf(shift), 0.0, shift)
    shifted = scores - Tensor(shift[segments])
    exp = shifted.exp()
    denom = segment_sum(exp, segments, num_segments)
    denom_per_row = index_select(denom, segments)
    return exp / (denom_per_row + 1e-16)


# ----------------------------------------------------------------------
# Nonlinearities and classifiers
# ----------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    return x.relu()


class LeakyRelu(Function):
    def __init__(self, *inputs, negative_slope: float):
        super().__init__(*inputs)
        self.negative_slope = negative_slope

    def forward(self, a):
        self.save_for_backward(a)
        return np.where(a > 0, a, self.negative_slope * a)

    def backward(self, grad):
        (a,) = self.saved
        return (np.where(a > 0, grad, self.negative_slope * grad),)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    return LeakyRelu.apply(x, negative_slope=negative_slope)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


class Dropout(Function):
    def __init__(self, *inputs, p: float, rng: np.random.Generator):
        super().__init__(*inputs)
        self.p = p
        self.rng = rng

    def forward(self, a):
        keep = 1.0 - self.p
        mask = (self.rng.random(a.shape) < keep).astype(a.dtype) / keep
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad):
        (mask,) = self.saved
        return (grad * mask,)


def dropout(
    x: Tensor,
    p: float = 0.5,
    training: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if rng is None:
        rng = np.random.default_rng()
    return Dropout.apply(x, p=p, rng=rng)


class Concat(Function):
    def __init__(self, *inputs, axis: int):
        super().__init__(*inputs)
        self.axis = axis

    def forward(self, *arrays):
        self.save_for_backward([a.shape[self.axis] for a in arrays])
        return np.concatenate(arrays, axis=self.axis)

    def backward(self, grad):
        sizes = self.saved[0]
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.split(grad, splits, axis=self.axis))


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    if not tensors:
        raise ValueError("concat needs at least one tensor")
    return Concat.apply(*tensors, axis=axis)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log likelihood over integer ``targets`` (mean-reduced)."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    if n == 0:
        raise ValueError("nll_loss on an empty batch")
    picked = log_probs[(np.arange(n), targets)]
    return -picked.sum() / float(n)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy with integer targets."""
    return nll_loss(log_softmax(logits, axis=-1), targets)
