"""Weight initialisers (Glorot/Xavier and Kaiming/He schemes)."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out


def xavier_uniform(
    shape: Tuple[int, ...], gain: float = 1.0, rng: np.random.Generator = None
) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialisation."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(
    shape: Tuple[int, ...], gain: float = 1.0, rng: np.random.Generator = None
) -> np.ndarray:
    """Glorot & Bengio (2010) normal initialisation."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(
    shape: Tuple[int, ...], a: float = math.sqrt(5.0), rng: np.random.Generator = None
) -> np.ndarray:
    """He et al. (2015) uniform initialisation (PyTorch Linear default)."""
    rng = rng or np.random.default_rng()
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
