"""Optimisers: SGD (with momentum / weight decay) and Adam.

Both optimisers expose ``state_dict``/``load_state_dict`` so a
checkpoint can round-trip the *full* training state (Adam moments, step
count, SGD velocity): resume-from-checkpoint then reproduces the exact
parameter trajectory of an uninterrupted run, which the rollback-restart
recovery path (:mod:`repro.training.resilient`) relies on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.tensor.tensor import Tensor


class Optimizer:
    """Base optimiser holding a parameter list."""

    state_kind = "base"

    def __init__(self, params: Iterable[Tensor]):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        for p in self.params:
            if not p.requires_grad:
                raise ValueError("optimizer received a non-trainable tensor")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Serialisable optimiser state (arrays + scalars, copied)."""
        return {"kind": self.state_kind, "arrays": {}, "scalars": {}}

    def load_state_dict(self, state: Dict) -> None:
        """Restore state produced by :meth:`state_dict`."""
        if state.get("kind") != self.state_kind:
            raise ValueError(
                "optimizer state kind mismatch: checkpoint has "
                f"{state.get('kind')!r}, optimizer is {self.state_kind!r}"
            )

    def _check_array(self, name: str, value: np.ndarray, index: int) -> np.ndarray:
        expected = self.params[index].data.shape
        if value.shape != expected:
            raise ValueError(
                f"optimizer state {name!r} has shape {value.shape}, "
                f"parameter {index} expects {expected}"
            )
        # Keep the stored dtype: the restored trajectory must be
        # bit-identical to the uninterrupted one.
        return np.asarray(value).copy()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    state_kind = "sgd"

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = p.data - self.lr * grad

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        arrays = {
            f"velocity_{i}": v.copy()
            for i, v in enumerate(self._velocity)
            if v is not None
        }
        return {"kind": self.state_kind, "arrays": arrays, "scalars": {}}

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        arrays = state.get("arrays", {})
        velocity: List[Optional[np.ndarray]] = [None] * len(self.params)
        for name, value in arrays.items():
            if not name.startswith("velocity_"):
                raise ValueError(f"unexpected SGD state entry {name!r}")
            index = int(name[len("velocity_"):])
            if not 0 <= index < len(self.params):
                raise ValueError(
                    f"SGD state {name!r} is out of range for "
                    f"{len(self.params)} parameters"
                )
            velocity[index] = self._check_array(name, value, index)
        self._velocity = velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    state_kind = "adam"

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.001,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        arrays = {}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            arrays[f"m_{i}"] = m.copy()
            arrays[f"v_{i}"] = v.copy()
        return {
            "kind": self.state_kind,
            "arrays": arrays,
            "scalars": {"step_count": self._step_count},
        }

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        arrays = state.get("arrays", {})
        expected = {f"{tag}_{i}" for tag in ("m", "v") for i in range(len(self.params))}
        if set(arrays) != expected:
            raise ValueError(
                f"Adam state mismatch: checkpoint has {sorted(arrays)}, "
                f"optimizer expects {sorted(expected)}"
            )
        self._m = [
            self._check_array(f"m_{i}", arrays[f"m_{i}"], i)
            for i in range(len(self.params))
        ]
        self._v = [
            self._check_array(f"v_{i}", arrays[f"v_{i}"], i)
            for i in range(len(self.params))
        ]
        self._step_count = int(state.get("scalars", {}).get("step_count", 0))
