"""Optimisers: SGD (with momentum / weight decay) and Adam."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.tensor.tensor import Tensor


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, params: Iterable[Tensor]):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        for p in self.params:
            if not p.requires_grad:
                raise ValueError("optimizer received a non-trainable tensor")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.001,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
