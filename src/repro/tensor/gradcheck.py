"""Numerical gradient checking for the autograd engine.

Used heavily by the test suite to validate every Function's backward
against central finite differences, the same way PyTorch's
``torch.autograd.gradcheck`` does.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_grad(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-4,
    atol: float = 1e-2,
    rtol: float = 1e-2,
) -> bool:
    """Compare analytic and numerical gradients for every trainable input.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns True
    on success so it can be used directly in ``assert gradcheck(...)``.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad
        if analytic is None:
            raise AssertionError(f"input {i} received no gradient")
        numeric = numerical_grad(fn, inputs, wrt=i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
