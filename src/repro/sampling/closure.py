"""Sampled mini-batch closures and cross-batch reuse state.

A :class:`SampledClosure` is the sampled analogue of an engine plan's
per-worker block stack: the chained :class:`~repro.core.blocks.LayerBlock`
list for one mini-batch, plus the bookkeeping the compiler and the
explain path need (frontier sizes, sampled-edge counts, how much of the
bottom layer was reused from the previous batch).

:class:`ReuseState` carries the *realized* bottom-layer neighbor lists
of the previous mini-batch in CSR form.  The batch-dependency knob
kappa re-serves those lists for a hashed fraction of the new frontier;
because the reuse decision for a vertex is keyed by ``(seed, epoch,
vertex)`` only — not by run history — the reused sets are nested across
kappa values, which is what makes comm bytes monotone in kappa.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.blocks import LayerBlock

_EMPTY = np.empty(0, dtype=np.int64)


def _expand_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Indices covering ``[starts[i], starts[i]+lengths[i])`` per group."""
    total = int(lengths.sum())
    if total == 0:
        return _EMPTY
    cum = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    offsets = np.repeat(starts - cum, lengths)
    return np.arange(total, dtype=np.int64) + offsets


class ReuseState:
    """Previous batch's realized bottom-layer sample for one worker."""

    def __init__(self) -> None:
        self.vertex_ids: np.ndarray = _EMPTY  # sorted dst vertices
        self.indptr: np.ndarray = np.zeros(1, dtype=np.int64)
        self.srcs: np.ndarray = _EMPTY
        self.eids: np.ndarray = _EMPTY
        self.scales: Optional[np.ndarray] = None

    @property
    def has_lists(self) -> bool:
        return len(self.vertex_ids) > 0

    def contains(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``vertices`` have a stored list."""
        if not self.has_lists:
            return np.zeros(len(vertices), dtype=bool)
        pos = np.searchsorted(self.vertex_ids, vertices)
        pos = np.minimum(pos, len(self.vertex_ids) - 1)
        return self.vertex_ids[pos] == vertices

    def lists_for(
        self, vertices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Stored ``(src, dst, eids, scales)`` edges for ``vertices``
        (each of which must satisfy :meth:`contains`)."""
        pos = np.searchsorted(self.vertex_ids, vertices)
        lengths = self.indptr[pos + 1] - self.indptr[pos]
        idx = _expand_ranges(self.indptr[pos], lengths)
        dst = np.repeat(vertices, lengths)
        scales = None if self.scales is None else self.scales[idx]
        return self.srcs[idx], dst, self.eids[idx], scales

    def replace(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        eids: np.ndarray,
        scales: Optional[np.ndarray],
    ) -> None:
        """Overwrite with this batch's realized bottom-layer sample."""
        order = np.argsort(dst, kind="stable")
        dst_sorted = dst[order]
        if len(dst_sorted):
            # Run-length pass over the sorted array: identical to
            # np.unique(..., return_counts=True) without the re-sort.
            boundaries = np.flatnonzero(
                np.concatenate(([True], dst_sorted[1:] != dst_sorted[:-1]))
            )
            self.vertex_ids = dst_sorted[boundaries]
            counts = np.diff(np.concatenate((boundaries, [len(dst_sorted)])))
        else:
            self.vertex_ids = _EMPTY
            counts = _EMPTY
        self.indptr = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        self.srcs = src[order]
        self.eids = eids[order]
        self.scales = None if scales is None else scales[order]


@dataclass
class SampledClosure:
    """One worker's sampled mini-batch, ready for compile + execute.

    ``blocks[l-1]`` computes layer ``l``; ``frontier_sizes`` runs top
    (seeds) to bottom (layer-1 inputs), so it has ``num_layers + 1``
    entries.  ``reused_srcs`` is the sorted union of source vertices
    contributed by bottom-layer vertices served from the previous
    batch's lists — those rows are guaranteed resident from the prior
    round, so the compiler credits them against the feature exchange.
    """

    worker: int
    seeds: np.ndarray
    blocks: List[LayerBlock]
    num_sampled_edges: int
    frontier_sizes: List[int]
    reused_vertices: int = 0
    reuse_eligible: int = 0
    reused_srcs: np.ndarray = field(default_factory=lambda: _EMPTY)

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    @property
    def reuse_fraction(self) -> float:
        bottom = self.frontier_sizes[-2] if len(self.frontier_sizes) >= 2 else 0
        return self.reused_vertices / bottom if bottom else 0.0
