"""The sampler sweep grid: dataset x sampler x fanout x kappa x cache.

Backs ``repro sample-sweep`` and the sampling benchmark: every grid
point builds a fresh :class:`SampledTrainingEngine` (same model seed,
so rows differ only in the sampling configuration), charges a few
epochs through the compiled-program path, and reports the comm /
reuse / cache counters the engine accumulates per epoch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.core.model import GNNModel
from repro.graph.datasets import load_dataset, spec_of
from repro.sampling.engine import SampledTrainingEngine
from repro.training.prep import prepare_graph


def run_sample_sweep(
    dataset: str,
    scale: float = 1.0,
    samplers: Sequence[str] = ("uniform", "labor", "ladies"),
    fanouts: Sequence[Tuple[int, ...]] = ((10, 25),),
    kappas: Sequence[float] = (0.0,),
    cache_mb: Sequence[float] = (0.0,),
    cluster: Optional[ClusterSpec] = None,
    arch: str = "gcn",
    hidden: Optional[int] = None,
    batch_size: int = 128,
    epochs: int = 2,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Charge ``epochs`` sampled epochs per grid point; one row each."""
    spec = spec_of(dataset)
    graph = prepare_graph(load_dataset(dataset, scale=scale), arch)
    cluster = cluster or ClusterSpec.ecs(4)
    hidden = hidden or spec.hidden_dim
    rows: List[Dict[str, object]] = []
    for sampler in samplers:
        for fanout in fanouts:
            for kappa in kappas:
                for cache in cache_mb:
                    model = GNNModel.build(
                        arch,
                        graph.feature_dim,
                        hidden,
                        graph.num_classes,
                        num_layers=len(fanout),
                        seed=seed + 1,
                    )
                    engine = SampledTrainingEngine(
                        graph,
                        model,
                        cluster,
                        fanouts=fanout,
                        batch_size=batch_size,
                        sampler=sampler,
                        kappa=kappa,
                        feature_cache_bytes=int(cache * 1024 * 1024),
                        seed=seed,
                    )
                    times = [engine.charge_epoch() for _ in range(epochs)]
                    stats = engine.last_epoch_stats or {}
                    rows.append({
                        "dataset": dataset,
                        "sampler": sampler,
                        "fanouts": list(fanout),
                        "kappa": float(kappa),
                        "cache_mb": float(cache),
                        "epoch_s": float(np.mean(times)),
                        "comm_bytes": int(stats.get("comm_bytes", 0)),
                        "sampled_edges": int(stats.get("sampled_edges", 0)),
                        "remote_rows": int(stats.get("remote_rows", 0)),
                        "fetched_rows": int(stats.get("fetched_rows", 0)),
                        "reused_rows": int(stats.get("reused_rows", 0)),
                        "pinned_rows": int(stats.get("pinned_rows", 0)),
                        "unique_remote": int(stats.get("unique_remote", 0)),
                        "saved_bytes": int(stats.get("saved_bytes", 0)),
                    })
    return rows
