"""Sampled mini-batch training as a first-class subsystem.

Samplers (uniform fanout / LABOR / LADIES) behind one seeded
interface, a batch-dependency knob kappa that re-serves a hashed
fraction of the previous mini-batch's realized neighbor lists, a
static degree-pinned feature cache, and a per-round compiler that
lowers every mini-batch onto the typed Program IR so the accountant,
passes, traces, and ops signals price sampled training exactly like
full-batch training.
"""

from repro.sampling.cache import StaticFeatureCache
from repro.sampling.closure import ReuseState, SampledClosure
from repro.sampling.compile import RoundTraffic, compile_round
from repro.sampling.costs import SamplingCostModel
from repro.sampling.engine import SampledTrainingEngine
from repro.sampling.explain import (
    describe_sampled_batches,
    render_sampled_batches,
)
from repro.sampling.samplers import (
    SAMPLER_NAMES,
    LaborSampler,
    LadiesSampler,
    NeighborSampler,
    UniformFanoutSampler,
    make_sampler,
)
from repro.sampling.sweep import run_sample_sweep

__all__ = [
    "SAMPLER_NAMES",
    "LaborSampler",
    "LadiesSampler",
    "NeighborSampler",
    "ReuseState",
    "RoundTraffic",
    "SampledClosure",
    "SampledTrainingEngine",
    "SamplingCostModel",
    "StaticFeatureCache",
    "UniformFanoutSampler",
    "compile_round",
    "describe_sampled_batches",
    "make_sampler",
    "render_sampled_batches",
    "run_sample_sweep",
]
