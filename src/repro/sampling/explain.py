"""Inspectable sampled programs: ``repro explain-plan --sampled``.

Full-batch plans are static, so ``explain-plan`` compiles once and
prints.  Sampled programs exist per mini-batch, so this module dry-runs
the first round(s) of the next epoch — deterministic batch order, no
shuffling, no timeline charges, engine state untouched — and renders
each round's compiled Program next to the sampling facts the IR cannot
show (seed counts, per-layer frontier growth, kappa reuse fraction).
"""

from __future__ import annotations

from typing import Dict, List

from repro.execution.passes import run_passes
from repro.sampling.closure import ReuseState
from repro.sampling.compile import compile_round
from repro.utils.rng import derive_rng


def describe_sampled_batches(engine, num_batches: int = 1) -> Dict[str, object]:
    """JSON-friendly description of the next ``num_batches`` rounds."""
    worker_batches = engine._worker_batches(shuffle=False)
    num_rounds = max((len(b) for b in worker_batches), default=0)
    # Legacy engines draw from one shared sequential stream; dry-run
    # with a fresh clone so the engine's own stream is untouched.
    legacy = derive_rng(engine.seed) if engine.rng is not None else None
    reuse = [
        ReuseState() if engine.kappa > 0.0 else None
        for _ in range(engine.cluster.num_workers)
    ]
    rounds: List[Dict[str, object]] = []
    for r in range(min(num_batches, num_rounds)):
        closures = {}
        for w in range(engine.cluster.num_workers):
            if r < len(worker_batches[w]) and len(worker_batches[w][r]):
                closures[w] = engine.sampler.sample_batch(
                    engine.graph,
                    worker_batches[w][r],
                    worker=w,
                    epoch=engine._epoch,
                    batch=r,
                    kappa=engine.kappa,
                    state=reuse[w],
                    legacy_rng=legacy,
                )
        if not closures:
            continue
        plan, program, traffic = compile_round(engine, closures)
        program = run_passes(program, engine)
        workers = []
        for w in sorted(closures):
            closure = closures[w]
            workers.append({
                "worker": w,
                "num_seeds": int(len(closure.seeds)),
                "frontier_sizes": [int(x) for x in closure.frontier_sizes],
                "sampled_edges": int(closure.num_sampled_edges),
                "reused_vertices": int(closure.reused_vertices),
                "reuse_fraction": float(closure.reuse_fraction),
                "fetch_rows": int(traffic.per_worker_fetch.get(w, 0)),
            })
        layers = []
        for lp in program.layers:
            ex = lp.exchange
            layers.append({
                "layer": lp.layer,
                "exchange_bytes": ex.total_bytes(),
                "workers": [
                    {
                        "worker": wp.worker,
                        "steps": [
                            {"kind": s.kind, **{
                                k: (int(v) if isinstance(v, (int,)) else v)
                                for k, v in vars(s).items()
                            }}
                            for s in wp.steps
                        ],
                        "fold_dense": bool(ex.fold_dense[wp.worker]),
                    }
                    for wp in lp.workers
                ],
            })
        rounds.append({
            "round": r,
            "workers": workers,
            "passes": list(program.passes),
            "layers": layers,
            "traffic": {
                "remote_rows": traffic.remote_rows,
                "fetch_rows": traffic.fetch_rows,
                "reused_rows": traffic.reused_rows,
                "pinned_rows": traffic.pinned_rows,
                "saved_bytes": traffic.saved_bytes,
            },
        })
    return {
        "engine": engine.name,
        "sampler": engine.sampler.name,
        "fanouts": list(engine.fanouts),
        "kappa": engine.kappa,
        "batch_size": engine.batch_size,
        "num_workers": engine.cluster.num_workers,
        "num_layers": engine.num_layers,
        "rounds": rounds,
    }


def render_sampled_batches(engine, num_batches: int = 1) -> str:
    """Terminal rendering of :func:`describe_sampled_batches`."""
    desc = describe_sampled_batches(engine, num_batches=num_batches)
    lines = [
        f"sampled program: engine={desc['engine']} "
        f"sampler={desc['sampler']} fanouts={desc['fanouts']} "
        f"kappa={desc['kappa']} batch_size={desc['batch_size']} "
        f"workers={desc['num_workers']}"
    ]
    for rnd in desc["rounds"]:
        t = rnd["traffic"]
        lines.append(
            f"round {rnd['round']}: fetch {t['fetch_rows']} rows "
            f"(remote {t['remote_rows']}, reused {t['reused_rows']}, "
            f"pinned {t['pinned_rows']}, saved {t['saved_bytes']} B)"
            + (
                f"  passes: {', '.join(rnd['passes'])}"
                if rnd["passes"]
                else ""
            )
        )
        for wk in rnd["workers"]:
            sizes = " -> ".join(str(s) for s in wk["frontier_sizes"])
            lines.append(
                f"  worker {wk['worker']}: seeds={wk['num_seeds']} "
                f"frontier {sizes} edges={wk['sampled_edges']} "
                f"reuse={wk['reuse_fraction']:.2f} "
                f"fetch={wk['fetch_rows']}"
            )
        for layer in rnd["layers"]:
            per_worker = []
            for wk in layer["workers"]:
                gather = wk["steps"][0]
                flags = " fold-dense" if wk["fold_dense"] else ""
                per_worker.append(
                    f"w{wk['worker']}(in={gather['num_inputs']} "
                    f"local={gather['num_local']} "
                    f"fetch={gather['num_fetch']} "
                    f"cached={gather['num_cached']}){flags}"
                )
            lines.append(
                f"  layer {layer['layer']}: "
                f"exchange {layer['exchange_bytes']} B  "
                + "  ".join(per_worker)
            )
    return "\n".join(lines)
