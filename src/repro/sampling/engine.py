"""Sampled mini-batch training compiled through the execution layer.

:class:`SampledTrainingEngine` subclasses :class:`BaseEngine` so that a
sampled round is charged exactly like a full-batch layer sweep: each
round's closures compile (:mod:`repro.sampling.compile`) to an
``EnginePlan`` + ``Program`` installed as the engine's current plan,
and the inherited accountant shims (``_charge_forward_layer`` and
friends) price them through ``run_exchange`` — faults, retries, the
overlap pass, and trace spans included.  Only the sampling phase itself
(CPU draw time + optional DistDGL-style id-plane RPC rounds) is charged
by the :class:`~repro.sampling.costs.SamplingCostModel`, whose rates
are derived from the probed ``T_e`` constants rather than hard-coded.

Determinism: with the default keyed samplers every draw is a pure
function of ``(seed, epoch, batch, ids)``, so two engines built with
the same seed produce bit-identical losses *and* bit-identical charged
timelines.  ``legacy_rng=True`` switches to the single sequential
stream the pre-subsystem DistDGL engine used (the ``distdgl`` façade
sets it to reproduce its golden trajectory bit for bit).
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import CPU, NET_RECV
from repro.comm.scheduler import CommOptions
from repro.core.model import GNNModel
from repro.costmodel.probe import probe_constants
from repro.engines.base import BaseEngine, EpochReport
from repro.execution.passes import run_passes
from repro.graph.graph import Graph
from repro.partition.base import Partitioning
from repro.sampling.cache import StaticFeatureCache
from repro.sampling.closure import ReuseState, SampledClosure
from repro.sampling.compile import compile_round
from repro.sampling.costs import SamplingCostModel
from repro.sampling.samplers import NeighborSampler, make_sampler
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.rng import derive_rng


class SampledTrainingEngine(BaseEngine):
    """Mini-batch sampled synchronous SGD over the simulated cluster."""

    name = "sampled"

    def __init__(
        self,
        graph: Graph,
        model: GNNModel,
        cluster: ClusterSpec,
        partitioning: Optional[Partitioning] = None,
        comm: CommOptions = CommOptions.all(),
        fanouts=(10, 25),
        batch_size: int = 128,
        sampler="uniform",
        kappa: float = 0.0,
        feature_cache_bytes: int = 0,
        record_timeline: bool = False,
        seed: int = 0,
        update_mode: str = "allreduce",
        retry=None,
        cache_config=None,
        overlap_pass: bool = False,
        program_passes=None,
        rpc_accounting: bool = False,
        legacy_rng: bool = False,
        **_ignored,
    ):
        fanouts = tuple(int(f) for f in fanouts)
        if len(fanouts) != model.num_layers:
            raise ValueError("need one fanout per layer")
        kappa = float(kappa)
        if not 0.0 <= kappa <= 1.0:
            raise ValueError(f"kappa must be in [0, 1], got {kappa}")
        if legacy_rng and kappa > 0.0:
            raise ValueError("legacy_rng cannot express kappa reuse")
        super().__init__(
            graph,
            model,
            cluster,
            partitioning=partitioning,
            comm=comm,
            record_timeline=record_timeline,
            update_mode=update_mode,
            retry=retry,
            cache_config=None,
            overlap_pass=overlap_pass,
            program_passes=program_passes,
        )
        self.fanouts = fanouts
        self.batch_size = int(batch_size)
        self.kappa = kappa
        self.seed = int(seed)
        self.rpc_accounting = bool(rpc_accounting)
        if isinstance(sampler, str):
            sampler = make_sampler(sampler, fanouts, seed=self.seed)
        self.sampler: NeighborSampler = sampler
        # Shared sequential stream for the legacy (pre-subsystem) draw
        # order; None means keyed per-(epoch, batch, id) draws.
        self.rng = derive_rng(self.seed) if legacy_rng else None
        # ``--cache-mb`` arrives as a CacheConfig; for sampled training
        # the budget pins hot remote *feature* rows instead of
        # historical embeddings.
        if (
            not feature_cache_bytes
            and cache_config is not None
            and getattr(cache_config, "capacity_bytes", 0)
        ):
            feature_cache_bytes = cache_config.capacity_bytes
        self.feature_cache = (
            StaticFeatureCache(graph, self.assignment, int(feature_cache_bytes))
            if feature_cache_bytes
            else None
        )
        self._reuse: List[Optional[ReuseState]] = [None] * cluster.num_workers
        self._cost: Optional[SamplingCostModel] = None
        self.last_epoch_stats: Optional[Dict[str, float]] = None
        # Legacy-stream rollback support: the sequential RNG's state at
        # every completed-epoch boundary, so a checkpoint restore can
        # rewind the draw order along with the weights.  Keyed samplers
        # need none of this -- their draws are pure in (seed, epoch).
        self._rng_states: Dict[int, dict] = {}
        self._save_rng_state()

    # -- planning ------------------------------------------------------
    def plan(self):
        """Sampling has no static plan (one is compiled per round);
        kept for interface parity, probing the cost constants."""
        if self.constants is None:
            self.constants = probe_constants(self.cluster, self.model)
        return None

    def _cost_model(self) -> SamplingCostModel:
        if self._cost is None:
            if self.constants is None:
                self.constants = probe_constants(self.cluster, self.model)
            self._cost = SamplingCostModel.from_probe(
                self.constants, self.cluster.network
            )
        return self._cost

    def _spawn_kwargs(self):
        kwargs = super()._spawn_kwargs()
        kwargs.update(
            fanouts=self.fanouts,
            batch_size=self.batch_size,
            sampler=self.sampler.name,
            kappa=self.kappa,
            seed=self.seed,
            rpc_accounting=self.rpc_accounting,
            legacy_rng=self.rng is not None,
            feature_cache_bytes=(
                self.feature_cache.capacity_bytes if self.feature_cache else 0
            ),
        )
        return kwargs

    # -- sampler state (fault tolerance) -------------------------------
    def _save_rng_state(self) -> None:
        if self.rng is not None:
            self._rng_states[self._epoch] = copy.deepcopy(
                self.rng.bit_generator.state
            )

    def sampler_state(self) -> Dict[str, object]:
        """Checkpointable sampler state (epoch + legacy stream position).

        Keyed samplers return ``legacy_rng=None``: their draws are pure
        functions of ``(seed, epoch, batch, ids)``, so the epoch counter
        alone pins them.
        """
        return {
            "epoch": self._epoch,
            "legacy_rng": (
                copy.deepcopy(self.rng.bit_generator.state)
                if self.rng is not None
                else None
            ),
        }

    def load_sampler_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`sampler_state` snapshot (checkpoint path)."""
        legacy = state.get("legacy_rng")
        if self.rng is not None and legacy is not None:
            self.rng.bit_generator.state = copy.deepcopy(legacy)
            self._rng_states[int(state["epoch"])] = copy.deepcopy(legacy)

    def rollback_to_epoch(self, epoch: int) -> None:
        """Rewind the epoch counter *and* the legacy sampling stream.

        Without this the sequential stream keeps the draws it made in
        the epochs being rolled back, so the replay would sample
        different mini-batches and the recovered trajectory would
        silently diverge from an uninterrupted run.
        """
        super().rollback_to_epoch(epoch)
        if self.rng is not None:
            state = self._rng_states.get(epoch)
            if state is not None:
                self.rng.bit_generator.state = copy.deepcopy(state)
            self._rng_states = {
                e: s for e, s in self._rng_states.items() if e <= epoch
            }
        self._reuse = [None] * self.cluster.num_workers

    # -- batching and sampling -----------------------------------------
    def _worker_batches(self, shuffle: bool) -> List[List[np.ndarray]]:
        if self.graph.train_mask is None:
            raise ValueError("graph has no train mask; call set_split()")
        batches = []
        for w in range(self.cluster.num_workers):
            owned = self.partitioning.part(w)
            mine = owned[self.graph.train_mask[owned]]
            if shuffle:
                rng = (
                    self.rng
                    if self.rng is not None
                    else derive_rng(self.seed, "shuffle", self._epoch, w)
                )
                rng.shuffle(mine)
            batches.append(
                [
                    mine[i: i + self.batch_size]
                    for i in range(0, len(mine), self.batch_size)
                ]
            )
        return batches

    def _sample_batch(
        self, worker: int, seeds: np.ndarray, batch: int
    ) -> SampledClosure:
        return self.sampler.sample_batch(
            self.graph,
            seeds,
            worker=worker,
            epoch=self._epoch,
            batch=batch,
            kappa=self.kappa,
            state=self._reuse[worker],
            legacy_rng=self.rng,
        )

    # -- charging ------------------------------------------------------
    def _charge_sampling(self, closures, traffic) -> None:
        cost = self._cost_model()
        for w, closure in closures.items():
            self.timeline.advance(
                w, CPU, cost.sampling_seconds(closure.num_sampled_edges)
            )
            if self.rpc_accounting:
                seconds, nbytes = cost.rpc_charge(
                    self.num_layers,
                    closure.num_sampled_edges,
                    traffic.per_worker_fetch.get(w, 0),
                )
                self.timeline.advance(
                    w, NET_RECV, seconds, num_bytes=int(nbytes)
                )

    # -- numerics ------------------------------------------------------
    def _forward_closure(self, closure: SampledClosure, training: bool) -> Tensor:
        out = Tensor(
            self.graph.features[closure.blocks[0].input_vertices],
            requires_grad=False,
        )
        program = self.program_
        for l in range(1, self.num_layers + 1):
            layer = self.model.layer(l)
            # The fuse pass (when this round's program is compiled and
            # annotated) dispatches the bit-identical fused kernel.
            fused = (
                program is not None
                and program.layers[l - 1].fused_reducer is not None
            )
            fwd = layer.forward_fused if fused else layer.forward
            if training:
                out = fwd(closure.blocks[l - 1], out)
            else:
                with no_grad():
                    out = fwd(closure.blocks[l - 1], out)
        return out

    def _train_round(self, closures, optimizer, total: float) -> float:
        # ``total`` is the epoch's running loss accumulator: summation
        # order (one accumulator, batches in worker order) reproduces
        # the pre-subsystem engine bit for bit.
        for w in sorted(closures):
            closure = closures[w]
            logits = self._forward_closure(closure, training=True)
            rows = np.searchsorted(
                closure.blocks[-1].compute_vertices, closure.seeds
            )
            loss = F.cross_entropy(
                logits[rows], self.graph.labels[closure.seeds]
            )
            total += float(loss.data)
            loss.backward()
            if optimizer is not None:
                optimizer.step()
                optimizer.zero_grad()
        return total

    # -- the epoch loop ------------------------------------------------
    def _run_epoch_impl(self, optimizer, numeric: bool) -> EpochReport:
        m = self.cluster.num_workers
        worker_batches = self._worker_batches(shuffle=numeric)
        self._reuse = [
            ReuseState() if self.kappa > 0.0 else None for _ in range(m)
        ]
        num_rounds = max((len(b) for b in worker_batches), default=0)
        self._forward_stats = []
        total_loss = 0.0
        loss_terms = 0
        stats = {
            "sampled_edges": 0, "remote_rows": 0, "fetched_rows": 0,
            "reused_rows": 0, "pinned_rows": 0, "saved_bytes": 0,
            "num_batches": 0,
        }
        unique_remote: List[np.ndarray] = []
        t_start = self._sync()
        for r in range(num_rounds):
            closures = {}
            for w in range(m):
                if r < len(worker_batches[w]) and len(worker_batches[w][r]):
                    closures[w] = self._sample_batch(w, worker_batches[w][r], r)
            if closures:
                plan, program, traffic = compile_round(self, closures)
                self.plan_ = plan
                self.program_ = run_passes(program, self)
                self._charge_sampling(closures, traffic)
                if numeric:
                    total_loss = self._train_round(
                        closures, optimizer, total_loss
                    )
                loss_terms += len(closures)
                for l in range(1, self.num_layers + 1):
                    self._charge_forward_layer(plan, l)
                for w, closure in closures.items():
                    self.accountant.charge_loss(w, len(closure.seeds))
                for l in range(self.num_layers, 0, -1):
                    self._charge_backward_layer(plan, l)
                stats["num_batches"] += len(closures)
                stats["remote_rows"] += traffic.remote_rows
                stats["fetched_rows"] += traffic.fetch_rows
                stats["reused_rows"] += traffic.reused_rows
                stats["pinned_rows"] += traffic.pinned_rows
                stats["saved_bytes"] += traffic.saved_bytes
                for w, closure in closures.items():
                    stats["sampled_edges"] += closure.num_sampled_edges
                    inputs = closure.blocks[0].input_vertices
                    unique_remote.append(
                        inputs[self.assignment[inputs] != w]
                    )
            self._charge_allreduce()
            if m == 1:
                self._sync()
        t_end = self._sync()
        comm_bytes = int(sum(s.total_bytes for s in self._forward_stats))
        self.plan_ = None
        self.program_ = None
        self._epoch += 1
        self._save_rng_state()
        stats["comm_bytes"] = comm_bytes
        if unique_remote:
            remote_mask = np.zeros(self.graph.num_vertices, dtype=bool)
            for ids in unique_remote:
                remote_mask[ids] = True
            stats["unique_remote"] = int(remote_mask.sum())
        else:
            stats["unique_remote"] = 0
        stats["epoch_time_s"] = t_end - t_start
        self.last_epoch_stats = stats
        return EpochReport(
            epoch=self._epoch,
            epoch_time_s=t_end - t_start,
            loss=total_loss / max(loss_terms, 1),
            comm_bytes=comm_bytes,
            forward_time_s=0.0,
            backward_time_s=0.0,
            allreduce_time_s=0.0,
            cache_hits=stats["reused_rows"] + stats["pinned_rows"],
            cache_misses=stats["fetched_rows"],
            comm_saved_bytes=stats["saved_bytes"],
        )

    def run_epoch(self, optimizer=None) -> EpochReport:
        """One epoch = every worker's train vertices in mini-batches."""
        return self._run_epoch_impl(optimizer, numeric=True)

    def charge_epoch(self) -> float:
        """Timing-only epoch (samples + compiles + charges, no tensors)."""
        return self._run_epoch_impl(None, numeric=False).epoch_time_s

    def epoch_time_estimate(self) -> float:
        return self.charge_epoch()

    # -- evaluation ----------------------------------------------------
    def evaluate(self, mask: Optional[np.ndarray] = None) -> float:
        """Sampled-inference accuracy (the sampling accuracy ceiling)."""
        if mask is None:
            mask = self.graph.test_mask
        if mask is None:
            raise ValueError("graph has no test mask; call set_split()")
        targets = np.where(mask)[0]
        correct = 0
        for batch, i in enumerate(range(0, len(targets), self.batch_size)):
            seeds = targets[i: i + self.batch_size]
            closure = self.sampler.sample_batch(
                self.graph, seeds, epoch=self._epoch, batch=batch,
                kappa=0.0, state=None, legacy_rng=self.rng,
            )
            logits = self._forward_closure(closure, training=False)
            rows = np.searchsorted(
                closure.blocks[-1].compute_vertices, seeds
            )
            predictions = logits.data[rows].argmax(axis=1)
            correct += int((predictions == self.graph.labels[seeds]).sum())
        return correct / len(targets) if len(targets) else 0.0
