"""Static degree-pinned remote-feature cache for sampled training.

Kaler et al.'s neighborhood-expansion analysis: under fanout sampling
the probability that some batch needs vertex ``u``'s feature row grows
with how often ``u`` appears as a candidate source, i.e. with its
sampled-direction degree.  A *static* cache that pins the hottest
remote rows therefore captures most of the hit mass with no runtime
eviction — and because the pinned set is a capacity-prefix of one fixed
hotness order, hits are monotone in capacity, which makes cache-size
sweeps well behaved.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class StaticFeatureCache:
    """Per-worker pinned remote feature rows under one byte budget."""

    def __init__(self, graph, assignment: np.ndarray, capacity_bytes: int):
        self.capacity_bytes = int(capacity_bytes)
        self.row_bytes = graph.feature_dim * 4
        self.capacity_rows = max(0, self.capacity_bytes // self.row_bytes)
        # Hotness proxy: occurrences as an in-edge source (how many
        # candidate lists the vertex appears in), vertex id tiebreak.
        frequency = np.bincount(
            graph.csc.other, minlength=graph.num_vertices
        )
        self._order = np.lexsort(
            (np.arange(graph.num_vertices), -frequency)
        )
        self._assignment = assignment
        self._pinned: Dict[int, np.ndarray] = {}

    def pinned_for(self, worker: int) -> np.ndarray:
        """Sorted remote vertex ids pinned on ``worker``."""
        if worker not in self._pinned:
            remote = self._order[self._assignment[self._order] != worker]
            self._pinned[worker] = np.sort(remote[: self.capacity_rows])
        return self._pinned[worker]
