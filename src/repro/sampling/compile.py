"""Lower one round of sampled mini-batches onto the typed Program IR.

:func:`compile_round` takes the closures every worker sampled for the
current round and produces the same ``(EnginePlan, Program)`` pair a
full-batch engine builds once at plan time — which is the whole point
of the subsystem: the accountant's exchange superstep (faults, retry,
overlap), the pass pipeline (``OverlapExchangePass``), chrome-trace
spans, and ops signals all price sampled rounds through the exact code
path full-batch training uses, instead of a private RPC formula.

The sampled dataflow differs from full-batch in one structural way:
only layer 1 moves data (remote *feature* rows for the bottom block's
inputs); upper layers compute on activations produced locally by the
layer below, so their exchanges are empty.  The layer-1 fetch list is
the remote frontier minus rows credited to the batch-dependency reuse
(kappa: sources covered by re-served neighbor lists are still resident
from the previous round) and minus rows pinned in the static feature
cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.blocks import build_block_from_edges
from repro.core.mirror import MirrorExchange
from repro.execution.plan import EnginePlan
from repro.execution.program import (
    ComputeSpec,
    EdgeForwardStep,
    ExchangePhase,
    GatherByDstStep,
    GetFromDepNbrStep,
    LayerProgram,
    Program,
    ScatterToEdgeStep,
    VertexForwardStep,
    WorkerLayerProgram,
)
from repro.sampling.closure import SampledClosure

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class RoundTraffic:
    """Feature-plane bookkeeping for one compiled round."""

    fetch_ids: List[np.ndarray]  # [worker] -> remote rows on the wire
    remote_rows: int = 0  # unique remote bottom inputs, all workers
    fetch_rows: int = 0  # rows actually exchanged
    reused_rows: int = 0  # rows credited to kappa reuse
    pinned_rows: int = 0  # rows served by the static feature cache
    saved_bytes: int = 0  # feature bytes reuse + cache kept off the wire
    per_worker_fetch: Dict[int, int] = field(default_factory=dict)


def _empty_closure_block(graph, layer: int):
    return build_block_from_edges(graph, _EMPTY, _EMPTY, _EMPTY, _EMPTY, layer)


def _bottom_fetch(engine, closure: SampledClosure) -> Tuple[np.ndarray, dict]:
    """Split one worker's bottom-layer remote inputs into fetched /
    reuse-covered / cache-pinned rows."""
    w = closure.worker
    inputs = closure.blocks[0].input_vertices
    remote = inputs[engine.assignment[inputs] != w]
    # ``remote`` is sorted unique, so mask membership splits reproduce
    # intersect1d/setdiff1d element-identically without re-sorting.
    if len(closure.reused_srcs):
        reused_mask = np.zeros(engine.graph.num_vertices, dtype=bool)
        reused_mask[closure.reused_srcs] = True
        in_reused = reused_mask[remote]
        covered = remote[in_reused]
        rest = remote[~in_reused]
    else:
        covered = _EMPTY
        rest = remote
    if engine.feature_cache is not None:
        pinned_mask = np.zeros(engine.graph.num_vertices, dtype=bool)
        pinned_mask[engine.feature_cache.pinned_for(w)] = True
        in_pinned = pinned_mask[rest]
        pinned = rest[in_pinned]
        fetch = rest[~in_pinned]
    else:
        pinned = _EMPTY
        fetch = rest
    counts = {
        "remote": len(remote),
        "reused": len(covered),
        "pinned": len(pinned),
        "fetch": len(fetch),
    }
    return fetch, counts


def compile_round(
    engine, closures: Dict[int, SampledClosure]
) -> Tuple[EnginePlan, Program, RoundTraffic]:
    """Compile one round of per-worker sampled closures.

    Returns ``(plan, program, traffic)``; the program has *not* yet had
    passes applied (callers run :func:`repro.execution.run_passes`).
    """
    m = engine.cluster.num_workers
    L = engine.num_layers
    graph = engine.graph

    fetch_lists: List[np.ndarray] = [_EMPTY] * m
    traffic = RoundTraffic(fetch_ids=fetch_lists)
    d0 = engine.dims[0]
    for w, closure in closures.items():
        fetch, counts = _bottom_fetch(engine, closure)
        fetch_lists[w] = fetch
        traffic.remote_rows += counts["remote"]
        traffic.reused_rows += counts["reused"]
        traffic.pinned_rows += counts["pinned"]
        traffic.fetch_rows += counts["fetch"]
        traffic.per_worker_fetch[w] = counts["fetch"]
        traffic.saved_bytes += (counts["reused"] + counts["pinned"]) * d0 * 4

    empty_lists = [_EMPTY] * m
    bottom_exchange = MirrorExchange(engine.assignment, fetch_lists, m)
    no_exchange = MirrorExchange(engine.assignment, empty_lists, m)
    exchanges = [bottom_exchange] + [no_exchange] * (L - 1)

    blocks: List[List] = []
    compute_sets: List[List[np.ndarray]] = []
    for l in range(1, L + 1):
        row = []
        sets = []
        for w in range(m):
            closure = closures.get(w)
            if closure is None:
                row.append(_empty_closure_block(graph, l))
            else:
                row.append(closure.blocks[l - 1])
            sets.append(row[-1].compute_vertices)
        blocks.append(row)
        compute_sets.append(sets)

    plan = EnginePlan(
        compute_sets=compute_sets,
        blocks=blocks,
        comm_ids=[list(fetch_lists)] + [list(empty_lists) for _ in range(L - 1)],
        exchanges=exchanges,
        cached_deps=[list(empty_lists) for _ in range(L)],
        stale_deps=[list(empty_lists) for _ in range(L)],
        refresh_exchanges=[no_exchange] * L,
    )

    layers: List[LayerProgram] = []
    for l in range(1, L + 1):
        ex = exchanges[l - 1]
        phase = ExchangePhase(
            layer=l,
            volumes=ex.volume_matrix(engine.dims[l - 1]),
            refresh_volumes=no_exchange.volume_matrix(engine.dims[l - 1]),
            bytes_per_message=engine.dims[l - 1] * 4,
            refresh_entries=0,
        )
        workers = []
        for w in range(m):
            block = blocks[l - 1][w]
            fetch = fetch_lists[w] if l == 1 else _EMPTY
            spec = _worker_spec(engine, block, l, w, fetch, ex)
            remote = int((engine.assignment[block.input_vertices] != w).sum())
            num_fetch = len(fetch)
            steps = (
                GetFromDepNbrStep(
                    num_inputs=block.num_inputs,
                    num_local=block.num_inputs - remote,
                    num_fetch=num_fetch,
                    num_cached=remote - num_fetch,
                    num_recompute=0,
                    fetch_bytes=num_fetch * engine.dims[l - 1] * 4,
                    cached_bytes=(remote - num_fetch) * engine.dims[l - 1] * 4,
                ),
                ScatterToEdgeStep(num_edges=block.num_edges),
                EdgeForwardStep(
                    num_edges=block.num_edges,
                    sparse_flops=spec.sparse_flops,
                ),
                GatherByDstStep(
                    num_edges=block.num_edges,
                    num_outputs=block.num_outputs,
                ),
                VertexForwardStep(
                    num_outputs=block.num_outputs,
                    dense_flops=spec.dense_flops,
                ),
            )
            workers.append(
                WorkerLayerProgram(
                    worker=w, layer=l, steps=steps, compute=spec,
                    stale_rows=None,
                )
            )
        layers.append(LayerProgram(layer=l, exchange=phase, workers=workers))

    program = Program(
        num_layers=L,
        num_workers=m,
        dims=list(engine.dims),
        layers=layers,
        pos_in_compute=[],
    )
    return plan, program, traffic


def _worker_spec(engine, block, l, w, fetch, exchange) -> ComputeSpec:
    """Timing split for worker ``w``: chunk work from each sender for
    the bottom layer, purely local work above it.

    For layers above the bottom every input row is produced locally by
    the layer below (``num_cached`` in the gather step counts those
    already-resident remote-owned activations), so ``chunk_edges`` is
    zero and the whole edge set is communication-independent.
    """
    m = engine.cluster.num_workers
    w_layer = engine.model.layer(l)
    chunk_edges = np.zeros(m, dtype=np.int64)
    chunk_vertices = np.zeros(m, dtype=np.int64)
    local_edges = 0
    sparse_flops = 0.0
    if block.num_edges:
        sparse_flops = float(w_layer.sparse_flops(block))
        if l == 1 and len(fetch):
            fetch_mask = np.zeros(engine.graph.num_vertices, dtype=bool)
            fetch_mask[fetch] = True
            received = fetch_mask[block.edge_src_global]
            recv_src = block.edge_src_global[received]
            chunk_edges = np.bincount(
                engine.assignment[recv_src], minlength=m
            ).astype(np.int64)
            for j in range(m):
                chunk_vertices[j] = len(exchange.recv_ids.get((j, w), ()))
            local_edges = block.num_edges - len(recv_src)
        else:
            local_edges = block.num_edges
    return ComputeSpec(
        sparse_flops=sparse_flops,
        dense_flops=float(w_layer.dense_flops(block)),
        num_edges=block.num_edges,
        d_in=engine.dims[l - 1],
        chunk_edges=chunk_edges,
        chunk_vertices=chunk_vertices,
        local_edges=local_edges,
    )
