"""The sampler family behind one seeded interface.

Three strategies share a top-down expansion loop (seeds at layer L,
growing the frontier down to layer 1) and differ only in how one
layer's edges are drawn:

- :class:`UniformFanoutSampler` — at most ``fanout`` in-edges per
  frontier vertex, uniformly without replacement.  Subsumes the old
  ``engines/sampling.py`` draw (its sequential-RNG order is kept
  bit-for-bit behind ``legacy_rng``); the default mode keys every draw
  by edge id, so a batch's sample is a pure function of
  ``(seed, epoch, batch)``.
- :class:`LaborSampler` — LABOR-style: one shared uniform ``r_u`` per
  *source* vertex, keep an edge iff ``r_u <= fanout / deg(dst)``,
  capped at ``fanout`` by smallest ``r_u``.  Matches uniform fanout's
  per-edge inclusion probability (Poisson variance matched) while
  sources shared by many frontier vertices are kept *together or not
  at all* — fewer unique neighbors, hence fewer remote feature rows.
- :class:`LadiesSampler` — layer-dependent: a fixed per-layer budget of
  ``fanout * |seeds|`` candidate sources drawn over the *union*
  frontier with probability proportional to squared incoming edge
  weight, edges reweighted by ``1 / (budget * p)`` to stay unbiased.

All draws route through :mod:`repro.utils.rng` (``derive_rng`` for
sequential streams, ``hashed_uniforms`` for keyed per-id draws); no
sampler constructs a ``np.random`` generator directly.

Batch dependency (kappa) lives in the shared loop: at the bottom layer
a hashed fraction of the frontier re-serves the previous batch's
realized neighbor lists from :class:`~repro.sampling.closure.ReuseState`
instead of sampling fresh.  The reuse decision for vertex ``v`` is
``hashed_uniforms(seed, "kappa", epoch, ids=v) < kappa`` — keyed by
epoch and vertex only — so the reused set at kappa is a subset of the
reused set at kappa' >= kappa, and (for the keyed samplers, whose fresh
draws are per-id) the fetched remote rows shrink monotonically in
kappa.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.blocks import build_block_from_edges
from repro.graph.graph import Graph
from repro.sampling.closure import _EMPTY, ReuseState, SampledClosure
from repro.utils.rng import derive_rng, hashed_uniforms

LayerSample = Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]

_EMPTY_LAYER: LayerSample = (_EMPTY, _EMPTY, _EMPTY, None)


def _rank_within_group(groups: np.ndarray, key: np.ndarray) -> np.ndarray:
    """Rank of each element among its group, ordered by ``key``."""
    n = len(groups)
    order = np.lexsort((key, groups))
    sorted_groups = groups[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_groups[1:] != sorted_groups[:-1]
    starts = np.maximum.accumulate(
        np.where(new_group, np.arange(n), 0)
    )
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n) - starts
    return ranks


def _run_lengths(groups: np.ndarray) -> np.ndarray:
    """Lengths of the contiguous runs of equal values in ``groups``."""
    n = len(groups)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    boundaries = np.flatnonzero(
        np.concatenate(([True], groups[1:] != groups[:-1]))
    )
    return np.diff(np.concatenate((boundaries, [n])))


class NeighborSampler:
    """Shared top-down loop; subclasses supply one layer's draw."""

    name = "base"

    def __init__(self, fanouts, seed: int = 0):
        fanouts = tuple(int(f) for f in fanouts)
        if not fanouts or any(f <= 0 for f in fanouts):
            raise ValueError(f"fanouts must be positive, got {fanouts}")
        self.fanouts = fanouts
        self.seed = int(seed)

    # -- strategy hook -------------------------------------------------
    def _sample_layer(
        self,
        graph: Graph,
        frontier: np.ndarray,
        fanout: int,
        layer: int,
        *,
        epoch: int,
        batch: int,
        num_seeds: int,
        legacy_rng=None,
    ) -> LayerSample:
        """Return ``(src, dst, eids, scale-or-None)`` for one layer,
        with edges grouped by ``dst`` in ``frontier`` order."""
        raise NotImplementedError

    # -- shared loop ---------------------------------------------------
    def sample_batch(
        self,
        graph: Graph,
        seeds: np.ndarray,
        *,
        worker: int = 0,
        epoch: int = 0,
        batch: int = 0,
        kappa: float = 0.0,
        state: Optional[ReuseState] = None,
        legacy_rng=None,
    ) -> SampledClosure:
        if legacy_rng is not None and kappa > 0.0:
            raise ValueError("legacy sequential RNG cannot express kappa reuse")
        num_layers = len(self.fanouts)
        seed_mask = np.zeros(graph.num_vertices, dtype=bool)
        seed_mask[np.asarray(seeds, dtype=np.int64)] = True
        frontier = np.flatnonzero(seed_mask)
        num_seeds = len(frontier)
        blocks = [None] * num_layers
        frontier_sizes = [num_seeds]
        total_edges = 0
        reused = eligible = 0
        reused_srcs = _EMPTY
        for l in range(num_layers, 0, -1):
            fanout = self.fanouts[num_layers - l]
            if l == 1 and kappa > 0.0 and state is not None and state.has_lists:
                sample, reused, eligible, reused_srcs = self._bottom_with_reuse(
                    graph, frontier, fanout, epoch, batch, kappa, state,
                    num_seeds,
                )
            else:
                sample = self._sample_layer(
                    graph, frontier, fanout, l, epoch=epoch, batch=batch,
                    num_seeds=num_seeds, legacy_rng=legacy_rng,
                )
            src, dst, eids, scale = sample
            block = build_block_from_edges(graph, frontier, src, dst, eids, l)
            if scale is not None and block.num_edges:
                block.edge_weight = block.edge_weight * scale
            blocks[l - 1] = block
            total_edges += block.num_edges
            if l == 1 and state is not None:
                state.replace(src, dst, eids, scale)
            frontier = block.input_vertices
            frontier_sizes.append(len(frontier))
        return SampledClosure(
            worker=worker,
            seeds=np.asarray(seeds, dtype=np.int64),
            blocks=blocks,
            num_sampled_edges=total_edges,
            frontier_sizes=frontier_sizes,
            reused_vertices=reused,
            reuse_eligible=eligible,
            reused_srcs=reused_srcs,
        )

    # -- kappa reuse at the bottom layer -------------------------------
    def _bottom_with_reuse(
        self,
        graph: Graph,
        frontier: np.ndarray,
        fanout: int,
        epoch: int,
        batch: int,
        kappa: float,
        state: ReuseState,
        num_seeds: int,
    ):
        u = hashed_uniforms(self.seed, "kappa", epoch, ids=frontier)
        eligible = state.contains(frontier)
        reuse_mask = eligible & (u < kappa)
        reused_vs = frontier[reuse_mask]
        fresh_vs = frontier[~reuse_mask]
        src_r, dst_r, eid_r, scale_r = state.lists_for(reused_vs)
        if len(fresh_vs):
            src_f, dst_f, eid_f, scale_f = self._sample_layer(
                graph, fresh_vs, fanout, 1, epoch=epoch, batch=batch,
                num_seeds=num_seeds, legacy_rng=None,
            )
        else:
            src_f, dst_f, eid_f, scale_f = _EMPTY_LAYER
        src = np.concatenate([src_r, src_f])
        dst = np.concatenate([dst_r, dst_f])
        eids = np.concatenate([eid_r, eid_f])
        if scale_r is None and scale_f is None:
            scale = None
        else:
            if scale_r is None:
                scale_r = np.ones(len(src_r), dtype=np.float64)
            if scale_f is None:
                scale_f = np.ones(len(src_f), dtype=np.float64)
            scale = np.concatenate([scale_r, scale_f])
        reused_srcs = np.unique(src_r) if len(src_r) else _EMPTY
        sample = (src, dst, eids, scale)
        return sample, int(reuse_mask.sum()), int(eligible.sum()), reused_srcs

    def _candidates(self, graph: Graph, frontier: np.ndarray):
        """All in-edges of the frontier: ``(dst, src, eids)`` grouped
        per destination in frontier order."""
        return graph.csc.select(frontier)


class UniformFanoutSampler(NeighborSampler):
    """At most ``fanout`` in-neighbors per vertex, uniform w/o replacement."""

    name = "uniform"

    def _sample_layer(
        self, graph, frontier, fanout, layer, *,
        epoch, batch, num_seeds, legacy_rng=None,
    ) -> LayerSample:
        if legacy_rng is not None:
            return self._sample_layer_legacy(graph, frontier, fanout, legacy_rng)
        dst, src, eids = self._candidates(graph, frontier)
        if len(dst) == 0:
            return _EMPTY_LAYER
        # Keeping the fanout smallest of iid per-edge uniforms is a
        # uniform fanout-subset of each vertex's in-edges.  Vertices at
        # or under the fanout keep every edge, so only the over-fanout
        # groups need uniforms drawn and ranked; the kept set is
        # identical to ranking the full candidate list.
        csc = graph.csc
        counts = csc.indptr[frontier + 1] - csc.indptr[frontier]
        over = np.repeat(counts > fanout, counts)
        if not over.any():
            return src, dst, eids, None
        sel = np.flatnonzero(over)
        r = hashed_uniforms(
            self.seed, "uniform", epoch, batch, layer, ids=eids[sel]
        )
        keep = np.ones(len(dst), dtype=bool)
        keep[sel] = _rank_within_group(dst[sel], r) < fanout
        return src[keep], dst[keep], eids[keep], None

    def _sample_layer_legacy(self, graph, frontier, fanout, rng) -> LayerSample:
        # Bit-for-bit the pre-subsystem DistDGL engine loop: ascending
        # frontier, one sequential rng.choice per high-degree vertex.
        csc = graph.csc
        src_parts, dst_parts, eid_parts = [], [], []
        for v in frontier:
            lo, hi = csc.indptr[v], csc.indptr[v + 1]
            degree = hi - lo
            if degree == 0:
                continue
            if degree <= fanout:
                take = np.arange(lo, hi)
            else:
                take = lo + rng.choice(degree, size=fanout, replace=False)
            src_parts.append(csc.other[take])
            dst_parts.append(csc.key[take])
            eid_parts.append(csc.edge_ids[take])
        if not src_parts:
            return _EMPTY_LAYER
        return (
            np.concatenate(src_parts),
            np.concatenate(dst_parts),
            np.concatenate(eid_parts),
            None,
        )


class LaborSampler(NeighborSampler):
    """LABOR-style shared per-source uniforms (Balin & Catalyurek).

    Edge ``(u, v)`` survives iff ``r_u <= fanout / deg(v)`` where
    ``r_u`` is *one* uniform per source vertex shared across every
    destination in the batch.  Per-edge inclusion probability matches
    uniform fanout, but a hub ``u`` appearing in many candidate lists
    is now sampled by all of them or none — the union frontier (and so
    the remote feature fetch) shrinks wherever candidate lists overlap.
    """

    name = "labor"

    def _sample_layer(
        self, graph, frontier, fanout, layer, *,
        epoch, batch, num_seeds, legacy_rng=None,
    ) -> LayerSample:
        if legacy_rng is not None:
            raise ValueError("labor sampler has no legacy sequential mode")
        dst, src, eids = self._candidates(graph, frontier)
        if len(dst) == 0:
            return _EMPTY_LAYER
        csc = graph.csc
        degree = (csc.indptr[dst + 1] - csc.indptr[dst]).astype(np.float64)
        r = hashed_uniforms(self.seed, "labor", epoch, batch, layer, ids=src)
        accepted = np.flatnonzero(r * degree <= float(fanout))
        if len(accepted) == 0:
            return _EMPTY_LAYER
        # Cap at fanout per destination, keeping the smallest r_u so the
        # kept set is still a deterministic function of the uniforms.
        # Destinations whose accepted count is already within the fanout
        # need no ranking at all.
        acc_dst = dst[accepted]
        acc_counts = _run_lengths(acc_dst)
        over = np.repeat(acc_counts > fanout, acc_counts)
        if not over.any():
            keep = accepted
        else:
            sel = np.flatnonzero(over)
            ranks = _rank_within_group(acc_dst[sel], r[accepted[sel]])
            keep_mask = np.ones(len(accepted), dtype=bool)
            keep_mask[sel] = ranks < fanout
            keep = accepted[keep_mask]
        return src[keep], dst[keep], eids[keep], None


class LadiesSampler(NeighborSampler):
    """LADIES-style layer-dependent sampling over the union frontier.

    Each layer draws a fixed budget of ``fanout * |seeds| *
    budget_scale`` candidate sources (without replacement) with
    probability proportional to the squared incoming edge weight, then
    keeps every frontier edge whose source was drawn, reweighted by
    ``1 / (budget * p)`` so the aggregation stays unbiased.  The
    per-layer cost is bounded no matter how fast the frontier fans out.
    """

    name = "ladies"

    def __init__(self, fanouts, seed: int = 0, budget_scale: float = 1.0):
        super().__init__(fanouts, seed=seed)
        if budget_scale <= 0:
            raise ValueError("budget_scale must be positive")
        self.budget_scale = float(budget_scale)

    def _sample_layer(
        self, graph, frontier, fanout, layer, *,
        epoch, batch, num_seeds, legacy_rng=None,
    ) -> LayerSample:
        if legacy_rng is not None:
            raise ValueError("ladies sampler has no legacy sequential mode")
        dst, src, eids = self._candidates(graph, frontier)
        if len(dst) == 0:
            return _EMPTY_LAYER
        budget = max(1, int(round(fanout * max(num_seeds, 1) * self.budget_scale)))
        # Mask-based unique-with-inverse over the vertex space: same
        # sorted candidate array and inverse as np.unique, without the
        # per-layer sort.
        present = np.zeros(graph.num_vertices, dtype=bool)
        present[src] = True
        candidates = np.flatnonzero(present)
        row_of = np.empty(graph.num_vertices, dtype=np.int64)
        row_of[candidates] = np.arange(len(candidates), dtype=np.int64)
        inverse = row_of[src]
        if len(candidates) <= budget:
            return src, dst, eids, None
        w = graph.edge_weight[eids].astype(np.float64)
        weight = np.zeros(len(candidates))
        np.add.at(weight, inverse, w * w)
        if weight.sum() <= 0.0:
            weight[:] = 1.0
        p = weight / weight.sum()
        rng = derive_rng(self.seed, "ladies", epoch, batch, layer)
        chosen = rng.choice(len(candidates), size=budget, replace=False, p=p)
        chosen_mask = np.zeros(len(candidates), dtype=bool)
        chosen_mask[chosen] = True
        keep = chosen_mask[inverse]
        scale = 1.0 / (budget * p[inverse[keep]])
        return src[keep], dst[keep], eids[keep], scale


_SAMPLERS = {
    UniformFanoutSampler.name: UniformFanoutSampler,
    LaborSampler.name: LaborSampler,
    LadiesSampler.name: LadiesSampler,
}

SAMPLER_NAMES = tuple(sorted(_SAMPLERS))


def make_sampler(name: str, fanouts, seed: int = 0, **kwargs) -> NeighborSampler:
    """Instantiate a sampler by registry name."""
    try:
        cls = _SAMPLERS[name]
    except KeyError:
        raise ValueError(
            f"unknown sampler {name!r}; choose from {sorted(_SAMPLERS)}"
        ) from None
    return cls(fanouts, seed=seed, **kwargs)
