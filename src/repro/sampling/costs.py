"""Sampling-specific costs derived from the probed cost model.

The old DistDGL engine hard-coded ``_SAMPLE_SECONDS_PER_EDGE`` and
``_RPC_ROUNDS_PER_LAYER``.  Sampled and full-batch charge times are
only comparable if they come from the same measurements, so this
module derives both knobs from the probed ``T_e`` constants (CPU
seconds per processed edge) and the cluster's network profile:

- drawing one candidate edge from the graph store is charged like one
  forward-pass edge traversal: ``mean_l(T_e[l]) / backward_factor``
  undoes the backward-inclusive scaling ``probe_constants`` applies;
- each layer of sampling costs one id-plane RPC round trip against the
  remote graph stores (request + response, ``2 x latency``), with id
  payloads priced at the profiled bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.costmodel.probe import _BACKWARD_COMPUTE, ProbeResult

# Bytes per vertex/edge identifier on the wire (int64).
ID_BYTES = 8


@dataclass(frozen=True)
class SamplingCostModel:
    """Charge rates for the sampling phase of a mini-batch."""

    sample_seconds_per_edge: float
    rpc_round_trip_s: float
    bytes_per_s: float

    @classmethod
    def from_probe(cls, constants: ProbeResult, network) -> "SamplingCostModel":
        per_edge = float(np.mean(constants.t_e_layer)) / _BACKWARD_COMPUTE
        return cls(
            sample_seconds_per_edge=per_edge,
            rpc_round_trip_s=2.0 * network.latency_s,
            bytes_per_s=network.bytes_per_s,
        )

    def sampling_seconds(self, num_edges: int) -> float:
        """CPU time to draw ``num_edges`` candidate edges."""
        return num_edges * self.sample_seconds_per_edge

    def rpc_charge(
        self, num_layers: int, sampled_edges: int, requested_rows: int
    ) -> tuple:
        """Id-plane RPC ``(seconds, bytes)`` for one batch: edge ids
        returned by per-layer sampling RPCs plus the feature-row ids
        requested from peers (feature *payloads* are charged by the
        exchange phase, not here)."""
        nbytes = sampled_edges * ID_BYTES + requested_rows * ID_BYTES
        seconds = num_layers * self.rpc_round_trip_s + nbytes / self.bytes_per_s
        return seconds, nbytes
