"""Detectors/localizers over observable signals only.

The :class:`DetectionPipeline` consumes the observation stream of
:mod:`repro.ops.signals` -- never the injected schedule -- and emits at
most one :class:`Verdict` per run: the first degradation it can both
detect and localize.  Checks are ordered by evidence specificity:

1. **crash** -- a :class:`CrashObservation` is unambiguous; blame the
   reported worker.
2. **cache-thrash** -- the refresh fraction of exchanged bytes jumps to
   ~1 when the staleness bound collapses; blame the layer moving the
   most refresh bytes (1-based).
3. **straggler** -- one worker's compute (gpu + cpu) seconds stand out
   against the cluster median; healthy partitions are balanced to a few
   percent, so a ratio of 1.6 is far outside noise.
4. **link** -- one worker's ``net_send`` seconds stand out (a degraded
   link makes the sender occupy its NIC longer per byte); the
   destination is localized from ``net_recv`` ratios, falling back to a
   wildcard when the degradation spreads over all peers.
5. **slo-burn** (serving windows) -- the window p95 exceeds a multiple
   of the baseline windows' p95; blame the worker whose mean latency
   stands out if one does.
6. **replica-crash** (fleet windows) -- a replica that served traffic
   during the baseline windows suddenly serves nothing while requests
   routed to it shed; blame that replica.
7. **hotspot-burn** (fleet windows) -- the fleet p95 burns past the
   baseline while one vertex dominates the window (``hot_share`` above
   ``hot_threshold``); blame the replica whose mean latency stands out
   against the replica median.

All thresholds live in :meth:`DetectionPipeline.params`, so a recorded
bundle can rebuild an identical pipeline and the replayer can re-derive
the recorded verdict bit-for-bit from the stored observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ops.signals import (
    CrashObservation,
    EpochObservation,
    FleetWindowObservation,
    WindowObservation,
)


@dataclass(frozen=True)
class Verdict:
    """One detection outcome: what, when, and who is to blame."""

    kind: str
    detected_at_s: float
    unit: int  # epoch (training) or window (serving) index
    worker: Optional[int] = None
    link: Optional[Tuple[Optional[int], Optional[int]]] = None
    layer: Optional[int] = None
    evidence: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "detected_at_s": self.detected_at_s,
            "unit": self.unit,
            "worker": self.worker,
            "link": list(self.link) if self.link is not None else None,
            "layer": self.layer,
            "evidence": dict(self.evidence),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "Verdict":
        link = payload.get("link")
        return Verdict(
            kind=str(payload["kind"]),
            detected_at_s=float(payload["detected_at_s"]),
            unit=int(payload["unit"]),
            worker=payload.get("worker"),
            link=tuple(link) if link is not None else None,
            layer=payload.get("layer"),
            evidence={
                str(k): float(v)
                for k, v in dict(payload.get("evidence") or {}).items()
            },
        )


class DetectionPipeline:
    """Stateful detector fed one observation per epoch/window.

    Parameters mirror :meth:`params` exactly; construct a replayed
    pipeline via ``DetectionPipeline(**bundle["pipeline"])``.
    """

    def __init__(
        self,
        warmup_epochs: int = 0,
        baseline_windows: int = 3,
        compute_threshold: float = 1.6,
        comm_threshold: float = 1.3,
        recv_threshold: float = 1.25,
        refresh_threshold: float = 0.5,
        burn_factor: float = 1.5,
        worker_ratio: float = 1.8,
        hot_threshold: float = 0.2,
    ):
        self.warmup_epochs = int(warmup_epochs)
        self.baseline_windows = int(baseline_windows)
        self.compute_threshold = float(compute_threshold)
        self.comm_threshold = float(comm_threshold)
        self.recv_threshold = float(recv_threshold)
        self.refresh_threshold = float(refresh_threshold)
        self.burn_factor = float(burn_factor)
        self.worker_ratio = float(worker_ratio)
        self.hot_threshold = float(hot_threshold)
        self._window_p95s: List[float] = []
        self._fleet_p95s: List[float] = []
        self._fleet_serving: set = set()

    def params(self) -> Dict[str, float]:
        """Constructor kwargs for an identical pipeline (bundled)."""
        return {
            "warmup_epochs": self.warmup_epochs,
            "baseline_windows": self.baseline_windows,
            "compute_threshold": self.compute_threshold,
            "comm_threshold": self.comm_threshold,
            "recv_threshold": self.recv_threshold,
            "refresh_threshold": self.refresh_threshold,
            "burn_factor": self.burn_factor,
            "worker_ratio": self.worker_ratio,
            "hot_threshold": self.hot_threshold,
        }

    # ------------------------------------------------------------------
    def observe(self, obs) -> Optional[Verdict]:
        """Feed one observation; a non-None return ends detection."""
        if isinstance(obs, CrashObservation):
            return Verdict(
                kind="crash",
                detected_at_s=obs.detected_at_s,
                unit=obs.epoch,
                worker=obs.worker,
                evidence={"permanent": float(obs.permanent)},
            )
        if isinstance(obs, EpochObservation):
            return self._observe_epoch(obs)
        if isinstance(obs, FleetWindowObservation):
            return self._observe_fleet_window(obs)
        if isinstance(obs, WindowObservation):
            return self._observe_window(obs)
        raise TypeError(f"unknown observation {obs!r}")

    # -- training epochs -----------------------------------------------
    def _observe_epoch(self, obs: EpochObservation) -> Optional[Verdict]:
        if obs.epoch <= self.warmup_epochs:
            return None

        # Cache thrash: refresh traffic should be rare under a healthy
        # staleness bound; a sustained ~100% refresh share means the
        # bound collapsed (tau-pressure) and every epoch re-fetches.
        frac = obs.refresh_fraction
        if frac >= self.refresh_threshold:
            refresh = obs.layer_refresh_bytes
            layer = int(np.argmax(refresh)) + 1 if refresh else None
            return Verdict(
                kind="cache-thrash",
                detected_at_s=obs.t_end,
                unit=obs.epoch,
                layer=layer,
                evidence={"refresh_fraction": float(frac)},
            )

        # Straggler: one worker's compute share stands out vs median.
        compute = np.array(obs.compute_s())
        med = float(np.median(compute))
        if med > 0:
            ratios = compute / med
            worker = int(np.argmax(ratios))
            ratio = float(ratios[worker])
            if ratio >= self.compute_threshold:
                return Verdict(
                    kind="straggler",
                    detected_at_s=obs.t_end,
                    unit=obs.epoch,
                    worker=worker,
                    evidence={"compute_ratio": ratio},
                )

        # Degraded link: the sender's NIC occupancy stands out.  The
        # destination shows as one peer's elevated receive time; a flat
        # receive spread means every link out of the sender degraded.
        send = np.array(obs.net_send_s)
        med_send = float(np.median(send))
        if med_send > 0:
            ratios = send / med_send
            src = int(np.argmax(ratios))
            send_ratio = float(ratios[src])
            if send_ratio >= self.comm_threshold:
                recv = np.array(obs.net_recv_s)
                med_recv = float(np.median(recv))
                dst: Optional[int] = None
                recv_ratio = 0.0
                if med_recv > 0:
                    recv_ratios = recv / med_recv
                    cand = int(np.argmax(recv_ratios))
                    recv_ratio = float(recv_ratios[cand])
                    if recv_ratio >= self.recv_threshold:
                        dst = cand
                return Verdict(
                    kind="link",
                    detected_at_s=obs.t_end,
                    unit=obs.epoch,
                    worker=src,
                    link=(src, dst),
                    evidence={
                        "send_ratio": send_ratio,
                        "recv_ratio": recv_ratio,
                    },
                )
        return None

    # -- serving windows -----------------------------------------------
    def _observe_window(self, obs: WindowObservation) -> Optional[Verdict]:
        if len(self._window_p95s) < self.baseline_windows:
            self._window_p95s.append(obs.p95_s)
            return None
        baseline = float(np.mean(self._window_p95s))
        if baseline <= 0 or obs.p95_s < self.burn_factor * baseline:
            return None
        worker: Optional[int] = None
        ratio = 0.0
        means = [obs.worker_mean_s.get(w, 0.0) for w in range(obs.num_workers)]
        positive = [m for m in means if m > 0]
        if positive:
            med = float(np.median(positive))
            if med > 0:
                cand = int(np.argmax(means))
                ratio = float(means[cand] / med)
                if ratio >= self.worker_ratio:
                    worker = cand
        return Verdict(
            kind="slo-burn",
            detected_at_s=obs.t_end,
            unit=obs.window,
            worker=worker,
            evidence={
                "p95_s": obs.p95_s,
                "baseline_p95_s": baseline,
                "burn": obs.p95_s / baseline,
                "worker_ratio": ratio,
            },
        )


    # -- fleet windows ---------------------------------------------------
    def _observe_fleet_window(
        self, obs: FleetWindowObservation
    ) -> Optional[Verdict]:
        if len(self._fleet_p95s) < self.baseline_windows:
            self._fleet_p95s.append(obs.p95_s)
            self._fleet_serving.update(
                r for r, n in obs.replica_served.items() if n > 0
            )
            return None

        # Replica crash: a baseline-serving replica now serves nothing
        # while requests routed to it shed.  The shed counter is the
        # discriminator -- a replica merely drained by the router sheds
        # nothing.
        for replica in sorted(self._fleet_serving):
            if (
                obs.replica_served.get(replica, 0) == 0
                and obs.replica_shed.get(replica, 0) > 0
            ):
                return Verdict(
                    kind="replica-crash",
                    detected_at_s=obs.t_end,
                    unit=obs.window,
                    worker=replica,
                    evidence={
                        "replica_shed": float(obs.replica_shed[replica]),
                        "shed_fraction": float(obs.shed_fraction),
                    },
                )

        # Hotspot burn: the fleet p95 burns past baseline while one
        # vertex dominates the offered window.
        baseline = float(np.mean(self._fleet_p95s))
        if baseline <= 0 or obs.p95_s < self.burn_factor * baseline:
            return None
        if obs.hot_share < self.hot_threshold:
            return None
        worker: Optional[int] = None
        ratio = 0.0
        means = obs.replica_mean_s
        positive = [m for m in means.values() if m > 0]
        if positive:
            med = float(np.median(positive))
            if med > 0:
                cand = max(means, key=lambda r: means[r])
                ratio = float(means[cand] / med)
                if ratio >= self.worker_ratio:
                    worker = int(cand)
        return Verdict(
            kind="hotspot-burn",
            detected_at_s=obs.t_end,
            unit=obs.window,
            worker=worker,
            evidence={
                "p95_s": obs.p95_s,
                "baseline_p95_s": baseline,
                "burn": obs.p95_s / baseline,
                "hot_share": float(obs.hot_share),
                "replica_ratio": ratio,
            },
        )


__all__ = ["Verdict", "DetectionPipeline"]
