"""Record an ops run into a self-contained JSON bundle.

A bundle carries everything the offline replayer needs to reconstruct
the run *without re-executing the engine*: the problem spec and seed,
the ground truth, the detection pipeline's parameters, the observation
stream (exact floats -- JSON serialises doubles via ``repr``, so they
round-trip bit-identically), the verdict, the mitigation record, the
grading parameters with their resolved second-denominated budgets, the
resulting grade, the serving latency ledger (raw request records), and
the run's chrome trace.

``repro ops run --record out.json`` writes one; ``repro ops replay``
and ``repro ops grade`` consume it.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.cluster.trace import timeline_to_chrome_trace
from repro.ops.harness import OpsRunResult

#: Bump when the bundle layout changes incompatibly.
SCHEMA_VERSION = 1


def _plain(value):
    """Coerce numpy scalars so ``json.dump`` round-trips exactly."""
    import numpy as np

    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    return value


def bundle_from_result(result: OpsRunResult) -> Dict[str, object]:
    """Flatten one run into the schema-1 bundle dict."""
    return _plain({
        "schema": SCHEMA_VERSION,
        "problem": result.problem.spec_dict(),
        "seed": result.seed,
        "mitigate": result.mitigate,
        "ground_truth": result.ground_truth.to_dict(),
        "pipeline": result.pipeline_params,
        "observations": [o.to_dict() for o in result.observations],
        "verdict": result.verdict.to_dict() if result.verdict else None,
        "mitigation": (
            result.mitigation.to_dict() if result.mitigation else None
        ),
        "aborted": result.aborted,
        "grading": result.grading,
        "grade": result.grade.to_dict(),
        "clean_unit_s": result.clean_unit_s,
        "ledger": result.ledger_records,
        "trace": timeline_to_chrome_trace(result.timeline),
    })


def save_bundle(result: OpsRunResult, path: str) -> str:
    """Record ``result`` at ``path`` (appends ``.json`` if missing)."""
    if not path.endswith(".json"):
        path = path + ".json"
    bundle = bundle_from_result(result)
    with open(path, "w") as fh:
        json.dump(bundle, fh, indent=1)
        fh.write("\n")
    return path


def load_bundle(path: str) -> Dict[str, object]:
    with open(path) as fh:
        bundle = json.load(fh)
    schema = bundle.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"bundle schema {schema!r} unsupported "
            f"(this build reads schema {SCHEMA_VERSION})"
        )
    return bundle


__all__ = [
    "SCHEMA_VERSION",
    "bundle_from_result",
    "save_bundle",
    "load_bundle",
]
