"""Declarative ops-problem specs and their graded ground truth.

An :class:`OpsProblem` composes a workload (training epochs on a seeded
synthetic graph, or serving traffic from a seeded workload generator)
with one injected degradation.  The spec is plain data: the harness
(:mod:`repro.ops.harness`) materialises graph, model, cluster, and
fault schedule from ``(problem, seed)`` alone, so a problem run is a
pure function of its spec and seed -- the property the trace replayer
and the registry's bit-identity tests rely on.

The :class:`GroundTruth` is what the grader scores against: what kind
of degradation was injected, when it started on the simulated clock,
and which worker / link / layer is to blame.  Detectors never see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Problem kinds the registry covers (ISSUE 6's required scenarios
#: plus ISSUE 8's fleet-serving failures).
KINDS = (
    "straggler", "link", "crash", "cache-thrash", "slo-burn",
    "replica-crash", "hotspot-burn",
)

#: Mitigation policy names understood by :mod:`repro.ops.mitigations`.
MITIGATIONS = (
    "shrink", "replan", "cache-refresh", "shed", "failover", "scale-out",
)


@dataclass(frozen=True)
class GroundTruth:
    """The injected degradation, as the grader knows it.

    ``link`` is ``(src, dst)`` with ``None`` meaning wildcard, matching
    :class:`~repro.resilience.faults.LinkDegradationFault` semantics;
    ``layer`` is 1-based (layer ``l`` of the model).
    """

    kind: str
    start_s: float
    worker: Optional[int] = None
    link: Optional[Tuple[Optional[int], Optional[int]]] = None
    layer: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "start_s": self.start_s,
            "worker": self.worker,
            "link": list(self.link) if self.link is not None else None,
            "layer": self.layer,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "GroundTruth":
        link = payload.get("link")
        return GroundTruth(
            kind=str(payload["kind"]),
            start_s=float(payload["start_s"]),
            worker=payload.get("worker"),
            link=tuple(link) if link is not None else None,
            layer=payload.get("layer"),
        )


@dataclass(frozen=True)
class OpsProblem:
    """One registered operations problem.

    Workload fields size the synthetic graph/model/cluster (training)
    or the request stream (serving); injection fields parameterise the
    degradation; grading fields set the evaluator's budgets.  Budgets
    are expressed in *units* -- epochs for training problems, windows
    for serving ones -- and converted to simulated seconds by the
    harness once the healthy unit duration is known.
    """

    name: str
    kind: str
    description: str
    workload: str = "training"  # "training" | "serving" | "fleet"
    mitigation: str = "shrink"

    # -- workload: synthetic graph / model / cluster -------------------
    engine: str = "hybrid"
    nodes: int = 8
    epochs: int = 12
    graph_vertices: int = 192
    graph_communities: int = 4
    avg_degree: float = 8.0
    feature_dim: int = 16
    num_classes: int = 4
    hidden_dim: int = 64
    arch: str = "gcn"
    layers: int = 2
    tau: Optional[float] = None  # healthy cache staleness bound (epochs)

    # -- injection -----------------------------------------------------
    inject_epoch: int = 4  # fault starts at inject_epoch * clean epoch
    fault_worker: int = 2
    gpu_factor: float = 16.0
    bandwidth_factor: float = 8.0
    extra_latency_s: float = 5e-5

    # -- serving workload ----------------------------------------------
    requests: int = 320
    rate_rps: float = 6000.0
    zipf: float = 0.8
    window_requests: int = 40
    batch_window_s: float = 0.002
    max_batch: int = 32
    inject_request: int = 120  # fault starts at this request's arrival
    shed_max_pending: int = 8

    # -- fleet workload (replicated serving groups) --------------------
    replicas: int = 2
    fault_replica: int = 1
    burst_multiplier: float = 6.0

    # -- detection thresholds (pipeline parameters) --------------------
    detector_params: Dict[str, float] = field(default_factory=dict)

    # -- grading -------------------------------------------------------
    warmup_epochs: int = 0  # cold-start units excluded from the baseline
    baseline_epochs: int = 3  # healthy units the baseline averages over
    ttd_budget_epochs: float = 2.0
    recovered_factor: float = 1.3
    recovery_budget_epochs: float = 5.0
    regression_allowance: float = 0.5
    refresh_recovery_threshold: float = 0.25

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.workload not in ("training", "serving", "fleet"):
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.workload == "fleet":
            if self.replicas < 1:
                raise ValueError("fleet workload needs replicas >= 1")
            if not 0 <= self.fault_replica < self.replicas:
                raise ValueError("fault_replica must index a replica")
        if self.mitigation not in MITIGATIONS:
            raise ValueError(
                f"mitigation must be one of {MITIGATIONS}, "
                f"got {self.mitigation!r}"
            )
        if self.inject_epoch <= self.warmup_epochs + self.baseline_epochs:
            if self.workload == "training":
                raise ValueError(
                    "inject_epoch must leave room for warmup + baseline"
                )

    def spec_dict(self) -> Dict[str, object]:
        """JSON-ready copy of the spec (recorded into bundles)."""
        from dataclasses import asdict

        return asdict(self)


__all__ = ["KINDS", "MITIGATIONS", "GroundTruth", "OpsProblem"]
