"""Graded scoring of detection and mitigation against ground truth.

Grading is deliberately mechanical -- every score is a pure function of
the observation stream, the verdict, the mitigation record, and the
grading parameters recorded alongside them -- so the replayer can
recompute identical grades offline from a bundle.

**Detection** scores three components:

- *kind* (0.4): did the detector name the right degradation class?
- *blame* (0.4): worker blame is all-or-nothing; link blame scores 0.5
  per endpoint (``None`` matching ``None`` counts -- a wildcard fault
  localized as a wildcard is correct); layer blame is all-or-nothing.
- *time-to-detect* (0.2): ``min(1, budget / ttd)`` -- detecting within
  the budget scores 1, and the score decays hyperbolically after it.

**Mitigation** scores two components:

- *recovery* (0.6): time from detection until the first unit whose
  recovery metric (epoch duration, refresh fraction, or window p95)
  is back under the recovered threshold, scored ``min(1, budget /
  recovery_s)``.
- *regression* (0.4): how much worse the post-recovery steady state is
  than the healthy baseline, scored linearly against the allowance.

An aborted run (an unmitigated permanent crash kills the workload)
scores zero on mitigation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ops.detectors import Verdict
from repro.ops.problem import GroundTruth
from repro.ops.signals import (
    EpochObservation,
    FleetWindowObservation,
    WindowObservation,
)

_DETECTION_WEIGHTS = (0.4, 0.4, 0.2)  # kind, blame, ttd
_MITIGATION_WEIGHTS = (0.6, 0.4)  # recovery, regression


@dataclass(frozen=True)
class DetectionGrade:
    detected: bool
    kind_correct: bool
    blame_score: float
    ttd_s: float
    ttd_budget_s: float
    ttd_score: float
    score: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "detected": self.detected,
            "kind_correct": self.kind_correct,
            "blame_score": self.blame_score,
            "ttd_s": self.ttd_s,
            "ttd_budget_s": self.ttd_budget_s,
            "ttd_score": self.ttd_score,
            "score": self.score,
        }


@dataclass(frozen=True)
class MitigationGrade:
    applied: bool
    recovered: bool
    recovery_s: float
    recovery_budget_s: float
    recovery_score: float
    regression: float
    regression_score: float
    score: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "applied": self.applied,
            "recovered": self.recovered,
            "recovery_s": self.recovery_s,
            "recovery_budget_s": self.recovery_budget_s,
            "recovery_score": self.recovery_score,
            "regression": self.regression,
            "regression_score": self.regression_score,
            "score": self.score,
        }


@dataclass(frozen=True)
class ProblemGrade:
    detection: DetectionGrade
    mitigation: MitigationGrade
    aborted: bool
    overall: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "detection": self.detection.to_dict(),
            "mitigation": self.mitigation.to_dict(),
            "aborted": self.aborted,
            "overall": self.overall,
        }


def blame_score(verdict: Verdict, truth: GroundTruth) -> float:
    """Localization accuracy in [0, 1] against the ground truth."""
    if truth.worker is not None:
        return 1.0 if verdict.worker == truth.worker else 0.0
    if truth.link is not None:
        if verdict.link is None:
            return 0.0
        score = 0.0
        if verdict.link[0] == truth.link[0]:
            score += 0.5
        if verdict.link[1] == truth.link[1]:
            score += 0.5
        return score
    if truth.layer is not None:
        return 1.0 if verdict.layer == truth.layer else 0.0
    return 1.0  # nothing to localize


def grade_detection(
    verdict: Optional[Verdict],
    truth: GroundTruth,
    ttd_budget_s: float,
) -> DetectionGrade:
    if verdict is None:
        return DetectionGrade(
            detected=False, kind_correct=False, blame_score=0.0,
            ttd_s=math.inf, ttd_budget_s=ttd_budget_s, ttd_score=0.0,
            score=0.0,
        )
    kind_ok = verdict.kind == truth.kind
    blame = blame_score(verdict, truth) if kind_ok else 0.0
    ttd = max(verdict.detected_at_s - truth.start_s, 0.0)
    ttd_score = 1.0 if ttd <= ttd_budget_s else (
        ttd_budget_s / ttd if ttd > 0 else 1.0
    )
    w_kind, w_blame, w_ttd = _DETECTION_WEIGHTS
    score = (
        w_kind * float(kind_ok) + w_blame * blame + w_ttd * ttd_score
        if kind_ok else 0.0
    )
    return DetectionGrade(
        detected=True,
        kind_correct=kind_ok,
        blame_score=blame,
        ttd_s=ttd,
        ttd_budget_s=ttd_budget_s,
        ttd_score=ttd_score,
        score=score,
    )


def _recovery_value(obs, criterion: str) -> float:
    if criterion == "refresh":
        return obs.refresh_fraction
    if criterion == "p95":
        return obs.p95_s
    if criterion == "shed":
        return obs.shed_fraction
    return obs.duration


def _regression_value(obs, criterion: str) -> float:
    if criterion in ("p95", "shed"):
        return obs.p95_s
    return obs.duration


def grade_mitigation(
    observations: Sequence,
    verdict: Optional[Verdict],
    applied: bool,
    *,
    criterion: str,
    baseline_duration: float,
    recovered_factor: float,
    recovery_budget_s: float,
    regression_allowance: float,
    baseline_p95: Optional[float] = None,
    refresh_threshold: float = 0.25,
    aborted: bool = False,
) -> MitigationGrade:
    """Score recovery + post-recovery regression from the observations.

    ``criterion`` selects the recovery metric: ``"duration"`` (epoch
    seconds vs ``recovered_factor * baseline_duration``), ``"refresh"``
    (cache refresh fraction vs the absolute ``refresh_threshold``),
    ``"p95"`` (window p95 vs ``recovered_factor * baseline_p95``), or
    ``"shed"`` (fleet window shed fraction vs the absolute
    ``refresh_threshold`` slot).  Regression is always measured on
    durations (training) or p95 (serving/fleet) against the
    corresponding baseline.
    """
    no_grade = MitigationGrade(
        applied=applied, recovered=False, recovery_s=math.inf,
        recovery_budget_s=recovery_budget_s, recovery_score=0.0,
        regression=math.inf, regression_score=0.0, score=0.0,
    )
    if verdict is None or aborted:
        return no_grade

    if criterion in ("refresh", "shed"):
        recovery_threshold = refresh_threshold
    elif criterion == "p95":
        recovery_threshold = recovered_factor * float(baseline_p95 or 0.0)
    else:
        recovery_threshold = recovered_factor * baseline_duration
    regression_baseline = (
        float(baseline_p95 or 0.0)
        if criterion in ("p95", "shed") else baseline_duration
    )

    # Units after the detecting one, in stream order.
    post: List = [
        o for o in observations
        if isinstance(
            o, (EpochObservation, WindowObservation, FleetWindowObservation)
        )
        and _unit_of(o) > verdict.unit
    ]
    recovery_s = math.inf
    steady: List[float] = []
    for obs in post:
        if recovery_s == math.inf:
            if _recovery_value(obs, criterion) <= recovery_threshold:
                recovery_s = obs.t_end - verdict.detected_at_s
                steady.append(_regression_value(obs, criterion))
        else:
            steady.append(_regression_value(obs, criterion))
    if recovery_s == math.inf:
        return no_grade

    recovery_score = (
        1.0 if recovery_s <= recovery_budget_s
        else (recovery_budget_s / recovery_s if recovery_s > 0 else 1.0)
    )
    if steady and regression_baseline > 0:
        regression = float(np.mean(steady)) / regression_baseline - 1.0
    else:
        regression = 0.0
    over = max(regression, 0.0)
    regression_score = (
        max(0.0, 1.0 - over / regression_allowance)
        if regression_allowance > 0 else (1.0 if over == 0 else 0.0)
    )
    w_rec, w_reg = _MITIGATION_WEIGHTS
    return MitigationGrade(
        applied=applied,
        recovered=True,
        recovery_s=recovery_s,
        recovery_budget_s=recovery_budget_s,
        recovery_score=recovery_score,
        regression=regression,
        regression_score=regression_score,
        score=w_rec * recovery_score + w_reg * regression_score,
    )


def _unit_of(obs) -> int:
    return obs.epoch if isinstance(obs, EpochObservation) else obs.window


def grade_problem(
    detection: DetectionGrade,
    mitigation: MitigationGrade,
    aborted: bool = False,
) -> ProblemGrade:
    return ProblemGrade(
        detection=detection,
        mitigation=mitigation,
        aborted=aborted,
        overall=0.5 * detection.score + 0.5 * mitigation.score,
    )


def grade_run(
    observations: Sequence,
    verdict: Optional[Verdict],
    truth: GroundTruth,
    applied: bool,
    grading: Dict[str, object],
    aborted: bool = False,
) -> ProblemGrade:
    """Grade from the exact parameter dict a bundle records.

    Both the live harness and the offline replayer call this with the
    same ``grading`` payload, so the two grades cannot diverge.
    """
    detection = grade_detection(
        verdict, truth, float(grading["ttd_budget_s"])
    )
    baseline_p95 = grading.get("baseline_p95")
    mitigation = grade_mitigation(
        observations, verdict, applied,
        criterion=str(grading["criterion"]),
        baseline_duration=float(grading["baseline_duration"]),
        recovered_factor=float(grading["recovered_factor"]),
        recovery_budget_s=float(grading["recovery_budget_s"]),
        regression_allowance=float(grading["regression_allowance"]),
        baseline_p95=float(baseline_p95)
        if baseline_p95 is not None else None,
        refresh_threshold=float(grading.get("refresh_threshold", 0.25)),
        aborted=aborted,
    )
    return grade_problem(detection, mitigation, aborted)


__all__ = [
    "DetectionGrade",
    "MitigationGrade",
    "ProblemGrade",
    "blame_score",
    "grade_detection",
    "grade_mitigation",
    "grade_problem",
    "grade_run",
]
