"""The built-in ops-problem registry.

Problems register themselves by name; ``repro ops list`` enumerates
them and ``repro ops run NAME`` materialises one via the harness.  The
five built-ins below cover the degradation classes the resilience and
serving layers model -- straggler, degraded link, permanent crash,
cache thrash (tau-pressure), and a serving SLO burn -- with injection
magnitudes tuned so each problem's signal clears its detector threshold
with margin on the default seed while healthy epochs/windows stay well
below it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ops.problem import OpsProblem

_REGISTRY: Dict[str, OpsProblem] = {}


def register(problem: OpsProblem) -> OpsProblem:
    """Add a problem to the registry (name must be unique)."""
    if problem.name in _REGISTRY:
        raise ValueError(f"ops problem {problem.name!r} already registered")
    _REGISTRY[problem.name] = problem
    return problem


def get_problem(name: str) -> OpsProblem:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown ops problem {name!r} (known: {known})")


def list_problems() -> List[OpsProblem]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# Built-in problems.  Injection magnitudes are deliberately loud (16x
# GPU slowdown, 8x bandwidth cut, 60x serving slowdown): the benchmark
# grades *operational response* -- time-to-detect, blame accuracy,
# recovery -- not threshold sensitivity, so the signal itself should
# not be the hard part.

register(OpsProblem(
    name="train-straggler",
    kind="straggler",
    description=(
        "Worker 2's GPU slows 16x mid-training; detect the compute "
        "imbalance, blame the worker, and shrink it out of the cluster."
    ),
    mitigation="shrink",
    inject_epoch=4,
    fault_worker=2,
    gpu_factor=16.0,
    ttd_budget_epochs=2.0,
    # Post-evict epochs run ~0.9x the healthy duration; 1.3x leaves
    # room for the first partially-degraded epoch to not count.
    recovered_factor=1.3,
    recovery_budget_epochs=5.0,
    regression_allowance=0.5,
))

register(OpsProblem(
    name="train-link-degraded",
    kind="link",
    description=(
        "Every link out of worker 1 drops to 1/8 bandwidth with added "
        "latency; detect the NIC-occupancy skew and replan the cost "
        "model around the slow sender."
    ),
    mitigation="replan",
    inject_epoch=4,
    fault_worker=1,
    bandwidth_factor=8.0,
    extra_latency_s=5e-5,
    ttd_budget_epochs=2.0,
    # A replan cannot give bandwidth back -- the mitigated steady state
    # runs ~1.6x the healthy epoch (vs ~3x unmitigated).
    recovered_factor=1.8,
    recovery_budget_epochs=5.0,
    regression_allowance=1.0,
))

register(OpsProblem(
    name="train-crash-permanent",
    kind="crash",
    description=(
        "Worker 2 dies permanently at epoch 4; the failure detector "
        "fires at the next barrier and the cluster must shrink to "
        "continue (an unmitigated run aborts)."
    ),
    mitigation="shrink",
    inject_epoch=4,
    fault_worker=2,
    ttd_budget_epochs=2.0,
    # 7 workers re-covering 8 workers' graph run ~8/7 of the healthy
    # epoch plus imbalance; 1.5x bounds the accepted steady state.
    recovered_factor=1.5,
    recovery_budget_epochs=5.0,
    regression_allowance=0.6,
))

register(OpsProblem(
    name="train-cache-thrash",
    kind="cache-thrash",
    description=(
        "The historical-embedding staleness bound collapses to tau=0 "
        "mid-training, forcing a full refresh every epoch; detect the "
        "refresh-byte surge, blame the heaviest layer, and restore the "
        "healthy cache config."
    ),
    mitigation="cache-refresh",
    tau=float("inf"),
    inject_epoch=5,
    # Epoch 1 is the cold cache fill (refresh fraction 1.0 by design);
    # the detector must not score it as thrash.
    warmup_epochs=1,
    ttd_budget_epochs=2.0,
    recovered_factor=1.3,
    recovery_budget_epochs=5.0,
    regression_allowance=0.5,
    refresh_recovery_threshold=0.25,
))

register(OpsProblem(
    name="serve-slo-burn",
    kind="slo-burn",
    description=(
        "Worker 1's GPU slows 60x under live traffic; queueing delay "
        "burns the latency SLO.  Detect the p95 burn, blame the slow "
        "worker from per-worker latencies, and shed load to recover."
    ),
    workload="serving",
    mitigation="shed",
    nodes=4,
    hidden_dim=32,
    requests=320,
    rate_rps=7000.0,
    zipf=0.8,
    window_requests=40,
    batch_window_s=0.002,
    max_batch=32,
    inject_request=120,
    fault_worker=1,
    gpu_factor=60.0,
    shed_max_pending=8,
    # Units are windows here: baseline over the first 3 windows,
    # detect within 2 windows of the fault, recover within 4.
    baseline_epochs=3,
    ttd_budget_epochs=2.0,
    recovered_factor=1.8,
    recovery_budget_epochs=4.0,
    regression_allowance=1.0,
    detector_params={"worker_ratio": 1.5, "burn_factor": 1.4},
))

register(OpsProblem(
    name="serve-replica-crash",
    kind="replica-crash",
    description=(
        "Every worker of serving replica 1 goes dark mid-stream; the "
        "group sheds everything routed to it.  Detect the served-to-"
        "shed flip from per-replica window stats, blame the replica, "
        "and fail its traffic over to the survivors."
    ),
    workload="fleet",
    mitigation="failover",
    nodes=4,
    hidden_dim=32,
    replicas=3,
    fault_replica=1,
    requests=320,
    rate_rps=6000.0,
    zipf=0.8,
    window_requests=40,
    batch_window_s=0.002,
    max_batch=32,
    inject_request=160,
    # Units are fleet windows: baseline over the first 3, detect the
    # flip within 2, and recover (shed fraction back under the
    # threshold) within 4.
    baseline_epochs=3,
    ttd_budget_epochs=2.0,
    recovered_factor=1.8,
    recovery_budget_epochs=4.0,
    regression_allowance=1.0,
    refresh_recovery_threshold=0.05,
))

register(OpsProblem(
    name="serve-hotspot-burn",
    kind="hotspot-burn",
    description=(
        "A Zipf-hot head pinned to one replica meets a 6x arrival "
        "burst; that replica's queues burn the fleet p95.  Detect the "
        "burn plus popularity skew, blame the hot replica, and scale "
        "out so the router spreads the hot head."
    ),
    workload="fleet",
    mitigation="scale-out",
    nodes=4,
    hidden_dim=32,
    replicas=2,
    requests=320,
    rate_rps=8000.0,
    zipf=2.0,
    burst_multiplier=6.0,
    window_requests=40,
    # Unbatched deployment: each request pays its closure recompute
    # serially, so the burst genuinely queues on the hot replica
    # (micro-batch dedup would absorb the repeats for free).
    batch_window_s=0.0,
    max_batch=1,
    inject_request=160,
    baseline_epochs=3,
    ttd_budget_epochs=2.0,
    recovered_factor=1.8,
    recovery_budget_epochs=4.0,
    regression_allowance=1.0,
    # Two replicas bound the blamed-vs-median mean ratio below 2, so
    # the localizer gate sits well under the serving default.
    detector_params={
        "burn_factor": 1.4, "worker_ratio": 1.2, "hot_threshold": 0.2,
    },
))


__all__ = ["register", "get_problem", "list_problems"]
