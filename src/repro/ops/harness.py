"""Materialise and run one ops problem end-to-end.

:func:`run_problem` is a pure function of ``(problem, seed, mitigate)``:
every random choice -- graph topology, features, model init, fault
jitter, workload arrivals -- draws from a sub-seed derived from the one
run seed via :func:`repro.utils.rng.derive_rng` under the ``"ops"``
namespace, so two runs with the same arguments produce bit-identical
observation streams, verdicts, and grades (the property the recorder's
replay test asserts).

Training problems charge epochs on a healthy *twin* engine first to
measure the clean epoch duration; the fault schedule and the grading
budgets (expressed in epochs by the spec) are converted to simulated
seconds with it.  The monitored run then feeds per-epoch
:class:`~repro.ops.signals.EpochObservation` deltas through the
detection pipeline, applies the problem's mitigation when a verdict
lands, and keeps charging epochs so the evaluator can observe the
recovery.  Serving problems segment the workload into fixed-size
request windows served against harness-owned continuation state.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cache.budget import CacheConfig
from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import Timeline
from repro.core.model import GNNModel
from repro.engines import make_engine
from repro.graph import generators
from repro.ops.detectors import DetectionPipeline, Verdict
from repro.ops.evaluators import ProblemGrade, grade_run
from repro.ops.mitigations import (
    MitigationRecord,
    mitigate_cache_refresh,
    mitigate_failover,
    mitigate_replan,
    mitigate_scale_out,
    mitigate_shed,
    mitigate_shrink,
)
from repro.ops.problem import GroundTruth, OpsProblem
from repro.ops.signals import (
    TimelineObserver,
    fleet_window_observations_from_records,
    window_observations_from_records,
)
from repro.partition import get_partitioner
from repro.resilience.faults import (
    FaultSchedule,
    LinkDegradationFault,
    StragglerFault,
    WorkerCrashError,
    WorkerCrashFault,
)
from repro.utils.rng import derive_rng

#: One injected cache-thrash collapses the staleness bound to this.
_THRASH_TAU = 0.0


def derive_sub_seed(seed: int, *stream: object) -> int:
    """One 31-bit sub-seed per named stream under the ``"ops"`` root."""
    return int(derive_rng(seed, "ops", *stream).integers(2 ** 31))


@dataclass
class OpsRunResult:
    """Everything one problem run produced (the bundle's source)."""

    problem: OpsProblem
    seed: int
    mitigate: bool
    ground_truth: GroundTruth
    pipeline_params: Dict[str, float]
    observations: List[object]
    verdict: Optional[Verdict]
    mitigation: Optional[MitigationRecord]
    aborted: bool
    grading: Dict[str, object]
    grade: ProblemGrade
    timeline: Timeline
    clean_unit_s: float
    ledger_records: List[Dict[str, object]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.problem.name


# ----------------------------------------------------------------------
def _build_graph(problem: OpsProblem, seed: int):
    g = generators.community(
        problem.graph_vertices,
        problem.graph_communities,
        avg_degree=problem.avg_degree,
        seed=derive_sub_seed(seed, "graph"),
    )
    generators.attach_features(
        g,
        problem.feature_dim,
        problem.num_classes,
        seed=derive_sub_seed(seed, "features"),
        class_signal=2.0,
    )
    return g


def _build_model(problem: OpsProblem, graph, seed: int) -> GNNModel:
    return GNNModel.build(
        problem.arch,
        graph.feature_dim,
        problem.hidden_dim,
        graph.num_classes,
        seed=derive_sub_seed(seed, "model"),
    )


def _pipeline_for(problem: OpsProblem) -> DetectionPipeline:
    params: Dict[str, float] = {
        "warmup_epochs": problem.warmup_epochs,
        "baseline_windows": problem.baseline_epochs,
    }
    params.update(problem.detector_params)
    return DetectionPipeline(**params)


def run_problem(
    problem: OpsProblem, seed: int = 0, mitigate: bool = True
) -> OpsRunResult:
    """Run one registered problem; see the module docstring."""
    if problem.workload == "serving":
        return _run_serving(problem, seed, mitigate)
    if problem.workload == "fleet":
        return _run_fleet(problem, seed, mitigate)
    return _run_training(problem, seed, mitigate)


# ----------------------------------------------------------------------
# Training problems.
def _fault_schedule(
    problem: OpsProblem, start_s: float, seed: int, unit_s: float
) -> Optional[FaultSchedule]:
    fault_seed = derive_sub_seed(seed, "faults")
    if problem.kind == "straggler":
        return FaultSchedule([StragglerFault(
            worker=problem.fault_worker,
            gpu_factor=problem.gpu_factor,
            cpu_factor=1.0,
            start=start_s,
        )], seed=fault_seed)
    if problem.kind == "link":
        return FaultSchedule([LinkDegradationFault(
            src=problem.fault_worker,
            dst=None,
            bandwidth_factor=problem.bandwidth_factor,
            extra_latency_s=problem.extra_latency_s,
            start=start_s,
        )], seed=fault_seed)
    if problem.kind == "crash":
        # The failure detector's timeout scales with the workload: one
        # epoch of silence (the library default of 50ms would dwarf the
        # sub-millisecond epochs of these benchmark graphs and turn the
        # TTD grade into a constant).
        return FaultSchedule([WorkerCrashFault(
            worker=problem.fault_worker,
            at_time=start_s,
            detection_timeout_s=unit_s,
            permanent=True,
        )], seed=fault_seed)
    return None  # cache-thrash injects via the cache config, not faults


def _ground_truth(problem: OpsProblem, start_s: float) -> GroundTruth:
    if problem.kind == "link":
        return GroundTruth(
            kind="link", start_s=start_s,
            link=(problem.fault_worker, None),
        )
    return GroundTruth(
        kind=problem.kind, start_s=start_s, worker=problem.fault_worker,
    )


def _cached_layer(engine) -> Optional[int]:
    """1-based layer holding the most cached deps (thrash ground truth)."""
    plan = engine.plan()
    sizes = [
        sum(len(h) for h in per_layer) for per_layer in plan.stale_deps
    ]
    if not sizes or max(sizes) == 0:
        return None
    return int(np.argmax(sizes)) + 1


def _run_training(
    problem: OpsProblem, seed: int, mitigate: bool
) -> OpsRunResult:
    graph = _build_graph(problem, seed)
    cluster = ClusterSpec.ecs(problem.nodes)
    engine_kwargs: Dict[str, object] = {}
    if problem.tau is not None:
        engine_kwargs["cache_config"] = CacheConfig(tau=problem.tau)

    # Healthy twin: measures the clean epoch for fault placement and
    # budget conversion (epochs -> simulated seconds).
    twin = make_engine(
        problem.engine, graph, _build_model(problem, graph, seed),
        cluster, **engine_kwargs,
    )
    clean_durations = []
    for e in range(1, problem.warmup_epochs + problem.baseline_epochs + 1):
        dur = twin.charge_epoch()
        if e > problem.warmup_epochs:
            clean_durations.append(dur)
    clean_epoch_s = float(np.mean(clean_durations))

    inject_t = problem.inject_epoch * clean_epoch_s
    schedule = _fault_schedule(problem, inject_t, seed, clean_epoch_s)
    run_cluster = (
        cluster.with_faults(schedule) if schedule is not None else cluster
    )
    # The monitored engine records its timeline: the bundle ships a
    # chrome trace of the degraded run (the twin stays unrecorded).
    engine = make_engine(
        problem.engine, graph, _build_model(problem, graph, seed),
        run_cluster, record_timeline=True, **engine_kwargs,
    )

    pipeline = _pipeline_for(problem)
    observer = TimelineObserver(engine)
    truth = _ground_truth(problem, inject_t)
    observations: List[object] = []
    verdict: Optional[Verdict] = None
    mitigation: Optional[MitigationRecord] = None
    aborted = False

    epoch = 0
    while epoch < problem.epochs:
        epoch += 1
        if problem.kind == "cache-thrash" and epoch == problem.inject_epoch:
            truth = GroundTruth(
                kind="cache-thrash",
                start_s=engine.timeline.makespan,
                layer=_cached_layer(engine),
            )
            engine.cache_config = CacheConfig(tau=_THRASH_TAU)
        try:
            engine.charge_epoch()
        except WorkerCrashError as crash:
            obs = observer.crash_observation(epoch, crash)
            observations.append(obs)
            if verdict is None:
                verdict = pipeline.observe(obs)
            if not mitigate:
                aborted = True
                break
            if mitigation is None and verdict is not None:
                engine, mitigation = mitigate_shrink(
                    engine, verdict, crash=crash
                )
                observer.rebind(engine)
                continue
            aborted = True  # crash with no mitigation lever left
            break
        obs = observer.observe(epoch)
        observations.append(obs)
        if verdict is None:
            verdict = pipeline.observe(obs)
            if verdict is not None and mitigate:
                engine, mitigation = _apply_training_mitigation(
                    problem, engine, verdict, observer
                )

    baseline = [
        o.duration for o in observations
        if hasattr(o, "duration")
        and problem.warmup_epochs
        < o.epoch <= problem.warmup_epochs + problem.baseline_epochs
    ]
    grading: Dict[str, object] = {
        "criterion": "refresh" if problem.kind == "cache-thrash"
        else "duration",
        "baseline_duration": float(np.mean(baseline)) if baseline
        else clean_epoch_s,
        "baseline_p95": None,
        "recovered_factor": problem.recovered_factor,
        "ttd_budget_s": problem.ttd_budget_epochs * clean_epoch_s,
        "recovery_budget_s": problem.recovery_budget_epochs * clean_epoch_s,
        "regression_allowance": problem.regression_allowance,
        "refresh_threshold": problem.refresh_recovery_threshold,
    }
    grade = grade_run(
        observations, verdict, truth,
        applied=mitigation is not None,
        grading=grading, aborted=aborted,
    )
    return OpsRunResult(
        problem=problem, seed=seed, mitigate=mitigate,
        ground_truth=truth,
        pipeline_params=pipeline.params(),
        observations=observations,
        verdict=verdict, mitigation=mitigation, aborted=aborted,
        grading=grading, grade=grade,
        timeline=engine.timeline, clean_unit_s=clean_epoch_s,
    )


def _apply_training_mitigation(problem, engine, verdict, observer):
    """Dispatch the spec'd mitigation; returns (engine, record)."""
    if problem.mitigation == "shrink":
        engine, record = mitigate_shrink(engine, verdict)
        observer.rebind(engine)
        return engine, record
    if problem.mitigation == "replan":
        return engine, mitigate_replan(engine, verdict)
    if problem.mitigation == "cache-refresh":
        return engine, mitigate_cache_refresh(engine, verdict, problem)
    raise ValueError(
        f"mitigation {problem.mitigation!r} needs a training workload"
    )


# ----------------------------------------------------------------------
# Serving problems.
def _run_serving(
    problem: OpsProblem, seed: int, mitigate: bool
) -> OpsRunResult:
    from repro.serving import (
        InferenceServer,
        ServingConfig,
        WorkloadConfig,
        generate_workload,
    )
    from repro.serving.slo import LatencyLedger

    graph = _build_graph(problem, seed)
    model = _build_model(problem, graph, seed)
    cluster = ClusterSpec.ecs(problem.nodes)
    partitioning = get_partitioner("chunk")(graph, problem.nodes)
    workload = generate_workload(
        WorkloadConfig(
            num_requests=problem.requests,
            rate_rps=problem.rate_rps,
            zipf_exponent=problem.zipf,
            seed=derive_sub_seed(seed, "workload"),
        ),
        graph.num_vertices,
    )
    inject_t = workload[problem.inject_request].arrival_s
    schedule = FaultSchedule(
        [StragglerFault(
            worker=problem.fault_worker,
            gpu_factor=problem.gpu_factor,
            cpu_factor=1.0,
            start=inject_t,
        )],
        seed=derive_sub_seed(seed, "faults"),
    )
    config = ServingConfig(
        batch_window_s=problem.batch_window_s,
        max_batch=problem.max_batch,
        tau_s=0.0,
        mode="local",
    )
    server = InferenceServer(
        graph, model, cluster, partitioning, config=config, faults=schedule,
    )

    pipeline = _pipeline_for(problem)
    truth = GroundTruth(
        kind="slo-burn", start_s=inject_t, worker=problem.fault_worker,
    )
    # Continuation state the harness owns across window segments; the
    # server mutates these in place (see InferenceServer.serve).
    timeline = Timeline(problem.nodes)
    ledger = LatencyLedger()
    predictions: Dict[int, object] = {}
    inflight: List[object] = []

    observations: List[object] = []
    verdict: Optional[Verdict] = None
    mitigation: Optional[MitigationRecord] = None
    width = problem.window_requests
    num_windows = len(workload) // width
    for wi in range(num_windows):
        segment = workload[wi * width:(wi + 1) * width]
        server.serve(
            segment,
            timeline=timeline, ledger=ledger,
            predictions=predictions, inflight=inflight,
        )
        window_records = [
            r for r in ledger.records
            if wi * width <= r.req_id < (wi + 1) * width
        ]
        window_obs = [
            o for o in window_observations_from_records(
                window_records, width, problem.nodes
            )
            if o.window == wi
        ]
        if not window_obs:
            continue
        obs = window_obs[0]
        observations.append(obs)
        if verdict is None:
            verdict = pipeline.observe(obs)
            if verdict is not None and mitigate:
                mitigation = mitigate_shed(server, verdict, problem)

    window_s = problem.window_requests / problem.rate_rps
    baseline_p95s = [
        o.p95_s for o in observations if o.window < problem.baseline_epochs
    ]
    grading: Dict[str, object] = {
        "criterion": "p95",
        "baseline_duration": window_s,
        "baseline_p95": float(np.mean(baseline_p95s))
        if baseline_p95s else None,
        "recovered_factor": problem.recovered_factor,
        "ttd_budget_s": problem.ttd_budget_epochs * window_s,
        "recovery_budget_s": problem.recovery_budget_epochs * window_s,
        "regression_allowance": problem.regression_allowance,
        "refresh_threshold": problem.refresh_recovery_threshold,
    }
    grade = grade_run(
        observations, verdict, truth,
        applied=mitigation is not None,
        grading=grading, aborted=False,
    )
    records = [
        asdict(r) for r in sorted(ledger.records, key=lambda r: r.req_id)
    ]
    return OpsRunResult(
        problem=problem, seed=seed, mitigate=mitigate,
        ground_truth=truth,
        pipeline_params=pipeline.params(),
        observations=observations,
        verdict=verdict, mitigation=mitigation, aborted=False,
        grading=grading, grade=grade,
        timeline=timeline, clean_unit_s=window_s,
        ledger_records=records,
    )


# ----------------------------------------------------------------------
# Fleet problems (replicated serving groups).
def _fleet_workload(problem: OpsProblem, seed: int):
    """Workload plus the injection time, both pure in ``(problem, seed)``.

    For hotspot-burn the stream is generated twice: a burst-free pass
    locates the injection request's arrival, then the final pass adds a
    :class:`BurstPhase` starting exactly there.  The pre-burst prefix is
    identical between passes (the arrival process draws sequentially at
    the same rates until the burst opens), so the injection time read
    off pass one is exact for pass two.
    """
    from repro.serving import BurstPhase, WorkloadConfig, generate_workload

    base = WorkloadConfig(
        num_requests=problem.requests,
        rate_rps=problem.rate_rps,
        zipf_exponent=problem.zipf,
        seed=derive_sub_seed(seed, "workload"),
    )
    workload = generate_workload(base, problem.graph_vertices)
    inject_t = workload[problem.inject_request].arrival_s
    if problem.kind == "hotspot-burn":
        burst = BurstPhase(
            start_s=inject_t,
            end_s=inject_t + problem.requests / problem.rate_rps,
            rate_multiplier=problem.burst_multiplier,
        )
        workload = generate_workload(
            WorkloadConfig(
                num_requests=base.num_requests,
                rate_rps=base.rate_rps,
                zipf_exponent=base.zipf_exponent,
                seed=base.seed,
                bursts=(burst,),
            ),
            problem.graph_vertices,
        )
    return workload, inject_t


def _fleet_truth(
    problem: OpsProblem, workload, inject_t: float, fleet_seed: int
) -> GroundTruth:
    """Ground truth for a fleet problem (pure; detectors never see it)."""
    if problem.kind == "replica-crash":
        return GroundTruth(
            kind="replica-crash", start_s=inject_t,
            worker=problem.fault_replica,
        )
    # Hotspot-burn: the blamed replica is wherever the router's
    # rendezvous hash (and therefore the popularity pin) lands the
    # globally hottest vertex.
    from repro.serving import PopularityRouter

    counts: Dict[int, int] = {}
    for r in workload:
        counts[r.vertex] = counts.get(r.vertex, 0) + 1
    hot_vertex = min(counts, key=lambda v: (-counts[v], v))
    router = PopularityRouter(seed=fleet_seed)
    blamed = router.rendezvous(hot_vertex, list(range(problem.replicas)))
    return GroundTruth(
        kind="hotspot-burn", start_s=inject_t, worker=blamed,
    )


def _run_fleet(
    problem: OpsProblem, seed: int, mitigate: bool
) -> OpsRunResult:
    from repro.resilience.faults import WorkerCrashFault as _Crash
    from repro.serving import FleetConfig, ServingConfig, ServingFleet

    graph = _build_graph(problem, seed)
    model = _build_model(problem, graph, seed)
    cluster = ClusterSpec.ecs(problem.nodes)
    partitioning = get_partitioner("chunk")(graph, problem.nodes)
    workload, inject_t = _fleet_workload(problem, seed)
    window_s = problem.window_requests / problem.rate_rps

    replica_faults = None
    if problem.kind == "replica-crash":
        # Every worker of the blamed replica's serving group goes dark
        # at the injection time: the group sheds everything after it.
        replica_faults = {
            problem.fault_replica: FaultSchedule(
                [
                    _Crash(
                        worker=w, at_time=inject_t,
                        detection_timeout_s=window_s, permanent=True,
                    )
                    for w in range(problem.nodes)
                ],
                seed=derive_sub_seed(seed, "faults"),
            )
        }

    fleet_seed = derive_sub_seed(seed, "fleet")
    config = FleetConfig(
        replicas=problem.replicas,
        serving=ServingConfig(
            batch_window_s=problem.batch_window_s,
            max_batch=problem.max_batch,
            tau_s=0.0,
            mode="local",
        ),
        seed=fleet_seed,
        health_every=problem.window_requests,
        baseline_segments=problem.baseline_epochs,
        self_heal=False,  # the graded pipeline + mitigation respond
    )
    fleet = ServingFleet(
        graph, model, cluster, partitioning,
        config=config, replica_faults=replica_faults,
    )

    pipeline = _pipeline_for(problem)
    truth = _fleet_truth(problem, workload, inject_t, fleet_seed)
    observations: List[object] = []
    verdict: Optional[Verdict] = None
    mitigation: Optional[MitigationRecord] = None
    width = problem.window_requests
    num_windows = len(workload) // width
    for wi in range(num_windows):
        fleet.serve(workload[wi * width:(wi + 1) * width])
        window_records = [
            r for r in fleet.final_records()
            if wi * width <= r.req_id < (wi + 1) * width
        ]
        window_obs = [
            o for o in fleet_window_observations_from_records(
                window_records, width
            )
            if o.window == wi
        ]
        if not window_obs:
            continue
        obs = window_obs[0]
        observations.append(obs)
        if verdict is None:
            verdict = pipeline.observe(obs)
            if verdict is not None and mitigate:
                if problem.mitigation == "failover":
                    mitigation = mitigate_failover(fleet, verdict)
                elif problem.mitigation == "scale-out":
                    mitigation = mitigate_scale_out(fleet, verdict)
                else:
                    raise ValueError(
                        f"mitigation {problem.mitigation!r} needs a "
                        "fleet workload"
                    )

    baseline_p95s = [
        o.p95_s for o in observations if o.window < problem.baseline_epochs
    ]
    grading: Dict[str, object] = {
        "criterion": "shed" if problem.kind == "replica-crash" else "p95",
        "baseline_duration": window_s,
        "baseline_p95": float(np.mean(baseline_p95s))
        if baseline_p95s else None,
        "recovered_factor": problem.recovered_factor,
        "ttd_budget_s": problem.ttd_budget_epochs * window_s,
        "recovery_budget_s": problem.recovery_budget_epochs * window_s,
        "regression_allowance": problem.regression_allowance,
        "refresh_threshold": problem.refresh_recovery_threshold,
    }
    grade = grade_run(
        observations, verdict, truth,
        applied=mitigation is not None,
        grading=grading, aborted=False,
    )
    records = [asdict(r) for r in fleet.final_records()]
    return OpsRunResult(
        problem=problem, seed=seed, mitigate=mitigate,
        ground_truth=truth,
        pipeline_params=pipeline.params(),
        observations=observations,
        verdict=verdict, mitigation=mitigation, aborted=False,
        grading=grading, grade=grade,
        timeline=fleet.groups[0].timeline, clean_unit_s=window_s,
        ledger_records=records,
    )


__all__ = ["OpsRunResult", "run_problem", "derive_sub_seed"]
