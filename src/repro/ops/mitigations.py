"""Mitigation policies: act on a verdict using only production levers.

Each mitigation consumes the detector's :class:`~repro.ops.detectors.
Verdict` -- never the injected schedule -- and pulls a lever the
resilience/serving layers already expose to operators:

- **shrink** -- evict the blamed worker via the elastic machinery
  (:func:`~repro.resilience.elastic.shrink_engine`).  For a crash the
  real :class:`WorkerCrashError` is reused; for a straggler a synthetic
  permanent crash is raised against the blamed worker (an operator
  cordoning a bad host).
- **replan** -- re-run dependency planning with the communication cost
  constant inflated by the observed send-ratio squared, pushing the
  planner away from the degraded network (the health monitor's
  constants-override pattern, driven by the detector's evidence).
- **cache-refresh** -- restore the problem's healthy
  :class:`~repro.cache.budget.CacheConfig`, lifting the collapsed
  staleness bound so refresh traffic stops.
- **shed** -- enable admission control on the live server
  (``slo.max_pending``), trading offered load for latency.
- **failover** -- quarantine the blamed replica on a live
  :class:`~repro.serving.fleet.ServingFleet`; the router stops sending
  it traffic and re-serves its unanswered requests on survivors.
- **scale-out** -- ask the fleet for one more replica at the verdict
  time, paying the spin-up migration through the autoscaler's
  transition charge.

Every application returns a :class:`MitigationRecord` so bundles can
replay the decision offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.cache.budget import CacheConfig
from repro.ops.detectors import Verdict
from repro.ops.problem import OpsProblem
from repro.resilience.elastic import shrink_engine
from repro.resilience.faults import WorkerCrashError, WorkerCrashFault
from repro.serving.slo import SLOConfig


@dataclass(frozen=True)
class MitigationRecord:
    """What was done, when, and with which parameters."""

    name: str
    applied_at_s: float
    unit: int  # epoch / window the triggering verdict landed on
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "applied_at_s": self.applied_at_s,
            "unit": self.unit,
            "detail": dict(self.detail),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "MitigationRecord":
        return MitigationRecord(
            name=str(payload["name"]),
            applied_at_s=float(payload["applied_at_s"]),
            unit=int(payload["unit"]),
            detail=dict(payload.get("detail") or {}),
        )


# ----------------------------------------------------------------------
def mitigate_shrink(
    engine,
    verdict: Verdict,
    crash: Optional[WorkerCrashError] = None,
) -> Tuple[object, MitigationRecord]:
    """Evict the blamed worker; returns the shrunk engine.

    ``crash`` is the real error when the verdict came from one; absent
    that, a synthetic permanent crash evicts the blamed straggler.
    """
    if crash is None:
        if verdict.worker is None:
            raise ValueError("shrink mitigation needs a blamed worker")
        now = engine.timeline.makespan
        fault = WorkerCrashFault(
            worker=verdict.worker,
            at_time=now,
            detection_timeout_s=0.0,
            permanent=True,
        )
        crash = WorkerCrashError(fault, now)
        synthetic = True
    else:
        synthetic = False
    new_engine, _record, report = shrink_engine(engine, crash)
    record = MitigationRecord(
        name="shrink",
        applied_at_s=verdict.detected_at_s,
        unit=verdict.unit,
        detail={
            "evicted_worker": crash.fault.worker,
            "synthetic_crash": synthetic,
            "transition_s": report.seconds,
            "migrated_bytes": report.migrated_bytes,
            "num_workers_after": report.num_workers,
        },
    )
    return new_engine, record


def mitigate_replan(engine, verdict: Verdict) -> MitigationRecord:
    """Re-plan with comm costs inflated by the observed degradation.

    The detector's ``send_ratio`` measures how much longer the blamed
    sender occupies its NIC per epoch; squaring it biases the planner
    firmly toward compute-heavy placements (cache more, ship less) --
    the same lever :class:`~repro.resilience.health.ClusterHealthMonitor`
    pulls, but driven by the ops verdict instead of EWMA estimates.
    """
    base = engine.constants
    if base is None:
        engine.plan()
        base = engine.constants
    ratio = float(verdict.evidence.get("send_ratio", 2.0))
    factor = ratio * ratio
    overrides = {
        w: replace(
            base,
            t_c=base.t_c * factor,
            t_c_layer=[t * factor for t in base.t_c_layer],
        )
        for w in range(engine.cluster.num_workers)
    }
    engine.replan(overrides)
    return MitigationRecord(
        name="replan",
        applied_at_s=verdict.detected_at_s,
        unit=verdict.unit,
        detail={"comm_factor": factor, "send_ratio": ratio},
    )


def mitigate_cache_refresh(
    engine, verdict: Verdict, problem: OpsProblem
) -> MitigationRecord:
    """Restore the healthy staleness bound; refresh traffic stops."""
    healthy = CacheConfig(tau=problem.tau if problem.tau is not None else 2.0)
    engine.cache_config = healthy
    return MitigationRecord(
        name="cache-refresh",
        applied_at_s=verdict.detected_at_s,
        unit=verdict.unit,
        detail={"restored_tau": healthy.tau},
    )


def mitigate_shed(
    server, verdict: Verdict, problem: OpsProblem
) -> MitigationRecord:
    """Turn on admission control for the remaining traffic."""
    config = server.config
    server.config = replace(
        config,
        slo=replace(
            config.slo
            if config.slo is not None else SLOConfig(),
            max_pending=problem.shed_max_pending,
        ),
    )
    return MitigationRecord(
        name="shed",
        applied_at_s=verdict.detected_at_s,
        unit=verdict.unit,
        detail={"max_pending": problem.shed_max_pending},
    )


def mitigate_failover(fleet, verdict: Verdict) -> MitigationRecord:
    """Quarantine the blamed replica; survivors absorb its traffic."""
    if verdict.worker is None:
        raise ValueError("failover mitigation needs a blamed replica")
    fleet.quarantine(verdict.worker)
    return MitigationRecord(
        name="failover",
        applied_at_s=verdict.detected_at_s,
        unit=verdict.unit,
        detail={"quarantined_replica": verdict.worker},
    )


def mitigate_scale_out(fleet, verdict: Verdict) -> MitigationRecord:
    """Add one replica, charging its spin-up at the verdict time."""
    event = fleet.scale_out(
        at_s=verdict.detected_at_s,
        reason="ops:hotspot-burn",
    )
    detail: Dict[str, object] = {"scaled": event is not None}
    if event is not None:
        detail.update({
            "new_replica": event.replica,
            "transition_s": event.transition_s,
            "migrated_bytes": event.migrated_bytes,
        })
    return MitigationRecord(
        name="scale-out",
        applied_at_s=verdict.detected_at_s,
        unit=verdict.unit,
        detail=detail,
    )


__all__ = [
    "MitigationRecord",
    "mitigate_shrink",
    "mitigate_replan",
    "mitigate_cache_refresh",
    "mitigate_shed",
    "mitigate_failover",
    "mitigate_scale_out",
]
