"""Observable signals the ops detectors are allowed to consume.

The operations benchmark draws a hard line between *ground truth* (the
injected :class:`~repro.resilience.faults.FaultSchedule`, known only to
the grader) and *observations* (what a production operator could
actually see).  Everything in this module is on the observation side:

- :class:`EpochObservation` -- one training epoch's per-worker
  :class:`~repro.cluster.timeline.Timeline` totals deltas plus the
  engine's per-layer exchange statistics (bytes, cache refreshes);
- :class:`CrashObservation` -- a :class:`WorkerCrashError` surfacing at
  a barrier (the failure detector's own signal, not the schedule);
- :class:`WindowObservation` -- one serving window's latency statistics
  derived from the :class:`~repro.serving.slo.LatencyLedger`;
- :class:`FleetWindowObservation` -- one fleet-serving window's
  statistics, including the per-replica served/shed/latency breakdown
  and the popularity concentration (``hot_share``) an operator can read
  off the merged fleet ledger.  Per-replica maps only name replicas
  that appear in the window's records, so the observation stays a pure
  function of the window slice alone (replicas added by a later
  scale-out cannot retroactively change earlier windows on replay).

Every observation round-trips through ``to_dict``/``from_dict`` with
floats preserved exactly (JSON serialises them via ``repr``), which is
what lets the trace replayer re-run detection offline and reproduce the
recorded verdicts bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.timeline import CPU, GPU, IDLE, NET_RECV, NET_SEND

_KINDS = (GPU, CPU, NET_SEND, NET_RECV, IDLE)


@dataclass(frozen=True)
class EpochObservation:
    """Per-worker activity deltas of one completed training epoch."""

    epoch: int
    t_start: float
    t_end: float
    num_workers: int
    gpu_s: Tuple[float, ...]
    cpu_s: Tuple[float, ...]
    net_send_s: Tuple[float, ...]
    net_recv_s: Tuple[float, ...]
    idle_s: Tuple[float, ...]
    layer_bytes: Tuple[float, ...] = ()
    layer_refresh_bytes: Tuple[float, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def refresh_fraction(self) -> float:
        """Share of exchanged bytes that were cache refreshes."""
        total = sum(self.layer_bytes)
        if total <= 0:
            return 0.0
        return sum(self.layer_refresh_bytes) / total

    def compute_s(self) -> Tuple[float, ...]:
        """GPU + host CPU seconds per worker (the straggler signal)."""
        return tuple(g + c for g, c in zip(self.gpu_s, self.cpu_s))

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "epoch",
            "epoch": self.epoch,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "num_workers": self.num_workers,
            "gpu_s": list(self.gpu_s),
            "cpu_s": list(self.cpu_s),
            "net_send_s": list(self.net_send_s),
            "net_recv_s": list(self.net_recv_s),
            "idle_s": list(self.idle_s),
            "layer_bytes": list(self.layer_bytes),
            "layer_refresh_bytes": list(self.layer_refresh_bytes),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


@dataclass(frozen=True)
class CrashObservation:
    """A worker crash surfacing at a barrier (the observable event)."""

    epoch: int
    detected_at_s: float
    worker: int
    permanent: bool = False

    @property
    def t_end(self) -> float:
        return self.detected_at_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "crash",
            "epoch": self.epoch,
            "detected_at_s": self.detected_at_s,
            "worker": self.worker,
            "permanent": self.permanent,
        }


@dataclass(frozen=True)
class WindowObservation:
    """Latency statistics of one serving window (a req_id slice)."""

    window: int
    t_start: float
    t_end: float
    num_workers: int
    offered: int
    served: int
    shed: int
    p50_s: float
    p95_s: float
    mean_s: float
    worker_mean_s: Dict[int, float] = field(default_factory=dict)
    worker_served: Dict[int, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "window",
            "window": self.window,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "num_workers": self.num_workers,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "mean_s": self.mean_s,
            "worker_mean_s": {str(k): v for k, v in self.worker_mean_s.items()},
            "worker_served": {str(k): v for k, v in self.worker_served.items()},
        }


@dataclass(frozen=True)
class FleetWindowObservation:
    """Latency + replica breakdown of one fleet-serving window."""

    window: int
    t_start: float
    t_end: float
    offered: int
    served: int
    shed: int
    p50_s: float
    p95_s: float
    mean_s: float
    hot_vertex: int
    hot_share: float
    hedged: int = 0
    failover: int = 0
    replica_served: Dict[int, int] = field(default_factory=dict)
    replica_shed: Dict[int, int] = field(default_factory=dict)
    replica_mean_s: Dict[int, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "fleet-window",
            "window": self.window,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "mean_s": self.mean_s,
            "hot_vertex": self.hot_vertex,
            "hot_share": self.hot_share,
            "hedged": self.hedged,
            "failover": self.failover,
            "replica_served": {
                str(k): v for k, v in self.replica_served.items()
            },
            "replica_shed": {
                str(k): v for k, v in self.replica_shed.items()
            },
            "replica_mean_s": {
                str(k): v for k, v in self.replica_mean_s.items()
            },
        }


def observation_from_dict(payload: Dict[str, object]):
    """Inverse of ``to_dict`` for any observation type."""
    kind = payload.get("type")
    if kind == "epoch":
        return EpochObservation(
            epoch=int(payload["epoch"]),
            t_start=float(payload["t_start"]),
            t_end=float(payload["t_end"]),
            num_workers=int(payload["num_workers"]),
            gpu_s=tuple(payload["gpu_s"]),
            cpu_s=tuple(payload["cpu_s"]),
            net_send_s=tuple(payload["net_send_s"]),
            net_recv_s=tuple(payload["net_recv_s"]),
            idle_s=tuple(payload["idle_s"]),
            layer_bytes=tuple(payload["layer_bytes"]),
            layer_refresh_bytes=tuple(payload["layer_refresh_bytes"]),
            cache_hits=int(payload["cache_hits"]),
            cache_misses=int(payload["cache_misses"]),
        )
    if kind == "crash":
        return CrashObservation(
            epoch=int(payload["epoch"]),
            detected_at_s=float(payload["detected_at_s"]),
            worker=int(payload["worker"]),
            permanent=bool(payload["permanent"]),
        )
    if kind == "window":
        return WindowObservation(
            window=int(payload["window"]),
            t_start=float(payload["t_start"]),
            t_end=float(payload["t_end"]),
            num_workers=int(payload["num_workers"]),
            offered=int(payload["offered"]),
            served=int(payload["served"]),
            shed=int(payload["shed"]),
            p50_s=float(payload["p50_s"]),
            p95_s=float(payload["p95_s"]),
            mean_s=float(payload["mean_s"]),
            worker_mean_s={
                int(k): float(v)
                for k, v in dict(payload["worker_mean_s"]).items()
            },
            worker_served={
                int(k): int(v)
                for k, v in dict(payload["worker_served"]).items()
            },
        )
    if kind == "fleet-window":
        return FleetWindowObservation(
            window=int(payload["window"]),
            t_start=float(payload["t_start"]),
            t_end=float(payload["t_end"]),
            offered=int(payload["offered"]),
            served=int(payload["served"]),
            shed=int(payload["shed"]),
            p50_s=float(payload["p50_s"]),
            p95_s=float(payload["p95_s"]),
            mean_s=float(payload["mean_s"]),
            hot_vertex=int(payload["hot_vertex"]),
            hot_share=float(payload["hot_share"]),
            hedged=int(payload["hedged"]),
            failover=int(payload["failover"]),
            replica_served={
                int(k): int(v)
                for k, v in dict(payload["replica_served"]).items()
            },
            replica_shed={
                int(k): int(v)
                for k, v in dict(payload["replica_shed"]).items()
            },
            replica_mean_s={
                int(k): float(v)
                for k, v in dict(payload["replica_mean_s"]).items()
            },
        )
    raise ValueError(f"unknown observation type {kind!r}")


class TimelineObserver:
    """Diffs an engine's cumulative timeline totals into per-epoch deltas.

    The observer reads only what a monitoring agent could scrape off a
    worker: the timeline's activity totals and the engine's per-layer
    exchange statistics.  ``rebind`` re-anchors the snapshots after an
    elastic reshape (the shrunk engine carries a fresh timeline advanced
    to the handover point).
    """

    def __init__(self, engine):
        self.rebind(engine)

    def rebind(self, engine) -> None:
        self.engine = engine
        timeline = engine.timeline
        self._last = {k: timeline.totals[k].copy() for k in _KINDS}
        self._t = timeline.makespan

    def crash_observation(self, epoch: int, crash) -> CrashObservation:
        """Fold a :class:`WorkerCrashError` into an observation."""
        return CrashObservation(
            epoch=epoch,
            detected_at_s=float(crash.detected_at_s),
            worker=int(crash.fault.worker),
            permanent=bool(crash.fault.permanent),
        )

    def observe(self, epoch: int) -> EpochObservation:
        """Fold everything since the last observation into one record."""
        timeline = self.engine.timeline
        deltas = {}
        for kind in _KINDS:
            current = timeline.totals[kind]
            deltas[kind] = tuple(
                float(v) for v in (current - self._last[kind])
            )
            self._last[kind] = current.copy()
        stats = getattr(self.engine, "_forward_stats", []) or []
        obs = EpochObservation(
            epoch=epoch,
            t_start=self._t,
            t_end=timeline.makespan,
            num_workers=timeline.num_workers,
            gpu_s=deltas[GPU],
            cpu_s=deltas[CPU],
            net_send_s=deltas[NET_SEND],
            net_recv_s=deltas[NET_RECV],
            idle_s=deltas[IDLE],
            layer_bytes=tuple(float(s.total_bytes) for s in stats),
            layer_refresh_bytes=tuple(
                float(s.refresh_bytes) for s in stats
            ),
            cache_hits=int(sum(s.cache_hits for s in stats)),
            cache_misses=int(sum(s.cache_misses for s in stats)),
        )
        self._t = timeline.makespan
        return obs


def window_observations_from_records(
    records: Sequence, window_requests: int, num_workers: int
) -> List[WindowObservation]:
    """Slice ledger records into fixed-size req_id windows and summarise.

    ``records`` may be live :class:`~repro.serving.slo.RequestRecord`
    objects or the plain dicts a recorded bundle stores -- both carry
    ``req_id`` / ``arrival_s`` / ``finish_s`` / ``worker`` / ``shed``.
    Records are sorted by ``req_id`` within each window before any
    statistic is computed, so a replay from stored records reproduces
    the live run's floats bit-identically (``np.mean`` is
    order-sensitive).
    """

    def get(r, name):
        return r[name] if isinstance(r, dict) else getattr(r, name)

    rows = sorted(records, key=lambda r: get(r, "req_id"))
    if not rows:
        return []
    num_windows = (get(rows[-1], "req_id") // window_requests) + 1
    out: List[WindowObservation] = []
    for wi in range(num_windows):
        lo, hi = wi * window_requests, (wi + 1) * window_requests
        win = [r for r in rows if lo <= get(r, "req_id") < hi]
        if not win:
            continue
        latencies: List[float] = []
        per_worker: Dict[int, List[float]] = {}
        shed = 0
        t_start = min(get(r, "arrival_s") for r in win)
        t_end = t_start
        for r in win:
            if get(r, "shed") or get(r, "finish_s") is None:
                shed += 1
                continue
            lat = get(r, "finish_s") - get(r, "arrival_s")
            latencies.append(lat)
            per_worker.setdefault(int(get(r, "worker")), []).append(lat)
            t_end = max(t_end, float(get(r, "finish_s")))
        lat_arr = np.array(latencies) if latencies else np.zeros(0)
        out.append(WindowObservation(
            window=wi,
            t_start=float(t_start),
            t_end=float(t_end),
            num_workers=num_workers,
            offered=len(win),
            served=len(latencies),
            shed=shed,
            p50_s=float(np.percentile(lat_arr, 50)) if len(lat_arr) else 0.0,
            p95_s=float(np.percentile(lat_arr, 95)) if len(lat_arr) else 0.0,
            mean_s=float(lat_arr.mean()) if len(lat_arr) else 0.0,
            worker_mean_s={
                w: float(np.mean(v)) for w, v in sorted(per_worker.items())
            },
            worker_served={
                w: len(v) for w, v in sorted(per_worker.items())
            },
        ))
    return out


def fleet_window_observations_from_records(
    records: Sequence, window_requests: int
) -> List[FleetWindowObservation]:
    """Slice a merged fleet ledger into req_id windows and summarise.

    Pure over the record rows alone (live ``RequestRecord`` objects or
    bundle dicts), mirroring :func:`window_observations_from_records`:
    rows sort by ``req_id`` before any order-sensitive float is
    computed, and every statistic of window ``i`` depends only on
    window ``i``'s rows, so offline replay from the stored ledger
    reproduces the live observation stream bit-identically.
    """

    def get(r, name, default=None):
        if isinstance(r, dict):
            return r.get(name, default)
        return getattr(r, name, default)

    rows = sorted(records, key=lambda r: get(r, "req_id"))
    if not rows:
        return []
    num_windows = (get(rows[-1], "req_id") // window_requests) + 1
    out: List[FleetWindowObservation] = []
    for wi in range(num_windows):
        lo, hi = wi * window_requests, (wi + 1) * window_requests
        win = [r for r in rows if lo <= get(r, "req_id") < hi]
        if not win:
            continue
        latencies: List[float] = []
        per_replica: Dict[int, List[float]] = {}
        replica_served: Dict[int, int] = {}
        replica_shed: Dict[int, int] = {}
        vertex_counts: Dict[int, int] = {}
        shed = hedged = failover = 0
        t_start = min(get(r, "arrival_s") for r in win)
        t_end = t_start
        for r in win:
            v = int(get(r, "vertex"))
            vertex_counts[v] = vertex_counts.get(v, 0) + 1
            replica = int(get(r, "replica", -1))
            if get(r, "hedged", False):
                hedged += 1
            if get(r, "failover", False):
                failover += 1
            if get(r, "shed") or get(r, "finish_s") is None:
                shed += 1
                if replica >= 0:
                    replica_shed[replica] = replica_shed.get(replica, 0) + 1
                continue
            lat = get(r, "finish_s") - get(r, "arrival_s")
            latencies.append(lat)
            t_end = max(t_end, float(get(r, "finish_s")))
            if replica >= 0:
                per_replica.setdefault(replica, []).append(lat)
                replica_served[replica] = replica_served.get(replica, 0) + 1
        hot_vertex = min(
            vertex_counts, key=lambda v: (-vertex_counts[v], v)
        )
        lat_arr = np.array(latencies) if latencies else np.zeros(0)
        out.append(FleetWindowObservation(
            window=wi,
            t_start=float(t_start),
            t_end=float(t_end),
            offered=len(win),
            served=len(latencies),
            shed=shed,
            p50_s=float(np.percentile(lat_arr, 50)) if len(lat_arr) else 0.0,
            p95_s=float(np.percentile(lat_arr, 95)) if len(lat_arr) else 0.0,
            mean_s=float(lat_arr.mean()) if len(lat_arr) else 0.0,
            hot_vertex=int(hot_vertex),
            hot_share=vertex_counts[hot_vertex] / len(win),
            hedged=hedged,
            failover=failover,
            replica_served=dict(sorted(replica_served.items())),
            replica_shed=dict(sorted(replica_shed.items())),
            replica_mean_s={
                k: float(np.mean(v)) for k, v in sorted(per_replica.items())
            },
        ))
    return out


__all__ = [
    "EpochObservation",
    "CrashObservation",
    "WindowObservation",
    "FleetWindowObservation",
    "TimelineObserver",
    "observation_from_dict",
    "window_observations_from_records",
    "fleet_window_observations_from_records",
]
