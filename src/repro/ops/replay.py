"""Offline trace replay: reconstruct a recorded run without the engine.

:func:`replay_bundle` re-runs the *analysis* half of an ops problem --
detection, localization, grading -- from a recorded bundle alone.  No
graph is rebuilt, no epoch is charged, no request is served; the
replayer consumes the stored observation stream exactly the way the
live harness consumed the engine's, which makes it suitable for
root-cause analysis of a run recorded elsewhere.

Three bit-identity checks prove the reconstruction is faithful:

- **observations**: every stored observation round-trips through its
  dataclass, and for serving runs the windows are *re-derived from the
  raw request ledger* and must match the stored windows float-for-float
  (the ledger, not the summary, is the source of truth);
- **verdict**: a pipeline rebuilt from the stored parameters and fed
  the stored stream must emit the recorded verdict;
- **grade**: re-grading with the stored grading parameters must
  reproduce the recorded scores exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ops.detectors import DetectionPipeline, Verdict
from repro.ops.evaluators import ProblemGrade, grade_run
from repro.ops.problem import GroundTruth
from repro.ops.signals import (
    fleet_window_observations_from_records,
    observation_from_dict,
    window_observations_from_records,
)


@dataclass
class ReplayReport:
    """Outcome of one offline replay."""

    name: str
    seed: int
    observations_match: bool
    verdict_match: bool
    grade_match: bool
    verdict: Optional[Verdict]
    grade: ProblemGrade
    mismatches: List[str]

    @property
    def identical(self) -> bool:
        return (
            self.observations_match
            and self.verdict_match
            and self.grade_match
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "identical": self.identical,
            "observations_match": self.observations_match,
            "verdict_match": self.verdict_match,
            "grade_match": self.grade_match,
            "verdict": self.verdict.to_dict() if self.verdict else None,
            "grade": self.grade.to_dict(),
            "mismatches": list(self.mismatches),
        }


def replay_bundle(bundle: Dict[str, object]) -> ReplayReport:
    """Re-run detection + grading from a recorded bundle."""
    spec = dict(bundle["problem"])
    stored_obs = list(bundle["observations"])
    observations = [observation_from_dict(dict(p)) for p in stored_obs]
    mismatches: List[str] = []

    # Observation fidelity: the dataclass round-trip must be lossless,
    # and serving windows must re-derive from the raw ledger.
    observations_match = [o.to_dict() for o in observations] == stored_obs
    if not observations_match:
        mismatches.append("observation round-trip diverged")
    ledger = list(bundle.get("ledger") or [])
    if ledger:
        if spec.get("workload") == "fleet":
            derived = fleet_window_observations_from_records(
                ledger, int(spec["window_requests"])
            )
            stored_windows = [
                p for p in stored_obs if p.get("type") == "fleet-window"
            ]
        else:
            derived = window_observations_from_records(
                ledger, int(spec["window_requests"]), int(spec["nodes"])
            )
            stored_windows = [
                p for p in stored_obs if p.get("type") == "window"
            ]
        if [w.to_dict() for w in derived] != stored_windows:
            observations_match = False
            mismatches.append("ledger-derived windows diverged")

    # Verdict: rebuild the pipeline and feed the stream.
    pipeline = DetectionPipeline(**bundle["pipeline"])
    verdict: Optional[Verdict] = None
    for obs in observations:
        verdict = pipeline.observe(obs)
        if verdict is not None:
            break
    verdict_payload = verdict.to_dict() if verdict else None
    verdict_match = verdict_payload == bundle["verdict"]
    if not verdict_match:
        mismatches.append(
            f"verdict diverged: {verdict_payload} != {bundle['verdict']}"
        )

    # Grade: same pure function, same recorded parameters.
    truth = GroundTruth.from_dict(dict(bundle["ground_truth"]))
    grade = grade_run(
        observations,
        verdict,
        truth,
        applied=bundle.get("mitigation") is not None,
        grading=dict(bundle["grading"]),
        aborted=bool(bundle.get("aborted")),
    )
    grade_match = grade.to_dict() == bundle["grade"]
    if not grade_match:
        mismatches.append("grade diverged")

    return ReplayReport(
        name=str(spec["name"]),
        seed=int(bundle["seed"]),
        observations_match=observations_match,
        verdict_match=verdict_match,
        grade_match=grade_match,
        verdict=verdict,
        grade=grade,
        mismatches=mismatches,
    )


__all__ = ["ReplayReport", "replay_bundle"]
