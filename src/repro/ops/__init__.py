"""Operations benchmark: graded detect / localize / mitigate problems.

The ops subsystem turns the repo's fault-injection, elastic-training,
and serving machinery into a benchmark for *operational response*.  A
registered :class:`~repro.ops.problem.OpsProblem` composes a seeded
workload with one injected degradation; the harness runs it while a
:class:`~repro.ops.detectors.DetectionPipeline` watches only observable
signals, applies the spec'd mitigation when a verdict lands, and grades
time-to-detect, blame accuracy, SLO recovery, and post-mitigation
regression.  Recorded bundles replay offline, bit-identically, without
re-executing the engine.  See ``docs/ops.md``.
"""

from repro.ops.detectors import DetectionPipeline, Verdict
from repro.ops.evaluators import (
    DetectionGrade,
    MitigationGrade,
    ProblemGrade,
    grade_detection,
    grade_mitigation,
    grade_problem,
    grade_run,
)
from repro.ops.harness import OpsRunResult, derive_sub_seed, run_problem
from repro.ops.mitigations import (
    MitigationRecord,
    mitigate_cache_refresh,
    mitigate_failover,
    mitigate_replan,
    mitigate_scale_out,
    mitigate_shed,
    mitigate_shrink,
)
from repro.ops.problem import KINDS, MITIGATIONS, GroundTruth, OpsProblem
from repro.ops.recorder import (
    SCHEMA_VERSION,
    bundle_from_result,
    load_bundle,
    save_bundle,
)
from repro.ops.registry import get_problem, list_problems, register
from repro.ops.replay import ReplayReport, replay_bundle
from repro.ops.signals import (
    CrashObservation,
    EpochObservation,
    FleetWindowObservation,
    TimelineObserver,
    WindowObservation,
    fleet_window_observations_from_records,
    observation_from_dict,
    window_observations_from_records,
)

__all__ = [
    "KINDS",
    "MITIGATIONS",
    "SCHEMA_VERSION",
    "CrashObservation",
    "DetectionGrade",
    "DetectionPipeline",
    "EpochObservation",
    "FleetWindowObservation",
    "GroundTruth",
    "MitigationGrade",
    "MitigationRecord",
    "OpsProblem",
    "OpsRunResult",
    "ProblemGrade",
    "ReplayReport",
    "TimelineObserver",
    "Verdict",
    "WindowObservation",
    "bundle_from_result",
    "derive_sub_seed",
    "fleet_window_observations_from_records",
    "get_problem",
    "grade_detection",
    "grade_mitigation",
    "grade_problem",
    "grade_run",
    "list_problems",
    "load_bundle",
    "mitigate_cache_refresh",
    "mitigate_failover",
    "mitigate_replan",
    "mitigate_scale_out",
    "mitigate_shed",
    "mitigate_shrink",
    "observation_from_dict",
    "register",
    "replay_bundle",
    "run_problem",
    "save_bundle",
    "window_observations_from_records",
]
