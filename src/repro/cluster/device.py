"""Compute device profiles.

Effective (not peak) throughputs: GNN kernels are memory-bound sparse
ops, so the effective FLOP rates are set well below datasheet peaks.
``memory_bytes`` values are scaled down by the same ~1000x factor as the
dataset catalog so that the paper's out-of-memory outcomes (DepCache on
the largest graphs, all-cache GAT on Orkut, DGL/PyG on Google) reappear
at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceProfile:
    """A compute device attached to one worker.

    Attributes
    ----------
    name:
        Human-readable device name.
    flops_per_s:
        Effective dense-FLOP throughput for NN ops.
    sparse_flops_per_s:
        Effective throughput for graph (gather/scatter) ops, which are
        memory-bandwidth-bound and much slower than GEMMs.
    kernel_launch_s:
        Fixed overhead per kernel launch.
    pcie_bytes_per_s:
        Host-to-device transfer bandwidth (chunks are staged through
        host memory, Section 4.3).
    memory_bytes:
        Device memory budget (scaled, see module docstring).
    cpu_flops_per_s:
        Throughput of the host CPU attached to this device (used for
        message packing and, for CPU profiles, all compute).
    is_gpu:
        Whether NN compute runs on the accelerator (utilization traces
        split GPU vs CPU accordingly).
    """

    name: str
    flops_per_s: float
    sparse_flops_per_s: float
    kernel_launch_s: float
    pcie_bytes_per_s: float
    memory_bytes: int
    cpu_flops_per_s: float
    is_gpu: bool = True

    def dense_time(self, flops: float) -> float:
        """Seconds to run ``flops`` of dense NN work (one kernel)."""
        if flops <= 0:
            return 0.0
        return self.kernel_launch_s + flops / self.flops_per_s

    def sparse_time(self, flops: float) -> float:
        """Seconds to run ``flops`` of gather/scatter work (one kernel)."""
        if flops <= 0:
            return 0.0
        return self.kernel_launch_s + flops / self.sparse_flops_per_s

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` across PCIe."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.pcie_bytes_per_s


# NVIDIA Tesla T4 (Aliyun ecs.gn6i nodes): 8.1 TFLOPS fp32 peak; the
# effective rates below assume ~50% GEMM efficiency and memory-bound
# sparse ops.  Memory is the scaled stand-in for 16 GB.
T4 = DeviceProfile(
    name="T4",
    flops_per_s=4.0e12,
    sparse_flops_per_s=6.0e9,
    kernel_launch_s=1.0e-5,
    pcie_bytes_per_s=1.2e10,
    memory_bytes=100 * 1024 * 1024,
    cpu_flops_per_s=2.0e11,
)

# NVIDIA Tesla V100 (IBV cluster): 15.7 TFLOPS fp32 peak, 32 GB.
V100 = DeviceProfile(
    name="V100",
    flops_per_s=8.0e12,
    sparse_flops_per_s=1.5e10,
    kernel_launch_s=8.0e-6,
    pcie_bytes_per_s=1.4e10,
    memory_bytes=200 * 1024 * 1024,
    cpu_flops_per_s=3.0e11,
)

# A CPU-only profile (DGL-CPU / PyG-CPU baselines in Table 4).  "Device"
# memory is host DRAM, so the budget is much larger.
CPU_XEON = DeviceProfile(
    name="CPU",
    flops_per_s=1.5e11,
    sparse_flops_per_s=1.2e9,
    kernel_launch_s=2.0e-6,
    pcie_bytes_per_s=5.0e10,
    memory_bytes=135 * 1024 * 1024,
    cpu_flops_per_s=1.5e11,
    is_gpu=False,
)
