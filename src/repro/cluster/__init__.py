"""Simulated cluster: device/network profiles, memory, and timelines.

The paper's evaluation hardware (Aliyun ECS T4 nodes on 6 Gbps
Ethernet; a private V100 cluster on 100 Gbps InfiniBand) is modeled
here.  Engines execute real numerical work and charge *modeled* time to
per-worker timelines; per-epoch time is the synchronized maximum across
workers.  See DESIGN.md section 5 for the timing model.
"""

from repro.cluster.device import DeviceProfile, T4, V100, CPU_XEON
from repro.cluster.network import NetworkProfile, ECS_NETWORK, IBV_NETWORK
from repro.cluster.memory import MemoryTracker, OutOfMemoryError
from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import (
    CPU,
    GPU,
    IDLE,
    Interval,
    NET_RECV,
    NET_SEND,
    Timeline,
)
from repro.cluster.trace import save_chrome_trace, timeline_to_chrome_trace

__all__ = [
    "DeviceProfile",
    "T4",
    "V100",
    "CPU_XEON",
    "NetworkProfile",
    "ECS_NETWORK",
    "IBV_NETWORK",
    "MemoryTracker",
    "OutOfMemoryError",
    "ClusterSpec",
    "Timeline",
    "Interval",
    "GPU",
    "CPU",
    "NET_SEND",
    "NET_RECV",
    "IDLE",
    "save_chrome_trace",
    "timeline_to_chrome_trace",
]
