"""Network profiles and the message-time model.

A message of ``b`` bytes on link ``n`` costs
``latency + b / bytes_per_s``; when several senders target the same
receiver in the same unscheduled slot, the receiver NIC is shared and
an additional congestion multiplier applies.  Ring-based scheduling
(Section 4.3) removes that contention, which is how the "R"
optimization earns its 1.10-1.15X in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkProfile:
    """A homogeneous interconnect between workers.

    Attributes
    ----------
    name:
        Profile name.
    bytes_per_s:
        Per-NIC bandwidth in each direction.
    latency_s:
        Per-message latency.
    congestion_factor:
        Effective slowdown when sends are not ring-scheduled and
        multiple senders share a receiver NIC.
    cpu_pack_bytes_per_s:
        CPU-side throughput of serialising message payloads into send
        buffers.
    mutex_enqueue_s:
        Per-vertex-message overhead of a mutex-protected concurrent
        queue (threads contend on the lock once per enqueued message).
    lockfree_enqueue_s:
        Per-vertex-message overhead of the lock-free position-indexed
        writer (the "L" optimization): each thread writes at a
        precomputed conflict-free offset, so no contention.
    """

    name: str
    bytes_per_s: float
    latency_s: float
    congestion_factor: float = 1.5
    cpu_pack_bytes_per_s: float = 2.4e10
    mutex_enqueue_s: float = 1.2e-7
    lockfree_enqueue_s: float = 1.5e-8

    def wire_time(self, num_bytes: float, congested: bool = False) -> float:
        """Seconds on the wire for one message."""
        if num_bytes <= 0:
            return 0.0
        time = self.latency_s + num_bytes / self.bytes_per_s
        if congested:
            time *= self.congestion_factor
        return time

    def pack_time(
        self, num_bytes: float, num_messages: int = 1, lock_free: bool = True
    ) -> float:
        """CPU seconds to serialise and enqueue one chunk.

        ``num_messages`` is the number of per-vertex messages packed into
        the chunk; each pays the queue's enqueue overhead (mutex
        contention vs lock-free position-indexed writes).
        """
        if num_bytes <= 0:
            return 0.0
        per_message = self.lockfree_enqueue_s if lock_free else self.mutex_enqueue_s
        return num_bytes / self.cpu_pack_bytes_per_s + num_messages * per_message


# Aliyun ECS: 6 Gbps Ethernet between GPU instances.
ECS_NETWORK = NetworkProfile(
    name="ECS-6Gbps",
    bytes_per_s=1.5e9,
    latency_s=2.0e-5,
)

# Private cluster: 100 Gbps EDR InfiniBand.
IBV_NETWORK = NetworkProfile(
    name="IBV-100Gbps",
    bytes_per_s=5.0e10,
    latency_s=1.0e-5,
)

# A loopback profile for single-machine engines.
LOOPBACK = NetworkProfile(
    name="loopback",
    bytes_per_s=5.0e10,
    latency_s=1.0e-6,
    congestion_factor=1.0,
)
