"""Cluster specification: workers + device + network.

``ClusterSpec`` bundles everything an engine needs to charge modeled
time: how many workers, what accelerator each has, and what network
connects them.  Factory methods mirror the paper's two testbeds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, TYPE_CHECKING

from repro.cluster.device import CPU_XEON, DeviceProfile, T4, V100
from repro.cluster.memory import MemoryTracker
from repro.cluster.network import ECS_NETWORK, IBV_NETWORK, LOOPBACK, NetworkProfile
from repro.cluster.timeline import Timeline

if TYPE_CHECKING:  # avoid a runtime cluster -> resilience import cycle
    from repro.resilience.faults import FaultSchedule


@dataclass
class ClusterSpec:
    """A homogeneous cluster of ``num_workers`` nodes.

    The paper's testbeds:

    - :meth:`ecs` -- Aliyun ECS: T4 GPU per node, 6 Gbps Ethernet
      (the main 16-node evaluation cluster).
    - :meth:`ibv` -- private cluster: V100 per node, 100 Gbps IB
      (used in Figure 2(c)).
    - :meth:`single_gpu` / :meth:`cpu` -- the single-machine baselines
      of Tables 4 and 5.
    """

    num_workers: int
    device: DeviceProfile = T4
    network: NetworkProfile = ECS_NETWORK
    name: str = "cluster"
    # Optional fault schedule (repro.resilience); None = healthy cluster.
    # Engines consult it through a FaultInjector; an empty/None schedule
    # leaves every modeled time bit-identical to the fault-free path.
    faults: Optional["FaultSchedule"] = None

    def __post_init__(self):
        if self.num_workers < 1:
            raise ValueError("a cluster needs at least one worker")

    # ------------------------------------------------------------------
    @classmethod
    def ecs(cls, num_workers: int = 16) -> "ClusterSpec":
        return cls(num_workers, device=T4, network=ECS_NETWORK, name="ECS")

    @classmethod
    def ibv(cls, num_workers: int = 8) -> "ClusterSpec":
        return cls(num_workers, device=V100, network=IBV_NETWORK, name="IBV")

    @classmethod
    def single_gpu(cls, device: DeviceProfile = T4) -> "ClusterSpec":
        return cls(1, device=device, network=LOOPBACK, name="single-gpu")

    @classmethod
    def cpu(cls, num_workers: int = 1) -> "ClusterSpec":
        return cls(num_workers, device=CPU_XEON, network=LOOPBACK, name="cpu")

    # ------------------------------------------------------------------
    def with_workers(self, num_workers: int) -> "ClusterSpec":
        """Same hardware, different node count (Figure 12 scaling)."""
        return replace(self, num_workers=num_workers)

    def with_faults(self, schedule: "FaultSchedule") -> "ClusterSpec":
        """Same cluster, with a fault schedule injected (chaos runs)."""
        for crash in schedule.crashes() if schedule else ():
            if not 0 <= crash.worker < self.num_workers:
                raise ValueError(
                    f"crash fault targets worker {crash.worker}, but the "
                    f"cluster has {self.num_workers} workers"
                )
        return replace(self, faults=schedule)

    def healthy(self) -> "ClusterSpec":
        """Same cluster with any fault schedule removed (baseline runs)."""
        return replace(self, faults=None)

    def without_worker(self, worker: int) -> "ClusterSpec":
        """The reshaped (N-1)-worker cluster after ``worker`` leaves.

        Survivors keep their relative order and are renumbered
        ``0 .. N-2``; any fault schedule is remapped accordingly (faults
        pinned to the departed worker are dropped).  Used by the elastic
        shrink path (:mod:`repro.resilience.elastic`).
        """
        if not 0 <= worker < self.num_workers:
            raise ValueError(
                f"worker {worker} not in 0..{self.num_workers - 1}"
            )
        if self.num_workers < 2:
            raise ValueError("cannot shrink a single-worker cluster")
        survivors = [w for w in range(self.num_workers) if w != worker]
        worker_map = {old: new for new, old in enumerate(survivors)}
        faults = (
            self.faults.remap_workers(worker_map) if self.faults else None
        )
        return replace(self, num_workers=self.num_workers - 1, faults=faults)

    def make_timeline(self, record: bool = True) -> Timeline:
        return Timeline(self.num_workers, record=record)

    def make_memory_trackers(self) -> List[MemoryTracker]:
        return [
            MemoryTracker(i, self.device.memory_bytes)
            for i in range(self.num_workers)
        ]
