"""Export a Timeline as a Chrome trace (chrome://tracing / Perfetto).

Every recorded interval becomes a complete ("X") event on the worker's
row, so a whole training epoch can be inspected visually: forward
exchanges, overlapped GPU/NET phases, barriers, the all-reduce.

Recorded :class:`~repro.cluster.timeline.Span` annotations (the serving
subsystem's request arrival -> batch -> compute/fetch -> reply
lifecycle) export as "X" events too, under the ``span`` category, so a
served workload reads as nested request/batch bars above the raw
gpu/net activity of the workers that executed it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.cluster.timeline import Timeline

# chrome://tracing colour names per activity kind.
_COLORS = {
    "gpu": "good",
    "cpu": "bad",
    "net_send": "yellow",
    "net_recv": "olive",
    "idle": "grey",
}


def timeline_to_chrome_trace(timeline: Timeline) -> dict:
    """Build the Chrome trace dict (``traceEvents`` + metadata)."""
    events = []
    for w in range(timeline.num_workers):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": w,
            "args": {"name": f"worker {w}"},
        })
    for interval in timeline.intervals:
        events.append({
            "name": interval.kind,
            "cat": interval.kind,
            "ph": "X",
            "pid": 0,
            "tid": interval.worker,
            "ts": interval.start * 1e6,  # microseconds
            "dur": interval.duration * 1e6,
            "cname": _COLORS.get(interval.kind, "grey"),
            "args": {"bytes": interval.num_bytes},
        })
    for span in timeline.spans:
        events.append({
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "pid": 0,
            "tid": span.worker,
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "args": dict(span.args or {}),
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"tool": "repro (NeutronStar reproduction)"},
    }


def save_chrome_trace(timeline: Timeline, path: Union[str, Path]) -> Path:
    """Write the trace to ``path`` (``.json`` appended if missing).

    Open the file at ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(path.suffix + ".json")
    path.write_text(json.dumps(timeline_to_chrome_trace(timeline)))
    return path
